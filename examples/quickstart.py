#!/usr/bin/env python3
"""Quickstart: plan and simulate smart tensor migrations for one workload.

Builds a BERT training iteration whose footprint exceeds the (scaled) GPU
memory, runs G10's tensor vitality analysis and migration planner, then
simulates the iteration under the full G10 design and under plain UVM demand
paging, printing the comparison the paper's Figure 11 makes per workload.

Run with:  python examples/quickstart.py
"""

from repro import build_workload, run_policy
from repro.core import MigrationPlanner


def main() -> None:
    # CI scale keeps the run under a second while preserving the paper's
    # memory-pressure regime; switch to scale="paper" for the full workloads.
    workload = build_workload("bert", scale="ci")
    print(f"Workload: {workload.graph.name}")
    print(f"  kernels per iteration : {workload.graph.num_kernels}")
    print(f"  peak memory footprint : {100 * workload.memory_footprint_ratio:.0f}% of GPU memory")

    planner = MigrationPlanner(workload.config)
    planning = planner.plan_from_report(workload.report)
    plan = planning.plan
    print("\nSmart tensor migration plan (compile time):")
    print(f"  pre-evictions planned : {plan.num_evictions}")
    print(f"  bytes staged to SSD   : {plan.bytes_to(type(plan.evictions[0].destination).SSD) / 1e9:.1f} GB"
          if plan.evictions else "  bytes staged to SSD   : 0.0 GB")
    print(f"  projected peak usage  : {plan.planned_peak_pressure / 1e9:.1f} GB "
          f"(capacity {plan.gpu_capacity_bytes / 1e9:.1f} GB)")

    print("\nSimulated end-to-end execution of one training iteration:")
    for policy in ("ideal", "base_uvm", "deepum", "g10"):
        result = run_policy(workload, policy)
        print(
            f"  {result.policy_name:10s} "
            f"time={result.execution_time:8.3f} s  "
            f"normalized={result.normalized_performance:5.2f}  "
            f"stalls={100 * result.stall_fraction:5.1f}%"
        )


if __name__ == "__main__":
    main()
