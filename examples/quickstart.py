#!/usr/bin/env python3
"""Quickstart: plan and simulate smart tensor migrations for one workload.

Builds a BERT training iteration whose footprint exceeds the (scaled) GPU
memory, runs G10's tensor vitality analysis and migration planner, then
simulates the iteration under the full G10 design and under plain UVM demand
paging — the comparison the paper's Figure 11 makes per workload — through
the :class:`repro.Scenario` API. A :class:`repro.TraceRecorder` observer
attached to the G10 run shows the new instrumentation hooks: migration
counts without subclassing any policy.

Run with:  python examples/quickstart.py
"""

from repro import Scenario, TraceRecorder
from repro.core import MigrationPlanner


def main() -> None:
    # CI scale keeps the run under a second while preserving the paper's
    # memory-pressure regime; use .at_scale("paper") for the full workloads.
    scenario = Scenario("bert", scale="ci")
    session = scenario.session()
    workload = session.workload
    print(f"Workload: {workload.graph.name}")
    print(f"  kernels per iteration : {workload.graph.num_kernels}")
    print(f"  peak memory footprint : {100 * workload.memory_footprint_ratio:.0f}% of GPU memory")
    print(f"  config fingerprint    : {session.config_fingerprint()[:12]}")

    planner = MigrationPlanner(workload.config)
    planning = planner.plan_from_report(workload.report)
    plan = planning.plan
    print("\nSmart tensor migration plan (compile time):")
    print(f"  pre-evictions planned : {plan.num_evictions}")
    print(f"  bytes staged to SSD   : {plan.bytes_to(type(plan.evictions[0].destination).SSD) / 1e9:.1f} GB"
          if plan.evictions else "  bytes staged to SSD   : 0.0 GB")
    print(f"  projected peak usage  : {plan.planned_peak_pressure / 1e9:.1f} GB "
          f"(capacity {plan.gpu_capacity_bytes / 1e9:.1f} GB)")

    print("\nSimulated end-to-end execution of one training iteration:")
    for policy in ("ideal", "base_uvm", "deepum", "g10"):
        outcome = scenario.on_policy(policy).run()
        print(
            f"  {outcome.policy_name:10s} "
            f"time={outcome.execution_time:8.3f} s  "
            f"normalized={outcome.normalized_performance:5.2f}  "
            f"stalls={100 * outcome.stall_fraction:5.1f}%"
        )

    trace = TraceRecorder()
    scenario.on_policy("g10").run(observers=(trace,))
    print("\nObserved G10 run (SimObserver hooks, no policy subclassing):")
    print(f"  kernel launches : {trace.count('kernel_start')}")
    print(f"  prefetches      : {len(trace.migrations('prefetch'))}")
    print(f"  evictions       : {len(trace.migrations('eviction'))}")
    print(f"  demand faults   : {len(trace.migrations('fault'))}")


if __name__ == "__main__":
    main()
