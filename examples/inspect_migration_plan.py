#!/usr/bin/env python3
"""Inspect a G10 migration plan and the instrumented GPU program it produces.

Reproduces the workflow of §4.2-§4.4 on a ResNet-style workload: tensor
vitality analysis, smart eviction scheduling, eager prefetch rescheduling, and
finally the instrumented program of Figure 9 (kernel launches interleaved with
``g10_alloc`` / ``g10_free`` / ``g10_pre_evict`` / ``g10_prefetch``).

Run with:  python examples/inspect_migration_plan.py
"""

from collections import Counter

from repro import Scenario
from repro.core import MigrationPlanner, instrument_program
from repro.core.plan import MigrationDestination


def main() -> None:
    workload = Scenario("resnet152", scale="ci").session().workload
    report = workload.report

    print(f"Workload: {workload.graph.name}")
    print(f"  tensors tracked        : {len(report.usages)}")
    print(f"  inactive periods found : {len(report.periods)}")
    longest = max(report.periods, key=report.period_duration)
    print(
        f"  longest inactive period: tensor {longest.tensor_id} "
        f"({longest.size_bytes / 1e6:.1f} MB) stays cold for "
        f"{report.period_duration(longest) * 1e3:.1f} ms"
    )

    planning = MigrationPlanner(workload.config).plan_from_report(report)
    plan = planning.plan
    destinations = Counter(e.destination for e in plan.evictions)
    print("\nMigration plan:")
    print(f"  pre-evictions : {plan.num_evictions} "
          f"(SSD: {destinations.get(MigrationDestination.SSD, 0)}, "
          f"host: {destinations.get(MigrationDestination.HOST, 0)})")
    print(f"  prefetches    : {plan.num_prefetches}")
    print(f"  fits in GPU   : {plan.fits_in_gpu}")
    eager = sum(1 for p in plan.prefetches if p.issue_slot < p.latest_safe_slot)
    print(f"  prefetches moved earlier by the smart prefetcher: {eager}")

    program = instrument_program(workload.graph, report, plan)
    print(f"\nInstrumented program: {len(program.lines)} lines, "
          f"{program.num_instructions} g10_* instructions. First 30 lines:\n")
    print("\n".join(program.lines[:30]))


if __name__ == "__main__":
    main()
