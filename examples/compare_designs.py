#!/usr/bin/env python3
"""Compare every GPU-memory design across the paper's five workloads.

Runs the Figure 11 experiment (plus the Figure 14 traffic breakdown and the
§7.7 SSD-lifetime estimate for G10) at CI scale and prints the result tables.
Pass ``--paper`` to run the full paper-scale workloads instead (a few minutes).

Run with:  python examples/compare_designs.py [--paper]
"""

import argparse

from repro.analysis import estimate_ssd_lifetime, traffic_breakdown
from repro.experiments import figure11_end_to_end, format_table
from repro.experiments.harness import build_workload, run_policy


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--paper", action="store_true", help="run the full paper-scale workloads")
    args = parser.parse_args()
    scale = "paper" if args.paper else "ci"

    print(f"Running the end-to-end comparison at {scale} scale...\n")
    results = figure11_end_to_end(scale=scale)

    rows = []
    for model, values in results.items():
        row = {"model": model, "M%": round(100 * values.pop("memory_footprint_ratio"))}
        row.update({name: round(norm, 3) for name, norm in values.items()})
        rows.append(row)
    print("Normalized training performance (1.0 = infinite GPU memory):")
    print(format_table(rows))

    print("\nMigration traffic and SSD lifetime under full G10:")
    lifetime_rows = []
    for model in results:
        workload = build_workload(model, scale=scale)
        run = run_policy(workload, "g10")
        breakdown = traffic_breakdown(run)
        estimate = estimate_ssd_lifetime(run, workload.config.ssd)
        lifetime_rows.append(
            {
                "model": model,
                "gpu_ssd_gb": round(breakdown.gpu_ssd_gb, 1),
                "gpu_host_gb": round(breakdown.gpu_host_gb, 1),
                "ssd_lifetime_years": round(min(estimate.lifetime_years, 1000.0), 1),
            }
        )
    print(format_table(lifetime_rows))


if __name__ == "__main__":
    main()
