#!/usr/bin/env python3
"""Compare every GPU-memory design across the paper's five workloads.

Runs the Figure 11 experiment (plus the Figure 14 traffic breakdown and the
§7.7 SSD-lifetime estimate for G10) at CI scale and prints the result tables.
Per-design numbers come from the :class:`repro.Scenario` API; the figure grid
itself runs through the experiment registry. Pass ``--paper`` to run the full
paper-scale workloads instead (a few minutes), ``--jobs N`` to fan the sweep
out over worker processes, and ``--cache`` to reuse previously computed cells
from ``.repro_cache/``.

Run with:  python examples/compare_designs.py [--paper] [--jobs N] [--cache]
"""

import argparse

from repro import Scenario
from repro.analysis import estimate_ssd_lifetime, traffic_breakdown
from repro.experiments import ResultCache, SweepRunner, format_table, get_experiment


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--paper", action="store_true", help="run the full paper-scale workloads")
    parser.add_argument("--jobs", type=int, default=None, help="worker processes for the sweep")
    parser.add_argument("--cache", action="store_true", help="persist results under .repro_cache/")
    args = parser.parse_args()
    scale = "paper" if args.paper else "ci"
    runner = SweepRunner(jobs=args.jobs, cache=ResultCache() if args.cache else None)

    print(f"Running the end-to-end comparison at {scale} scale...\n")
    results = get_experiment("11").render(scale=scale, runner=runner)

    rows = []
    for model, values in results.items():
        row = {"model": model, "M%": round(100 * values.pop("memory_footprint_ratio"))}
        row.update({name: round(norm, 3) for name, norm in values.items()})
        rows.append(row)
    print("Normalized training performance (1.0 = infinite GPU memory):")
    print(format_table(rows))

    print("\nMigration traffic and SSD lifetime under full G10:")
    lifetime_rows = []
    for model in results:
        outcome = Scenario(model, scale=scale).on_policy("g10").run(runner=runner)
        breakdown = traffic_breakdown(outcome.result)
        estimate = estimate_ssd_lifetime(outcome.result, outcome.scenario.cell().config().ssd)
        lifetime_rows.append(
            {
                "model": model,
                "gpu_ssd_gb": round(breakdown.gpu_ssd_gb, 1),
                "gpu_host_gb": round(breakdown.gpu_host_gb, 1),
                "ssd_lifetime_years": round(min(estimate.lifetime_years, 1000.0), 1),
                "served_from_cache": outcome.cached,
            }
        )
    print(format_table(lifetime_rows))


if __name__ == "__main__":
    main()
