"""Bit-identity proofs for the vectorized planning hot paths.

Every numpy rewrite in ``core/``/``uvm/`` carries the same contract: it must
produce *byte-equal* results to the straightforward scalar Python it replaced,
because golden files and the sweep result cache compare bit-for-bit. The
retained scalar implementations live in :mod:`repro.core.reference`; these
Hypothesis suites drive production code and reference side by side with
randomized inputs and assert exact equality — ``==`` on floats, never
``approx``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import paper_config
from repro.core.bandwidth import ChannelSchedule, Direction
from repro.core.eviction import saturation_end_slot
from repro.core.prefetch import SmartPrefetcher
from repro.core.pressure import MemoryPressureTimeline
from repro.core.reference import (
    ScalarChannelSchedule,
    scalar_earliest_issue,
    scalar_eviction_benefit,
    scalar_fault_costs,
    scalar_saturation_end_slot,
)
from repro.core.vitality import InactivePeriod
from repro.errors import SchedulingError
from repro.uvm.fault import PageFaultModel

MAX_SLOTS = 24

# Slot durations in seconds; spans several orders of magnitude so per-slot
# capacities do too.
durations_arrays = st.lists(
    st.floats(min_value=1e-5, max_value=0.5, allow_nan=False),
    min_size=1,
    max_size=MAX_SLOTS,
).map(lambda values: np.asarray(values, dtype=np.float64))

# Transfer sizes from sub-slot to many-slot multiples of typical capacity
# (paper-config PCIe moves ~GBs per second, slots last ~1e-5..0.5 s). Include
# zero and the tiny (0, 1e-9] reserve edge case explicitly.
transfer_sizes = st.one_of(
    st.just(0.0),
    st.floats(min_value=1e-12, max_value=1e-9),
    st.floats(min_value=1.0, max_value=5e9, allow_nan=False),
)

directions = st.sampled_from([Direction.OUT, Direction.IN])
booleans = st.booleans()


@st.composite
def operation_sequences(draw):
    """A schedule plus a randomized interleaving of probe/reserve operations."""
    durations = draw(durations_arrays)
    n = len(durations)
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["probe_forward", "probe_backward", "reserve"]),
                transfer_sizes,
                st.integers(min_value=0, max_value=n),  # start
                st.integers(min_value=0, max_value=n + 2),  # end
                booleans,  # to_ssd
                directions,
                booleans,  # reserve: bounded window?
            ),
            min_size=1,
            max_size=30,
        )
    )
    return durations, ops


def _apply(schedule, op):
    """Run one operation; returns (tag, value) capturing result or error."""
    kind, size, start, end, to_ssd, direction, bounded = op
    try:
        if kind == "probe_forward":
            return ("ok", schedule.probe_forward(size, start, end, to_ssd, direction))
        if kind == "probe_backward":
            return ("ok", schedule.probe_backward(size, end, start, to_ssd, direction))
        return (
            "ok",
            schedule.reserve(
                size, start, to_ssd, direction, end_slot=end if bounded else None
            ),
        )
    except SchedulingError as exc:
        return ("error", str(exc))


class TestChannelScheduleEquivalence:
    @settings(max_examples=200, deadline=None)
    @given(operation_sequences())
    def test_probe_and_reserve_sequences_bit_identical(self, case):
        durations, ops = case
        config = paper_config()
        vectorized = ChannelSchedule(durations, config)
        reference = ScalarChannelSchedule(durations, config)
        slots = np.arange(len(durations))
        for op in ops:
            assert _apply(vectorized, op) == _apply(reference, op)
            # After every mutation the full availability state must agree
            # exactly, for every combo and channel.
            for to_ssd in (False, True):
                for direction in (Direction.OUT, Direction.IN):
                    ours = vectorized.available_bytes(to_ssd, direction, slots)
                    theirs = reference.available_bytes(to_ssd, direction, slots)
                    assert ours.tolist() == theirs.tolist()
            for channel in ("ssd_write", "ssd_read", "pcie_out", "pcie_in"):
                assert (
                    vectorized.utilization(channel).tolist()
                    == reference.utilization(channel).tolist()
                )

    @settings(max_examples=100, deadline=None)
    @given(
        durations_arrays,
        transfer_sizes,
        booleans,
        directions,
    )
    def test_transfer_time_bit_identical(self, durations, size, to_ssd, direction):
        config = paper_config()
        vectorized = ChannelSchedule(durations, config)
        reference = ScalarChannelSchedule(durations, config)
        assert vectorized.transfer_time(size, to_ssd, direction) == reference.transfer_time(
            size, to_ssd, direction
        )

    def test_utilization_window_matches_full_curve_slice(self):
        config = paper_config()
        schedule = ChannelSchedule(np.full(8, 0.01), config)
        schedule.reserve(float(2**20), 1, True, Direction.OUT)
        full = schedule.utilization("ssd_write")
        window = schedule.utilization_window("ssd_write", 2, 6)
        assert window.tolist() == full[2:6].tolist()


pressure_curves = st.lists(
    st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
    min_size=2,
    max_size=MAX_SLOTS,
).map(lambda values: np.asarray(values, dtype=np.float64))


class TestPressureEquivalence:
    @settings(max_examples=200, deadline=None)
    @given(
        pressure_curves,
        st.floats(min_value=1.0, max_value=1e9),
        st.integers(min_value=1, max_value=10**9),
        st.data(),
    )
    def test_eviction_benefit_bit_identical(self, curve, capacity, size, data):
        n = len(curve)
        wraps = data.draw(st.booleans())
        start = data.draw(st.integers(min_value=0, max_value=n - 1))
        if wraps:
            end = data.draw(st.integers(min_value=n, max_value=2 * n - 1))
        else:
            end = data.draw(st.integers(min_value=start + 1, max_value=n))
        period = InactivePeriod(
            tensor_id=1, size_bytes=size, start_slot=start, end_slot=end,
            wraps_around=wraps,
        )
        timeline = MemoryPressureTimeline(curve, capacity)
        assert timeline.eviction_benefit(period) == scalar_eviction_benefit(
            curve, capacity, period, n
        )

    @settings(max_examples=200, deadline=None)
    @given(
        pressure_curves,
        st.floats(min_value=1.0, max_value=1e9),
        st.integers(min_value=1, max_value=10**9),
        st.data(),
    )
    def test_earliest_issue_matches_scalar_walk(self, curve, capacity, size, data):
        n = len(curve)
        issue = data.draw(st.integers(min_value=0, max_value=2 * n - 1))
        earliest = data.draw(st.integers(min_value=0, max_value=issue))
        timeline = MemoryPressureTimeline(curve, capacity)

        class _Probe:
            issue_slot = issue
            size_bytes = size

        result = SmartPrefetcher(timeline)._earliest_issue(_Probe(), earliest, n)
        expected = scalar_earliest_issue(
            timeline.pressure_view(), capacity, size, issue, earliest, n
        )
        assert result == expected


class TestSaturationWindowEquivalence:
    @settings(max_examples=200, deadline=None)
    @given(
        durations_arrays,
        st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
        st.data(),
    )
    def test_cumsum_window_matches_scalar_walk(self, durations, ideal, data):
        n = len(durations)
        start = data.draw(st.integers(min_value=0, max_value=n - 1))
        assert saturation_end_slot(durations, start, ideal, n) == (
            scalar_saturation_end_slot(durations, start, ideal, n)
        )


class TestFaultBatchEquivalence:
    @settings(max_examples=200, deadline=None)
    @given(
        st.lists(st.integers(min_value=-(2**20), max_value=2**40), max_size=50)
    )
    def test_batched_fault_costs_bit_identical(self, sizes):
        model = PageFaultModel(paper_config().uvm)
        batches = model.batch_fault_batches(sizes)
        overheads = model.batch_fault_overheads(sizes)
        expected_batches, expected_overheads = scalar_fault_costs(
            sizes, model.config.fault_batch_bytes, model.config.fault_latency
        )
        assert batches.tolist() == expected_batches
        assert overheads.tolist() == expected_overheads

    def test_batched_matches_scalar_methods_elementwise(self):
        model = PageFaultModel(paper_config().uvm)
        sizes = [0, 1, 4096, model.config.fault_batch_bytes, 10**9]
        batches = model.batch_fault_batches(sizes).tolist()
        overheads = model.batch_fault_overheads(sizes).tolist()
        assert batches == [model.fault_batches(s) for s in sizes]
        assert overheads == [model.fault_overhead(s) for s in sizes]


class TestReserveTinyRemaining:
    def test_tiny_positive_reserve_consumes_like_reference(self):
        """The (0, 1e-9] edge: the reference subtracts the tiny remainder from
        the first open slot; the vectorized walk must too (a no-op fast path
        here would desynchronize later probes)."""
        config = paper_config()
        durations = np.full(4, 0.01)
        vectorized = ChannelSchedule(durations, config)
        reference = ScalarChannelSchedule(durations, config)
        for schedule in (vectorized, reference):
            schedule.reserve(5e-10, 0, True, Direction.OUT)
        slots = np.arange(4)
        assert (
            vectorized.available_bytes(True, Direction.OUT, slots).tolist()
            == reference.available_bytes(True, Direction.OUT, slots).tolist()
        )

    def test_zero_size_reserve_returns_first_open_slot_without_consuming(self):
        config = paper_config()
        durations = np.full(3, 0.01)
        schedule = ChannelSchedule(durations, config)
        before = schedule.available_bytes(True, Direction.OUT, np.arange(3)).copy()
        # Exhaust slot 0 so the first open slot is 1.
        schedule.reserve(float(before[0]), 0, True, Direction.OUT, end_slot=1)
        assert schedule.reserve(0.0, 0, True, Direction.OUT) == 1
        after = schedule.available_bytes(True, Direction.OUT, np.arange(3))
        assert after[1] == before[1] and after[2] == before[2]

    def test_zero_size_reserve_raises_when_window_exhausted(self):
        config = paper_config()
        schedule = ChannelSchedule(np.full(2, 0.01), config)
        reference = ScalarChannelSchedule(np.full(2, 0.01), config)
        for s in (schedule, reference):
            capacity = float(s.available_bytes(True, Direction.OUT, np.arange(2)).sum())
            s.reserve(capacity, 0, True, Direction.OUT)
        with pytest.raises(SchedulingError):
            schedule.reserve(0.0, 0, True, Direction.OUT, end_slot=2)
        with pytest.raises(SchedulingError):
            reference.reserve(0.0, 0, True, Direction.OUT, end_slot=2)
