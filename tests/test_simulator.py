"""Tests for the execution simulator, the event queue and the policies."""

import pytest

from repro.baselines import (
    BaseUVMPolicy,
    DeepUMPolicy,
    FlashNeuronPolicy,
    G10Policy,
    G10Variant,
    IdealPolicy,
    POLICY_NAMES,
    make_policy,
)
from repro.config import MB, paper_config
from repro.errors import ConfigurationError, SimulationError
from repro.experiments.harness import run_policies, run_policy
from repro.graph import expand_training
from repro.sim import EventQueue, ExecutionSimulator
from repro.sim.policy import MigrationDecision
from repro.sim.results import KernelTiming, SimulationResult
from repro.uvm.page_table import MemoryLocation

from helpers import build_tiny_mlp


class TestEventQueue:
    def test_events_pop_in_time_order(self):
        queue = EventQueue()
        queue.schedule(2.0, "b")
        queue.schedule(1.0, "a")
        queue.schedule(3.0, "c")
        assert [queue.pop().kind for _ in range(3)] == ["a", "b", "c"]
        assert queue.now == 3.0

    def test_ties_break_fifo(self):
        queue = EventQueue()
        queue.schedule(1.0, "first")
        queue.schedule(1.0, "second")
        assert queue.pop().kind == "first"

    def test_pop_until(self):
        queue = EventQueue()
        for t in (0.5, 1.0, 2.0):
            queue.schedule(t, "e")
        assert len(queue.pop_until(1.0)) == 2
        assert len(queue) == 1

    def test_empty_pop_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().schedule(-1.0, "x")


class TestSimulationResult:
    def _result(self, ideal=1.0, execution=2.0, stalls=(0.5, 0.5)):
        timings = [
            KernelTiming(index=i, ideal_duration=0.5, stall=s, start_time=0.0)
            for i, s in enumerate(stalls)
        ]
        return SimulationResult(
            model_name="m", batch_size=8, policy_name="p",
            ideal_time=ideal, execution_time=execution, kernel_timings=timings,
        )

    def test_normalized_performance(self):
        assert self._result().normalized_performance == pytest.approx(0.5)

    def test_throughput(self):
        assert self._result().throughput() == pytest.approx(4.0)

    def test_stall_and_overlap_fractions_sum_to_one(self):
        result = self._result()
        assert result.stall_fraction + result.overlap_fraction == pytest.approx(1.0)

    def test_failed_result_reports_zero_performance(self):
        failed = SimulationResult(
            model_name="m", batch_size=8, policy_name="p",
            ideal_time=1.0, execution_time=float("inf"), failed=True,
        )
        assert failed.normalized_performance == 0.0
        assert failed.throughput() == 0.0
        assert failed.slowdown == float("inf")

    def test_cannot_beat_ideal(self):
        with pytest.raises(SimulationError):
            SimulationResult(
                model_name="m", batch_size=8, policy_name="p",
                ideal_time=2.0, execution_time=1.0,
            )

    def test_kernel_slowdowns_and_stalled_fraction(self):
        result = self._result(stalls=(0.0, 1.0))
        slowdowns = result.kernel_slowdowns()
        assert slowdowns.tolist() == [1.0, 3.0]
        assert result.stalled_kernel_fraction() == pytest.approx(0.5)


class TestExecutorBasics:
    def test_requires_profiled_graph(self, paper_cfg):
        training = expand_training(build_tiny_mlp())
        with pytest.raises(SimulationError):
            ExecutionSimulator(training, paper_cfg, IdealPolicy())

    def test_ideal_policy_matches_compute_time(self, tiny_training, paper_cfg):
        result = ExecutionSimulator(tiny_training, paper_cfg, IdealPolicy()).run()
        assert result.execution_time == pytest.approx(result.ideal_time)
        assert result.stall_fraction == pytest.approx(0.0)
        assert result.traffic.total_bytes == 0

    def test_ample_memory_means_no_migration(self, tiny_training, paper_cfg, tiny_report):
        result = ExecutionSimulator(tiny_training, paper_cfg, BaseUVMPolicy(), tiny_report).run()
        assert result.fault_events == 0
        assert result.normalized_performance == pytest.approx(1.0)

    def test_small_gpu_forces_migrations(self, tiny_training, tiny_report, small_config):
        result = ExecutionSimulator(tiny_training, small_config, BaseUVMPolicy(), tiny_report).run()
        assert not result.failed
        assert result.traffic.total_bytes > 0
        assert result.execution_time > result.ideal_time

    def test_peak_gpu_usage_respects_capacity(self, tiny_training, tiny_report, small_config):
        sim = ExecutionSimulator(tiny_training, small_config, BaseUVMPolicy(), tiny_report)
        result = sim.run()
        assert result.peak_gpu_bytes <= small_config.gpu.memory_bytes

    def test_impossible_working_set_fails_gracefully(self, tiny_training, tiny_report):
        # 16 KB of GPU memory cannot even hold one linear layer's working set.
        config = paper_config().with_gpu_memory(16 * 1024).with_host_memory(64 * MB)
        result = ExecutionSimulator(tiny_training, config, FlashNeuronPolicy(), tiny_report).run()
        assert result.failed
        assert result.failure_reason


class TestPolicyFactory:
    def test_all_names_construct(self):
        for name in POLICY_NAMES:
            assert make_policy(name) is not None

    @pytest.mark.parametrize(
        "alias,expected",
        [("G10", G10Policy), ("Base UVM", BaseUVMPolicy), ("DeepUM+", DeepUMPolicy), ("ideal", IdealPolicy)],
    )
    def test_aliases(self, alias, expected):
        assert isinstance(make_policy(alias), expected)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            make_policy("lru-ultra")

    def test_policy_instances_are_fresh(self):
        assert make_policy("g10") is not make_policy("g10")

    def test_invalid_policy_parameters_rejected(self):
        with pytest.raises(ValueError):
            DeepUMPolicy(lookahead=0)
        with pytest.raises(ValueError):
            DeepUMPolicy(correlation_hit_rate=0.0)
        with pytest.raises(ValueError):
            FlashNeuronPolicy(prefetch_lookahead=0)


class TestPoliciesOnConstrainedWorkload:
    """End-to-end behaviour on a CI-scale BERT that exceeds GPU memory."""

    @pytest.fixture(scope="class")
    def runs(self, bert_ci_workload):
        return run_policies(bert_ci_workload, POLICY_NAMES)

    def test_ideal_is_upper_bound(self, runs):
        ideal = runs["ideal"]
        assert ideal.normalized_performance == pytest.approx(1.0)
        for name, result in runs.items():
            assert result.execution_time + 1e-9 >= ideal.execution_time

    def test_g10_outperforms_base_uvm(self, runs):
        assert runs["g10"].normalized_performance > runs["base_uvm"].normalized_performance

    def test_g10_outperforms_deepum(self, runs):
        assert runs["g10"].normalized_performance >= runs["deepum"].normalized_performance

    def test_g10_close_to_ideal(self, runs):
        assert runs["g10"].normalized_performance > 0.8

    def test_g10_has_less_stall_than_base_uvm(self, runs):
        assert runs["g10"].stall_fraction < runs["base_uvm"].stall_fraction

    def test_base_uvm_takes_page_faults(self, runs):
        assert runs["base_uvm"].fault_events > 0

    def test_g10_host_at_least_as_good_as_gds(self, runs):
        assert (
            runs["g10_host"].normalized_performance
            >= runs["g10_gds"].normalized_performance - 0.02
        )

    def test_flashneuron_uses_only_ssd(self, runs):
        assert runs["flashneuron"].traffic.gpu_host_bytes == 0

    def test_g10_gds_uses_only_ssd(self, runs):
        assert runs["g10_gds"].traffic.gpu_host_bytes == 0

    def test_transformer_traffic_prefers_host(self, runs):
        """BERT is bandwidth-hungry: G10 should route most traffic to host memory."""
        g10 = runs["g10"]
        assert g10.traffic.gpu_host_bytes > g10.traffic.gpu_ssd_bytes

    def test_migration_traffic_is_balanced(self, runs):
        """Whatever leaves the GPU must eventually come back (within ~2x)."""
        g10 = runs["g10"]
        out_bytes = g10.traffic.ssd_write_bytes + g10.traffic.host_write_bytes
        in_bytes = g10.traffic.ssd_read_bytes + g10.traffic.host_read_bytes
        assert out_bytes > 0 and in_bytes > 0
        assert 0.3 < in_bytes / out_bytes < 3.0


class TestG10Variants:
    def test_variant_names(self):
        assert G10Policy(G10Variant.GDS).name == "G10-GDS"
        assert G10Policy(G10Variant.HOST).name == "G10-Host"
        assert G10Policy(G10Variant.FULL).name == "G10"

    def test_full_variant_has_lowest_software_overhead(self, bert_ci_workload):
        full = run_policy(bert_ci_workload, "g10")
        # The plan attribute is only available on a policy instance after setup;
        # compare the configured overheads directly instead.
        uvm = bert_ci_workload.config.uvm
        assert uvm.extended_uvm_overhead < uvm.software_migration_overhead
        assert not full.failed

    def test_plan_property_requires_setup(self):
        with pytest.raises(RuntimeError):
            _ = G10Policy().plan

    def test_victim_selection_respects_needed_bytes(self, bert_ci_workload):
        policy = BaseUVMPolicy()
        from repro.sim.policy import PolicyContext

        policy.setup(PolicyContext(
            config=bert_ci_workload.config,
            graph=bert_ci_workload.graph,
            report=bert_ci_workload.report,
        ))
        resident = [t.tensor_id for t in bert_ci_workload.graph.tensors][:50]
        needed = 32 * MB
        decisions = policy.select_victims(needed, set(), resident, 0.0)
        freed = sum(bert_ci_workload.graph.tensor(d.tensor_id).size_bytes for d in decisions)
        assert freed >= min(
            needed,
            sum(bert_ci_workload.graph.tensor(t).size_bytes for t in resident),
        ) * 0.99

    def test_decision_defaults_to_ssd(self):
        assert MigrationDecision(3).destination is MemoryLocation.SSD
