"""Tests for the system configuration (Table 2)."""

import dataclasses

import pytest

from repro.config import (
    GB,
    PAGE_SIZE,
    GPUConfig,
    InterconnectConfig,
    SSDConfig,
    SystemConfig,
    UVMConfig,
    ci_config,
    paper_config,
    pcie4_config,
)
from repro.errors import ConfigurationError


class TestPaperConfig:
    def test_gpu_memory_matches_table2(self):
        assert paper_config().gpu.memory_bytes == 40 * GB

    def test_host_memory_matches_table2(self):
        assert paper_config().host_memory_bytes == 128 * GB

    def test_page_size_is_4kb(self):
        assert paper_config().uvm.page_size == PAGE_SIZE == 4096

    def test_ssd_bandwidths_match_table2(self):
        ssd = paper_config().ssd
        assert ssd.read_bandwidth == pytest.approx(3.2 * GB)
        assert ssd.write_bandwidth == pytest.approx(3.0 * GB)

    def test_ssd_latencies_match_table2(self):
        ssd = paper_config().ssd
        assert ssd.read_latency == pytest.approx(20e-6)
        assert ssd.write_latency == pytest.approx(16e-6)

    def test_fault_latency_matches_table2(self):
        assert paper_config().uvm.fault_latency == pytest.approx(45e-6)

    def test_interconnect_is_pcie3_x16(self):
        assert paper_config().interconnect.bandwidth == pytest.approx(15.754 * GB)

    def test_pcie4_config_doubles_bandwidth(self):
        assert pcie4_config().interconnect.bandwidth == pytest.approx(32 * GB)

    def test_gpu_page_count(self):
        cfg = paper_config()
        assert cfg.gpu_pages == cfg.gpu.memory_bytes // 4096

    def test_host_page_count(self):
        cfg = paper_config()
        assert cfg.host_pages == cfg.host_memory_bytes // 4096


class TestConfigMutators:
    def test_with_host_memory(self):
        cfg = paper_config().with_host_memory(32 * GB)
        assert cfg.host_memory_bytes == 32 * GB
        assert cfg.gpu.memory_bytes == 40 * GB

    def test_with_gpu_memory(self):
        cfg = paper_config().with_gpu_memory(16 * GB)
        assert cfg.gpu.memory_bytes == 16 * GB

    def test_with_ssd_bandwidth_scales_write_proportionally(self):
        cfg = paper_config().with_ssd_bandwidth(6.4 * GB)
        assert cfg.ssd.read_bandwidth == pytest.approx(6.4 * GB)
        ratio = cfg.ssd.write_bandwidth / cfg.ssd.read_bandwidth
        assert ratio == pytest.approx(3.0 / 3.2)

    def test_with_ssd_bandwidth_explicit_write(self):
        cfg = paper_config().with_ssd_bandwidth(10 * GB, 9 * GB)
        assert cfg.ssd.write_bandwidth == pytest.approx(9 * GB)

    def test_with_interconnect_bandwidth_updates_host_bandwidth(self):
        cfg = paper_config().with_interconnect_bandwidth(32 * GB)
        assert cfg.host_bandwidth == pytest.approx(32 * GB)

    def test_mutators_do_not_modify_original(self):
        original = paper_config()
        original.with_gpu_memory(1 * GB)
        assert original.gpu.memory_bytes == 40 * GB

    def test_ssd_scaled_bandwidth(self):
        ssd = SSDConfig().scaled_bandwidth(2.0)
        assert ssd.read_bandwidth == pytest.approx(6.4 * GB)
        assert ssd.write_bandwidth == pytest.approx(6.0 * GB)


class TestCIConfig:
    def test_preserves_capacity_bandwidth_ratio(self):
        paper = paper_config()
        ci = ci_config(1 / 64)
        paper_ratio = paper.gpu.memory_bytes / paper.interconnect.bandwidth
        ci_ratio = ci.gpu.memory_bytes / ci.interconnect.bandwidth
        assert ci_ratio == pytest.approx(paper_ratio, rel=0.05)

    def test_rejects_bad_scale(self):
        with pytest.raises(ConfigurationError):
            ci_config(0)
        with pytest.raises(ConfigurationError):
            ci_config(2.0)

    def test_smaller_than_paper(self):
        assert ci_config().gpu.memory_bytes < paper_config().gpu.memory_bytes


class TestValidation:
    def test_negative_gpu_memory_rejected(self):
        with pytest.raises(ConfigurationError):
            GPUConfig(memory_bytes=-1)

    def test_zero_efficiency_rejected(self):
        with pytest.raises(ConfigurationError):
            GPUConfig(compute_efficiency=0.0)

    def test_efficiency_above_one_rejected(self):
        with pytest.raises(ConfigurationError):
            GPUConfig(gemm_efficiency=1.5)

    def test_negative_ssd_bandwidth_rejected(self):
        with pytest.raises(ConfigurationError):
            SSDConfig(read_bandwidth=-1)

    def test_bad_overprovisioning_rejected(self):
        with pytest.raises(ConfigurationError):
            SSDConfig(overprovisioning=1.5)

    def test_negative_interconnect_rejected(self):
        with pytest.raises(ConfigurationError):
            InterconnectConfig(bandwidth=0)

    def test_negative_host_memory_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(host_memory_bytes=-1)

    def test_zero_page_size_rejected(self):
        with pytest.raises(ConfigurationError):
            UVMConfig(page_size=0)

    def test_negative_fault_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            UVMConfig(fault_latency=-1.0)


class TestEfficiencyLookup:
    @pytest.mark.parametrize(
        "compute_class,field",
        [
            ("conv", "conv_efficiency"),
            ("grouped_conv", "grouped_conv_efficiency"),
            ("gemm", "gemm_efficiency"),
            ("generic", "compute_efficiency"),
            ("unknown", "compute_efficiency"),
        ],
    )
    def test_efficiency_for(self, compute_class, field):
        gpu = GPUConfig()
        assert gpu.efficiency_for(compute_class) == getattr(gpu, field)

    def test_config_is_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            paper_config().gpu.memory_bytes = 1
