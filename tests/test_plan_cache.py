"""Tests for the cross-cell plan-fragment cache.

The cache must be *value-transparent*: a hit returns a plan bit-identical to
what fresh planning would produce, keys must separate inputs the planner
actually reads (and only those), and the executor/bench/sweep layers must see
truthful hit/miss counters.
"""

import dataclasses

import pytest

from repro.core import MigrationPlanner
from repro.core.eviction import EvictionPolicyConfig
from repro.core.plan_cache import (
    PlanFragmentCache,
    get_plan_cache,
    graph_fingerprint,
    planner_config_key,
    snapshot_counters,
)
from repro.experiments.harness import run_policy


@pytest.fixture(autouse=True)
def fresh_cache():
    """Each test starts and ends with an empty process-global cache."""
    cache = get_plan_cache()
    cache.reset()
    yield cache
    cache.reset()


def _plan(workload, **kwargs):
    planner = MigrationPlanner(workload.config, **kwargs)
    return planner.plan_from_report(workload.report).plan


class TestValueTransparency:
    def test_full_hit_is_bit_identical_to_miss(self, fresh_cache, bert_ci_workload):
        first = _plan(bert_ci_workload)
        assert fresh_cache.stats.misses == 1
        second = _plan(bert_ci_workload)
        assert fresh_cache.stats.full_hits == 1
        assert second == first
        # Defensive container copies: mutating a returned plan must not
        # corrupt the cached entry.
        second.evictions.clear()
        assert _plan(bert_ci_workload) == first

    def test_fragment_hit_replays_only_the_prefetcher(
        self, fresh_cache, bert_ci_workload
    ):
        lazy = _plan(bert_ci_workload, eager_prefetch=False)
        fresh_cache.reset()
        expected_eager = _plan(bert_ci_workload, eager_prefetch=True)
        fresh_cache.reset()

        assert _plan(bert_ci_workload, eager_prefetch=False) == lazy
        # Same schedule fragment, different eager flag: fragment hit, and the
        # replayed prefetcher must reproduce the fresh eager plan exactly.
        eager = _plan(bert_ci_workload, eager_prefetch=True)
        assert fresh_cache.stats.fragment_hits == 1
        assert eager == expected_eager

    def test_executor_results_identical_across_cache_states(self, bert_ci_workload):
        cold = run_policy(bert_ci_workload, "g10")
        warm = run_policy(bert_ci_workload, "g10")
        assert warm.perf.plan_cache["misses"] == 0
        assert warm.perf.plan_cache["full_hits"] >= 1
        assert warm.execution_time == cold.execution_time
        assert warm.perf.to_dict() == cold.perf.to_dict()


class TestKeys:
    def test_planner_read_config_changes_miss(self, fresh_cache, bert_ci_workload):
        _plan(bert_ci_workload)
        smaller = dataclasses.replace(
            bert_ci_workload.config,
            gpu=dataclasses.replace(
                bert_ci_workload.config.gpu,
                memory_bytes=bert_ci_workload.config.gpu.memory_bytes // 2,
            ),
        )
        planner = MigrationPlanner(smaller)
        planner.plan_from_report(bert_ci_workload.report)
        assert fresh_cache.stats.misses == 2
        assert fresh_cache.stats.hits == 0

    def test_runtime_only_config_changes_share_plans(
        self, fresh_cache, bert_ci_workload
    ):
        _plan(bert_ci_workload)
        # UVM fault costs and SSD capacity are runtime-execution knobs the
        # planner never reads; they must not split the cache key.
        runtime_variant = dataclasses.replace(
            bert_ci_workload.config,
            uvm=dataclasses.replace(
                bert_ci_workload.config.uvm,
                fault_latency=bert_ci_workload.config.uvm.fault_latency * 2,
            ),
        )
        MigrationPlanner(runtime_variant).plan_from_report(bert_ci_workload.report)
        assert fresh_cache.stats.full_hits == 1
        assert planner_config_key(
            runtime_variant, EvictionPolicyConfig()
        ) == planner_config_key(bert_ci_workload.config, EvictionPolicyConfig())

    def test_policy_knobs_split_the_key(self, bert_ci_workload):
        base = planner_config_key(bert_ci_workload.config, EvictionPolicyConfig())
        gds = planner_config_key(
            bert_ci_workload.config, EvictionPolicyConfig(allow_host=False)
        )
        assert base != gds

    def test_graph_fingerprint_sensitive_to_durations(
        self, bert_ci_workload, resnet_ci_workload
    ):
        bert = bert_ci_workload.report.graph
        assert graph_fingerprint(bert) == graph_fingerprint(bert)
        assert graph_fingerprint(bert) != graph_fingerprint(
            resnet_ci_workload.report.graph
        )
        # Perturbing one kernel duration by one ULP must change the hash:
        # profiling-noise graphs may not share plans with clean ones.
        kernels = list(bert.kernels)
        nudged = dataclasses.replace(
            kernels[0], duration=kernels[0].duration * (1 + 1e-15)
        )
        perturbed = dataclasses.replace(bert, kernels=[nudged, *kernels[1:]])
        assert graph_fingerprint(perturbed) != graph_fingerprint(bert)


class TestCacheMechanics:
    def test_lru_bound(self):
        cache = PlanFragmentCache(max_entries=4)
        from repro.core.plan import MigrationPlan

        plan = MigrationPlan(num_slots=1, gpu_capacity_bytes=1)
        for index in range(10):
            cache.store_full((f"graph-{index}",), plan)
        assert len(cache) <= 4
        assert cache.lookup_full(("graph-9",)) is not None
        assert cache.lookup_full(("graph-0",)) is None

    def test_reset_clears_entries_and_counters(self, fresh_cache, bert_ci_workload):
        _plan(bert_ci_workload)
        assert len(fresh_cache) > 0
        fresh_cache.reset()
        assert len(fresh_cache) == 0
        assert snapshot_counters() == {
            "full_hits": 0,
            "fragment_hits": 0,
            "misses": 0,
        }
