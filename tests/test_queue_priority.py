"""Queue drain ordering (slowest-first) and lease renewal heartbeats."""

from __future__ import annotations

import time

import pytest

from repro.experiments import (
    LeaseHeartbeat,
    ResultCache,
    SweepCell,
    WorkQueue,
    estimate_cell_cost,
    run_worker,
)
from repro.errors import ConfigurationError

CELLS = (
    SweepCell(model="vit", policy="base_uvm", scale="ci"),
    SweepCell(model="bert", policy="g10", scale="ci"),
    SweepCell(model="resnet152", policy="g10", scale="ci"),
)


class TestSlowestFirst:
    def test_estimates_scale_with_workload(self):
        costs = {cell.model: estimate_cell_cost(cell) for cell in CELLS}
        assert all(cost > 0 for cost in costs.values())
        # resnet152 has far more kernels than the 3-layer CI BERT.
        assert costs["resnet152"] > costs["bert"]

    def test_characterization_cells_are_cheaper(self):
        sim = SweepCell(model="bert", policy="g10", scale="ci")
        char = SweepCell(model="bert", policy=None, scale="ci")
        assert estimate_cell_cost(char) < estimate_cell_cost(sim)

    def test_lease_order_is_slowest_first(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        queue.enqueue(CELLS, priority="slowest-first")
        expected = sorted(
            CELLS, key=lambda cell: (-estimate_cell_cost(cell), cell.cache_key())
        )
        drained = []
        while (lease := queue.lease("order-test")) is not None:
            drained.append(lease.cell().model)
            queue.ack(lease)
        assert drained == [cell.model for cell in expected]

    def test_default_drain_stays_name_sorted(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        queue.enqueue(CELLS)
        expected = sorted(cell.cache_key() for cell in CELLS)
        drained = []
        while (lease := queue.lease("order-test")) is not None:
            drained.append(lease.key)
            queue.ack(lease)
        assert drained == expected

    def test_priorities_merge_and_survive_corruption(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        queue.set_priorities({"aa": 1.0})
        queue.set_priorities({"bb": 2.0})
        assert queue._load_priorities() == {"aa": 1.0, "bb": 2.0}
        queue._priority_path.write_text("not json", encoding="utf-8")
        queue._priority_cache = None
        assert queue._load_priorities() == {}  # degrades to name order

    def test_unknown_priority_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            WorkQueue(tmp_path / "q").enqueue(CELLS, priority="fastest-first")

    def test_cli_enqueue_records_priorities(self, tmp_path):
        from repro.cli import main

        code = main([
            "queue", "enqueue", "--scale", "ci", "--figures", "2",
            "--queue-dir", str(tmp_path / "q"), "--no-cache",
            "--priority", "slowest-first",
        ])
        assert code == 0
        queue = WorkQueue(tmp_path / "q")
        assert queue._priority_path.exists()
        assert queue._load_priorities()


class TestLeaseHeartbeat:
    def _queue_with_task(self, tmp_path, lease_timeout: float) -> WorkQueue:
        queue = WorkQueue(tmp_path / "q", lease_timeout=lease_timeout)
        queue.enqueue_tasks([("ab12", {"cell": None})])
        return queue

    def test_heartbeat_extends_the_deadline(self, tmp_path):
        queue = self._queue_with_task(tmp_path, lease_timeout=0.2)
        lease = queue.lease("beater")
        original_deadline = lease.deadline
        with LeaseHeartbeat(queue, lease, interval=0.02) as heartbeat:
            time.sleep(0.15)
        renewed = heartbeat.lease
        assert renewed.deadline > original_deadline
        # The original deadline passing no longer reclaims the task.
        assert queue.requeue_stale(now=original_deadline + 0.01) == []
        assert queue.ack(renewed)
        assert any(e["event"] == "renew" for e in queue.events())

    def test_heartbeat_stops_after_reclaim(self, tmp_path):
        queue = self._queue_with_task(tmp_path, lease_timeout=0.2)
        lease = queue.lease("slowpoke")
        with LeaseHeartbeat(queue, lease, interval=0.02) as heartbeat:
            # An operator force-reclaims the lease while the holder computes.
            assert queue.requeue_stale(now=time.time() + 60.0) == ["ab12"]
            time.sleep(0.1)
        # The holder's ack still reconciles: the task completes exactly once.
        assert queue.ack(heartbeat.lease)
        assert queue.status()["done"] == 1

    def test_run_worker_renews_during_long_cells(self, tmp_path, monkeypatch):
        import repro.experiments.queue as queue_mod

        queue = WorkQueue(tmp_path / "q", lease_timeout=0.2)
        cell = SweepCell(model="bert", policy="base_uvm", scale="ci")
        queue.enqueue([cell])

        def slow_execute(_cell):
            time.sleep(0.5)  # far beyond the lease timeout
            return {"kind": "simulation", "workload": {}, "result": {}}

        monkeypatch.setattr(queue_mod, "execute_cell", slow_execute)
        executed = run_worker(queue, ResultCache(tmp_path / "cache"), worker_id="hb")
        assert executed == 1
        status = queue.status()
        assert status["done"] == 1 and status["failed"] == 0
        events = queue.events()
        # The cell outlived its lease timeout, so the heartbeat must have
        # renewed at least once and the lease was never reclaimed.
        assert sum(1 for e in events if e["event"] == "renew") >= 1
        assert not any(e["event"] == "requeue" for e in events)
