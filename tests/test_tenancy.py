"""Multi-tenant serving: the deterministic engine and the scenario layer.

Covers the replay-exact contention engine (:mod:`repro.sim.tenancy`), the
seeded arrival processes and fairness aggregation
(:mod:`repro.experiments.tenancy`), the ``Scenario.colocated_with``
combinator, and the registration-order invariance property the engine
guarantees: permuting the order tenants are handed to the simulator cannot
change a single bit of the outcome.
"""

from __future__ import annotations

import itertools
import json

import pytest

from repro.api import Scenario
from repro.errors import ConfigurationError
from repro.experiments import jsonify
from repro.experiments.tenancy import (
    ArrivalProcess,
    MultiTenantScenario,
    Tenant,
    derive_tenant_seed,
    jain_fairness,
)
from repro.sim.tenancy import (
    SharedSystem,
    TenantTrace,
    simulate_tenancy,
)

GB = 1 << 30


def make_trace(name="a", offsets=(1.0, 2.0, 3.0), footprint=GB, **kwargs):
    if "arrivals" not in kwargs and "think_times" not in kwargs:
        kwargs["think_times"] = (0.0,)
    return TenantTrace(name=name, offsets=tuple(offsets), footprint_bytes=footprint, **kwargs)


def make_system(capacity=2 * GB, **kwargs):
    defaults = dict(
        gpu_capacity_bytes=capacity,
        spill_write_bandwidth=1.0 * GB,
        spill_read_bandwidth=2.0 * GB,
        ssd_capacity_bytes=16 * GB,
    )
    defaults.update(kwargs)
    return SharedSystem(**defaults)


def outcome_fingerprint(outcome) -> str:
    """Canonical text form of a TenancyOutcome for bit-identity comparison."""
    payload = {
        "makespan": outcome.makespan,
        "records": [
            {
                "tenant": r.tenant,
                "index": r.index,
                "arrival": r.arrival,
                "first_start": r.first_start,
                "completion": r.completion,
                "latency": r.latency,
                "queue_delay": r.queue_delay,
                "stall_seconds": r.stall_seconds,
            }
            for r in outcome.records
        ],
        "tenants": {
            name: {
                "latencies": list(stats.latencies),
                "queue_delays": list(stats.queue_delays),
                "eviction_stalls": stats.eviction_stalls,
                "eviction_stall_seconds": stats.eviction_stall_seconds,
                "gc_interference_seconds": stats.gc_interference_seconds,
                "times_evicted": stats.times_evicted,
                "spill_bytes_written": stats.spill_bytes_written,
                "spill_bytes_read": stats.spill_bytes_read,
            }
            for name, stats in outcome.tenants.items()
        },
    }
    return json.dumps(jsonify(payload), sort_keys=True)


class TestTenantTrace:
    def test_validates_name_and_offsets(self):
        with pytest.raises(ConfigurationError):
            TenantTrace(name="", offsets=(1.0,), footprint_bytes=0, think_times=(0.0,))
        with pytest.raises(ConfigurationError):
            TenantTrace(name="a", offsets=(), footprint_bytes=0, think_times=(0.0,))
        with pytest.raises(ConfigurationError):
            make_trace(offsets=(2.0, 1.0))
        with pytest.raises(ConfigurationError):
            make_trace(footprint=-1)

    def test_exactly_one_arrival_mode(self):
        with pytest.raises(ConfigurationError):
            TenantTrace(name="a", offsets=(1.0,), footprint_bytes=0)
        with pytest.raises(ConfigurationError):
            TenantTrace(
                name="a", offsets=(1.0,), footprint_bytes=0,
                arrivals=(0.0,), think_times=(0.0,),
            )

    def test_arrival_and_think_validation(self):
        with pytest.raises(ConfigurationError):
            make_trace(arrivals=(2.0, 1.0), think_times=())
        with pytest.raises(ConfigurationError):
            make_trace(think_times=(-0.5,))

    def test_request_count_and_solo_latency(self):
        open_loop = make_trace(arrivals=(0.0, 1.0, 2.0), think_times=())
        assert open_loop.request_count == 3
        closed_loop = make_trace(think_times=(0.0, 1.0))
        assert closed_loop.request_count == 2
        assert closed_loop.solo_latency == 3.0


class TestSharedSystem:
    @pytest.mark.parametrize(
        "field, value",
        [
            ("gpu_capacity_bytes", 0),
            ("spill_write_bandwidth", 0.0),
            ("spill_read_bandwidth", -1.0),
            ("ssd_capacity_bytes", 0),
            ("gc_alpha", -0.1),
        ],
    )
    def test_validation(self, field, value):
        with pytest.raises(ConfigurationError):
            make_system(**{field: value})


class TestSimulateTenancy:
    def test_needs_traces_and_unique_names(self):
        with pytest.raises(ConfigurationError):
            simulate_tenancy((), make_system())
        with pytest.raises(ConfigurationError):
            simulate_tenancy((make_trace("a"), make_trace("a")), make_system())

    def test_single_request_is_replay_exact(self):
        """The degenerate case: latency equals the solo timeline bit-for-bit."""
        trace = make_trace(offsets=(0.1, 0.30000000000000004, 0.7))
        outcome = simulate_tenancy((trace,), make_system())
        stats = outcome.tenants["a"]
        assert stats.latencies == (trace.solo_latency,)
        assert stats.queue_delays == (0.0,)
        assert stats.eviction_stalls == 0
        assert outcome.makespan == trace.solo_latency
        assert outcome.records[0].stall_seconds == 0.0

    def test_closed_loop_back_to_back(self):
        """Think time 0 chains requests seamlessly; latencies stay solo-exact."""
        trace = make_trace(offsets=(1.0, 2.5), think_times=(0.0, 0.0, 0.5))
        outcome = simulate_tenancy((trace,), make_system())
        stats = outcome.tenants["a"]
        assert stats.latencies == (2.5, 2.5, 2.5)
        assert outcome.makespan == 2.5 + 2.5 + 0.5 + 2.5

    def test_open_loop_queueing_delay(self):
        """A request arriving while another runs waits, and the wait is latency."""
        trace = make_trace(offsets=(2.0,), arrivals=(0.0, 1.0), think_times=())
        outcome = simulate_tenancy((trace,), make_system())
        stats = outcome.tenants["a"]
        # Second request arrives at 1.0, starts at 2.0, finishes at 4.0.
        assert stats.latencies == (2.0, 3.0)
        assert stats.queue_delays == (0.0, 1.0)
        assert outcome.makespan == 4.0

    def test_contention_spills_and_stalls(self):
        """An arrival that preempts a resident working set spills it via SSD.

        ``b`` arrives mid-run of ``a`` with less attained service, so the
        scheduler switches at the next kernel boundary; both footprints fill
        the GPU, so admitting ``b`` evicts ``a``, and ``a`` later pays a
        refill read to resume.
        """
        a = make_trace("a", offsets=(1.0, 2.0, 3.0, 4.0), footprint=2 * GB,
                       arrivals=(0.0,), think_times=())
        b = make_trace("b", offsets=(1.0, 2.0), footprint=2 * GB,
                       arrivals=(0.5,), think_times=())
        outcome = simulate_tenancy((a, b), make_system(capacity=2 * GB))
        assert outcome.tenants["a"].times_evicted > 0
        assert outcome.tenants["b"].eviction_stalls > 0  # charged the spill write
        assert outcome.tenants["a"].eviction_stalls > 0  # charged the refill read
        assert outcome.tenants["b"].spill_bytes_written > 0
        assert outcome.tenants["a"].spill_bytes_read > 0
        assert outcome.perf.eviction_stall_seconds > 0
        assert outcome.perf.pages_moved > 0
        assert outcome.perf.fault_events > 0
        # Contention only ever adds latency over the solo run.
        for trace, stats in ((a, outcome.tenants["a"]), (b, outcome.tenants["b"])):
            assert all(latency >= trace.solo_latency for latency in stats.latencies)

    def test_gc_interference_grows_with_alpha(self):
        """The second spill sees non-zero SSD utilization, so gc_alpha bites."""
        def run(alpha):
            a = make_trace("a", offsets=(1.0, 2.0, 3.0, 4.0, 5.0, 6.0),
                           footprint=2 * GB, arrivals=(0.0,), think_times=())
            b = make_trace("b", offsets=(0.5,), footprint=2 * GB,
                           arrivals=(0.5, 2.0, 4.5), think_times=())
            system = make_system(capacity=2 * GB, ssd_capacity_bytes=4 * GB, gc_alpha=alpha)
            return simulate_tenancy((a, b), system)

        calm = run(0.0)
        noisy = run(4.0)
        assert sum(s.times_evicted for s in calm.tenants.values()) >= 2
        assert sum(s.gc_interference_seconds for s in calm.tenants.values()) == 0.0
        assert sum(s.gc_interference_seconds for s in noisy.tenants.values()) > 0.0
        assert noisy.makespan > calm.makespan

    def test_least_attained_service_prefers_newcomer(self):
        """A tenant that arrives late has zero attained service and runs next."""
        early = make_trace("early", offsets=(1.0, 2.0, 3.0, 4.0), arrivals=(0.0,), think_times=())
        late = make_trace("late", offsets=(1.0,), arrivals=(1.5,), think_times=())
        outcome = simulate_tenancy((early, late), make_system(capacity=4 * GB))
        by_tenant = {r.tenant: r for r in outcome.records}
        # The late tenant preempts at the next kernel boundary (2.0) instead
        # of waiting for early's full four-kernel run.
        assert by_tenant["late"].completion < by_tenant["early"].completion

    def test_registration_order_is_irrelevant(self):
        """Bit-identical outcomes for every permutation of the trace tuple."""
        traces = [
            make_trace("alpha", offsets=(0.5, 1.5), footprint=GB, arrivals=(0.0, 2.0), think_times=()),
            make_trace("beta", offsets=(0.5, 1.5), footprint=2 * GB, arrivals=(0.0, 1.0), think_times=()),
            make_trace("gamma", offsets=(1.0,), footprint=GB, think_times=(0.0, 0.25)),
        ]
        system = make_system(capacity=2 * GB)
        reference = outcome_fingerprint(simulate_tenancy(tuple(traces), system))
        for permutation in itertools.permutations(traces):
            assert outcome_fingerprint(simulate_tenancy(permutation, system)) == reference

    def test_same_timestamp_ties_break_on_content(self):
        """Simultaneous arrivals drain by (attained, arrival, name, index) —
        the drain order is alphabetical here regardless of schedule order."""
        a = make_trace("a", offsets=(1.0,), arrivals=(0.0,), think_times=())
        b = make_trace("b", offsets=(1.0,), arrivals=(0.0,), think_times=())
        for order in ((a, b), (b, a)):
            outcome = simulate_tenancy(order, make_system(capacity=4 * GB))
            assert [r.tenant for r in outcome.records] == ["a", "b"]

    def test_deterministic_across_runs(self):
        traces = (
            make_trace("x", footprint=2 * GB, arrivals=(0.0, 0.5, 3.0), think_times=()),
            make_trace("y", footprint=GB, think_times=(0.1, 0.0)),
        )
        system = make_system(capacity=2 * GB)
        first = outcome_fingerprint(simulate_tenancy(traces, system))
        second = outcome_fingerprint(simulate_tenancy(traces, system))
        assert first == second


class TestArrivalProcess:
    def test_kind_validation(self):
        with pytest.raises(ConfigurationError):
            ArrivalProcess(kind="uniform")
        with pytest.raises(ConfigurationError):
            ArrivalProcess.poisson()  # neither load nor rate
        with pytest.raises(ConfigurationError):
            ArrivalProcess.poisson(load=1.0, rate=1.0)
        with pytest.raises(ConfigurationError):
            ArrivalProcess.poisson(load=1.0, requests=0)
        with pytest.raises(ConfigurationError):
            ArrivalProcess.trace(())
        with pytest.raises(ConfigurationError):
            ArrivalProcess.trace((-1.0,))
        with pytest.raises(ConfigurationError):
            ArrivalProcess.poisson(load=1.0, seed=-1)

    def test_poisson_resolve_is_seeded_and_sorted(self):
        process = ArrivalProcess.poisson(load=1.0, requests=8, seed=7)
        arrivals, think = process.resolve("tenant-a", solo_latency=2.0)
        assert think == ()
        assert len(arrivals) == 8
        assert all(a > 0 for a in arrivals)
        assert list(arrivals) == sorted(arrivals)
        again, _ = process.resolve("tenant-a", solo_latency=2.0)
        assert arrivals == again
        other, _ = process.resolve("tenant-b", solo_latency=2.0)
        assert arrivals != other

    def test_poisson_rate_vs_load(self):
        by_rate = ArrivalProcess.poisson(rate=0.5, requests=4, seed=3)
        by_load = ArrivalProcess.poisson(load=1.0, requests=4, seed=3)
        # load=1.0 at solo latency 2.0 is exactly rate 0.5.
        assert by_rate.resolve("t", 123.0) == by_load.resolve("t", 2.0)
        with pytest.raises(ConfigurationError):
            by_load.resolve("t", 0.0)

    def test_trace_resolve(self):
        absolute = ArrivalProcess.trace((1.0, 2.0))
        assert absolute.resolve("t", 5.0) == ((), (1.0, 2.0))
        relative = ArrivalProcess.trace((0.5, 1.0), relative=True)
        assert relative.resolve("t", 2.0) == ((), (1.0, 2.0))

    def test_to_dict_round_trips_the_salient_fields(self):
        assert ArrivalProcess.poisson(load=1.5, requests=2, seed=9).to_dict() == {
            "kind": "poisson", "requests": 2, "seed": 9, "load": 1.5,
        }
        assert ArrivalProcess.trace((0.0,), relative=True).to_dict() == {
            "kind": "trace", "think_times": [0.0], "relative": True,
        }

    def test_derive_tenant_seed_depends_on_name_only(self):
        assert derive_tenant_seed("a", 1) == derive_tenant_seed("a", 1)
        assert derive_tenant_seed("a", 1) != derive_tenant_seed("b", 1)
        assert 0 <= derive_tenant_seed("anything", 2**32 - 1) <= 2**32 - 1


class TestJainFairness:
    def test_bounds(self):
        assert jain_fairness([]) == 1.0
        assert jain_fairness([2.0, 2.0, 2.0]) == pytest.approx(1.0)
        skewed = jain_fairness([1.0, 10.0])
        assert 0.5 <= skewed < 1.0


class TestMultiTenantScenario:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MultiTenantScenario(tenants=())
        scenario = Scenario(model="bert", policy="g10", scale="ci")
        tenant = Tenant(name="t0", scenario=scenario, arrivals=ArrivalProcess.trace((0.0,)))
        with pytest.raises(ConfigurationError):
            MultiTenantScenario(tenants=(tenant, tenant))
        with pytest.raises(ConfigurationError):
            MultiTenantScenario(tenants=(tenant,), gc_alpha=-1.0)
        with pytest.raises(ConfigurationError):
            Tenant(name="", scenario=scenario, arrivals=ArrivalProcess.trace((0.0,)))

    def test_with_tenant_is_immutable(self):
        scenario = Scenario(model="bert", policy="g10", scale="ci")
        one = MultiTenantScenario(
            tenants=(Tenant("t0", scenario, ArrivalProcess.trace((0.0,))),)
        )
        two = one.with_tenant("t1", scenario)
        assert len(one.tenants) == 1
        assert len(two.tenants) == 2
        assert two.with_gc_alpha(0.5).gc_alpha == 0.5

    def test_colocated_with_builds_the_combinator(self):
        bert = Scenario(model="bert", policy="g10", scale="ci")
        vit = Scenario(model="vit", policy="base_uvm", scale="ci")
        multi = bert.colocated_with(vit)
        assert isinstance(multi, MultiTenantScenario)
        assert [t.name for t in multi.tenants] == ["t0", "t1"]
        assert multi.tenants[0].scenario is bert
        assert multi.tenants[1].scenario is vit

    def test_colocated_with_rejects_non_scenarios(self):
        bert = Scenario(model="bert", policy="g10", scale="ci")
        with pytest.raises(ConfigurationError):
            bert.colocated_with("vit")

    def test_run_reports_slo_and_fairness(self, golden_runner):
        bert = Scenario(model="bert", policy="g10", scale="ci")
        vit = Scenario(model="vit", policy="g10", scale="ci")
        arrivals = ArrivalProcess.poisson(load=0.75, requests=3, seed=11)
        multi = MultiTenantScenario(
            tenants=(
                Tenant("t0-bert", bert, arrivals),
                Tenant("t1-vit", vit, arrivals),
            )
        )
        result = multi.run(runner=golden_runner)
        assert set(result.tenants) == {"t0-bert", "t1-vit"}
        assert 0.0 < result.fairness <= 1.0
        assert result.makespan > 0
        for outcome in result.tenants.values():
            assert len(outcome.latencies) == 3
            assert outcome.p50_latency <= outcome.p99_latency
            assert outcome.mean_slowdown >= 1.0
            assert outcome.cache_key
            assert outcome.config_fingerprint
        rows = result.summary_rows()
        assert [row["tenant"] for row in rows] == ["t0-bert", "t1-vit"]
        payload = json.dumps(jsonify(result.to_dict()), sort_keys=True)
        assert "fairness" in payload

    def test_run_is_deterministic(self, golden_runner):
        def build():
            bert = Scenario(model="bert", policy="g10", scale="ci")
            return MultiTenantScenario(
                tenants=(
                    Tenant("a", bert, ArrivalProcess.poisson(load=1.0, requests=2, seed=5)),
                    Tenant("b", bert, ArrivalProcess.poisson(load=1.0, requests=2, seed=5)),
                )
            )

        first = json.dumps(jsonify(build().run(runner=golden_runner).to_dict()), sort_keys=True)
        second = json.dumps(jsonify(build().run(runner=golden_runner).to_dict()), sort_keys=True)
        assert first == second

    def test_tenant_registration_order_is_irrelevant_end_to_end(self, golden_runner):
        """The property test the ISSUE asks for, at the scenario layer."""
        bert = Scenario(model="bert", policy="g10", scale="ci")
        vit = Scenario(model="vit", policy="g10", scale="ci")
        tenants = [
            Tenant("t0", bert, ArrivalProcess.poisson(load=0.5, requests=2, seed=2)),
            Tenant("t1", vit, ArrivalProcess.poisson(load=0.5, requests=2, seed=2)),
            Tenant("t2", bert, ArrivalProcess.trace((0.0, 0.5))),
        ]
        reference = None
        for permutation in itertools.permutations(tenants):
            result = MultiTenantScenario(tenants=tuple(permutation)).run(runner=golden_runner)
            text = json.dumps(jsonify(result.to_dict()), sort_keys=True)
            if reference is None:
                reference = text
            assert text == reference


class TestExperimentRegistration:
    def test_tenancy_experiment_is_registered(self):
        from repro.experiments import get_experiment
        from repro.experiments.reporting import artifact_name, experiment_ids

        assert "tenancy" in experiment_ids()
        assert get_experiment("serving").id == "tenancy"
        assert get_experiment("multitenant").id == "tenancy"
        assert artifact_name("tenancy") == "tenancy"
        assert artifact_name("11") == "figure11"

    def test_tenancy_spec_covers_the_grid(self):
        from repro.experiments.tenancy import tenancy_spec

        spec = tenancy_spec(scale="ci")
        assert spec.cells
        assert all(cell.scale == "ci" for cell in spec.cells)
