"""PerfCounters instrumentation and the single simulation entry point."""

from __future__ import annotations

import warnings

import pytest

import repro
from repro._compat import _reset_deprecation_warnings
from repro.baselines import BaseUVMPolicy, IdealPolicy
from repro.sim import ExecutionSimulator, PerfCounters, SimulationResult, simulate
from repro.sim.engine import Event, EventQueue


class TestPerfCounters:
    def _run(self, tiny_training, tiny_report, config):
        return ExecutionSimulator(tiny_training, config, BaseUVMPolicy(), tiny_report).run()

    def test_totals_are_consistent(self, tiny_training, tiny_report, small_config):
        sim = ExecutionSimulator(tiny_training, small_config, BaseUVMPolicy(), tiny_report)
        result = sim.run()
        perf = result.perf
        assert perf.kernels_executed == len(tiny_training.kernels)
        # Every kernel boundary is an event; eviction completions add more.
        assert perf.events_processed >= perf.kernels_executed
        assert perf.fault_events == result.fault_events
        assert perf.pte_updates == sim.page_table.pte_updates
        moves = result.traffic.fault_count + result.traffic.prefetch_count + result.traffic.eviction_count
        if moves:
            assert perf.pages_moved > 0
        assert perf.eviction_stall_seconds >= 0.0
        if perf.eviction_stall_seconds:
            assert perf.eviction_stalls > 0

    def test_no_pressure_means_no_movement(self, tiny_training, tiny_report, paper_cfg):
        perf = self._run(tiny_training, tiny_report, paper_cfg).perf
        assert perf.pages_moved == 0
        assert perf.eviction_stalls == 0
        assert perf.eviction_stall_seconds == 0.0

    def test_counters_are_deterministic(self, tiny_training, tiny_report, small_config):
        first = self._run(tiny_training, tiny_report, small_config).perf
        second = self._run(tiny_training, tiny_report, small_config).perf
        assert first.to_dict() == second.to_dict()
        assert first == second  # phase wall times are excluded from equality

    def test_phase_wall_times_recorded_but_not_serialized(
        self, tiny_training, tiny_report, small_config
    ):
        perf = self._run(tiny_training, tiny_report, small_config).perf
        assert set(perf.phase_seconds) == {"plan", "execute"}
        assert all(value >= 0.0 for value in perf.phase_seconds.values())
        assert "phase_seconds" not in perf.to_dict()

    def test_round_trip_and_legacy_payload_tolerance(
        self, tiny_training, tiny_report, small_config
    ):
        result = self._run(tiny_training, tiny_report, small_config)
        restored = SimulationResult.from_dict(result.to_dict())
        assert restored.perf == result.perf
        assert restored == result
        # Payloads cached before the perf layer existed deserialize to zeros.
        legacy = result.to_dict()
        del legacy["perf"]
        assert SimulationResult.from_dict(legacy).perf == PerfCounters()

    def test_failed_runs_still_carry_counters(self, tiny_training, tiny_report, paper_cfg):
        from repro.baselines import FlashNeuronPolicy

        starved = paper_cfg.with_gpu_memory(64 * 1024)
        result = ExecutionSimulator(
            tiny_training, starved, FlashNeuronPolicy(), tiny_report
        ).run()
        assert result.failed
        assert result.perf.fault_events == result.fault_events
        assert "execute" in result.perf.phase_seconds


class TestEventOrdering:
    def test_priority_breaks_same_time_ties(self):
        queue = EventQueue()
        queue.schedule(1.0, "kernel", priority=1 << 62)
        queue.schedule(1.0, "evict-b", payload=7, priority=7)
        queue.schedule(1.0, "evict-a", payload=3, priority=3)
        kinds = [queue.pop().kind for _ in range(3)]
        assert kinds == ["evict-a", "evict-b", "kernel"]

    def test_events_default_to_fifo_within_a_priority(self):
        queue = EventQueue()
        queue.schedule(2.0, "late")
        queue.schedule(1.0, "first")
        queue.schedule(1.0, "second")
        assert [queue.pop().kind for _ in range(3)] == ["first", "second", "late"]
        assert Event(1.0, 0, 0, "a") < Event(1.0, 1, 0, "b")


class TestSinglePath:
    def test_simulate_matches_executor(self, tiny_training, tiny_report, small_config):
        via_engine = simulate(tiny_training, small_config, BaseUVMPolicy(), tiny_report)
        direct = ExecutionSimulator(
            tiny_training, small_config, BaseUVMPolicy(), tiny_report
        ).run()
        assert via_engine.to_dict() == direct.to_dict()

    def test_run_simulation_shim_warns_once_and_matches(
        self, tiny_training, tiny_report, paper_cfg
    ):
        _reset_deprecation_warnings()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            shimmed = repro.run_simulation(tiny_training, paper_cfg, IdealPolicy(), tiny_report)
            repro.run_simulation(tiny_training, paper_cfg, IdealPolicy(), tiny_report)
        messages = [
            str(w.message) for w in caught if w.category is DeprecationWarning
        ]
        assert len(messages) == 1
        assert "repro.sim.engine.simulate" in messages[0]
        direct = simulate(tiny_training, paper_cfg, IdealPolicy(), tiny_report)
        assert shimmed.to_dict() == direct.to_dict()

    def test_harness_routes_through_engine(self, bert_ci_workload, monkeypatch):
        """run_policy must call the single entry point, not build its own sim."""
        import repro.experiments.harness as harness

        calls = []
        real = harness.simulate

        def spy(*args, **kwargs):
            calls.append(args)
            return real(*args, **kwargs)

        monkeypatch.setattr(harness, "simulate", spy)
        harness.run_policy(bert_ci_workload, "base_uvm")
        assert len(calls) == 1
