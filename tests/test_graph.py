"""Tests for the dataflow-graph substrate: tensors, operators, kernels, expansion."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import PAGE_SIZE
from repro.errors import GraphError
from repro.graph import (
    DataflowGraph,
    Kernel,
    KernelPhase,
    OpType,
    TensorKind,
    expand_training,
)
from repro.graph.kernel import KernelTrace
from repro.graph.tensor import TensorInfo, TensorSet, make_tensor

from helpers import build_tiny_mlp


class TestTensorInfo:
    def test_size_bytes(self):
        t = make_tensor(0, "x", (2, 3, 4), TensorKind.ACTIVATION)
        assert t.size_bytes == 2 * 3 * 4 * 4

    def test_num_pages_rounds_up(self):
        t = make_tensor(0, "x", (1, PAGE_SIZE // 4 + 1), TensorKind.ACTIVATION)
        assert t.num_pages == 2

    def test_small_tensor_occupies_one_page(self):
        t = make_tensor(0, "x", (1, 1), TensorKind.ACTIVATION)
        assert t.num_pages == 1

    @pytest.mark.parametrize(
        "kind,expected",
        [
            (TensorKind.WEIGHT, True),
            (TensorKind.OPTIMIZER_STATE, True),
            (TensorKind.ACTIVATION, False),
            (TensorKind.GRADIENT, False),
            (TensorKind.WORKSPACE, False),
            (TensorKind.INPUT, False),
        ],
    )
    def test_globalness(self, kind, expected):
        assert kind.is_global is expected
        assert make_tensor(0, "x", (4,), kind).is_global is expected

    def test_rejects_empty_shape(self):
        with pytest.raises(GraphError):
            TensorInfo(0, "x", (), TensorKind.ACTIVATION)

    def test_rejects_nonpositive_dims(self):
        with pytest.raises(GraphError):
            make_tensor(0, "x", (0, 3), TensorKind.ACTIVATION)

    def test_rejects_negative_id(self):
        with pytest.raises(GraphError):
            make_tensor(-1, "x", (1,), TensorKind.ACTIVATION)

    @given(
        dims=st.lists(st.integers(min_value=1, max_value=64), min_size=1, max_size=4)
    )
    @settings(max_examples=50, deadline=None)
    def test_size_is_product_of_dims(self, dims):
        tensor = make_tensor(0, "t", tuple(dims), TensorKind.ACTIVATION)
        expected = 4
        for d in dims:
            expected *= d
        assert tensor.size_bytes == expected
        assert tensor.num_pages >= 1


class TestTensorSet:
    def test_auto_ids_are_sequential(self):
        ts = TensorSet()
        a = ts.add("a", (1,), TensorKind.ACTIVATION)
        b = ts.add("b", (1,), TensorKind.ACTIVATION)
        assert (a.tensor_id, b.tensor_id) == (0, 1)

    def test_register_rejects_duplicates(self):
        ts = TensorSet()
        t = ts.add("a", (1,), TensorKind.ACTIVATION)
        with pytest.raises(GraphError):
            ts.register(t)

    def test_total_bytes(self):
        ts = TensorSet()
        ts.add("a", (10,), TensorKind.ACTIVATION)
        ts.add("b", (6,), TensorKind.WEIGHT)
        assert ts.total_bytes == 64

    def test_contains_and_lookup(self):
        ts = TensorSet()
        t = ts.add("a", (1,), TensorKind.ACTIVATION)
        assert t.tensor_id in ts
        assert ts[t.tensor_id] is t
        assert len(ts) == 1


class TestOperatorAndGraph:
    def test_weights_are_added_to_inputs(self, tiny_graph):
        for op in tiny_graph.operators:
            for wid in op.weight_ids:
                assert wid in op.input_ids

    def test_data_inputs_exclude_weights(self, tiny_graph):
        for op in tiny_graph.operators:
            assert not set(op.data_input_ids) & set(op.weight_ids)

    def test_validation_passes_for_builder_graphs(self, tiny_graph, branchy_graph):
        tiny_graph.validate()
        branchy_graph.validate()

    def test_empty_graph_rejected(self):
        with pytest.raises(GraphError):
            DataflowGraph(name="empty").validate()

    def test_unknown_tensor_rejected(self):
        graph = DataflowGraph(name="bad")
        out = graph.add_tensor("out", (1,), TensorKind.ACTIVATION)
        with pytest.raises(GraphError):
            graph.add_operator("op", OpType.RELU, inputs=[999], outputs=[out])

    def test_consuming_unproduced_activation_rejected(self):
        graph = DataflowGraph(name="bad")
        phantom = graph.add_tensor("phantom", (4,), TensorKind.ACTIVATION)
        out = graph.add_tensor("out", (4,), TensorKind.ACTIVATION)
        graph.add_operator("op", OpType.RELU, inputs=[phantom], outputs=[out])
        with pytest.raises(GraphError):
            graph.validate()

    def test_double_production_rejected(self):
        graph = DataflowGraph(name="bad")
        src = graph.add_tensor("in", (4,), TensorKind.INPUT)
        out = graph.add_tensor("out", (4,), TensorKind.ACTIVATION)
        graph.add_operator("a", OpType.RELU, inputs=[src], outputs=[out])
        graph.add_operator("b", OpType.RELU, inputs=[src], outputs=[out])
        with pytest.raises(GraphError):
            graph.validate()

    def test_inplace_operator_is_allowed(self):
        graph = DataflowGraph(name="inplace")
        src = graph.add_tensor("in", (4,), TensorKind.INPUT)
        out = graph.add_tensor("out", (4,), TensorKind.ACTIVATION)
        graph.add_operator("produce", OpType.RELU, inputs=[src], outputs=[out])
        graph.add_operator("inplace", OpType.RELU, inputs=[out], outputs=[out])
        graph.validate()

    def test_producers_and_consumers_are_consistent(self, tiny_graph):
        producers = tiny_graph.producers()
        consumers = tiny_graph.consumers()
        for tid, producer in producers.items():
            for consumer in consumers.get(tid, []):
                assert consumer >= producer

    def test_final_outputs_are_not_consumed(self, tiny_graph):
        consumed = {tid for op in tiny_graph.operators for tid in op.input_ids}
        for out in tiny_graph.final_outputs():
            assert out.tensor_id not in consumed

    def test_summary_fields(self, tiny_graph):
        summary = tiny_graph.summary()
        assert summary["operators"] == tiny_graph.num_operators
        assert summary["weight_bytes"] == tiny_graph.total_weight_bytes()


class TestKernel:
    def test_tensor_ids_are_deduplicated(self):
        k = Kernel(
            index=0, name="k", phase=KernelPhase.FORWARD, op_id=0,
            input_ids=(1, 2, 1), output_ids=(2, 3), workspace_id=3,
        )
        assert k.tensor_ids == (1, 2, 3)

    def test_with_duration(self):
        k = Kernel(index=0, name="k", phase=KernelPhase.FORWARD, op_id=0, output_ids=(1,))
        assert k.with_duration(2.5).duration == 2.5

    def test_negative_duration_rejected(self):
        k = Kernel(index=0, name="k", phase=KernelPhase.FORWARD, op_id=0, output_ids=(1,))
        with pytest.raises(GraphError):
            k.with_duration(-1.0)

    def test_trace_requires_consecutive_indices(self):
        k0 = Kernel(index=0, name="a", phase=KernelPhase.FORWARD, op_id=0, output_ids=(1,))
        k2 = Kernel(index=2, name="b", phase=KernelPhase.FORWARD, op_id=1, output_ids=(2,))
        with pytest.raises(GraphError):
            KernelTrace([k0, k2])

    def test_trace_timing_helpers(self):
        kernels = [
            Kernel(index=i, name=f"k{i}", phase=KernelPhase.FORWARD, op_id=i,
                   output_ids=(i + 1,), duration=0.5)
            for i in range(4)
        ]
        trace = KernelTrace(kernels)
        assert trace.total_compute_time == pytest.approx(2.0)
        assert trace.start_times() == pytest.approx([0.0, 0.5, 1.0, 1.5])
        assert trace.end_times() == pytest.approx([0.5, 1.0, 1.5, 2.0])


class TestTrainingExpansion:
    def test_every_forward_op_has_a_forward_kernel(self, tiny_graph):
        training = expand_training(tiny_graph)
        forward = [k for k in training.kernels if k.phase is KernelPhase.FORWARD]
        assert len(forward) == tiny_graph.num_operators

    def test_backward_kernels_follow_forward(self, tiny_graph):
        training = expand_training(tiny_graph)
        phases = [k.phase for k in training.kernels]
        last_forward = max(i for i, p in enumerate(phases) if p is KernelPhase.FORWARD)
        first_backward = min(i for i, p in enumerate(phases) if p is KernelPhase.BACKWARD)
        assert first_backward > last_forward - 1  # loss kernel sits at the boundary

    def test_optimizer_kernels_come_last(self, tiny_graph):
        training = expand_training(tiny_graph)
        phases = [k.phase for k in training.kernels]
        first_opt = min(i for i, p in enumerate(phases) if p is KernelPhase.OPTIMIZER)
        assert all(p is KernelPhase.OPTIMIZER for p in phases[first_opt:])

    def test_each_trained_weight_gets_one_optimizer_kernel(self, tiny_graph):
        training = expand_training(tiny_graph)
        optimizer = [k for k in training.kernels if k.phase is KernelPhase.OPTIMIZER]
        assert len(optimizer) == len(training.weight_ids)

    def test_optimizer_can_be_disabled(self, tiny_graph):
        graph = build_tiny_mlp()
        training = expand_training(graph, include_optimizer=False)
        assert all(k.phase is not KernelPhase.OPTIMIZER for k in training.kernels)

    def test_momentum_state_adds_global_tensors(self):
        with_state = expand_training(build_tiny_mlp(), momentum_state=True)
        without_state = expand_training(build_tiny_mlp(), momentum_state=False)
        assert len(with_state.global_tensor_ids()) > len(without_state.global_tensor_ids())

    def test_weight_gradients_exist_for_every_weight(self, tiny_graph):
        training = expand_training(build_tiny_mlp())
        for wid in training.weight_ids:
            assert wid in training.gradient_of

    def test_kernel_indices_are_consecutive(self, tiny_graph):
        training = expand_training(build_tiny_mlp())
        assert [k.index for k in training.kernels] == list(range(training.num_kernels))

    def test_backward_reads_forward_activations(self):
        graph = build_tiny_mlp()
        training = expand_training(graph)
        forward_outputs = {tid for op in graph.operators for tid in op.output_ids}
        backward_inputs = {
            tid
            for k in training.kernels
            if k.phase is KernelPhase.BACKWARD
            for tid in k.input_ids
        }
        assert forward_outputs & backward_inputs

    def test_branchy_graph_expands_and_validates(self, branchy_graph):
        training = expand_training(build_tiny_mlp())
        assert training.num_kernels > 0

    def test_compute_class_propagates_to_kernels(self):
        graph = build_tiny_mlp()
        training = expand_training(graph)
        classes = {k.compute_class for k in training.kernels}
        assert "gemm" in classes
