"""Sharded, resumable sweeps: plan determinism and the resume contract.

The headline guarantee of this layer (and this PR's acceptance criterion): a
figure grid run as N shards into N separate caches, merged, and then resumed
is **bit-identical** to the same grid run serially with a cold cache — and the
resumed run/report sees every cell as a cache hit.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.errors import ConfigurationError, ReproError
from repro.experiments import (
    ResultCache,
    SweepCell,
    SweepPlan,
    SweepRunner,
    SweepSpec,
    combined_spec,
    figure11_end_to_end,
    figure11_spec,
    generate_report,
    jsonify,
    warm_cache,
)

SPEC = figure11_spec("ci", models=("bert",))  # 6 cells, 6 distinct keys


class TestSweepPlan:
    def test_manifest_covers_every_cell_with_keys_and_status(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        plan = SweepPlan.build(SPEC, cache=cache)
        assert [e.cell for e in plan.entries] == list(SPEC.cells)
        assert all(len(e.key) == 64 for e in plan.entries)
        assert plan.counts() == {"cells": 6, "distinct": 6, "warm": 0, "to_execute": 6}

        # Warm one cell: the plan flips exactly that entry to cached.
        SweepRunner(cache=cache).run([SPEC.cells[0]])
        plan = SweepPlan.build(SPEC, cache=cache)
        assert [e.cached for e in plan.entries] == [True] + [False] * 5
        assert plan.counts()["warm"] == 1 and plan.counts()["to_execute"] == 5

    def test_duplicate_cells_share_a_key_and_a_shard(self):
        cell = SPEC.cells[0]
        plan = SweepPlan.build(
            [cell, dataclasses.replace(cell, seed=9), SPEC.cells[1]], shard_count=2
        )
        assert plan.counts() == {"cells": 3, "distinct": 2, "warm": 0, "to_execute": 2}
        assert plan.entries[0].key == plan.entries[1].key
        assert plan.entries[0].shard == plan.entries[1].shard

    def test_partition_is_deterministic_exhaustive_and_disjoint(self, tmp_path):
        for shard_count in (1, 2, 3, 6, 8):
            plan = SweepPlan.build(SPEC, shard_count=shard_count)
            owned = [plan.shard_entries(i) for i in range(shard_count)]
            keys = [e.key for entries in owned for e in entries]
            assert sorted(keys) == sorted(e.key for e in plan.entries)
            assert len(set(keys)) == len(keys) == 6  # each key owned exactly once

            # Cache state must not affect ownership, only hit status.
            cache = ResultCache(tmp_path / f"c{shard_count}")
            SweepRunner(cache=cache).run([SPEC.cells[2]])
            replanned = SweepPlan.build(SPEC, cache=cache, shard_count=shard_count)
            assert [e.shard for e in replanned.entries] == [e.shard for e in plan.entries]

    def test_round_trip(self):
        plan = SweepPlan.build(SPEC, shard_count=3)
        assert SweepPlan.from_dict(plan.to_dict()) == plan

    def test_invalid_shard_arguments_are_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepPlan.build(SPEC, shard_count=0)
        plan = SweepPlan.build(SPEC, shard_count=2)
        with pytest.raises(ConfigurationError):
            plan.shard_entries(2)
        with pytest.raises(ConfigurationError):
            plan.shard_entries(-1)
        runner = SweepRunner()
        with pytest.raises(ConfigurationError):
            runner.run(SPEC, shard_index=0)  # missing shard_count
        with pytest.raises(ConfigurationError):
            runner.run(SPEC, shard_index=3, shard_count=3)

    def test_more_shards_than_cells_leaves_extras_empty(self):
        plan = SweepPlan.build(SPEC, shard_count=10)
        sizes = [len(plan.shard_entries(i)) for i in range(10)]
        assert sum(sizes) == 6 and max(sizes) == 1


class TestShardedRun:
    def test_shard_run_executes_only_owned_cells(self, tmp_path):
        runner = SweepRunner(cache=ResultCache(tmp_path / "c"))
        outs = runner.run(SPEC, shard_index=0, shard_count=3)
        assert runner.last_stats["executed"] == len(outs) == 2
        assert runner.last_stats["skipped"] == 4
        assert runner.last_stats["shard_index"] == 0
        assert runner.last_stats["shard_count"] == 3

    def test_acceptance_three_shards_merged_then_resumed_is_bit_identical(self, tmp_path):
        """The PR's acceptance criterion, end to end."""
        # Serial run with a cold cache: the reference output.
        serial_runner = SweepRunner(cache=ResultCache(tmp_path / "serial"))
        serial = json.dumps(
            jsonify(figure11_end_to_end(scale="ci", models=("bert",), runner=serial_runner)),
            indent=2, sort_keys=True,
        )

        # The same grid as 3 shards into 3 independent caches...
        shard_caches = [ResultCache(tmp_path / f"shard{i}") for i in range(3)]
        for index, cache in enumerate(shard_caches):
            SweepRunner(cache=cache).run(SPEC, shard_index=index, shard_count=3)

        # ...merged into one warm cache...
        merged = ResultCache(tmp_path / "merged")
        assert sum(merged.merge_from(cache) for cache in shard_caches) == 6

        # ...then resumed: zero cells execute, every cell is a cache hit,
        # and the figure is bit-identical to the serial reference.
        resumed_runner = SweepRunner(cache=merged)
        resumed = json.dumps(
            jsonify(figure11_end_to_end(scale="ci", models=("bert",), runner=resumed_runner)),
            indent=2, sort_keys=True,
        )
        assert resumed_runner.last_stats["executed"] == 0
        assert resumed_runner.last_stats["cache_hits"] == 6
        assert all(out.cached for out in resumed_runner.run(SPEC))
        assert resumed == serial

    def test_interrupted_run_resumes_without_recomputation(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        # "Crash" after the first shard of a 2-shard split.
        SweepRunner(cache=cache).run(SPEC, shard_index=0, shard_count=2)
        resumed = SweepRunner(cache=cache)
        outs = resumed.run(SPEC)
        stats = resumed.last_stats
        assert (stats["cells"], stats["cache_hits"], stats["executed"]) == (6, 3, 3)
        assert [out.cell for out in outs] == list(SPEC.cells)


class TestReportFromWarmCache:
    FIGURES = ("2", "3", "4")  # three figures over the same 4 characterization cells

    def test_combined_spec_deduplicates_across_figures(self):
        spec = combined_spec("ci", self.FIGURES)
        plan = SweepPlan.build(spec)
        counts = plan.counts()
        assert counts["cells"] == 12 and counts["distinct"] == 4

    def test_sharded_warm_then_report_marks_every_cell_warm(self, tmp_path):
        # Warm the full report grid as 3 shards into 3 separate caches.
        for index in range(3):
            runner = SweepRunner(cache=ResultCache(tmp_path / f"shard{index}"))
            stats = warm_cache(
                scale="ci", figures=self.FIGURES, runner=runner,
                shard_index=index, shard_count=3,
            )
            assert stats["cache_hits"] == 0

        merged = ResultCache(tmp_path / "merged")
        for index in range(3):
            merged.merge_from(ResultCache(tmp_path / f"shard{index}"))

        # Regenerating every figure from the merged cache is pure resume:
        # the report proves it by marking every provenance row warm.
        out_dir = tmp_path / "report"
        manifest = generate_report(
            scale="ci", figures=self.FIGURES,
            runner=SweepRunner(cache=merged),
            output_dir=out_dir, expect_warm=True,
        )
        assert manifest["totals"]["recomputed"] == 0
        assert manifest["totals"]["warm"] == 12
        for figure in manifest["figures"]:
            assert figure["to_execute"] == 0
            assert all(row["status"] == "warm" for row in figure["provenance"])

        report_md = (out_dir / "report.md").read_text(encoding="utf-8")
        assert "**12 served warm**" in report_md and "**0 recomputed**" in report_md
        assert "recomputed |" in report_md  # summary column present
        manifest_json = json.loads((out_dir / "report.json").read_text(encoding="utf-8"))
        perf_totals = manifest_json["totals"].pop("perf")
        assert manifest_json["totals"] == {
            "cells": 12, "distinct": 12, "warm": 12, "recomputed": 0,
        }
        # Characterization-only figures do no simulation work.
        assert set(perf_totals) == {
            "events_processed", "pages_moved", "fault_events", "eviction_stalls",
        }
        assert all(value == 0 for value in perf_totals.values())
        for fid in self.FIGURES:
            assert (out_dir / f"figure{fid}.json").exists()

    def test_expect_warm_fails_on_a_cold_cache_but_still_writes_artifacts(self, tmp_path):
        out_dir = tmp_path / "report"
        with pytest.raises(ReproError, match="recomputed"):
            generate_report(
                scale="ci", figures=("2",),
                runner=SweepRunner(cache=ResultCache(tmp_path / "cold")),
                output_dir=out_dir, expect_warm=True,
            )
        assert (out_dir / "figure2.json").exists()
        assert (out_dir / "report.md").exists()

    def test_warm_cache_requires_a_cache(self):
        with pytest.raises(ConfigurationError):
            warm_cache(scale="ci", figures=("2",), runner=SweepRunner(cache=None))
