"""Fault injection: a SIGKILLed queue worker must never strand or corrupt cells.

The scenario the work queue exists for: a consumer process (spawned exactly as
an operator would, ``python -m repro queue work``) claims a cell and dies
without warning. The suite asserts the full recovery story — the lease
survives as an expired file, ``requeue_stale`` reclaims the cell, surviving
workers drain the queue — and the acceptance criterion: the final results are
bit-for-bit identical to a serial run with a cold cache.

The worker is made deterministic-killable through the ``REPRO_QUEUE_FAULT_DELAY``
hook (the worker sleeps between leasing and executing), so the SIGKILL always
lands mid-lease rather than racing the executor.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro.experiments import (
    QueueRunner,
    ResultCache,
    SweepRunner,
    WorkQueue,
    figure11_spec,
    jsonify,
)

REPO_ROOT = Path(__file__).resolve().parents[1]

SPEC = figure11_spec("ci", models=("bert",))  # 6 cells, 6 distinct keys


def spawn_worker(queue_dir: Path, cache_dir: Path, *, fault_delay: float,
                 lease_timeout: float, worker_id: str) -> subprocess.Popen:
    """Start a ``repro queue work`` consumer exactly as an operator would."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    env["REPRO_QUEUE_FAULT_DELAY"] = str(fault_delay)
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "queue", "work",
            "--queue-dir", str(queue_dir), "--cache-dir", str(cache_dir),
            "--worker-id", worker_id, "--lease-timeout", str(lease_timeout),
        ],
        env=env,
        cwd=REPO_ROOT,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def wait_for(predicate, timeout: float = 120.0, interval: float = 0.05) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError("condition not reached before timeout")


def test_sigkilled_worker_lease_expires_requeues_and_results_stay_bit_identical(tmp_path):
    # Serial reference: the same grid with a cold cache, no queue involved.
    serial = SweepRunner(cache=ResultCache(tmp_path / "serial")).run(SPEC)
    reference = json.dumps(jsonify([out.payload for out in serial]), indent=2, sort_keys=True)

    queue = WorkQueue(tmp_path / "queue", lease_timeout=5.0)
    cache = ResultCache(tmp_path / "cache")
    counts = queue.enqueue(SPEC.cells, cache=cache)
    assert counts["queued"] == 6

    # A consumer leases a cell and is SIGKILLed mid-lease (the fault-delay
    # hook guarantees it dies between lease and execute, computing nothing).
    victim = spawn_worker(
        tmp_path / "queue", tmp_path / "cache",
        fault_delay=120.0, lease_timeout=5.0, worker_id="victim",
    )
    try:
        wait_for(lambda: queue.status()["leased"] >= 1)
    finally:
        os.kill(victim.pid, signal.SIGKILL)
        victim.wait(timeout=30)

    # The kill stranded exactly one cell in leased/; nothing completed.
    status = queue.status()
    assert status["leased"] == 1 and status["done"] == 0 and status["queued"] == 5
    assert cache.stats()["entries"] == 0

    # Once the lease deadline passes, the cell is reclaimable — force the
    # expiry check instead of sleeping the timeout away. The victim leased
    # the first task in drain order (the smallest cache key).
    requeued = queue.requeue_stale(now=time.time() + 60.0)
    assert requeued == [min(cell.cache_key() for cell in SPEC.cells)]
    status = queue.status()
    assert status["queued"] == 6 and status["leased"] == 0

    # Surviving workers drain the queue, including the reclaimed cell.
    QueueRunner(queue, cache, workers=2).drain()
    status = queue.status()
    assert status["done"] == status["total"] == 6
    assert status["queued"] == status["leased"] == status["failed"] == 0

    # The audit log tells the whole story: the victim's lease, its requeue,
    # and exactly one successful ack per cell.
    events = queue.events()
    assert any(e["event"] == "lease" and e["worker"] == "victim" for e in events)
    assert any(e["event"] == "requeue" and e["worker"] == "victim" for e in events)
    acked = [e["key"] for e in events if e["event"] == "ack"]
    assert sorted(acked) == sorted({cell.cache_key() for cell in SPEC.cells})

    # Acceptance: resuming from the queue-built cache equals the serial run,
    # bit for bit, with zero recomputation.
    resumed_runner = SweepRunner(cache=cache)
    resumed = resumed_runner.run(SPEC)
    assert resumed_runner.last_stats["executed"] == 0
    assert resumed_runner.last_stats["cache_hits"] == 6
    actual = json.dumps(jsonify([out.payload for out in resumed]), indent=2, sort_keys=True)
    assert actual == reference


def test_killed_worker_mid_queue_run_then_fresh_runner_completes(tmp_path):
    """Crash-then-resume at the SweepRunner level: a first queue run loses its
    only worker, a second run over the same queue directory finishes the grid
    and serves everything the first run completed from the cache."""
    queue = WorkQueue(tmp_path / "queue", lease_timeout=5.0)
    cache = ResultCache(tmp_path / "cache")
    queue.enqueue(SPEC.cells, cache=cache)

    # A small per-cell delay paces the victim so the kill reliably lands
    # while the grid is only partially complete.
    victim = spawn_worker(
        tmp_path / "queue", tmp_path / "cache",
        fault_delay=0.3, lease_timeout=5.0, worker_id="victim",
    )
    try:
        # Let the victim really compute a few cells, then kill it mid-run.
        wait_for(lambda: queue.status()["done"] >= 2)
    finally:
        os.kill(victim.pid, signal.SIGKILL)
        victim.wait(timeout=30)

    before = queue.status()
    assert 2 <= before["done"] < 6

    # The dead worker may have died holding a lease; reclaim and resume
    # through the normal SweepRunner queue path (idempotent enqueue skips
    # every key the queue already tracks).
    queue.requeue_stale(now=time.time() + 60.0)
    runner = SweepRunner(
        jobs=2, cache=cache, queue_dir=tmp_path / "queue", lease_timeout=5.0
    )
    outs = runner.run(SPEC)
    assert queue.status()["done"] == 6
    assert [out.cell for out in outs] == list(SPEC.cells)
    # Cells the victim completed before dying were cache hits, not recomputed.
    assert runner.last_stats["cache_hits"] >= before["done"]
