"""Tests for ``repro lint --project`` — the interprocedural analysis engine.

Covers the three layers separately and together: the symbol table
(cross-module name resolution, re-exports, method resolution), the
conservative call graph (project vs external edges, alias awareness,
constructor typing), and the three project rule families — DET005
(interprocedural determinism taint), ASY001 (await-atomicity) and EXC001
(exception contracts) — each with fire/quiet fixture pairs, call-chain
evidence assertions, and seeded-violation trees driven through the CLI.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis.callgraph import CallGraph
from repro.analysis.lint import (
    ModuleSource,
    lint_paths,
    lint_project_sources,
    lint_source,
)
from repro.analysis.symbols import SymbolTable
from repro.cli import main as cli_main
from repro.errors import LintError

REPO_ROOT = Path(__file__).resolve().parents[1]
PACKAGE_DIR = REPO_ROOT / "src" / "repro"


def project(*sources, **kwargs):
    """Lint dedented (package_path, source) pairs in project mode."""
    return lint_project_sources(
        [(path, textwrap.dedent(text)) for path, text in sources], **kwargs
    )


def codes(findings):
    return [f.rule for f in findings]


def build_table(*sources):
    return SymbolTable.build(
        [
            ModuleSource.parse(
                Path(path), text=textwrap.dedent(text), package_path=path
            )
            for path, text in sources
        ]
    )


class TestSymbolTable:
    def test_function_and_method_ids(self):
        table = build_table(
            (
                "experiments/queue.py",
                """
                class WorkQueue:
                    def lease(self):
                        return 1

                def helper():
                    return 2
                """,
            )
        )
        assert "experiments/queue.py::WorkQueue.lease" in table.functions
        assert "experiments/queue.py::helper" in table.functions
        assert table.functions["experiments/queue.py::WorkQueue.lease"].cls == "WorkQueue"

    def test_resolves_from_import_and_alias(self):
        table = build_table(
            ("errors.py", "class ReproError(Exception):\n    pass\n"),
            (
                "cli.py",
                "from .errors import ReproError as RE\n\ndef f():\n    raise RE()\n",
            ),
        )
        kind, symbol = table.resolve_dotted("RE", "cli.py") or (None, None)
        # un-aliased name: the caller resolves through the alias map first;
        # simulate that by resolving what the alias map yields.
        kind, symbol = table.resolve_dotted(".errors.ReproError", "cli.py")
        assert kind == "class" and symbol.cid == "errors.py::ReproError"

    def test_resolves_reexport_through_init(self):
        table = build_table(
            ("experiments/sweep.py", "class SweepRunner:\n    pass\n"),
            ("experiments/__init__.py", "from .sweep import SweepRunner\n"),
            ("cli.py", "from .experiments import SweepRunner\n"),
        )
        kind, symbol = table.resolve_dotted("experiments.SweepRunner", "cli.py")
        assert kind == "class" and symbol.cid == "experiments/sweep.py::SweepRunner"

    def test_bare_name_binds_to_defining_module_first(self):
        table = build_table(
            (
                "errors.py",
                """
                class ReproError(Exception):
                    pass

                class ConfigurationError(ReproError):
                    pass
                """,
            )
        )
        klass = table.classes["errors.py::ConfigurationError"]
        assert klass.bases == ["errors.py::ReproError"]
        assert "errors.py::ReproError" in table.class_ancestry(klass)

    def test_method_resolution_walks_project_bases(self):
        table = build_table(
            (
                "experiments/backend.py",
                """
                class QueueBackend:
                    def enqueue(self):
                        return 0
                """,
            ),
            (
                "experiments/queue.py",
                """
                from .backend import QueueBackend

                class WorkQueue(QueueBackend):
                    pass
                """,
            ),
        )
        queue = table.classes["experiments/queue.py::WorkQueue"]
        method = table.resolve_method(queue, "enqueue")
        assert method is not None
        assert method.fid == "experiments/backend.py::QueueBackend.enqueue"

    def test_attr_types_from_constructor_assignment(self):
        table = build_table(
            ("experiments/queue.py", "class WorkQueue:\n    pass\n"),
            (
                "experiments/server.py",
                """
                from .queue import WorkQueue

                class Server:
                    def __init__(self):
                        self.queue = WorkQueue()
                """,
            ),
        )
        server = table.classes["experiments/server.py::Server"]
        assert server.attr_types == {"queue": "experiments/queue.py::WorkQueue"}


class TestCallGraph:
    def _graph(self, *sources):
        table = build_table(*sources)
        return table, CallGraph.build(table)

    def test_project_edge_through_from_import(self):
        table, graph = self._graph(
            ("experiments/helper.py", "def stamp():\n    return 1\n"),
            (
                "sim/engine.py",
                "from ..experiments.helper import stamp\n\ndef step():\n    return stamp()\n",
            ),
        )
        edges = graph.calls_from("sim/engine.py::step")
        assert [e.callee for e in edges] == ["experiments/helper.py::stamp"]
        assert not edges[0].external
        assert graph.calls_to("experiments/helper.py::stamp") == edges

    def test_external_edge_records_dotted_target(self):
        _, graph = self._graph(
            ("experiments/helper.py", "import time\n\ndef stamp():\n    return time.time()\n"),
        )
        externals = list(graph.external_edges())
        assert [e.callee for e in externals] == ["time.time"]
        assert externals[0].external

    def test_self_method_and_local_constructor_edges(self):
        table, graph = self._graph(
            (
                "experiments/queue.py",
                """
                class WorkQueue:
                    def lease(self):
                        return self._scan()

                    def _scan(self):
                        return 0

                def drive():
                    q = WorkQueue()
                    return q.lease()
                """,
            ),
        )
        lease_edges = graph.calls_from("experiments/queue.py::WorkQueue.lease")
        assert [e.callee for e in lease_edges] == ["experiments/queue.py::WorkQueue._scan"]
        drive_targets = {e.callee for e in graph.calls_from("experiments/queue.py::drive")}
        assert "experiments/queue.py::WorkQueue.lease" in drive_targets

    def test_dynamic_dispatch_produces_no_edge(self):
        _, graph = self._graph(
            (
                "experiments/helper.py",
                "def run(callback):\n    return callback()\n",
            ),
        )
        assert graph.calls_from("experiments/helper.py::run") == []


LAUNDER_HELPER = (
    "experiments/helper.py",
    """
    import time

    def stamp():
        return _inner()

    def _inner():
        return time.time()
    """,
)


class TestDET005InterproceduralTaint:
    def test_fires_on_cross_module_launder_with_chain_evidence(self):
        findings = project(
            (
                "sim/engine.py",
                "from ..experiments.helper import stamp\n\ndef step():\n    return stamp()\n",
            ),
            LAUNDER_HELPER,
        )
        assert codes(findings) == ["DET005"]
        finding = findings[0]
        assert finding.package_path == "sim/engine.py"
        assert "time.time" in finding.message
        assert len(finding.evidence) == 3
        assert finding.evidence[0].startswith("sim/engine.py:4 step ->")
        assert finding.evidence[-1].endswith("time.time()")

    def test_quiet_when_helper_is_pure(self):
        findings = project(
            (
                "sim/engine.py",
                "from ..experiments.helper import stamp\n\ndef step():\n    return stamp()\n",
            ),
            ("experiments/helper.py", "def stamp():\n    return 7\n"),
        )
        assert findings == []

    def test_quiet_when_caller_is_outside_deterministic_layers(self):
        findings = project(
            (
                "experiments/runner.py",
                "from .helper import stamp\n\ndef run():\n    return stamp()\n",
            ),
            LAUNDER_HELPER,
        )
        assert findings == []

    def test_entropy_inside_det_layers_stays_det001_territory(self):
        # A direct call inside sim/ is DET001's finding; DET005 must not
        # double-report it.
        findings = project(
            ("sim/clock.py", "import time\n\ndef tick():\n    return time.time()\n"),
            ("sim/engine.py", "from .clock import tick\n\ndef step():\n    return tick()\n"),
        )
        assert codes(findings) == ["DET001"]

    def test_det001_allowlisted_seed_does_not_taint(self):
        findings = project(
            (
                "sim/engine.py",
                "from .executor import phase_time\n\ndef step():\n    return phase_time()\n",
            ),
            (
                "sim/executor.py",
                "import time\n\ndef phase_time():\n    return time.perf_counter()\n",
            ),
        )
        assert findings == []

    def test_suppressed_seed_does_not_taint(self):
        findings = project(
            (
                "sim/engine.py",
                "from ..experiments.helper import stamp\n\ndef step():\n    return stamp()\n",
            ),
            (
                "experiments/helper.py",
                "import time\n\ndef stamp():\n    return time.time()  # repro-lint: disable=DET005 -- test fixture\n",
            ),
        )
        assert findings == []

    def test_suppression_on_frontier_call_line(self):
        findings = project(
            (
                "sim/engine.py",
                "from ..experiments.helper import stamp\n\ndef step():\n    return stamp()  # repro-lint: disable=DET005 -- test fixture\n",
            ),
            LAUNDER_HELPER,
        )
        assert findings == []

    def test_selecting_det005_without_project_mode_is_an_error(self):
        with pytest.raises(LintError, match="--project"):
            lint_source("x = 1\n", package_path="sim/engine.py", select=["DET005"])


class TestASY001AwaitAtomicity:
    def test_fires_on_read_await_write_race(self):
        findings = project(
            (
                "experiments/server.py",
                """
                class Server:
                    async def stop(self):
                        if self._server is not None:
                            self._server.close()
                            await self._server.wait_closed()
                            self._server = None
                """,
            ),
        )
        assert codes(findings) == ["ASY001"]
        finding = findings[0]
        assert "self._server" in finding.message
        assert len(finding.evidence) == 3
        assert "reads self._server" in finding.evidence[0]
        assert "await" in finding.evidence[1]
        assert "writes self._server" in finding.evidence[2]

    def test_quiet_on_claim_before_await_idiom(self):
        findings = project(
            (
                "experiments/server.py",
                """
                class Server:
                    async def stop(self):
                        server, self._server = self._server, None
                        if server is not None:
                            server.close()
                            await server.wait_closed()
                """,
            ),
        )
        assert findings == []

    def test_fires_on_augmented_assign_across_await(self):
        findings = project(
            (
                "experiments/server.py",
                """
                class Server:
                    async def bump(self):
                        self.count += await self._next()
                """,
            ),
        )
        assert codes(findings) == ["ASY001"]

    def test_quiet_when_read_happens_after_the_await(self):
        findings = project(
            (
                "experiments/server.py",
                """
                class Server:
                    async def refresh(self):
                        value = await self._fetch()
                        self.total = self.total + value
                """,
            ),
        )
        assert findings == []

    def test_fires_when_stale_read_travels_through_a_local(self):
        findings = project(
            (
                "experiments/server.py",
                """
                class Server:
                    async def refresh(self):
                        current = self.total
                        extra = await self._fetch()
                        self.total = current + extra
                """,
            ),
        )
        assert codes(findings) == ["ASY001"]

    def test_fires_on_module_global_with_global_declaration(self):
        findings = project(
            (
                "experiments/state.py",
                """
                COUNTER = 0

                async def bump(fetch):
                    global COUNTER
                    base = COUNTER
                    delta = await fetch()
                    COUNTER = base + delta
                """,
            ),
        )
        assert codes(findings) == ["ASY001"]
        assert "COUNTER" in findings[0].message

    def test_quiet_on_independent_write_after_await(self):
        # start()-style: the write does not depend on the pre-await read.
        findings = project(
            (
                "experiments/server.py",
                """
                class Server:
                    async def start(self):
                        if self.port == 0:
                            pass
                        server = await self._bind()
                        self.server = server
                """,
            ),
        )
        assert findings == []

    def test_inline_suppression_on_write_line(self):
        findings = project(
            (
                "experiments/server.py",
                """
                class Server:
                    async def stop(self):
                        if self._server is not None:
                            await self._server.wait_closed()
                            self._server = None  # repro-lint: disable=ASY001 -- single-writer by construction
                """,
            ),
        )
        assert findings == []


EXC_ERRORS = (
    "errors.py",
    """
    class ReproError(Exception):
        pass

    class ConfigurationError(ReproError):
        pass
    """,
)


class TestEXC001ExceptionContract:
    def test_fires_on_valueerror_escaping_cli_handler_through_helper(self):
        findings = project(
            EXC_ERRORS,
            (
                "bench.py",
                """
                def run(args):
                    if not args:
                        raise ValueError("empty")
                    return 1
                """,
            ),
            (
                "cli.py",
                "from .bench import run\n\ndef _cmd_bench(args):\n    return run(args)\n",
            ),
        )
        assert codes(findings) == ["EXC001"]
        finding = findings[0]
        assert finding.package_path == "cli.py"
        assert "ValueError" in finding.message and "_cmd_bench" in finding.message
        assert finding.evidence[0].startswith("cli.py:")
        assert finding.evidence[-1].endswith("raises ValueError")

    def test_quiet_when_only_repro_errors_escape(self):
        findings = project(
            EXC_ERRORS,
            (
                "cli.py",
                """
                from .errors import ConfigurationError

                def _cmd_bench(args):
                    if not args:
                        raise ConfigurationError("empty")
                    return 0
                """,
            ),
        )
        assert findings == []

    def test_quiet_when_handler_catches_the_leak(self):
        findings = project(
            EXC_ERRORS,
            (
                "bench.py",
                "def run(args):\n    raise ValueError('boom')\n",
            ),
            (
                "cli.py",
                """
                from .bench import run
                from .errors import ConfigurationError

                def _cmd_bench(args):
                    try:
                        return run(args)
                    except ValueError as exc:
                        raise ConfigurationError(str(exc))
                """,
            ),
        )
        assert findings == []

    def test_handler_subtraction_respects_builtin_hierarchy(self):
        # `except LookupError` must catch a propagated KeyError.
        findings = project(
            EXC_ERRORS,
            ("store.py", "def get(d, k):\n    raise KeyError(k)\n"),
            (
                "cli.py",
                """
                from .store import get

                def _cmd_show(args):
                    try:
                        return get({}, args)
                    except LookupError:
                        return 0
                """,
            ),
        )
        assert findings == []

    def test_try_nested_inside_if_still_guards_its_calls(self):
        findings = project(
            EXC_ERRORS,
            ("store.py", "def get(d, k):\n    raise KeyError(k)\n"),
            (
                "cli.py",
                """
                from .store import get

                def _cmd_show(args):
                    if args:
                        try:
                            return get({}, args)
                        except KeyError:
                            return 0
                    return 1
                """,
            ),
        )
        assert findings == []

    def test_fires_on_queue_backend_implementation(self):
        findings = project(
            EXC_ERRORS,
            (
                "experiments/backend.py",
                """
                class QueueBackend:
                    pass
                """,
            ),
            (
                "experiments/queue.py",
                """
                from .backend import QueueBackend

                class WorkQueue(QueueBackend):
                    def lease(self, worker):
                        if not worker:
                            raise RuntimeError("no worker")
                        return None
                """,
            ),
        )
        assert codes(findings) == ["EXC001"]
        assert "WorkQueue.lease" in findings[0].message

    def test_private_methods_and_control_flow_exceptions_are_exempt(self):
        findings = project(
            EXC_ERRORS,
            ("experiments/backend.py", "class QueueBackend:\n    pass\n"),
            (
                "experiments/queue.py",
                """
                from .backend import QueueBackend

                class WorkQueue(QueueBackend):
                    def run(self):
                        raise KeyboardInterrupt()

                    def _scan(self):
                        raise ValueError("internal")
                """,
            ),
        )
        assert findings == []

    def test_unresolvable_except_clause_is_conservative(self):
        # `except json.JSONDecodeError` cannot be resolved statically; the
        # handler must be treated as catching everything rather than flagging
        # an exception that is in fact caught.
        findings = project(
            EXC_ERRORS,
            ("store.py", "def get(d, k):\n    raise KeyError(k)\n"),
            (
                "cli.py",
                """
                import json

                from .store import get

                def _cmd_show(args):
                    try:
                        return get({}, args)
                    except json.JSONDecodeError:
                        return 0
                """,
            ),
        )
        assert findings == []


class TestProjectCLI:
    def _seeded_tree(self, tmp_path):
        root = tmp_path / "repro"
        (root / "sim").mkdir(parents=True)
        (root / "experiments").mkdir()
        (root / "errors.py").write_text(
            "class ReproError(Exception):\n    pass\n"
        )
        (root / "sim" / "engine.py").write_text(
            "from ..experiments.helper import stamp\n\ndef step():\n    return stamp()\n"
        )
        (root / "experiments" / "helper.py").write_text(
            "import time\n\ndef stamp():\n    return time.time()\n"
        )
        (root / "experiments" / "server.py").write_text(
            textwrap.dedent(
                """
                class QueueServer:
                    async def ack(self, key):
                        pending = self.pending
                        await self.queue.ack(key)
                        self.pending = pending - 1
                """
            )
        )
        (root / "cli.py").write_text(
            "def _cmd_run(args):\n    raise ValueError('bad args')\n"
        )
        return root

    def test_seeded_violations_reported_with_evidence_in_json(self, tmp_path, capsys):
        tree = self._seeded_tree(tmp_path)
        assert cli_main(["lint", str(tree), "--project", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        by_rule = {f["rule"]: f for f in payload["findings"]}
        assert {"DET005", "ASY001", "EXC001"} <= set(by_rule)
        assert payload["summary"]["project"] is True
        for rule in ("DET005", "ASY001", "EXC001"):
            assert by_rule[rule]["evidence"], rule
            assert by_rule[rule]["fingerprint"]
        assert any("time.time()" in hop for hop in by_rule["DET005"]["evidence"])
        assert any("await" in hop for hop in by_rule["ASY001"]["evidence"])
        assert by_rule["EXC001"]["evidence"][-1].endswith("raises ValueError")

    def test_project_rules_inactive_without_flag(self, tmp_path, capsys):
        tree = self._seeded_tree(tmp_path)
        (tree / "experiments" / "helper.py").write_text(
            "def stamp():\n    return 7\n"
        )
        assert cli_main(["lint", str(tree)]) == 0

    def test_selecting_project_rule_without_flag_is_usage_error(self, tmp_path, capsys):
        tree = self._seeded_tree(tmp_path)
        assert cli_main(["lint", str(tree), "--rule", "DET005"]) == 2
        assert "--project" in capsys.readouterr().err

    def test_json_summary_reports_resolved_baseline_path(self, tmp_path, capsys):
        tree = self._seeded_tree(tmp_path)
        # one per-module violation to grandfather (tick is never called, so
        # it seeds no DET005 chain)
        (tree / "sim" / "clock.py").write_text(
            "import time\n\ndef tick():\n    return time.time()\n"
        )
        baseline = tmp_path / "baseline.json"
        assert cli_main(["lint", str(tree), "--update-baseline",
                         "--baseline", str(baseline)]) == 0
        capsys.readouterr()
        assert cli_main(["lint", str(tree), "--project", "--format", "json",
                         "--baseline", str(baseline)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["baseline"] == str(baseline)
        # the non-project run's findings are grandfathered; the project rules'
        # findings are new
        assert payload["summary"]["baselined"] >= 1
        assert {f["rule"] for f in payload["findings"]} == {
            "DET005", "ASY001", "EXC001"
        }

    def test_syntax_error_exits_2_and_blocks_baseline_update(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "broken.py"
        bad.parent.mkdir()
        bad.write_text("def broken(:\n")
        assert cli_main(["lint", str(bad.parent)]) == 2
        captured = capsys.readouterr()
        assert "E001" in captured.out
        assert cli_main(["lint", str(bad.parent), "--update-baseline"]) == 2
        assert "refusing" in capsys.readouterr().err

    def test_missing_path_exits_2_with_structured_error(self, tmp_path, capsys):
        assert cli_main(["lint", str(tmp_path / "nope"), "--format", "json"]) == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"] == []
        assert [e["rule"] for e in payload["errors"]] == ["E002"]
        assert payload["summary"]["errors"] == 1


class TestProjectSelfClean:
    """The acceptance gate: src/repro passes its own interprocedural rules."""

    def test_src_repro_is_project_clean_with_empty_baseline(self):
        findings = lint_paths([PACKAGE_DIR], project=True)
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_cli_project_run_is_clean(self, capsys):
        assert cli_main(["lint", str(PACKAGE_DIR), "--project"]) == 0
