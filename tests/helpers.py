"""Shared graph builders used by tests (importable; never import from conftest).

Living in a regular module rather than ``conftest.py`` keeps test imports
working no matter which conftest pytest happens to bind to the top-level
``conftest`` module name when collecting from the repository root.
"""

from __future__ import annotations

from repro.graph import DataflowGraph
from repro.graph.tensor import TensorKind
from repro.models.builder import ModelBuilder


def build_tiny_mlp(batch_size: int = 4, hidden: int = 64, layers: int = 3) -> DataflowGraph:
    """A minimal multi-layer perceptron used across unit tests."""
    builder = ModelBuilder(name=f"tiny-mlp-{batch_size}", batch_size=batch_size)
    x = builder.graph.add_tensor("input", (batch_size, hidden), TensorKind.INPUT)
    for _ in range(layers):
        x = builder.linear(x, hidden)
        x = builder.relu(x)
    builder.classifier(x, 10)
    return builder.build()


def build_branchy_graph(batch_size: int = 2) -> DataflowGraph:
    """A graph with a residual branch, exercising join/branch lifetimes."""
    builder = ModelBuilder(name=f"branchy-{batch_size}", batch_size=batch_size)
    x = builder.input_image(3, 16, 16)
    a = builder.conv2d(x, 8, 3)
    a = builder.batchnorm(a)
    b = builder.conv2d(a, 8, 3)
    b = builder.batchnorm(b)
    joined = builder.add(a, b)
    joined = builder.relu(joined)
    pooled = builder.global_pool(joined)
    builder.classifier(pooled, 5)
    return builder.build()
