"""Shared fixtures: tiny hand-built graphs and session-cached CI workloads."""

from __future__ import annotations

import pytest

from repro.config import GB, MB, SystemConfig, ci_config, paper_config
from repro.core.vitality import TensorVitalityAnalyzer
from repro.experiments.harness import build_workload
from repro.graph import DataflowGraph, expand_training
from repro.graph.tensor import TensorKind
from repro.graph.operator import OpType
from repro.models.builder import ModelBuilder
from repro.profiling import profile_training_graph


def build_tiny_mlp(batch_size: int = 4, hidden: int = 64, layers: int = 3) -> DataflowGraph:
    """A minimal multi-layer perceptron used across unit tests."""
    builder = ModelBuilder(name=f"tiny-mlp-{batch_size}", batch_size=batch_size)
    x = builder.graph.add_tensor("input", (batch_size, hidden), TensorKind.INPUT)
    for _ in range(layers):
        x = builder.linear(x, hidden)
        x = builder.relu(x)
    builder.classifier(x, 10)
    return builder.build()


def build_branchy_graph(batch_size: int = 2) -> DataflowGraph:
    """A graph with a residual branch, exercising join/branch lifetimes."""
    builder = ModelBuilder(name=f"branchy-{batch_size}", batch_size=batch_size)
    x = builder.input_image(3, 16, 16)
    a = builder.conv2d(x, 8, 3)
    a = builder.batchnorm(a)
    b = builder.conv2d(a, 8, 3)
    b = builder.batchnorm(b)
    joined = builder.add(a, b)
    joined = builder.relu(joined)
    pooled = builder.global_pool(joined)
    builder.classifier(pooled, 5)
    return builder.build()


@pytest.fixture(scope="session")
def tiny_graph() -> DataflowGraph:
    return build_tiny_mlp()


@pytest.fixture(scope="session")
def branchy_graph() -> DataflowGraph:
    return build_branchy_graph()


@pytest.fixture(scope="session")
def small_config() -> SystemConfig:
    """A deliberately tiny system so the tiny MLP still overflows GPU memory."""
    return paper_config().with_gpu_memory(192 * 1024).with_host_memory(256 * 1024)


@pytest.fixture(scope="session")
def paper_cfg() -> SystemConfig:
    return paper_config()


@pytest.fixture(scope="session")
def ci_cfg() -> SystemConfig:
    return ci_config()


@pytest.fixture(scope="session")
def tiny_training(tiny_graph, paper_cfg):
    """Profiled training iteration of the tiny MLP."""
    return profile_training_graph(expand_training(tiny_graph), paper_cfg)


@pytest.fixture(scope="session")
def tiny_report(tiny_training):
    return TensorVitalityAnalyzer(tiny_training).analyze()


@pytest.fixture(scope="session")
def bert_ci_workload():
    """A CI-scale BERT workload whose footprint exceeds its (scaled) GPU memory."""
    return build_workload("bert", scale="ci")


@pytest.fixture(scope="session")
def resnet_ci_workload():
    return build_workload("resnet152", scale="ci")
