"""Shared fixtures: tiny hand-built graphs and session-cached CI workloads."""

from __future__ import annotations

import pytest

from repro.config import SystemConfig, ci_config, paper_config
from repro.core.vitality import TensorVitalityAnalyzer
from repro.experiments import ResultCache, SweepRunner
from repro.experiments.harness import build_workload
from repro.graph import DataflowGraph, expand_training
from repro.profiling import profile_training_graph

from helpers import build_branchy_graph, build_tiny_mlp


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite tests/golden/*.json from the current figure/table outputs",
    )


@pytest.fixture(scope="session")
def update_goldens(request) -> bool:
    """Whether golden files should be rewritten instead of compared."""
    return request.config.getoption("--update-goldens")


@pytest.fixture(scope="session")
def golden_runner(tmp_path_factory) -> SweepRunner:
    """One cached runner shared by the golden + tenancy-equivalence suites:
    figures share most of their cells (12-14 are subsets of 11's grid), so
    later experiments render almost entirely from the session cache."""
    return SweepRunner(cache=ResultCache(tmp_path_factory.mktemp("golden-cache")))


@pytest.fixture(scope="session")
def tiny_graph() -> DataflowGraph:
    return build_tiny_mlp()


@pytest.fixture(scope="session")
def branchy_graph() -> DataflowGraph:
    return build_branchy_graph()


@pytest.fixture(scope="session")
def small_config() -> SystemConfig:
    """A deliberately tiny system so the tiny MLP still overflows GPU memory."""
    return paper_config().with_gpu_memory(192 * 1024).with_host_memory(256 * 1024)


@pytest.fixture(scope="session")
def paper_cfg() -> SystemConfig:
    return paper_config()


@pytest.fixture(scope="session")
def ci_cfg() -> SystemConfig:
    return ci_config()


@pytest.fixture(scope="session")
def tiny_training(tiny_graph, paper_cfg):
    """Profiled training iteration of the tiny MLP."""
    return profile_training_graph(expand_training(tiny_graph), paper_cfg)


@pytest.fixture(scope="session")
def tiny_report(tiny_training):
    return TensorVitalityAnalyzer(tiny_training).analyze()


@pytest.fixture(scope="session")
def bert_ci_workload():
    """A CI-scale BERT workload whose footprint exceeds its (scaled) GPU memory."""
    return build_workload("bert", scale="ci")


@pytest.fixture(scope="session")
def resnet_ci_workload():
    return build_workload("resnet152", scale="ci")
