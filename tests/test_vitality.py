"""Tests for the tensor vitality analyzer (§4.2) and characterization (§3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import characterize_workload, memory_consumption_profile
from repro.core.vitality import InactivePeriod, TensorVitalityAnalyzer, analyze_vitality
from repro.errors import SchedulingError
from repro.graph import expand_training
from repro.profiling import profile_training_graph
from repro.config import paper_config

from helpers import build_tiny_mlp


class TestAnalyzerBasics:
    def test_requires_profiled_graph(self):
        training = expand_training(build_tiny_mlp())
        with pytest.raises(SchedulingError):
            TensorVitalityAnalyzer(training)

    def test_every_used_tensor_has_a_usage(self, tiny_training, tiny_report):
        used = {tid for k in tiny_training.kernels for tid in k.tensor_ids}
        assert set(tiny_report.usages) == used

    def test_use_slots_are_sorted_and_unique(self, tiny_report):
        for usage in tiny_report.usages.values():
            slots = list(usage.use_slots)
            assert slots == sorted(set(slots))

    def test_birth_not_after_death(self, tiny_report):
        for usage in tiny_report.usages.values():
            assert usage.birth_slot <= usage.death_slot

    def test_globals_are_weights_and_state(self, tiny_training, tiny_report):
        for usage in tiny_report.usages.values():
            tensor = tiny_training.tensor(usage.tensor_id)
            assert usage.is_global == tensor.is_global


class TestInactivePeriods:
    def test_period_boundaries_are_uses(self, tiny_report):
        for period in tiny_report.periods:
            if period.wraps_around:
                continue
            usage = tiny_report.usage(period.tensor_id)
            assert period.start_slot in usage.use_slots
            assert period.end_slot in usage.use_slots

    def test_periods_have_gap(self, tiny_report):
        for period in tiny_report.periods:
            if not period.wraps_around:
                assert period.end_slot - period.start_slot > 1

    def test_global_tensors_get_wraparound_periods(self, tiny_training, tiny_report):
        wrap_tensors = {p.tensor_id for p in tiny_report.periods if p.wraps_around}
        global_ids = tiny_training.global_tensor_ids()
        used_globals = global_ids & set(tiny_report.usages)
        assert wrap_tensors <= used_globals
        assert wrap_tensors  # weights do sit idle between iterations

    def test_intermediates_have_no_wraparound(self, tiny_training, tiny_report):
        for period in tiny_report.periods:
            if period.wraps_around:
                assert tiny_training.tensor(period.tensor_id).is_global

    def test_forward_activations_have_long_periods(self, tiny_report):
        """Activations saved for backward create the long inactive periods of O2."""
        longest = max(tiny_report.period_duration(p) for p in tiny_report.periods)
        total = tiny_report.slot_end_times[-1]
        assert longest > 0.3 * total

    def test_period_durations_are_nonnegative(self, tiny_report):
        for period in tiny_report.periods:
            assert tiny_report.period_duration(period) >= 0.0

    def test_invalid_period_rejected(self):
        with pytest.raises(SchedulingError):
            InactivePeriod(tensor_id=0, size_bytes=16, start_slot=5, end_slot=5)
        with pytest.raises(SchedulingError):
            InactivePeriod(tensor_id=0, size_bytes=0, start_slot=1, end_slot=5)

    def test_free_slot_count(self):
        period = InactivePeriod(tensor_id=0, size_bytes=16, start_slot=2, end_slot=6)
        assert period.num_free_slots == 3
        assert list(period.free_slots) == [3, 4, 5]


class TestPressureCurves:
    def test_baseline_pressure_bounds(self, tiny_report):
        assert tiny_report.peak_pressure <= tiny_report.graph.tensors.total_bytes
        assert tiny_report.peak_pressure >= tiny_report.peak_active_bytes

    def test_active_bytes_match_kernel_working_sets(self, tiny_training, tiny_report):
        for kernel in tiny_training.kernels:
            expected = sum(
                tiny_training.tensor(tid).size_bytes for tid in kernel.tensor_ids
            )
            assert tiny_report.active_bytes[kernel.index] == pytest.approx(expected)

    def test_pressure_never_below_active(self, tiny_report):
        assert np.all(tiny_report.baseline_pressure + 1e-9 >= tiny_report.active_bytes)

    def test_footprint_ratio(self, tiny_report):
        ratio = tiny_report.memory_footprint_ratio(int(tiny_report.peak_pressure))
        assert ratio == pytest.approx(1.0)
        with pytest.raises(SchedulingError):
            tiny_report.memory_footprint_ratio(0)

    def test_analyze_vitality_helper(self, tiny_training):
        assert analyze_vitality(tiny_training).num_slots == tiny_training.num_kernels


class TestCharacterization:
    """The §3 observations must hold for the synthetic workloads too."""

    def test_o1_active_fraction_is_small(self, bert_ci_workload):
        char = characterize_workload(bert_ci_workload.report)
        assert char.mean_active_fraction < 0.10

    def test_o2_many_long_inactive_periods(self, bert_ci_workload):
        char = characterize_workload(bert_ci_workload.report)
        ssd_latency = bert_ci_workload.config.ssd.read_latency
        assert char.fraction_of_periods_longer_than(ssd_latency) > 0.5

    def test_o3_majority_of_periods_hide_a_swap(self, bert_ci_workload):
        char = characterize_workload(bert_ci_workload.report)
        assert char.fraction_hideable(20e-6) > 0.6

    def test_memory_profile_normalised_to_peak(self, bert_ci_workload):
        total, active = memory_consumption_profile(bert_ci_workload.report)
        assert total.max() == pytest.approx(1.0)
        assert np.all(active <= total + 1e-9)

    def test_scatter_shapes_match(self, resnet_ci_workload):
        char = characterize_workload(resnet_ci_workload.report)
        assert char.inactive_period_seconds.shape == char.inactive_period_bytes.shape
        assert char.inactive_period_bytes.min() > 0


@st.composite
def _usage_patterns(draw):
    """Random tensor-use patterns: (num_kernels, use slots per tensor)."""
    num_kernels = draw(st.integers(min_value=3, max_value=40))
    num_tensors = draw(st.integers(min_value=1, max_value=8))
    uses = []
    for _ in range(num_tensors):
        slots = draw(
            st.lists(
                st.integers(min_value=0, max_value=num_kernels - 1),
                min_size=1,
                max_size=6,
                unique=True,
            )
        )
        uses.append(sorted(slots))
    return num_kernels, uses


class TestVitalityProperties:
    @given(_usage_patterns())
    @settings(max_examples=60, deadline=None)
    def test_periods_partition_gaps(self, pattern):
        """For any use pattern, periods exactly cover the >1-slot gaps between uses."""
        from repro.graph.kernel import Kernel, KernelPhase
        from repro.graph.tensor import TensorKind, TensorSet
        from repro.graph.training import TrainingGraph

        num_kernels, uses = pattern
        tensors = TensorSet()
        ids = [tensors.add(f"t{i}", (1024,), TensorKind.ACTIVATION).tensor_id for i in range(len(uses))]
        touched_by_slot = {s: [] for s in range(num_kernels)}
        for tid, slots in zip(ids, uses):
            for s in slots:
                touched_by_slot[s].append(tid)
        anchor = tensors.add("anchor", (4,), TensorKind.ACTIVATION)
        kernels = [
            Kernel(
                index=s,
                name=f"k{s}",
                phase=KernelPhase.FORWARD,
                op_id=s,
                input_ids=tuple(touched_by_slot[s]),
                output_ids=(anchor.tensor_id,) if not touched_by_slot[s] else tuple(touched_by_slot[s]),
                duration=1e-3,
            )
            for s in range(num_kernels)
        ]
        graph = TrainingGraph(name="prop", batch_size=1, tensors=tensors, kernels=kernels)
        report = TensorVitalityAnalyzer(graph).analyze()

        for tid, slots in zip(ids, uses):
            expected_gaps = [
                (a, b) for a, b in zip(slots, slots[1:]) if b - a > 1
            ]
            got = [
                (p.start_slot, p.end_slot)
                for p in report.periods_for(tid)
                if not p.wraps_around
            ]
            assert sorted(got) == sorted(expected_gaps)
