"""Tests for the model zoo and the layer builder."""

import pytest

from repro.errors import ModelError
from repro.graph import expand_training
from repro.graph.tensor import TensorKind
from repro.models import (
    ModelBuilder,
    available_models,
    build_model,
    model_description,
)
from repro.models.registry import FIGURE11_BATCH_SIZES, normalize_model_name


class TestRegistry:
    def test_all_five_paper_models_available(self):
        assert set(available_models()) == {
            "bert", "vit", "inceptionv3", "resnet152", "senet154",
        }

    @pytest.mark.parametrize("name", ["BERT", "ViT", "ResNet-152", "resnet", "SENet_154", "inception"])
    def test_name_normalisation(self, name):
        assert normalize_model_name(name) in available_models()

    def test_unknown_model_rejected(self):
        with pytest.raises(ModelError):
            normalize_model_name("alexnet")

    def test_descriptions_cover_table1(self):
        for model in available_models():
            description = model_description(model)
            assert {"display", "source", "dataset"} <= set(description)

    def test_figure11_batch_sizes_match_paper(self):
        assert FIGURE11_BATCH_SIZES == {
            "bert": 256,
            "vit": 1280,
            "inceptionv3": 1536,
            "resnet152": 1280,
            "senet154": 1024,
        }


@pytest.mark.parametrize("model", ["bert", "vit", "inceptionv3", "resnet152", "senet154"])
class TestModelConstruction:
    def test_builds_and_validates(self, model):
        graph = build_model(model, batch_size=2)
        graph.validate()
        assert graph.num_operators > 10

    def test_batch_size_is_first_dimension(self, model):
        graph = build_model(model, batch_size=3)
        activations = [t for t in graph.tensors if t.kind is TensorKind.ACTIVATION]
        assert activations
        assert all(t.shape[0] == 3 for t in activations if len(t.shape) > 1)

    def test_has_trainable_weights(self, model):
        graph = build_model(model, batch_size=2)
        assert graph.total_weight_bytes() > 0

    def test_footprint_grows_with_batch_size(self, model):
        small = build_model(model, batch_size=2)
        large = build_model(model, batch_size=4)
        small_act = sum(t.size_bytes for t in small.tensors if t.kind is TensorKind.ACTIVATION)
        large_act = sum(t.size_bytes for t in large.tensors if t.kind is TensorKind.ACTIVATION)
        assert large_act > 1.5 * small_act

    def test_weights_do_not_grow_with_batch_size(self, model):
        small = build_model(model, batch_size=2)
        large = build_model(model, batch_size=8)
        assert small.total_weight_bytes() == large.total_weight_bytes()

    def test_expands_to_training_iteration(self, model):
        graph = build_model(model, batch_size=2)
        training = expand_training(graph)
        assert training.num_kernels > graph.num_operators


class TestKernelCounts:
    """Kernel counts should be of the same order as Table 1 of the paper."""

    EXPECTED = {
        "bert": (1368, 300, 2200),
        "vit": (1435, 300, 2200),
        "inceptionv3": (740, 400, 1500),
        "resnet152": (1298, 700, 2200),
        "senet154": (2318, 1200, 3500),
    }

    @pytest.mark.parametrize("model", list(EXPECTED))
    def test_kernel_count_in_expected_band(self, model):
        _, low, high = self.EXPECTED[model]
        training = expand_training(build_model(model, batch_size=2))
        assert low <= training.num_kernels <= high


class TestBuilderLayers:
    def test_conv_output_shape(self):
        builder = ModelBuilder(name="t", batch_size=2)
        x = builder.input_image(3, 32, 32)
        out = builder.conv2d(x, 16, kernel_size=3, stride=2, padding=1)
        assert out.shape == (2, 16, 16, 16)

    def test_conv_collapse_rejected(self):
        builder = ModelBuilder(name="t", batch_size=1)
        x = builder.input_image(3, 4, 4)
        with pytest.raises(ModelError):
            builder.conv2d(x, 8, kernel_size=7, stride=4, padding=0)

    def test_grouped_conv_is_tagged(self):
        builder = ModelBuilder(name="t", batch_size=1)
        x = builder.input_image(64, 8, 8)
        builder.conv2d(x, 64, kernel_size=3, groups=32)
        assert builder.graph.operators[-1].compute_class == "grouped_conv"

    def test_linear_is_tagged_gemm(self):
        builder = ModelBuilder(name="t", batch_size=1)
        x = builder.graph.add_tensor("x", (1, 16), TensorKind.INPUT)
        builder.linear(x, 8)
        assert builder.graph.operators[-1].compute_class == "gemm"

    def test_pool_halves_spatial_dims(self):
        builder = ModelBuilder(name="t", batch_size=1)
        x = builder.input_image(8, 16, 16)
        out = builder.pool(x, kernel_size=2)
        assert out.shape == (1, 8, 8, 8)

    def test_global_pool_collapses_spatial_dims(self):
        builder = ModelBuilder(name="t", batch_size=2)
        x = builder.input_image(8, 16, 16)
        out = builder.global_pool(x)
        assert out.shape == (2, 8)

    def test_add_requires_matching_shapes(self):
        builder = ModelBuilder(name="t", batch_size=1)
        a = builder.input_image(3, 8, 8)
        b = builder.graph.add_tensor("b", (1, 3, 4, 4), TensorKind.INPUT)
        with pytest.raises(ModelError):
            builder.add(a, b)

    def test_concat_sums_channels(self):
        builder = ModelBuilder(name="t", batch_size=1)
        x = builder.input_image(3, 8, 8)
        a = builder.conv2d(x, 4, 1)
        b = builder.conv2d(x, 6, 1)
        out = builder.concat([a, b])
        assert out.shape == (1, 10, 8, 8)

    def test_concat_empty_rejected(self):
        builder = ModelBuilder(name="t", batch_size=1)
        with pytest.raises(ModelError):
            builder.concat([])

    def test_inplace_relu_reuses_tensor(self):
        builder = ModelBuilder(name="t", batch_size=1)
        x = builder.input_image(3, 8, 8)
        y = builder.conv2d(x, 4, 3)
        z = builder.relu(y, inplace=True)
        assert z.tensor_id == y.tensor_id

    def test_out_of_place_relu_creates_tensor(self):
        builder = ModelBuilder(name="t", batch_size=1)
        x = builder.input_image(3, 8, 8)
        y = builder.conv2d(x, 4, 3)
        z = builder.relu(y, inplace=False)
        assert z.tensor_id != y.tensor_id

    def test_reshape_conserves_elements(self):
        builder = ModelBuilder(name="t", batch_size=2)
        x = builder.input_image(4, 4, 4)
        out = builder.reshape(x, (2, 64))
        assert out.shape == (2, 64)

    def test_reshape_rejects_element_mismatch(self):
        builder = ModelBuilder(name="t", batch_size=2)
        x = builder.input_image(4, 4, 4)
        with pytest.raises(ModelError):
            builder.reshape(x, (2, 63))

    def test_attention_emits_quadratic_score_tensor(self):
        builder = ModelBuilder(name="t", batch_size=2)
        tokens = builder.graph.add_tensor("x", (2, 16, 32), TensorKind.INPUT)
        builder.attention(tokens, num_heads=4)
        score_tensors = [t for t in builder.graph.tensors if "scores" in t.name]
        assert any(t.shape == (2, 4, 16, 16) for t in score_tensors)

    def test_attention_rejects_bad_head_count(self):
        builder = ModelBuilder(name="t", batch_size=1)
        tokens = builder.graph.add_tensor("x", (1, 16, 30), TensorKind.INPUT)
        with pytest.raises(ModelError):
            builder.attention(tokens, num_heads=4)

    def test_embedding_shape(self):
        builder = ModelBuilder(name="t", batch_size=2)
        tokens = builder.input_tokens(seq_len=10)
        out = builder.embedding(tokens, vocab_size=100, hidden=16)
        assert out.shape == (2, 10, 16)

    def test_nonpositive_batch_rejected(self):
        with pytest.raises(ModelError):
            ModelBuilder(name="t", batch_size=0)
