"""Extent bookkeeping invariants: coalescing, splitting, and pool residency.

The acceptance bar for the extent-based core is behavioural equivalence with
per-page bookkeeping: random alloc/free/migrate sequences must give exactly
the same residency answers as a reference model that tracks one record per
page, while the extent views stay internally consistent (disjoint runs, a
sorted and fully coalesced free list, conservation of pages).
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.extents import Extent, ExtentAllocator, coalesce, total_pages
from repro.errors import AllocationError
from repro.uvm.memory import MemoryPool

PAGE = 4096


class TestExtent:
    def test_checked_rejects_bad_runs(self):
        with pytest.raises(AllocationError):
            Extent.checked(-1, 4)
        with pytest.raises(AllocationError):
            Extent.checked(0, 0)

    def test_interval_algebra(self):
        a, b, c = Extent(0, 4), Extent(4, 2), Extent(8, 2)
        assert a.end_page == 4
        assert a.adjacent_to(b) and b.adjacent_to(a)
        assert not a.adjacent_to(c)
        assert not a.overlaps(b)
        assert Extent(2, 4).overlaps(a)
        assert a.contains_page(3) and not a.contains_page(4)
        assert list(b.pages()) == [4, 5]

    def test_coalesce_merges_touching_runs(self):
        merged = coalesce([Extent(4, 2), Extent(0, 4), Extent(8, 2), Extent(6, 2)])
        assert merged == [Extent(0, 10)]
        assert coalesce([]) == []
        assert coalesce([Extent(0, 1), Extent(2, 1)]) == [Extent(0, 1), Extent(2, 1)]


class TestExtentAllocator:
    def test_bump_allocation_is_contiguous(self):
        allocator = ExtentAllocator()
        first = allocator.allocate(4)
        second = allocator.allocate(2)
        assert first == (Extent(0, 4),)
        assert second == (Extent(4, 2),)
        assert allocator.frontier == 6

    def test_first_fit_reuses_freed_run(self):
        allocator = ExtentAllocator()
        a = allocator.allocate(4)
        allocator.allocate(2)
        allocator.free(a)
        assert allocator.allocate(3) == (Extent(0, 3),)  # split of the freed run
        assert allocator.free_extents == (Extent(3, 1),)

    def test_free_coalesces_with_both_neighbours(self):
        allocator = ExtentAllocator()
        a = allocator.allocate(2)
        b = allocator.allocate(2)
        c = allocator.allocate(2)
        allocator.free(a)
        allocator.free(c)
        assert allocator.free_extents == (Extent(0, 2), Extent(4, 2))
        allocator.free(b)
        assert allocator.free_extents == (Extent(0, 6),)

    def test_spill_across_fragmented_runs(self):
        allocator = ExtentAllocator()
        a = allocator.allocate(2)
        allocator.allocate(1)
        c = allocator.allocate(2)
        allocator.allocate(1)
        allocator.free(a)
        allocator.free(c)
        # No single free run holds 5 pages: the request spills across both
        # free runs and the frontier.
        pieces = allocator.allocate(5)
        assert total_pages(list(pieces)) == 5
        assert allocator.free_extents == ()

    def test_double_free_rejected(self):
        allocator = ExtentAllocator()
        run = allocator.allocate(2)
        allocator.free(run)
        with pytest.raises(AllocationError):
            allocator.free(run)

    def test_free_beyond_frontier_rejected(self):
        with pytest.raises(AllocationError):
            ExtentAllocator().free((Extent(0, 1),))

    @given(
        ops=st.lists(
            st.one_of(
                st.tuples(st.just("alloc"), st.integers(1, 64)),
                st.tuples(st.just("free"), st.integers(0, 30)),
            ),
            max_size=60,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_random_sequences_conserve_pages_and_stay_coalesced(self, ops):
        allocator = ExtentAllocator()
        live: list[tuple[Extent, ...]] = []
        for op, value in ops:
            if op == "alloc":
                live.append(allocator.allocate(value))
            elif live:
                allocator.free(live.pop(value % len(live)))
            # Allocated runs are disjoint.
            owned = sorted(e for run in live for e in run)
            for first, second in zip(owned, owned[1:]):
                assert first.end_page <= second.start_page
            # The free list is sorted, coalesced, and below the frontier.
            free = allocator.free_extents
            for first, second in zip(free, free[1:]):
                assert first.end_page < second.start_page
            if free:
                assert free[-1].end_page <= allocator.frontier
            # Conservation: every page below the frontier is owned or free.
            assert (
                total_pages([e for run in live for e in run])
                + allocator.free_pages_below_frontier
                == allocator.frontier
            )


class _PerPageReference:
    """Reference model: one dict entry per page, byte-accounted admission."""

    def __init__(self, capacity_bytes: int):
        self.capacity = capacity_bytes
        self.pages: dict[int, set[int]] = {}

    def _rounded(self, size: int) -> int:
        return max(1, math.ceil(size / PAGE)) * PAGE

    @property
    def used_bytes(self) -> int:
        return sum(len(pages) for pages in self.pages.values()) * PAGE

    def can_fit(self, size: int) -> bool:
        return self._rounded(size) <= self.capacity - self.used_bytes

    def allocate(self, tensor_id: int, size: int) -> None:
        if tensor_id in self.pages:
            return
        self.pages[tensor_id] = set(range(self._rounded(size) // PAGE))

    def free(self, tensor_id: int) -> int:
        return len(self.pages.pop(tensor_id, ())) * PAGE

    def contains(self, tensor_id: int) -> bool:
        return tensor_id in self.pages


@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["alloc", "free", "migrate"]),
            st.integers(0, 9),              # tensor id
            st.integers(1, 6 * PAGE),       # size bytes
        ),
        max_size=80,
    )
)
@settings(max_examples=60, deadline=None)
def test_pool_matches_per_page_reference_model(ops):
    """Random alloc/free/migrate sequences: extent pool == per-page model."""
    gpu = MemoryPool("gpu", 16 * PAGE)
    host = MemoryPool("host", 16 * PAGE)
    ref_gpu = _PerPageReference(16 * PAGE)
    ref_host = _PerPageReference(16 * PAGE)
    sizes: dict[int, int] = {}

    for op, tid, size in ops:
        if op == "alloc":
            assert gpu.can_fit(size) == ref_gpu.can_fit(size)
            if not gpu.contains(tid) and gpu.can_fit(size):
                gpu.allocate(tid, size)
                ref_gpu.allocate(tid, size)
                sizes[tid] = size
        elif op == "free":
            assert gpu.free(tid) == ref_gpu.free(tid)
            assert host.free(tid) == ref_host.free(tid)
        elif op == "migrate" and gpu.contains(tid):
            moved = sizes[tid]
            if host.can_fit(moved):
                gpu.free(tid)
                ref_gpu.free(tid)
                host.allocate(tid, moved)
                ref_host.allocate(tid, moved)

        for pool, ref in ((gpu, ref_gpu), (host, ref_host)):
            assert pool.used_bytes == ref.used_bytes
            assert pool.free_bytes == pool.capacity_bytes - ref.used_bytes
            assert sorted(pool.resident_tensors()) == sorted(ref.pages)
            for resident in ref.pages:
                assert pool.contains(resident)
                extents = pool.extents_of(resident)
                assert total_pages(list(extents)) * PAGE == pool.resident_size(resident)
            # Extents of distinct tensors never share a page.
            owned = sorted(
                extent for resident in ref.pages for extent in pool.extents_of(resident)
            )
            for first, second in zip(owned, owned[1:]):
                assert first.end_page <= second.start_page


class TestUnifiedExtentViews:
    """Extent views of the address space and page table."""

    def test_address_space_extents_are_address_ordered_and_disjoint(self):
        from repro.uvm.address_space import UnifiedAddressSpace

        space = UnifiedAddressSpace()
        space.allocate(1, 3 * PAGE)
        space.allocate(2, PAGE // 2)
        assert space.extent_of(1) == Extent(0, 3)
        assert space.extent_of(2) == Extent(3, 1)
        pairs = space.extents()
        assert [tid for tid, _ in pairs] == [1, 2]
        for (_, first), (_, second) in zip(pairs, pairs[1:]):
            assert first.end_page <= second.start_page

    def test_page_table_location_page_totals(self):
        from repro.uvm.address_space import UnifiedAddressSpace
        from repro.uvm.page_table import MemoryLocation, UnifiedPageTable

        table = UnifiedPageTable(UnifiedAddressSpace())
        table.register(1, 3 * PAGE)
        table.register(2, 2 * PAGE)
        assert table.resident_pages(MemoryLocation.GPU) == 0
        table.place(1, MemoryLocation.GPU)
        table.place(2, MemoryLocation.GPU)
        assert table.resident_pages(MemoryLocation.GPU) == 5
        table.place(2, MemoryLocation.HOST)
        assert table.resident_pages(MemoryLocation.GPU) == 3
        assert table.resident_pages(MemoryLocation.HOST) == 2
        table.unmap(1)
        assert table.resident_pages(MemoryLocation.GPU) == 0
        # physical_extent reflects the placed run; unmapped tensors have none.
        assert table.physical_extent(2).num_pages == 2
        from repro.errors import TranslationError

        with pytest.raises(TranslationError):
            table.physical_extent(1)


class TestPoolExtentViews:
    def test_extents_of_absent_tensor_is_empty(self):
        assert MemoryPool("gpu", 4 * PAGE).extents_of(1) == ()

    def test_fragmentation_reporting(self):
        pool = MemoryPool("gpu", 4 * PAGE)
        pool.allocate(1, PAGE)
        pool.allocate(2, PAGE)
        pool.allocate(3, PAGE)
        pool.free(1)
        pool.free(3)
        # 2 pages free but split around tensor 2: a 2-page tensor fragments.
        pool.allocate(4, 2 * PAGE)
        assert len(pool.extents_of(4)) == 2
        assert pool.num_extents == 3
        assert pool.fragmentation() == pytest.approx(0.5)

    def test_clear_resets_extents(self):
        pool = MemoryPool("gpu", 4 * PAGE)
        pool.allocate(1, PAGE)
        pool.clear()
        assert pool.used_bytes == 0
        assert pool.num_extents == 0
        pool.allocate(2, PAGE)
        assert pool.extents_of(2) == (Extent(0, 1),)
