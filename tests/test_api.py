"""Tests for the Scenario/Session API (repro.api) and its compatibility contract.

The headline guarantee: ``Scenario(...).run()`` is bit-identical to the
equivalent legacy ``build_workload`` + ``run_policy`` call and to the same
cell executed through a ``SweepRunner``, while adding provenance (config
fingerprint, sweep cache key, policy metadata) and observer hooks.
"""

from __future__ import annotations

import warnings

import pytest

import repro
from repro import GB, Scenario, TraceRecorder
from repro._compat import _reset_deprecation_warnings
from repro.config import paper_config
from repro.errors import ConfigurationError, ModelError
from repro.experiments import ResultCache, SweepCell, SweepRunner
from repro.experiments.harness import build_workload, run_policy
from repro.sim import ExecutionSimulator, SimObserver


class TestScenarioFluency:
    def test_with_methods_return_new_scenarios(self):
        base = Scenario("bert", scale="ci")
        tweaked = (
            base.with_batch_size(64)
            .with_gpu_memory(10 * GB)
            .with_profiling_error(0.1, seed=3)
            .on_policy("deepum")
        )
        assert base.batch_size is None and base.policy == "g10"
        assert base.patch.is_empty() and base.profiling_error == 0.0
        assert tweaked.batch_size == 64
        assert tweaked.patch.gpu_memory_bytes == 10 * GB
        assert tweaked.profiling_error == 0.1 and tweaked.seed == 3
        assert tweaked.policy == "deepum"

    def test_scenarios_are_hashable_values(self):
        a = Scenario("bert", scale="ci").on_policy("g10")
        b = Scenario("bert", scale="ci").on_policy("g10")
        assert a == b
        assert hash(a) == hash(b)

    def test_resolved_normalizes_names_and_batch(self):
        resolved = Scenario("ResNet-152", policy="Base UVM", scale="ci").resolved()
        assert resolved.model == "resnet152"
        assert resolved.policy == "base_uvm"
        assert resolved.batch_size == 320  # figure 11 default / 4 for CI

    def test_resolved_zeroes_seed_without_noise(self):
        assert Scenario("bert", seed=9).resolved().seed == 0
        assert Scenario("bert", seed=9, profiling_error=0.1).resolved().seed == 9


class TestScenarioValidation:
    def test_negative_profiling_error_rejected(self):
        with pytest.raises(ConfigurationError, match="profiling_error"):
            Scenario("bert", scale="ci", profiling_error=-0.1).resolved()

    def test_negative_profiling_error_rejected_by_run_policy(self, bert_ci_workload):
        # The legacy path used to treat negatives silently as "no noise".
        with pytest.raises(ConfigurationError, match="profiling_error"):
            run_policy(bert_ci_workload, "g10", profiling_error=-0.5)

    def test_error_of_one_or_more_rejected(self):
        with pytest.raises(ConfigurationError, match="profiling_error"):
            Scenario("bert", profiling_error=1.0).resolved()

    @pytest.mark.parametrize("seed", [-1, 2**32, 1.5])
    def test_out_of_range_seed_rejected(self, seed):
        with pytest.raises(ConfigurationError, match="seed"):
            Scenario("bert", profiling_error=0.1, seed=seed).resolved()

    def test_unknown_scale_rejected(self):
        with pytest.raises(ConfigurationError, match="scale"):
            Scenario("bert", scale="huge").resolved()

    def test_unknown_model_and_policy_rejected(self):
        with pytest.raises(ModelError):
            Scenario("alexnet").resolved()
        with pytest.raises(ConfigurationError, match="unknown policy"):
            Scenario("bert", policy="lru-ultra").resolved()


class TestSessionExecution:
    def test_run_matches_legacy_free_functions_bit_for_bit(self, bert_ci_workload):
        legacy = run_policy(bert_ci_workload, "g10")
        outcome = Scenario("bert", scale="ci").run()
        assert outcome.result.to_dict() == legacy.to_dict()

    def test_run_with_patch_matches_legacy(self, bert_ci_workload):
        config = bert_ci_workload.config.with_host_memory(0)
        legacy = run_policy(bert_ci_workload, "g10", config=config)
        outcome = Scenario("bert", scale="ci").with_host_memory(0).run()
        assert outcome.result.to_dict() == legacy.to_dict()

    def test_run_with_profiling_error_matches_legacy(self, bert_ci_workload):
        legacy = run_policy(bert_ci_workload, "g10", profiling_error=0.2, seed=5)
        outcome = Scenario("bert", scale="ci").with_profiling_error(0.2, seed=5).run()
        assert outcome.result.to_dict() == legacy.to_dict()

    def test_session_workload_is_memoized_across_sessions(self):
        a = Scenario("bert", scale="ci").session().workload
        b = Scenario("bert", scale="ci").on_policy("base_uvm").session().workload
        assert a is b  # served by the harness memo

    def test_custom_base_config_is_honoured(self):
        config = paper_config().with_gpu_memory(2 * GB).with_host_memory(4 * GB)
        outcome = Scenario("bert", scale="ci", batch_size=64).with_config(config).run()
        legacy_workload = build_workload("bert", batch_size=64, scale="ci", config=config)
        legacy = run_policy(legacy_workload, "g10")
        assert outcome.result.to_dict() == legacy.to_dict()
        assert outcome.cache_key is None  # not expressible as a sweep cell
        assert outcome.config_fingerprint == config.fingerprint()

    def test_failed_run_is_reported_not_raised(self):
        # A 1 MB GPU cannot hold any kernel working set (the paper's
        # footnote-1 regime); the failure is reported, not raised.
        outcome = (
            Scenario("bert", scale="ci")
            .on_policy("flashneuron")
            .with_gpu_memory(1024 * 1024)
            .run()
        )
        assert outcome.failed
        assert outcome.normalized_performance == 0.0


class TestSessionProvenance:
    def test_cache_key_matches_sweep_cell(self):
        scenario = Scenario("bert", scale="ci").with_host_memory(0)
        cell = SweepCell(
            model="bert", policy="g10", scale="ci",
            patch=scenario.patch,
        )
        session = scenario.session()
        assert session.cache_key() == cell.cache_key()
        assert session.config_fingerprint() == cell.config().fingerprint()

    def test_cell_round_trip(self):
        cell = Scenario("bert", scale="ci", profiling_error=0.1, seed=7).cell()
        assert cell.scenario().cell() == cell

    def test_custom_base_config_cannot_be_a_cell(self):
        scenario = Scenario("bert", scale="ci").with_config(paper_config())
        with pytest.raises(ConfigurationError, match="sweep cell"):
            scenario.cell()

    def test_runner_execution_is_cached_and_bit_identical(self, tmp_path):
        runner = SweepRunner(cache=ResultCache(tmp_path / "cache"))
        scenario = Scenario("bert", scale="ci").on_policy("base_uvm")
        cold = scenario.run(runner=runner)
        warm = scenario.run(runner=runner)
        direct = scenario.run()
        assert not cold.cached and warm.cached
        assert warm.result.to_dict() == cold.result.to_dict() == direct.result.to_dict()
        assert warm.cache_key == cold.cache_key == direct.cache_key

    def test_observers_with_runner_rejected(self, tmp_path):
        runner = SweepRunner(cache=ResultCache(tmp_path / "cache"))
        with pytest.raises(ConfigurationError, match="observers"):
            Scenario("bert", scale="ci").run(observers=(TraceRecorder(),), runner=runner)

    def test_describe_is_json_safe_summary(self):
        info = Scenario("bert", scale="ci").describe()
        assert info["model"] == "bert" and info["policy"] == "g10"
        assert len(info["config_fingerprint"]) == 64
        assert len(info["cache_key"]) == 64
        assert info["policy_info"]["display"] == "G10"

    def test_session_result_summary_carries_provenance(self):
        outcome = Scenario("bert", scale="ci").run()
        summary = outcome.summary()
        assert summary["config_fingerprint"] == outcome.config_fingerprint[:12]
        assert summary["cache_key"] == outcome.cache_key[:12]
        payload = outcome.to_dict()
        assert payload["scenario"]["model"] == "bert"
        assert payload["cache_key"] == outcome.cache_key
        assert payload["policy"]["name"] == "g10"


class TestObservers:
    def test_trace_recorder_sees_every_kernel(self, bert_ci_workload):
        trace = TraceRecorder()
        outcome = Scenario("bert", scale="ci").run(observers=(trace,))
        kernels = bert_ci_workload.graph.num_kernels
        assert trace.count("kernel_start") == kernels
        assert trace.count("kernel_finish") == kernels
        # G10 under memory pressure must move data.
        assert trace.migrations()
        assert outcome.result.traffic.total_bytes > 0

    def test_observer_stall_accounting_matches_result(self, bert_ci_workload):
        trace = TraceRecorder()
        outcome = Scenario("bert", scale="ci").run(observers=(trace,))
        observed_stall = sum(e[2] for e in trace.events if e[0] == "kernel_finish")
        assert observed_stall == pytest.approx(outcome.result.total_stall_time)

    def test_observers_do_not_change_the_result(self, bert_ci_workload):
        plain = Scenario("bert", scale="ci").run()
        observed = Scenario("bert", scale="ci").run(observers=(TraceRecorder(),))
        assert plain.result.to_dict() == observed.result.to_dict()

    def test_add_observer_on_simulator(self, bert_ci_workload):
        from repro.baselines import BaseUVMPolicy

        trace = TraceRecorder()
        sim = ExecutionSimulator(
            bert_ci_workload.graph,
            bert_ci_workload.config,
            BaseUVMPolicy(),
            bert_ci_workload.report,
        )
        sim.add_observer(trace)
        result = sim.run()
        assert trace.count("kernel_start") == len(result.kernel_timings)
        # Base UVM never prefetches: only faults and evictions appear.
        assert not trace.migrations("prefetch")
        assert trace.migrations("fault")

    def test_base_observer_hooks_are_noops(self, tiny_training, paper_cfg):
        from repro.baselines import IdealPolicy

        sim = ExecutionSimulator(
            tiny_training, paper_cfg, IdealPolicy(), observers=(SimObserver(),)
        )
        assert not sim.run().failed


class TestDeprecationShims:
    def test_shims_warn_once_and_delegate(self, bert_ci_workload):
        _reset_deprecation_warnings()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            workload = repro.build_workload("bert", scale="ci")
            repro.build_workload("bert", scale="ci")
        messages = [str(w.message) for w in caught if w.category is DeprecationWarning]
        assert len(messages) == 1
        assert "repro.build_workload is deprecated" in messages[0]
        assert "Scenario" in messages[0]
        assert workload is bert_ci_workload  # same memoized object: zero drift

    def test_each_shim_warns_independently(self, bert_ci_workload):
        _reset_deprecation_warnings()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            repro.make_policy("g10")
            result = repro.run_policy(bert_ci_workload, "g10")
            repro.run_policies(bert_ci_workload, ["ideal"])
        categories = {str(w.message).split()[0] for w in caught
                      if w.category is DeprecationWarning}
        assert categories == {
            "repro.make_policy", "repro.run_policy", "repro.run_policies"
        }
        # and the result is still bit-identical to the Scenario path
        assert Scenario("bert", scale="ci").run().result.to_dict() == result.to_dict()

    def test_engine_functions_do_not_warn(self, bert_ci_workload):
        _reset_deprecation_warnings()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            build_workload("bert", scale="ci")
            run_policy(bert_ci_workload, "ideal")
        assert not [w for w in caught if w.category is DeprecationWarning]


class TestNumpySeeds:
    def test_numpy_integer_seed_accepted(self, bert_ci_workload):
        np = pytest.importorskip("numpy")
        direct = run_policy(bert_ci_workload, "g10", profiling_error=0.1, seed=np.int64(5))
        via_api = Scenario("bert", scale="ci").with_profiling_error(0.1, seed=np.int64(5)).run()
        assert via_api.result.to_dict() == direct.to_dict()
        # resolution coerces to a plain int so cell/cache serialization stays JSON-safe
        assert type(via_api.scenario.seed) is int
