"""Tests for ``repro lint`` — the determinism/atomicity static analyzer.

Each rule gets fixture-snippet pairs: a minimal violation that must fire and
the compliant idiom that must stay quiet. On top of that: inline
suppressions, the baseline grandfather file, the CLI surface (formats, rule
selection, exit codes), registry integration, and the acceptance gate that
``src/repro`` lints clean with an empty baseline.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis.lint import (
    LINT_REGISTRY,
    Baseline,
    LintRule,
    lint_paths,
    lint_source,
    package_path_of,
    register_rule,
)
from repro.cli import main as cli_main
from repro.errors import LintError

REPO_ROOT = Path(__file__).resolve().parents[1]
PACKAGE_DIR = REPO_ROOT / "src" / "repro"


def codes(findings):
    return [f.rule for f in findings]


def lint_snippet(source: str, package_path: str, **kwargs):
    return lint_source(textwrap.dedent(source), package_path=package_path, **kwargs)


class TestDET001Entropy:
    @pytest.mark.parametrize(
        "call",
        [
            "time.time()",
            "time.perf_counter()",
            "datetime.datetime.now()",
            "random.random()",
            "random.shuffle(items)",
            "uuid.uuid4()",
            "os.urandom(8)",
            "np.random.rand(3)",
        ],
    )
    def test_fires_on_entropy_in_deterministic_layer(self, call):
        source = f"""
            import datetime, os, random, time, uuid
            import numpy as np

            def tick(items):
                return {call}
        """
        assert codes(lint_snippet(source, "sim/engine.py")) == ["DET001"]

    def test_resolves_import_aliases(self):
        source = """
            import time as _time

            def phase():
                return _time.time()
        """
        assert codes(lint_snippet(source, "core/scheduler.py")) == ["DET001"]

    def test_from_import_resolved(self):
        source = """
            from time import time

            def now():
                return time()
        """
        assert codes(lint_snippet(source, "uvm/fault.py")) == ["DET001"]

    def test_from_import_with_rename_resolved(self):
        source = """
            from time import time as now

            def stamp():
                return now()
        """
        assert codes(lint_snippet(source, "uvm/fault.py")) == ["DET001"]

    @pytest.mark.parametrize(
        "module, call",
        [("time", "monotonic()"), ("random", "shuffle(items)"), ("os", "urandom(8)")],
    )
    def test_star_import_resolved(self, module, call):
        source = f"""
            from {module} import *

            def tick(items):
                return {call}
        """
        assert codes(lint_snippet(source, "ssd/wear.py")) == ["DET001"]

    def test_star_import_quiet_outside_deterministic_layers(self):
        source = """
            from time import *

            def tick():
                return monotonic()
        """
        assert lint_snippet(source, "experiments/cache.py") == []

    def test_captured_reference_fires_without_a_call(self):
        source = """
            import time

            def make_clock():
                return time.time
        """
        findings = lint_snippet(source, "sim/engine.py")
        assert codes(findings) == ["DET001"]
        assert "captured without a call" in findings[0].message

    def test_captured_from_import_reference_fires(self):
        source = """
            from time import time as now

            def wire(executor):
                executor.clock = now
        """
        assert codes(lint_snippet(source, "core/scheduler.py")) == ["DET001"]

    def test_call_reports_once_not_as_call_plus_reference(self):
        source = """
            import time

            def tick():
                return time.time()
        """
        assert codes(lint_snippet(source, "sim/engine.py")) == ["DET001"]

    def test_captured_allowlisted_reference_is_quiet(self):
        source = """
            import time

            def wire():
                return time.perf_counter
        """
        assert lint_snippet(source, "sim/executor.py") == []

    def test_quiet_outside_deterministic_layers(self):
        source = """
            import time

            def stamp():
                return time.time()
        """
        assert lint_snippet(source, "experiments/cache.py") == []

    def test_quiet_on_seeded_generators(self):
        source = """
            import random

            def noise(seed):
                return random.Random(seed).random()
        """
        assert lint_snippet(source, "sim/engine.py") == []

    def test_perf_counter_allowlisted_in_executor_only(self):
        source = """
            import time

            def measure():
                return time.perf_counter()
        """
        assert lint_snippet(source, "sim/executor.py") == []
        assert codes(lint_snippet(source, "sim/engine.py")) == ["DET001"]


class TestDET002IdKeys:
    def test_fires_on_dict_comprehension_key(self):
        source = """
            def memo(items):
                return {id(item): item for item in items}
        """
        assert codes(lint_snippet(source, "core/prefetch.py")) == ["DET002"]

    def test_fires_on_subscript_and_get(self):
        source = """
            def lookup(cache, obj, table):
                cache[id(obj)] = obj
                return table.get(id(obj))
        """
        assert codes(lint_snippet(source, "experiments/harness.py")) == ["DET002", "DET002"]

    def test_fires_on_membership_probe(self):
        source = """
            def seen(obj, visited):
                return id(obj) in visited
        """
        assert codes(lint_snippet(source, "graph/dataflow.py")) == ["DET002"]

    def test_fires_outside_deterministic_layers_too(self):
        source = """
            def memo(config, cache):
                return cache.setdefault(id(config), config)
        """
        assert codes(lint_snippet(source, "experiments/sweep.py")) == ["DET002"]

    def test_quiet_on_value_keys_and_bare_id(self):
        source = """
            def memo(items):
                by_value = {item: item for item in items}
                trace = id(items)  # not a key position
                return by_value, trace
        """
        assert lint_snippet(source, "core/prefetch.py") == []


class TestDET003SetIteration:
    def test_fires_on_for_over_set_literal(self):
        source = """
            def schedule():
                out = []
                for item in {3, 1, 2}:
                    out.append(item)
                return out
        """
        assert codes(lint_snippet(source, "core/scheduler.py")) == ["DET003"]

    def test_fires_on_tracked_local_set(self):
        source = """
            def collect(tensors):
                pending = set(tensors)
                return [t.size for t in pending]
        """
        assert codes(lint_snippet(source, "sim/executor.py")) == ["DET003"]

    def test_fires_on_list_of_set_union(self):
        source = """
            def merge(a):
                return list(a | {1, 2}) if isinstance(a, frozenset) and a == {0} else list({1} | {2})
        """
        findings = lint_snippet(source, "uvm/memory.py")
        assert "DET003" in codes(findings)

    def test_quiet_on_sorted_and_aggregates(self):
        source = """
            def schedule(tensors):
                pending = set(tensors)
                total = sum(pending)
                largest = max(pending)
                return sorted(pending), total, largest, 3 in pending
        """
        assert lint_snippet(source, "core/scheduler.py") == []

    def test_quiet_on_set_comprehension_over_set(self):
        source = """
            def ids(tensors):
                live = set(tensors)
                return {t.tensor_id for t in live}
        """
        assert lint_snippet(source, "sim/executor.py") == []

    def test_quiet_when_rebound_to_ordered(self):
        source = """
            def drain(tensors):
                pending = set(tensors)
                pending = sorted(pending)
                return [t for t in pending]
        """
        assert lint_snippet(source, "core/eviction.py") == []

    def test_quiet_outside_deterministic_layers(self):
        source = """
            def report(keys):
                return list(set(keys))
        """
        assert lint_snippet(source, "experiments/reporting.py") == []


class TestDET004FloatEquality:
    def test_fires_on_float_literal_equality(self):
        source = """
            def probe(values, j):
                return values[j] == 0.0
        """
        assert codes(lint_snippet(source, "core/bandwidth.py")) == ["DET004"]

    def test_fires_on_unannotated_module_constant(self):
        source = """
            EMPTY = 0.0

            def probe(value):
                return value != EMPTY
        """
        assert codes(lint_snippet(source, "sim/executor.py")) == ["DET004"]

    def test_quiet_on_annotated_sentinel(self):
        source = """
            EXHAUSTED = 0.0  # repro-lint: exact-float

            def probe(value):
                return value == EXHAUSTED
        """
        assert lint_snippet(source, "core/bandwidth.py") == []

    def test_quiet_on_inequalities_and_ints(self):
        source = """
            def probe(value, count):
                return value <= 1e-9 or count == 0
        """
        assert lint_snippet(source, "core/bandwidth.py") == []

    def test_quiet_outside_core_and_sim(self):
        source = """
            def probe(value):
                return value == 0.0
        """
        assert lint_snippet(source, "uvm/memory.py") == []


class TestQUE001AtomicPublish:
    def test_fires_on_bare_write_into_state(self):
        source = """
            def publish(task_path, payload):
                with open(task_path, "w") as fh:
                    fh.write(payload)
        """
        assert codes(lint_snippet(source, "experiments/queue.py")) == ["QUE001"]

    def test_fires_on_write_text(self):
        source = """
            def publish(lease, payload):
                lease.write_text(payload)
        """
        assert codes(lint_snippet(source, "experiments/queue.py")) == ["QUE001"]

    def test_fires_on_append_mode_method_open(self):
        source = """
            def publish(root, line):
                with (root / "state.json").open(mode="a") as fh:
                    fh.write(line)
        """
        assert codes(lint_snippet(source, "experiments/queue.py")) == ["QUE001"]

    def test_quiet_on_tmp_then_rename_idiom(self):
        source = """
            import os

            def publish(task_path, payload):
                tmp = task_path.with_suffix(".tmp")
                with tmp.open("w") as fh:
                    fh.write(payload)
                os.replace(tmp, task_path)
        """
        assert lint_snippet(source, "experiments/queue.py") == []

    def test_quiet_on_reads_and_other_modules(self):
        read_source = """
            def load(task_path):
                with task_path.open("r") as fh:
                    return fh.read()
        """
        assert lint_snippet(read_source, "experiments/queue.py") == []
        write_source = """
            def save(path, payload):
                with open(path, "w") as fh:
                    fh.write(payload)
        """
        assert lint_snippet(write_source, "experiments/cache.py") == []


class TestAPI001CompatImports:
    def test_fires_on_relative_and_absolute_imports(self):
        relative = "from ._compat import run_policy\n"
        assert codes(lint_snippet(relative, "experiments/harness.py")) == ["API001"]
        absolute = "from repro._compat import run_policy\n"
        assert codes(lint_snippet(absolute, "experiments/harness.py")) == ["API001"]
        module = "import repro._compat\n"
        assert codes(lint_snippet(module, "experiments/harness.py")) == ["API001"]

    def test_package_root_and_shim_module_exempt(self):
        source = "from ._compat import run_policy\n"
        assert lint_snippet(source, "__init__.py") == []
        assert lint_snippet("import warnings\n", "_compat.py") == []


class TestPERF001ScalarArrayLoops:
    def test_fires_on_for_over_numpy_call(self):
        source = """
            import numpy as np

            def walk(values):
                total = 0.0
                for value in np.asarray(values, dtype=np.float64):
                    total += value
                return total
        """
        assert codes(lint_snippet(source, "core/pressure.py")) == ["PERF001"]

    def test_fires_on_tracked_local_array(self):
        source = """
            import numpy as np

            def walk(n):
                slots = np.zeros(n)
                return [slot + 1 for slot in slots]
        """
        assert codes(lint_snippet(source, "sim/executor.py")) == ["PERF001"]

    def test_fires_on_slice_of_array(self):
        source = """
            import numpy as np

            def walk(n, lo, hi):
                combined = np.zeros(n)
                for available in combined[lo:hi]:
                    if available > 0:
                        return available
                return None
        """
        assert codes(lint_snippet(source, "core/bandwidth.py")) == ["PERF001"]

    def test_fires_on_elementwise_arithmetic_result(self):
        source = """
            import numpy as np

            def walk(n):
                pressure = np.ones(n)
                for excess in pressure - 1.0:
                    yield excess
        """
        assert codes(lint_snippet(source, "core/pressure.py")) == ["PERF001"]

    def test_quiet_on_tolist_chunk_walk(self):
        source = """
            import numpy as np

            def walk(n, lo, hi):
                combined = np.zeros(n)
                for available in combined[lo:hi].tolist():
                    if available > 0:
                        return available
                return None
        """
        assert lint_snippet(source, "core/bandwidth.py") == []

    def test_quiet_on_indexed_element_and_rebound_names(self):
        source = """
            import numpy as np

            def walk(n):
                slots = np.zeros(n)
                first = slots[0]
                slots = sorted(range(n))
                return [first + slot for slot in slots]
        """
        assert lint_snippet(source, "core/eviction.py") == []

    def test_quiet_outside_core_and_sim(self):
        source = """
            import numpy as np

            def walk(values):
                return [v + 1 for v in np.asarray(values)]
        """
        assert lint_snippet(source, "experiments/figures.py") == []


class TestSuppressions:
    def test_inline_disable_silences_one_rule(self):
        source = """
            import time

            def tick():
                return time.time()  # repro-lint: disable=DET001 -- test fixture
        """
        assert lint_snippet(source, "sim/engine.py") == []

    def test_disable_must_name_the_right_rule(self):
        source = """
            import time

            def tick():
                return time.time()  # repro-lint: disable=DET002
        """
        assert codes(lint_snippet(source, "sim/engine.py")) == ["DET001"]

    def test_disable_all_and_multi_statement_span(self):
        source = """
            import time

            def tick():
                return (
                    time.time()  # repro-lint: disable=all
                )
        """
        assert lint_snippet(source, "sim/engine.py") == []

    def test_suppression_on_any_line_of_statement(self):
        source = """
            def publish(root, line):
                with (root / "state.json").open(  # repro-lint: disable=QUE001 -- fixture
                    "a"
                ) as fh:
                    fh.write(line)
        """
        assert lint_snippet(source, "experiments/queue.py") == []


class TestFrameworkAndCLI:
    def test_package_path_of(self):
        assert package_path_of(Path("src/repro/sim/engine.py")) == "sim/engine.py"
        assert package_path_of(Path("/x/repro/core/plan.py")) == "core/plan.py"
        assert package_path_of(Path("scratch/tool.py")) == "tool.py"

    def test_rule_selection_and_ignore(self):
        source = """
            import time

            def tick(cache, obj):
                cache[id(obj)] = time.time()
        """
        assert sorted(codes(lint_snippet(source, "sim/engine.py"))) == ["DET001", "DET002"]
        only = lint_snippet(source, "sim/engine.py", select=["det001"])
        assert codes(only) == ["DET001"]
        without = lint_snippet(source, "sim/engine.py", ignore=["DET001"])
        assert codes(without) == ["DET002"]

    def test_unknown_rule_code_suggests(self):
        with pytest.raises(LintError, match="did you mean 'det001'"):
            lint_source("x = 1\n", select=["DET01"])

    def test_registry_hosts_rules(self):
        available = LINT_REGISTRY.available()
        assert {"det001", "det002", "det003", "det004", "que001", "api001"} <= set(available)
        assert issubclass(LINT_REGISTRY.get("DET001"), LintRule)

    def test_plugin_rules_register_and_unregister(self):
        @register_rule("TST001", title="test rule")
        class NamingRule(LintRule):
            code = "TST001"

            def visit_FunctionDef(self, node):
                if node.name == "bad_name":
                    self.report(node, "bad name")
                self.generic_visit(node)

        try:
            findings = lint_source("def bad_name():\n    pass\n", select=["TST001"])
            assert codes(findings) == ["TST001"]
        finally:
            LINT_REGISTRY.unregister("TST001")
        with pytest.raises(LintError):
            lint_source("x = 1\n", select=["TST001"])

    def test_parse_error_reported_as_finding(self, tmp_path):
        bad = tmp_path / "repro" / "sim" / "broken.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def broken(:\n")
        findings = lint_paths([tmp_path])
        assert codes(findings) == ["E001"]
        assert "cannot parse" in findings[0].message

    def test_lint_paths_missing_path_is_a_structured_finding(self):
        findings = lint_paths(["definitely/not/a/path"])
        assert [f.rule for f in findings] == ["E002"]
        assert "no such file" in findings[0].message

    def test_lint_paths_empty_directory_is_a_structured_finding(self, tmp_path):
        empty = tmp_path / "nothing"
        empty.mkdir()
        findings = lint_paths([empty])
        assert [f.rule for f in findings] == ["E002"]
        assert "no Python files" in findings[0].message

    def _violation_tree(self, tmp_path):
        module = tmp_path / "repro" / "sim" / "clocky.py"
        module.parent.mkdir(parents=True)
        module.write_text("import time\n\ndef tick():\n    return time.time()\n")
        return tmp_path

    def test_cli_text_format_and_exit_codes(self, tmp_path, capsys):
        tree = self._violation_tree(tmp_path)
        assert cli_main(["lint", str(tree)]) == 1
        captured = capsys.readouterr()
        assert "DET001" in captured.out
        assert "clocky.py:4" in captured.out
        assert "1 finding(s)" in captured.err

    def test_cli_json_format(self, tmp_path, capsys):
        tree = self._violation_tree(tmp_path)
        assert cli_main(["lint", str(tree), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["new"] == 1
        assert payload["findings"][0]["rule"] == "DET001"
        assert payload["findings"][0]["line"] == 4

    def test_cli_rule_filtering(self, tmp_path, capsys):
        tree = self._violation_tree(tmp_path)
        assert cli_main(["lint", str(tree), "--ignore", "DET001"]) == 0
        assert cli_main(["lint", str(tree), "--rule", "DET002"]) == 0
        assert cli_main(["lint", str(tree), "--rule", "DET001"]) == 1

    def test_cli_list_rules(self, capsys):
        assert cli_main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("DET001", "DET002", "DET003", "DET004", "QUE001", "API001"):
            assert code in out

    def test_cli_unknown_rule_is_usage_error(self, tmp_path, capsys):
        tree = self._violation_tree(tmp_path)
        assert cli_main(["lint", str(tree), "--rule", "NOPE999"]) == 2
        assert "unknown lint rule" in capsys.readouterr().err


class TestBaseline:
    def _tree(self, tmp_path):
        module = tmp_path / "repro" / "sim" / "clocky.py"
        module.parent.mkdir(parents=True)
        module.write_text("import time\n\ndef tick():\n    return time.time()\n")
        return tmp_path, module

    def test_baseline_grandfathers_then_regresses(self, tmp_path, capsys):
        tree, module = self._tree(tmp_path)
        baseline_path = tmp_path / "baseline.json"
        assert cli_main(
            ["lint", str(tree), "--baseline", str(baseline_path), "--update-baseline"]
        ) == 0
        capsys.readouterr()

        # Grandfathered: same finding no longer fails the run.
        assert cli_main(["lint", str(tree), "--baseline", str(baseline_path)]) == 0
        assert "1 baselined" in capsys.readouterr().err

        # A *new* violation still fails even with the baseline in place.
        module.write_text(
            module.read_text() + "\ndef tock():\n    return time.monotonic()\n"
        )
        assert cli_main(["lint", str(tree), "--baseline", str(baseline_path)]) == 1
        captured = capsys.readouterr()
        assert "time.monotonic" in captured.out or "DET001" in captured.out

    def test_baseline_survives_line_drift(self, tmp_path):
        tree, module = self._tree(tmp_path)
        findings = lint_paths([tree])
        baseline = Baseline.from_findings(findings)
        # Push the violation down the file: fingerprints are line-independent.
        module.write_text("# header comment\n\n" + module.read_text())
        new, baselined, stale = baseline.partition(lint_paths([tree]))
        assert new == [] and len(baselined) == 1 and stale == 0

    def test_baseline_is_a_multiset(self, tmp_path):
        tree, module = self._tree(tmp_path)
        baseline = Baseline.from_findings(lint_paths([tree]))
        # Duplicate the identical offending line: one entry covers one finding.
        module.write_text(module.read_text() + "\ndef tock():\n    return time.time()\n")
        new, baselined, stale = baseline.partition(lint_paths([tree]))
        assert len(new) == 1 and len(baselined) == 1 and stale == 0

    def test_stale_entries_counted(self, tmp_path):
        tree, module = self._tree(tmp_path)
        baseline = Baseline.from_findings(lint_paths([tree]))
        module.write_text("def tick():\n    return 0\n")
        new, baselined, stale = baseline.partition(lint_paths([tree]))
        assert new == [] and baselined == [] and stale == 1

    def test_corrupt_baseline_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("not json")
        with pytest.raises(LintError, match="cannot parse lint baseline"):
            Baseline.load(path)
        path.write_text("[1, 2, 3]")
        with pytest.raises(LintError, match="not a baseline document"):
            Baseline.load(path)

    def test_baseline_round_trips_through_disk(self, tmp_path):
        tree, _ = self._tree(tmp_path)
        findings = lint_paths([tree])
        path = tmp_path / "baseline.json"
        Baseline.from_findings(findings).write(path)
        loaded = Baseline.load(path)
        new, baselined, stale = loaded.partition(findings)
        assert new == [] and len(baselined) == len(findings) and stale == 0


class TestSelfClean:
    """The acceptance gate: the repository's own sources lint clean."""

    def test_src_repro_lints_clean_with_empty_baseline(self):
        findings = lint_paths([PACKAGE_DIR])
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_committed_baseline_is_empty(self):
        baseline = Baseline.load(REPO_ROOT / "lint-baseline.json")
        assert baseline.entries == []

    def test_seeded_violation_is_caught(self, tmp_path):
        """A stray wall-clock read in sim/engine.py would fail the lint job."""
        engine = PACKAGE_DIR / "sim" / "engine.py"
        seeded_root = tmp_path / "repro" / "sim"
        seeded_root.mkdir(parents=True)
        seeded = seeded_root / "engine.py"
        seeded.write_text(
            engine.read_text()
            + "\n\ndef _leak() -> float:\n    import time\n    return time.time()\n"
        )
        findings = lint_paths([seeded])
        assert codes(findings) == ["DET001"]
