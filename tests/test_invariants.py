"""Cross-policy invariants: cheap oracles behind the paper's ordering claims.

Figure 11's headline (every design normalised to the ideal, G10 closest to
1.0) silently assumes two things the simulator must never violate, whatever
the configuration:

* the ``ideal`` (infinite-memory) policy is a true lower bound on end-to-end
  execution time, and
* every policy simulates the *identical* kernel set — same kernels, same
  ideal durations — so their times are comparable at all.

These tests check both over randomized small configurations (model, batch,
host-memory and SSD-bandwidth scalings drawn from seeded RNGs, so failures
reproduce), plus the derived-metric consistency the figures rely on.
"""

from __future__ import annotations

import random

import pytest

from repro.baselines.factory import POLICY_NAMES
from repro.config import GB
from repro.experiments import ConfigPatch, SweepCell, SweepRunner, default_config

#: Tolerance for float accumulation differences between policies' clocks.
EPS = 1e-9


def _random_cells(seed: int) -> list[SweepCell]:
    """One small randomized configuration, simulated under every policy."""
    rng = random.Random(seed)
    model = rng.choice(("bert", "vit", "resnet152"))
    batch = rng.choice((8, 12, 16, 24))
    base = default_config(model, "ci")
    host_factor = rng.choice((0.0, 0.25, 1.0, 4.0))
    patch = ConfigPatch(
        host_memory_bytes=int(base.host_memory_bytes * host_factor),
        ssd_read_bandwidth=rng.choice((3.2 * GB, 6.4 * GB, 12.8 * GB)),
    )
    return [
        SweepCell(model=model, policy=policy, batch_size=batch, scale="ci", patch=patch)
        for policy in POLICY_NAMES
    ]


@pytest.fixture(scope="module", params=range(4))
def policy_results(request):
    outs = SweepRunner().run(_random_cells(request.param))
    return {out.cell.policy: out.result for out in outs}


def test_ideal_is_a_lower_bound(policy_results):
    ideal = policy_results["ideal"]
    assert not ideal.failed, "the infinite-memory ideal can never fail"
    for policy, result in policy_results.items():
        # Failed runs have infinite execution time, trivially >= ideal.
        assert ideal.execution_time <= result.execution_time + EPS, (
            f"{policy} beat the infinite-memory ideal"
        )


def test_all_policies_share_the_ideal_time(policy_results):
    expected = policy_results["ideal"].ideal_time
    for policy, result in policy_results.items():
        assert result.ideal_time == pytest.approx(expected, rel=1e-12), (
            f"{policy} planned against a different ideal time"
        )


def test_all_policies_simulate_the_identical_kernel_set(policy_results):
    reference = [
        (t.index, t.ideal_duration) for t in policy_results["ideal"].kernel_timings
    ]
    assert reference, "ideal run produced no kernel timings"
    for policy, result in policy_results.items():
        if result.failed:
            continue
        kernels = [(t.index, t.ideal_duration) for t in result.kernel_timings]
        assert kernels == reference, f"{policy} simulated a different kernel set"


def test_execution_time_is_at_least_the_kernel_sum(policy_results):
    for policy, result in policy_results.items():
        if result.failed:
            continue
        kernel_sum = sum(t.actual_duration for t in result.kernel_timings)
        assert result.execution_time + EPS >= kernel_sum - EPS, (
            f"{policy} finished before its own kernels did"
        )
        assert result.normalized_performance <= 1.0 + EPS
