"""Smoke tests for the ``python -m repro`` command-line interface."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main

SRC_DIR = str(Path(__file__).resolve().parents[1] / "src")


def run_cli(*argv: str) -> int:
    return main(list(argv))


class TestFigureCommand:
    def test_figure11_ci_and_cache_hit(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        args = ("figure", "11", "--scale", "ci", "--models", "bert", "--cache-dir", cache_dir)
        assert run_cli(*args) == 0
        cold = capsys.readouterr()
        results = json.loads(cold.out)
        assert 0.0 < results["bert"]["g10"] <= 1.0
        assert results["bert"]["g10"] > results["bert"]["base_uvm"]
        assert "6 executed" in cold.err

        # Second invocation is served entirely from the on-disk cache and
        # produces bit-identical output.
        assert run_cli(*args) == 0
        warm = capsys.readouterr()
        assert warm.out == cold.out
        assert "6 cached, 0 executed" in warm.err

    def test_parallel_matches_serial(self, tmp_path, capsys):
        base = ("figure", "12", "--scale", "ci", "--models", "bert", "--no-cache")
        assert run_cli(*base) == 0
        serial = capsys.readouterr().out
        assert run_cli(*base, "--jobs", "2") == 0
        parallel = capsys.readouterr().out
        assert parallel == serial

    def test_output_artifact(self, tmp_path, capsys):
        artifact = tmp_path / "fig19.json"
        assert run_cli(
            "figure", "19", "--scale", "ci", "--models", "bert",
            "--no-cache", "--output", str(artifact),
        ) == 0
        capsys.readouterr()
        results = json.loads(artifact.read_text())
        assert results["bert"]["0.2"] > 0.9

    def test_table_commands(self, capsys, tmp_path):
        assert run_cli("figure", "table1", "--scale", "ci",
                       "--cache-dir", str(tmp_path / "c")) == 0
        out = capsys.readouterr().out
        assert "BERT" in out and "SENet154" in out
        assert run_cli("figure", "table2", "--no-cache") == 0
        out = capsys.readouterr().out
        assert "40 GB HBM2e" in out

    def test_unknown_figure_rejected(self, capsys):
        with pytest.raises(SystemExit):
            run_cli("figure", "99")


class TestRunCommand:
    def test_run_single_cell(self, tmp_path, capsys):
        artifact = tmp_path / "run.json"
        assert run_cli(
            "run", "--model", "bert", "--policy", "g10", "--scale", "ci",
            "--cache-dir", str(tmp_path / "c"), "--output", str(artifact),
        ) == 0
        out = capsys.readouterr().out
        assert "normalized_performance" in out
        payload = json.loads(artifact.read_text())
        assert payload["cell"]["model"] == "bert"
        assert not payload["result"]["failed"]


class TestSweepCommand:
    def test_grid_sweep(self, tmp_path, capsys):
        artifact = tmp_path / "sweep.json"
        assert run_cli(
            "sweep", "--models", "bert", "--policies", "g10,base_uvm",
            "--scale", "ci", "--cache-dir", str(tmp_path / "c"), "--output", str(artifact),
        ) == 0
        rows = json.loads(artifact.read_text())
        assert [row["cell"]["policy"] for row in rows] == ["g10", "base_uvm"]


class TestCacheCommand:
    def test_info_and_clear(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        run_cli("run", "--model", "bert", "--scale", "ci", "--cache-dir", cache_dir)
        capsys.readouterr()
        assert run_cli("cache", "info", "--cache-dir", cache_dir) == 0
        assert "entries    : 1" in capsys.readouterr().out
        assert run_cli("cache", "clear", "--cache-dir", cache_dir) == 0
        assert "removed 1" in capsys.readouterr().out
        assert run_cli("cache", "path", "--cache-dir", cache_dir) == 0
        assert cache_dir in capsys.readouterr().out


class TestModuleEntryPoint:
    def test_python_dash_m_repro(self, tmp_path):
        """The acceptance-criteria invocation, end to end in a fresh process."""
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "figure", "11", "--scale", "ci",
             "--models", "bert", "--jobs", "2"],
            cwd=tmp_path, env=env, capture_output=True, text=True, timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        results = json.loads(proc.stdout)
        assert results["bert"]["g10"] > results["bert"]["base_uvm"]
        # The default cache landed in the working directory.
        assert (tmp_path / ".repro_cache").is_dir()
