"""Smoke tests for the ``python -m repro`` command-line interface."""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import main

SRC_DIR = str(Path(__file__).resolve().parents[1] / "src")


def run_cli(*argv: str) -> int:
    return main(list(argv))


class TestFigureCommand:
    def test_figure11_ci_and_cache_hit(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        args = ("figure", "11", "--scale", "ci", "--models", "bert", "--cache-dir", cache_dir)
        assert run_cli(*args) == 0
        cold = capsys.readouterr()
        results = json.loads(cold.out)
        assert 0.0 < results["bert"]["g10"] <= 1.0
        assert results["bert"]["g10"] > results["bert"]["base_uvm"]
        assert "6 executed" in cold.err

        # Second invocation is served entirely from the on-disk cache and
        # produces bit-identical output.
        assert run_cli(*args) == 0
        warm = capsys.readouterr()
        assert warm.out == cold.out
        assert "6 cached, 0 executed" in warm.err

    def test_parallel_matches_serial(self, tmp_path, capsys):
        base = ("figure", "12", "--scale", "ci", "--models", "bert", "--no-cache")
        assert run_cli(*base) == 0
        serial = capsys.readouterr().out
        assert run_cli(*base, "--jobs", "2") == 0
        parallel = capsys.readouterr().out
        assert parallel == serial

    def test_output_artifact(self, tmp_path, capsys):
        artifact = tmp_path / "fig19.json"
        assert run_cli(
            "figure", "19", "--scale", "ci", "--models", "bert",
            "--no-cache", "--output", str(artifact),
        ) == 0
        capsys.readouterr()
        results = json.loads(artifact.read_text())
        assert results["bert"]["0.2"] > 0.9

    def test_table_commands(self, capsys, tmp_path):
        assert run_cli("figure", "table1", "--scale", "ci",
                       "--cache-dir", str(tmp_path / "c")) == 0
        out = capsys.readouterr().out
        assert "BERT" in out and "SENet154" in out
        assert run_cli("figure", "table2", "--no-cache") == 0
        out = capsys.readouterr().out
        assert "40 GB HBM2e" in out

    def test_unknown_figure_rejected(self, capsys):
        with pytest.raises(SystemExit):
            run_cli("figure", "99")


class TestRunCommand:
    def test_run_single_cell(self, tmp_path, capsys):
        artifact = tmp_path / "run.json"
        assert run_cli(
            "run", "--model", "bert", "--policy", "g10", "--scale", "ci",
            "--cache-dir", str(tmp_path / "c"), "--output", str(artifact),
        ) == 0
        out = capsys.readouterr().out
        assert "normalized_performance" in out
        payload = json.loads(artifact.read_text())
        assert payload["cell"]["model"] == "bert"
        assert not payload["result"]["failed"]


class TestRunTenantsCommand:
    def test_colocated_run_reports_slo_table_and_artifact(self, tmp_path, capsys):
        artifact = tmp_path / "tenants.json"
        assert run_cli(
            "run", "--model", "bert", "--scale", "ci",
            "--tenants", "2", "--tenant-policies", "g10,base_uvm",
            "--arrival-load", "1.0", "--requests", "2",
            "--cache-dir", str(tmp_path / "c"), "--output", str(artifact),
        ) == 0
        captured = capsys.readouterr()
        assert "p99_latency_s" in captured.out
        assert "t0-g10" in captured.out and "t1-base_uvm" in captured.out
        assert "fairness (Jain)" in captured.err
        payload = json.loads(artifact.read_text())
        assert set(payload["tenants"]) == {"t0-g10", "t1-base_uvm"}
        assert 0.0 < payload["fairness"] <= 1.0
        assert payload["tenants"]["t0-g10"]["policy"] == "g10"
        assert len(payload["tenants"]["t0-g10"]["latencies"]) == 2

    def test_tenants_must_be_positive(self, tmp_path):
        assert run_cli(
            "run", "--model", "bert", "--scale", "ci", "--tenants", "0",
            "--no-cache",
        ) == 2  # ConfigurationError exit path


class TestSweepCommand:
    def test_grid_sweep(self, tmp_path, capsys):
        artifact = tmp_path / "sweep.json"
        assert run_cli(
            "sweep", "--models", "bert", "--policies", "g10,base_uvm",
            "--scale", "ci", "--cache-dir", str(tmp_path / "c"), "--output", str(artifact),
        ) == 0
        rows = json.loads(artifact.read_text())
        assert [row["cell"]["policy"] for row in rows] == ["g10", "base_uvm"]


class TestQueueCommands:
    def test_sweep_queue_matches_serial_and_resumes_warm(self, tmp_path, capsys):
        base = ("sweep", "--models", "bert", "--policies", "ideal,g10", "--scale", "ci")
        assert run_cli(*base, "--no-cache") == 0
        serial = capsys.readouterr().out

        queued_args = (
            *base, "--queue", "--workers", "2",
            "--queue-dir", str(tmp_path / "q"), "--cache-dir", str(tmp_path / "c"),
        )
        assert run_cli(*queued_args) == 0
        queued = capsys.readouterr()
        assert queued.out == serial  # bit-identical to the serial run
        assert "2 executed" in queued.err

        # Re-running is a pure cache resume; the drained queue is untouched.
        assert run_cli(*queued_args) == 0
        resumed = capsys.readouterr()
        assert resumed.out == serial
        assert "2 cached, 0 executed" in resumed.err

    def test_enqueue_work_status_report_roundtrip(self, tmp_path, capsys):
        """The CI competing-consumer workflow in miniature: enqueue the grid,
        drain it with a worker, verify the accounting, report fully warm."""
        qdir, cdir = str(tmp_path / "q"), str(tmp_path / "c")
        assert run_cli(
            "queue", "enqueue", "--figures", "2", "--scale", "ci",
            "--queue-dir", qdir, "--cache-dir", cdir,
        ) == 0
        assert "enqueued 4 cell(s)" in capsys.readouterr().out

        # Enqueueing is idempotent: every key is already tracked.
        assert run_cli(
            "queue", "enqueue", "--figures", "2", "--scale", "ci",
            "--queue-dir", qdir, "--cache-dir", cdir,
        ) == 0
        assert "enqueued 0 cell(s)" in capsys.readouterr().out

        assert run_cli(
            "queue", "work", "--queue-dir", qdir, "--cache-dir", cdir,
            "--worker-id", "consumer-a",
        ) == 0
        assert "executed 4 cell(s)" in capsys.readouterr().err

        assert run_cli("queue", "status", "--queue-dir", qdir) == 0
        status = capsys.readouterr().out
        assert "done       : 4" in status
        assert "total      : 4 (4 expected)" in status
        assert ("reconciled : queued + leased + done + failed == total == expected"
                " -> yes") in status

        assert run_cli(
            "report", "--figures", "2", "--scale", "ci", "--cache-dir", cdir,
            "--output-dir", str(tmp_path / "report"), "--expect-warm",
        ) == 0

    def test_requeue_stale_reclaims_a_dead_workers_cell(self, tmp_path, capsys):
        from repro.experiments import WorkQueue

        queue = WorkQueue(tmp_path / "q", lease_timeout=0.01)
        queue.enqueue_tasks([("ab12cd34", {"cell": None})])
        queue.lease("dead-worker")
        time.sleep(0.05)  # let the (tiny) lease deadline pass

        assert run_cli("queue", "requeue-stale", "--queue-dir", str(tmp_path / "q")) == 0
        assert "requeued 1 stale lease(s)" in capsys.readouterr().out
        assert run_cli("queue", "status", "--queue-dir", str(tmp_path / "q")) == 0
        assert "queued     : 1" in capsys.readouterr().out

    def test_queue_clear(self, tmp_path, capsys):
        qdir = str(tmp_path / "q")
        from repro.experiments import WorkQueue

        WorkQueue(tmp_path / "q").enqueue_tasks([("ab12cd34", {"cell": None})])
        assert run_cli("queue", "clear", "--queue-dir", qdir) == 0
        assert "cleared" in capsys.readouterr().out
        assert not (tmp_path / "q").exists()

    def test_queue_requires_the_cache(self, tmp_path, capsys):
        assert run_cli(
            "sweep", "--models", "bert", "--policies", "g10", "--scale", "ci",
            "--queue", "--no-cache",
        ) == 2
        assert "requires the result cache" in capsys.readouterr().err

    def test_workers_without_queue_rejected(self, tmp_path, capsys):
        assert run_cli(
            "sweep", "--models", "bert", "--policies", "g10", "--scale", "ci",
            "--cache-dir", str(tmp_path / "c"), "--workers", "2",
        ) == 2
        assert "require --queue" in capsys.readouterr().err


class TestShardedCommands:
    def test_figure_shards_merge_and_resume_match_serial(self, tmp_path, capsys):
        """The acceptance workflow through the CLI: 3 shards -> merge -> resume."""
        base = ("figure", "11", "--scale", "ci", "--models", "bert")
        assert run_cli(*base, "--no-cache") == 0
        serial = capsys.readouterr().out

        for index in range(3):
            assert run_cli(
                *base, "--cache-dir", str(tmp_path / f"shard{index}"),
                "--shard-index", str(index), "--shard-count", "3",
            ) == 0
            out = capsys.readouterr()
            assert out.out == ""  # shard warming renders nothing
            assert f"shard {index}/3" in out.err and "4 skipped" in out.err

        merged = str(tmp_path / "merged")
        assert run_cli(
            "cache", "merge",
            *(str(tmp_path / f"shard{i}") for i in range(3)),
            "--cache-dir", merged,
        ) == 0
        assert "merged 6 entries" in capsys.readouterr().out

        assert run_cli(*base, "--cache-dir", merged, "--resume") == 0
        resumed = capsys.readouterr()
        assert resumed.out == serial  # bit-identical to the cold serial run
        assert "6 warm, 0 to execute" in resumed.err
        assert "6 cached, 0 executed" in resumed.err

    def test_sweep_shard_prints_only_owned_cells(self, tmp_path, capsys):
        args = ("sweep", "--models", "bert", "--policies", "g10,base_uvm,deepum",
                "--scale", "ci", "--cache-dir", str(tmp_path / "c"))
        assert run_cli(*args, "--shard-index", "0", "--shard-count", "3") == 0
        out = capsys.readouterr().out
        # Header + separator + exactly the one row this shard owns (g10).
        assert len(out.strip().splitlines()) == 3
        assert "G10" in out

    def test_shard_index_without_count_is_an_error(self, tmp_path, capsys):
        assert run_cli(
            "figure", "11", "--scale", "ci", "--models", "bert",
            "--cache-dir", str(tmp_path / "c"), "--shard-index", "0",
        ) == 2
        assert "together" in capsys.readouterr().err

    def test_shard_requires_cache(self, capsys):
        assert run_cli(
            "figure", "11", "--scale", "ci", "--models", "bert",
            "--no-cache", "--shard-index", "0", "--shard-count", "2",
        ) == 2
        assert "requires the result cache" in capsys.readouterr().err

    def test_resume_requires_cache(self, capsys):
        assert run_cli(
            "figure", "11", "--scale", "ci", "--models", "bert",
            "--no-cache", "--resume",
        ) == 2
        assert "requires the result cache" in capsys.readouterr().err

    def test_shard_mode_warns_when_output_is_ignored(self, tmp_path, capsys):
        artifact = tmp_path / "fig.json"
        assert run_cli(
            "figure", "11", "--scale", "ci", "--models", "bert",
            "--cache-dir", str(tmp_path / "c"),
            "--shard-index", "0", "--shard-count", "3", "--output", str(artifact),
        ) == 0
        assert "--output ignored" in capsys.readouterr().err
        assert not artifact.exists()

    def test_report_resume_prints_the_plan(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "c")
        assert run_cli("report", "--scale", "ci", "--figures", "2",
                       "--cache-dir", cache_dir,
                       "--output-dir", str(tmp_path / "r1")) == 0
        capsys.readouterr()
        assert run_cli("report", "--scale", "ci", "--figures", "2",
                       "--cache-dir", cache_dir, "--resume",
                       "--output-dir", str(tmp_path / "r2")) == 0
        assert "4 warm, 0 to execute" in capsys.readouterr().err


class TestReportCommand:
    def test_report_renders_artifacts_and_manifest(self, tmp_path, capsys):
        out_dir = tmp_path / "report"
        assert run_cli(
            "report", "--scale", "ci", "--figures", "2,table2",
            "--cache-dir", str(tmp_path / "c"), "--output-dir", str(out_dir),
        ) == 0
        err = capsys.readouterr().err
        assert "2 artifacts" in err
        assert (out_dir / "figure2.json").exists()
        assert (out_dir / "table2.json").exists()
        manifest = json.loads((out_dir / "report.json").read_text())
        assert manifest["totals"]["warm"] == 0
        assert "Figure 2" in (out_dir / "report.md").read_text()

    def test_report_shard_then_expect_warm(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "c")
        for index in range(2):
            assert run_cli(
                "report", "--scale", "ci", "--figures", "2", "--cache-dir", cache_dir,
                "--shard-index", str(index), "--shard-count", "2",
            ) == 0
        capsys.readouterr()
        assert run_cli(
            "report", "--scale", "ci", "--figures", "2", "--cache-dir", cache_dir,
            "--output-dir", str(tmp_path / "report"), "--expect-warm",
        ) == 0
        assert "4 warm, 0 recomputed" in capsys.readouterr().err

    def test_expect_warm_cold_cache_fails(self, tmp_path, capsys):
        assert run_cli(
            "report", "--scale", "ci", "--figures", "2",
            "--cache-dir", str(tmp_path / "cold"),
            "--output-dir", str(tmp_path / "report"), "--expect-warm",
        ) == 2
        assert "recomputed" in capsys.readouterr().err


class TestCacheCommand:
    def test_info_and_clear(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        run_cli("run", "--model", "bert", "--scale", "ci", "--cache-dir", cache_dir)
        capsys.readouterr()
        assert run_cli("cache", "info", "--cache-dir", cache_dir) == 0
        out = capsys.readouterr().out
        assert "entries    : 1" in out
        assert "stale tmp  : 0" in out
        assert run_cli("cache", "clear", "--cache-dir", cache_dir) == 0
        assert "removed 1" in capsys.readouterr().out
        assert run_cli("cache", "path", "--cache-dir", cache_dir) == 0
        assert cache_dir in capsys.readouterr().out

    def test_merge_requires_sources(self, tmp_path, capsys):
        assert run_cli("cache", "merge", "--cache-dir", str(tmp_path / "c")) == 2
        assert "at least one source" in capsys.readouterr().err

    def test_non_merge_actions_reject_stray_sources(self, tmp_path, capsys):
        """`cache clear shard0` must not silently clear the default cache."""
        assert run_cli("cache", "clear", "shard0", "--cache-dir", str(tmp_path / "c")) == 2
        assert "--cache-dir" in capsys.readouterr().err


class TestModuleEntryPoint:
    def test_python_dash_m_repro(self, tmp_path):
        """The acceptance-criteria invocation, end to end in a fresh process."""
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "figure", "11", "--scale", "ci",
             "--models", "bert", "--jobs", "2"],
            cwd=tmp_path, env=env, capture_output=True, text=True, timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        results = json.loads(proc.stdout)
        assert results["bert"]["g10"] > results["bert"]["base_uvm"]
        # The default cache landed in the working directory.
        assert (tmp_path / ".repro_cache").is_dir()


class TestRegistryListings:
    def test_list_policies(self, capsys):
        assert run_cli("run", "--list-policies") == 0
        out = capsys.readouterr().out
        for name in ("ideal", "base_uvm", "deepum", "flashneuron",
                     "g10", "g10_gds", "g10_host"):
            assert name in out
        assert "G10-GDS" in out  # display labels shown alongside keys

    def test_list_models(self, capsys):
        assert run_cli("run", "--list-models") == 0
        out = capsys.readouterr().out
        for name in ("bert", "vit", "inceptionv3", "resnet152", "senet154"):
            assert name in out
        assert "Hugging Face / CoLA" in out

    def test_run_without_model_or_listing_is_an_error(self, capsys):
        assert run_cli("run") == 2
        assert "--model" in capsys.readouterr().err

    def test_paper_style_policy_label_accepted(self, capsys):
        # "G10+Host" used to normalize to "g10host" and be rejected.
        assert run_cli("run", "--model", "bert", "--policy", "G10+Host",
                       "--scale", "ci", "--no-cache") == 0
        assert "G10-Host" in capsys.readouterr().out

    def test_plugins_flag_experiment_selectable_as_figure(self, tmp_path, capsys, monkeypatch):
        """--plugins loads before the parser, so plugin experiment ids parse."""
        plugin = tmp_path / "cli_exp_plugin.py"
        plugin.write_text(
            "from repro import register_experiment\n"
            "@register_experiment(id='plugin_exp', title='Plugin experiment',\n"
            "                     replace=True)\n"
            "def render(scale='ci', runner=None):\n"
            "    return {'scale': scale}\n"
        )
        monkeypatch.syspath_prepend(str(tmp_path))
        monkeypatch.setenv("REPRO_PLUGINS", "")  # restored after the test
        from repro.registry import EXPERIMENT_REGISTRY
        try:
            assert run_cli("figure", "plugin_exp", "--scale", "ci", "--no-cache",
                           "--plugins", "cli_exp_plugin") == 0
            assert json.loads(capsys.readouterr().out) == {"scale": "ci"}
        finally:
            EXPERIMENT_REGISTRY.unregister("plugin_exp")

    def test_plugins_flag_registers_policy(self, tmp_path, capsys, monkeypatch):
        plugin = tmp_path / "cli_test_plugin.py"
        plugin.write_text(
            "from repro import register_policy\n"
            "from repro.baselines import BaseUVMPolicy\n"
            "@register_policy('cli_plugin_policy', replace=True)\n"
            "class CliPluginPolicy(BaseUVMPolicy):\n"
            "    name = 'CLI Plugin Policy'\n"
        )
        monkeypatch.syspath_prepend(str(tmp_path))
        monkeypatch.setenv("REPRO_PLUGINS", "")  # restored after the test
        from repro.registry import POLICY_REGISTRY
        try:
            assert run_cli(
                "run", "--model", "bert", "--policy", "cli_plugin_policy",
                "--scale", "ci", "--no-cache", "--plugins", "cli_test_plugin",
            ) == 0
            assert "CLI Plugin Policy" in capsys.readouterr().out
        finally:
            POLICY_REGISTRY.unregister("cli_plugin_policy")
