"""Backend-conformance suite: file and HTTP queues are interchangeable.

Every test in :class:`TestBackendConformance` runs twice — once against the
file-backed :class:`WorkQueue` and once against an :class:`HttpWorkQueue`
speaking to a real in-process ``repro serve`` server — via one fixture
parameterization. The suite pins the *contract* of
:class:`repro.experiments.backend.QueueBackend` (idempotent enqueue,
deterministic drain order, lease/ack/release/renew/requeue semantics,
attempt budgets, event auditing), so any future backend can prove itself by
running here.

The HTTP harness starts a genuine :class:`QueueServer` (asyncio, background
thread, OS-assigned port) with an injected clock, so tests advance the
*server's* authority clock directly and inspect the server's queue directory
as filesystem ground truth. :class:`TestHttpAuthority` covers the semantics
that only exist over HTTP: the server being the single clock authority (a
skew-clocked client cannot force a requeue) and the SIGKILL-mid-HTTP-lease
drain staying bit-identical to a serial run.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, QueueConnectionError, QueueError
from repro.experiments import (
    HttpResultCache,
    HttpWorkQueue,
    QueueRunner,
    QueueServer,
    SweepRunner,
    SweepSpec,
    WorkQueue,
    jsonify,
)
from tests.test_queue import KEYS, FakeClock, states_per_key

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Three fast ci-scale simulation cells (one workload, three policies).
SPEC = SweepSpec.grid(
    "queue-conformance", models=("bert",), policies=("ideal", "base_uvm", "g10"), scale="ci"
)


class BackendHarness:
    """One backend under test: the client-facing queue, the authority clock,
    and the server-side :class:`WorkQueue` used as filesystem ground truth
    (for the file backend the queue *is* the ground truth)."""

    def __init__(self, queue, clock, authority, close=None):
        self.queue = queue
        self.clock = clock
        self.authority = authority
        self._close = close
        self._closed = False

    def close(self) -> None:
        if not self._closed and self._close is not None:
            self._close()
        self._closed = True


def _start_http(root: Path, timeout: float, max_attempts: int | None) -> BackendHarness:
    clock = FakeClock()
    server = QueueServer(
        root / "q", root / "c", port=0,
        lease_timeout=timeout, max_attempts=max_attempts, clock=clock,
    )
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()
    asyncio.run_coroutine_threadsafe(server.start(), loop).result(timeout=10)

    def close() -> None:
        asyncio.run_coroutine_threadsafe(server.stop(), loop).result(timeout=10)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10)

    return BackendHarness(HttpWorkQueue(server.url), clock, server.queue, close)


@pytest.fixture(params=["file", "http"])
def make_backend(request, tmp_path):
    """Factory building a fresh backend (+ its authority clock) per call."""
    counter = itertools.count()
    harnesses: list[BackendHarness] = []

    def build(timeout: float = 1.0, max_attempts: int | None = 5) -> BackendHarness:
        root = tmp_path / f"b{next(counter)}"
        if request.param == "file":
            clock = FakeClock()
            queue = WorkQueue(
                root / "q", lease_timeout=timeout, max_attempts=max_attempts, clock=clock
            )
            harness = BackendHarness(queue, clock, queue)
        else:
            harness = _start_http(root, timeout, max_attempts)
        harnesses.append(harness)
        return harness

    yield build
    for harness in harnesses:
        harness.close()


class TestBackendConformance:
    def test_config_mirrors_the_authority(self, make_backend):
        h = make_backend(timeout=7.0, max_attempts=3)
        assert h.queue.lease_timeout == 7.0
        assert h.queue.max_attempts == 3

    def test_enqueue_lease_ack_lifecycle(self, make_backend):
        h = make_backend()
        counts = h.queue.enqueue_tasks((key, {"cell": None}) for key in KEYS[:3])
        assert counts == {"queued": 3, "warm": 0, "retried": 0, "skipped": 0}
        assert h.queue.status()["queued"] == 3 and h.queue.pending() == 3

        lease = h.queue.lease("w0")
        assert lease.key == KEYS[0]  # deterministic key-sorted drain order
        assert lease.attempts == 1 and lease.worker == "w0"
        assert h.queue.status()["leased"] == 1

        assert h.queue.ack(lease)
        status = h.queue.status()
        assert status["done"] == 1 and status["queued"] == 2 and status["leased"] == 0
        assert status["total"] == status["expected"] == 3
        assert not h.queue.drained()

    def test_lease_drains_in_deterministic_key_order_then_none(self, make_backend):
        h = make_backend()
        h.queue.enqueue_tasks((key, {"cell": None}) for key in reversed(KEYS))
        leased = [h.queue.lease(f"w{i}").key for i in range(len(KEYS))]
        assert leased == sorted(KEYS)
        assert h.queue.lease("late") is None

    def test_enqueue_is_idempotent(self, make_backend):
        h = make_backend()
        h.queue.enqueue_tasks([(KEYS[0], {"cell": None})])
        h.queue.ack(h.queue.lease("w0"))
        h.queue.enqueue_tasks([(KEYS[0], {"cell": None}), (KEYS[1], {"cell": None})])
        status = h.queue.status()
        assert status["done"] == 1 and status["queued"] == 1 and status["total"] == 2

    def test_warm_keys_are_recorded_as_done(self, make_backend):
        h = make_backend()
        counts = h.queue.enqueue_tasks(
            ((key, {"cell": None}) for key in KEYS[:2]), warm={KEYS[0]}
        )
        assert counts == {"queued": 1, "warm": 1, "retried": 0, "skipped": 0}
        status = h.queue.status()
        assert status["done"] == 1 and status["queued"] == 1 and status["total"] == 2

    def test_ack_is_idempotent(self, make_backend):
        h = make_backend()
        h.queue.enqueue_tasks([(KEYS[0], {"cell": None})])
        lease = h.queue.lease("w0")
        assert h.queue.ack(lease)
        assert h.queue.ack(lease)  # second ack: key already done, still True
        assert h.queue.status()["done"] == 1

    def test_release_keeps_the_attempt_counter(self, make_backend):
        h = make_backend()
        h.queue.enqueue_tasks([(KEYS[0], {"cell": None})])
        assert h.queue.release(h.queue.lease("w0"))
        second = h.queue.lease("w1")
        assert second.key == KEYS[0] and second.attempts == 2

    def test_requeue_stale_honours_the_authority_deadline(self, make_backend):
        h = make_backend(timeout=1.0)
        h.queue.enqueue_tasks([(KEYS[0], {"cell": None})])
        h.queue.lease("dying-worker")
        h.clock.advance(0.5)
        assert h.queue.requeue_stale() == []  # still within its lease
        h.clock.advance(0.6)
        assert h.queue.requeue_stale() == [KEYS[0]]
        status = h.queue.status()
        assert status["queued"] == 1 and status["leased"] == 0
        assert h.queue.lease("rescuer").attempts == 2

    def test_ack_after_expiry_reclaims_from_queued(self, make_backend):
        h = make_backend(timeout=1.0)
        h.queue.enqueue_tasks([(KEYS[0], {"cell": None})])
        lease = h.queue.lease("slow-worker")
        h.clock.advance(2.0)
        assert h.queue.requeue_stale() == [KEYS[0]]
        assert h.queue.ack(lease)  # lease token is gone, but ack reclaims the task
        status = h.queue.status()
        assert status["done"] == 1 and status["queued"] == 0 and status["total"] == 1

    def test_ack_after_reassignment_defers_to_the_new_holder(self, make_backend):
        h = make_backend(timeout=1.0)
        h.queue.enqueue_tasks([(KEYS[0], {"cell": None})])
        stale = h.queue.lease("slow-worker")
        h.clock.advance(2.0)
        h.queue.requeue_stale()
        fresh = h.queue.lease("rescuer")
        assert not h.queue.ack(stale)  # the rescuer owns it now
        assert h.queue.status()["leased"] == 1
        assert h.queue.ack(fresh)
        assert h.queue.status()["done"] == 1

    def test_renew_extends_a_live_lease(self, make_backend):
        h = make_backend(timeout=1.0)
        h.queue.enqueue_tasks([(KEYS[0], {"cell": None})])
        lease = h.queue.lease("w0")
        h.clock.advance(0.8)
        renewed = h.queue.renew(lease)
        assert renewed is not None and renewed.deadline > lease.deadline
        h.clock.advance(0.5)  # 1.3s after the original lease, 0.5s after renewal
        assert h.queue.requeue_stale() == []
        h.clock.advance(0.6)
        assert h.queue.requeue_stale() == [KEYS[0]]
        assert h.queue.renew(renewed) is None

    def test_attempts_cap_parks_the_task_as_failed(self, make_backend):
        h = make_backend(max_attempts=2)
        h.queue.enqueue_tasks([(KEYS[0], {"cell": None})])
        for _ in range(2):
            h.queue.release(h.queue.lease("w0"))
        assert h.queue.lease("w0") is None
        status = h.queue.status()
        assert status["failed"] == 1 and status["queued"] == 0 and status["total"] == 1
        assert h.queue.failed_keys() == {KEYS[0]}
        assert h.queue.drained()

    def test_reenqueue_retries_a_failed_task_with_a_fresh_budget(self, make_backend):
        h = make_backend(max_attempts=1)
        h.queue.enqueue_tasks([(KEYS[0], {"cell": None})])
        h.queue.release(h.queue.lease("w0"))
        assert h.queue.lease("w0") is None
        assert h.queue.failed_keys() == {KEYS[0]}

        counts = h.queue.enqueue_tasks([(KEYS[0], {"cell": None})])
        assert counts == {"queued": 0, "warm": 0, "retried": 1, "skipped": 0}
        lease = h.queue.lease("w1")
        assert lease.key == KEYS[0] and lease.attempts == 1  # budget reset
        assert h.queue.ack(lease)

    def test_slowest_first_priorities_order_the_drain(self, make_backend):
        h = make_backend()
        h.queue.set_priorities({KEYS[0]: 1.0, KEYS[1]: 5.0, KEYS[2]: 3.0})
        h.queue.enqueue_tasks((key, {"cell": None}) for key in KEYS[:3])
        drained = [h.queue.lease(f"w{i}").key for i in range(3)]
        assert drained == [KEYS[1], KEYS[2], KEYS[0]]  # costliest first

    def test_events_audit_every_transition(self, make_backend):
        h = make_backend(timeout=1.0)
        h.queue.enqueue_tasks([(KEYS[0], {"cell": None})])
        h.queue.release(h.queue.lease("w0"))
        h.queue.lease("w0")
        h.clock.advance(2.0)
        h.queue.requeue_stale()
        h.queue.ack(h.queue.lease("w1"))
        h.queue.log_event("error", key=KEYS[0], worker="w1", error="probe")
        kinds = [event["event"] for event in h.queue.events()]
        assert kinds == [
            "enqueue", "lease", "release", "lease", "requeue", "lease", "ack", "error",
        ]

    def test_worker_ids_are_sanitized_into_parseable_leases(self, make_backend):
        """A dotted FQDN worker id must still produce a lease the authority
        can parse back (the PR 4 regex rejected dots, stranding the task)."""
        h = make_backend()
        h.queue.enqueue_tasks([(KEYS[0], {"cell": None})])
        lease = h.queue.lease("node1.cluster.example.com-90210")
        assert "." not in lease.worker
        # Filesystem ground truth: the leased file parses with the *strict*
        # regex, so requeue/status machinery fully understands it.
        assert states_per_key(h.authority) == {KEYS[0]: ["leased"]}

    def test_key_validation_propagates(self, make_backend):
        h = make_backend()
        with pytest.raises(ConfigurationError):
            h.queue.enqueue_tasks([("NOT-HEX!", {"cell": None})])

    def test_clear_removes_everything(self, make_backend):
        h = make_backend()
        h.queue.enqueue_tasks([(KEYS[0], {"cell": None})])
        h.queue.clear()
        assert h.queue.status()["total"] == 0

    def test_connect_info_round_trips(self, make_backend):
        from repro.experiments import backend_from_info

        h = make_backend(timeout=9.0)
        h.queue.enqueue_tasks([(KEYS[0], {"cell": None})])
        rebuilt = backend_from_info(h.queue.connect_info())
        assert type(rebuilt) is type(h.queue)
        assert rebuilt.status()["queued"] == 1
        assert rebuilt.lease_timeout == 9.0


# -- property suite over both backends ----------------------------------------

operations = st.lists(
    st.one_of(
        st.tuples(st.just("enqueue"), st.integers(0, len(KEYS) - 1)),
        st.tuples(st.just("lease"), st.integers(0, 2)),
        st.tuples(st.just("ack"), st.integers(0, 7)),
        st.tuples(st.just("release"), st.integers(0, 7)),
        st.tuples(st.just("advance"), st.integers(1, 30)),  # tenths of a second
        st.tuples(st.just("requeue"), st.just(0)),
    ),
    max_size=25,
)

#: Reduced example count versus tests/test_queue.py: each HTTP example runs a
#: real server and dozens of round trips; the file backend already gets the
#: full-size sweep in its own suite.
relaxed = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


class TestBackendProperties:
    """The PR 4 interleaving invariants, parameterized over both backends: no
    cell is ever lost, no cache key holds two task files (double completion is
    structurally impossible), done is sticky, the queue drains to empty."""

    @relaxed
    @given(ops=operations)
    def test_interleavings_preserve_task_conservation_and_drain(self, make_backend, ops):
        h = make_backend(timeout=1.0, max_attempts=None)
        try:
            enqueued: set[str] = set()
            completed: set[str] = set()
            leases = []

            def check_invariants():
                found = states_per_key(h.authority)
                assert set(found) == enqueued
                for key, states in found.items():
                    assert len(states) == 1, f"{key} duplicated across {states}"
                for key in completed:
                    assert found[key] == ["done"]

            for op, arg in ops:
                if op == "enqueue":
                    h.queue.enqueue_tasks([(KEYS[arg], {"cell": None})])
                    enqueued.add(KEYS[arg])
                elif op == "lease":
                    lease = h.queue.lease(f"w{arg}")
                    if lease is not None:
                        leases.append(lease)
                elif op == "ack" and leases:
                    lease = leases.pop(arg % len(leases))
                    if h.queue.ack(lease):
                        completed.add(lease.key)
                elif op == "release" and leases:
                    h.queue.release(leases.pop(arg % len(leases)))
                elif op == "advance":
                    h.clock.advance(arg / 10)
                elif op == "requeue":
                    h.queue.requeue_stale()
                check_invariants()

            for _ in range(10 * len(KEYS) + 10):
                if h.queue.drained():
                    break
                lease = h.queue.lease("drain")
                if lease is None:
                    h.clock.advance(2.0)
                    h.queue.requeue_stale()
                    continue
                assert h.queue.ack(lease)
                completed.add(lease.key)
                check_invariants()

            assert h.queue.drained()
            status = h.queue.status()
            assert status["done"] == status["total"] == len(enqueued)
            assert status["queued"] == status["leased"] == status["failed"] == 0
        finally:
            h.close()


# -- HTTP-only semantics -------------------------------------------------------

def spawn_http_worker(url: str, *, fault_delay: float, worker_id: str) -> subprocess.Popen:
    """Start a ``repro queue work --queue-url`` consumer as an operator would."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    env["REPRO_QUEUE_FAULT_DELAY"] = str(fault_delay)
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "queue", "work",
            "--queue-url", url, "--worker-id", worker_id,
        ],
        env=env,
        cwd=REPO_ROOT,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def wait_for(predicate, timeout: float = 120.0, interval: float = 0.05) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError("condition not reached before timeout")


class TestHttpAuthority:
    def test_skewed_client_clock_cannot_double_lease(self, tmp_path):
        """Only the server's clock decides staleness: a client whose wall
        clock runs arbitrarily fast must not be able to reclaim (and thereby
        double-lease) a healthy peer's lease."""
        h = _start_http(tmp_path, timeout=300.0, max_attempts=5)
        try:
            h.queue.enqueue_tasks([(KEYS[0], {"cell": None})])
            held = h.queue.lease("healthy-worker")
            assert held is not None
            # A skewed client would pass its own (far-future) idea of "now";
            # the HTTP backend ignores it and defers to the server.
            assert h.queue.requeue_stale(now=time.time() + 10_000.0) == []
            assert h.queue.status()["leased"] == 1
            assert h.queue.lease("skewed-rival") is None  # nothing to steal
            # When the *server's* clock really does pass the deadline, the
            # same call reclaims the lease.
            h.clock.advance(301.0)
            assert h.queue.requeue_stale() == [KEYS[0]]
        finally:
            h.close()

    def test_transport_failure_is_a_distinct_error(self, tmp_path):
        dead = HttpWorkQueue("http://127.0.0.1:9")  # discard port; nothing listens
        with pytest.raises(QueueConnectionError):
            dead.status()
        with pytest.raises(ConfigurationError):
            HttpWorkQueue("not-a-url")

    def test_sigkilled_http_worker_drain_stays_bit_identical_to_serial(self, tmp_path):
        """The tentpole acceptance test: a worker leases a cell over HTTP and
        is SIGKILLed mid-lease; the server requeues it after expiry and the
        surviving HTTP workers drain the grid to results bit-identical to a
        serial run — all without any shared filesystem."""
        serial = SweepRunner(cache=None).run(SPEC)
        reference = json.dumps(jsonify([out.payload for out in serial]), sort_keys=True)

        h = _start_http(tmp_path, timeout=5.0, max_attempts=5)
        try:
            cache = HttpResultCache(h.queue.url)
            counts = h.queue.enqueue(SPEC.cells, cache=cache)
            assert counts["queued"] == 3

            victim = spawn_http_worker(h.queue.url, fault_delay=120.0, worker_id="victim")
            try:
                wait_for(lambda: h.queue.status()["leased"] >= 1)
            finally:
                os.kill(victim.pid, signal.SIGKILL)
                victim.wait(timeout=30)

            status = h.queue.status()
            assert status["leased"] == 1 and status["done"] == 0 and status["queued"] == 2
            assert cache.stats()["entries"] == 0

            # Expire the victim's lease on the *server's* clock and reclaim it
            # through the client (the server ignores client-side timestamps).
            h.clock.advance(6.0)
            requeued = h.queue.requeue_stale()
            assert requeued == [min(cell.cache_key() for cell in SPEC.cells)]

            # Surviving workers drain over HTTP; results go to the server cache.
            QueueRunner(h.queue, cache, workers=2).drain()
            status = h.queue.status()
            assert status["done"] == status["total"] == 3
            assert status["queued"] == status["leased"] == status["failed"] == 0

            events = h.queue.events()
            assert any(e["event"] == "lease" and e["worker"] == "victim" for e in events)
            assert any(e["event"] == "requeue" and e["worker"] == "victim" for e in events)
            acked = [e["key"] for e in events if e["event"] == "ack"]
            assert sorted(acked) == sorted({cell.cache_key() for cell in SPEC.cells})

            # Acceptance: payloads read back over HTTP equal the serial run,
            # bit for bit.
            payloads = [cache.get(cell.cache_key()) for cell in SPEC.cells]
            assert all(payload is not None for payload in payloads)
            actual = json.dumps(jsonify(payloads), sort_keys=True)
            assert actual == reference
        finally:
            h.close()

    def test_sweep_runner_queue_url_mode_is_bit_identical_to_serial(self, tmp_path):
        """``repro sweep --queue-url`` end to end: results land in the server's
        cache and the returned payloads match a serial run exactly."""
        serial = SweepRunner(cache=None).run(SPEC)
        reference = json.dumps(jsonify([out.payload for out in serial]), sort_keys=True)

        h = _start_http(tmp_path, timeout=60.0, max_attempts=5)
        try:
            runner = SweepRunner(jobs=2, queue_url=h.queue.url)
            queued = runner.run(SPEC)
            assert runner.last_stats["executed"] == 3
            actual = json.dumps(jsonify([out.payload for out in queued]), sort_keys=True)
            assert actual == reference

            # A second run is a pure server-cache resume.
            resumed = SweepRunner(jobs=2, queue_url=h.queue.url).run(SPEC)
            assert json.dumps(jsonify([out.payload for out in resumed]), sort_keys=True) == reference
        finally:
            h.close()

    def test_mutually_exclusive_runner_configuration(self, tmp_path):
        with pytest.raises(ConfigurationError):
            SweepRunner(queue_dir=tmp_path / "q", queue_url="http://127.0.0.1:1")
        with pytest.raises(ConfigurationError):
            SweepRunner(queue_url="http://127.0.0.1:1", lease_timeout=5.0)


class TestProtocolHardening:
    """Satellite hardening of the request loop: per-read timeouts and body
    caps answer misbehaving clients with structured ``{"error", "kind"}``
    JSON instead of pinning a handler or buffering unbounded bodies."""

    @staticmethod
    def _start(tmp_path, **kwargs):
        server = QueueServer(tmp_path / "q", tmp_path / "c", port=0, **kwargs)
        loop = asyncio.new_event_loop()
        thread = threading.Thread(target=loop.run_forever, daemon=True)
        thread.start()
        asyncio.run_coroutine_threadsafe(server.start(), loop).result(timeout=10)

        def close() -> None:
            asyncio.run_coroutine_threadsafe(server.stop(), loop).result(timeout=10)
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout=10)

        return server, close

    @staticmethod
    def _exchange(server, raw: bytes, settle: float = 0.0):
        """Send raw bytes, optionally linger, and parse the (status, json) reply."""
        with socket.create_connection(("127.0.0.1", server.port), timeout=10) as sock:
            sock.sendall(raw)
            if settle:
                time.sleep(settle)
            chunks = []
            while True:
                data = sock.recv(65536)
                if not data:
                    break
                chunks.append(data)
        response = b"".join(chunks)
        head, _, body = response.partition(b"\r\n\r\n")
        status = int(head.split(b" ", 2)[1])
        return status, json.loads(body)

    def test_configuration_validation(self, tmp_path):
        with pytest.raises(ConfigurationError):
            QueueServer(tmp_path / "q", tmp_path / "c", read_timeout=0.0)
        with pytest.raises(ConfigurationError):
            QueueServer(tmp_path / "q", tmp_path / "c", read_timeout=-1.0)
        with pytest.raises(ConfigurationError):
            QueueServer(tmp_path / "q", tmp_path / "c", max_body_bytes=0)

    def test_stalled_client_gets_structured_408(self, tmp_path):
        server, close = self._start(tmp_path, read_timeout=0.2)
        try:
            # A request line that never finishes: the read deadline expires
            # and the handler answers instead of waiting forever.
            status, body = self._exchange(server, b"POST /v1/queue/status HTT")
            assert status == 408
            assert body["kind"] == "timeout"
            assert "timed out" in body["error"]

            # The handler is freed, not wedged: the next request succeeds.
            status, body = self._exchange(
                server, b"GET /v1/health HTTP/1.1\r\nHost: x\r\n\r\n"
            )
            assert status == 200 and body["ok"] is True
        finally:
            close()

    def test_stalled_body_gets_structured_408(self, tmp_path):
        server, close = self._start(tmp_path, read_timeout=0.2)
        try:
            status, body = self._exchange(
                server,
                b"POST /v1/cache/get HTTP/1.1\r\nHost: x\r\n"
                b"Content-Length: 100\r\n\r\n{\"key\":",  # body never completes
            )
            assert status == 408
            assert body["kind"] == "timeout"
        finally:
            close()

    def test_oversized_body_gets_structured_413(self, tmp_path):
        server, close = self._start(tmp_path, max_body_bytes=64)
        try:
            declared = 65
            status, body = self._exchange(
                server,
                b"POST /v1/cache/get HTTP/1.1\r\nHost: x\r\n"
                + b"Content-Length: %d\r\n\r\n" % declared
                + b"x" * declared,
            )
            assert status == 413
            assert body == {"error": "request body too large", "kind": "protocol"}

            # At the limit the request is still served normally.
            payload = json.dumps({"key": "k" * 54}, separators=(",", ":")).encode()
            assert len(payload) == 64
            status, body = self._exchange(
                server,
                b"POST /v1/cache/get HTTP/1.1\r\nHost: x\r\n"
                + b"Content-Length: %d\r\n\r\n" % len(payload)
                + payload,
            )
            assert status == 200 and body == {"payload": None}
        finally:
            close()

    def test_negative_content_length_gets_structured_400(self, tmp_path):
        server, close = self._start(tmp_path)
        try:
            status, body = self._exchange(
                server,
                b"POST /v1/cache/get HTTP/1.1\r\nHost: x\r\nContent-Length: -5\r\n\r\n",
            )
            assert status == 400
            assert body == {"error": "bad Content-Length", "kind": "protocol"}
        finally:
            close()

    def test_read_timeout_none_disables_the_deadline(self, tmp_path):
        server, close = self._start(tmp_path, read_timeout=None)
        try:
            assert server.read_timeout is None
            status, body = self._exchange(
                server, b"GET /v1/health HTTP/1.1\r\nHost: x\r\n\r\n"
            )
            assert status == 200 and body["ok"] is True
        finally:
            close()
