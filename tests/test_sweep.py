"""Unit tests for the sweep runner, result cache and serialization layers."""

import dataclasses
import json

import numpy as np
import pytest

from repro.analysis.characterization import characterize_workload
from repro.config import GB, SystemConfig, paper_config
from repro.errors import ConfigurationError
from repro.experiments import (
    CellResult,
    ConfigPatch,
    ResultCache,
    SweepCell,
    SweepRunner,
    SweepSpec,
    build_workload,
    default_config,
    execute_cell,
    resolve_batch_size,
    run_policy,
)
from repro.sim.results import KernelTiming, SimulationResult


class TestConfigSerialization:
    def test_round_trip(self):
        config = paper_config().with_host_memory(7 * GB).with_ssd_bandwidth(1.5 * GB)
        restored = SystemConfig.from_dict(config.to_dict())
        assert restored == config

    def test_fingerprint_is_value_based(self):
        assert paper_config().fingerprint() == paper_config().fingerprint()

    def test_fingerprint_changes_with_any_field(self):
        base = paper_config()
        assert base.with_host_memory(1 * GB).fingerprint() != base.fingerprint()
        assert base.with_gpu_memory(1 * GB).fingerprint() != base.fingerprint()
        assert base.with_ssd_bandwidth(1 * GB).fingerprint() != base.fingerprint()


class TestResultSerialization:
    def test_simulation_result_round_trip(self, bert_ci_workload):
        result = run_policy(bert_ci_workload, "g10")
        restored = SimulationResult.from_dict(result.to_dict())
        assert restored == result
        assert restored.normalized_performance == result.normalized_performance
        assert np.array_equal(restored.kernel_slowdowns(), result.kernel_slowdowns())
        # The dict must be pure JSON: a full dump/load cycle preserves it.
        assert SimulationResult.from_dict(json.loads(json.dumps(result.to_dict()))) == result

    def test_kernel_timing_round_trip(self):
        timing = KernelTiming(index=3, ideal_duration=0.5, stall=0.1, start_time=2.0)
        assert KernelTiming.from_dict(timing.to_dict()) == timing

    def test_failed_result_round_trip(self):
        failed = SimulationResult(
            model_name="m", batch_size=1, policy_name="p",
            ideal_time=1.0, execution_time=float("inf"),
            failed=True, failure_reason="working set exceeds GPU memory",
        )
        # allow_nan=False: the dict must be strict RFC-8259 JSON (no Infinity).
        restored = SimulationResult.from_dict(json.loads(json.dumps(failed.to_dict(), allow_nan=False)))
        assert restored.failed and restored.failure_reason == failed.failure_reason
        assert restored.execution_time == float("inf")


class TestWorkloadMemoKey:
    def test_equal_valued_configs_share_the_memo_entry(self):
        """The memo keys on config *values*: two distinct-but-equal config
        objects must hit the same entry (an id()-based key would miss, and —
        worse — could serve a stale workload after id reuse)."""
        a = build_workload("bert", scale="ci", config=paper_config().with_gpu_memory(10 * GB))
        b = build_workload("bert", scale="ci", config=paper_config().with_gpu_memory(10 * GB))
        assert a is b

    def test_different_configs_do_not_collide(self):
        a = build_workload("bert", scale="ci", config=paper_config().with_gpu_memory(10 * GB))
        b = build_workload("bert", scale="ci", config=paper_config().with_gpu_memory(11 * GB))
        assert a is not b
        assert a.config.gpu.memory_bytes != b.config.gpu.memory_bytes


class TestConfigPatch:
    def test_empty_patch_is_identity(self):
        config = paper_config()
        assert ConfigPatch().is_empty()
        assert ConfigPatch().apply(config) == config

    def test_patch_fields_apply(self):
        patch = ConfigPatch(
            host_memory_bytes=3 * GB,
            interconnect_bandwidth=32 * GB,
            ssd_read_bandwidth=6.4 * GB,
        )
        config = patch.apply(paper_config())
        assert config.host_memory_bytes == 3 * GB
        assert config.interconnect.bandwidth == 32 * GB
        assert config.ssd.read_bandwidth == 6.4 * GB
        # Write bandwidth scales proportionally when not given explicitly.
        assert config.ssd.write_bandwidth == pytest.approx(6.4 * GB * (3.0 / 3.2))

    def test_round_trip(self):
        patch = ConfigPatch(host_memory_bytes=GB, ssd_read_bandwidth=2.0 * GB)
        assert ConfigPatch.from_dict(patch.to_dict()) == patch
        assert ConfigPatch.from_dict({}) == ConfigPatch()


class TestSweepCell:
    def test_resolution_fills_defaults(self):
        cell = SweepCell(model="BERT", policy="g10", scale="ci").resolved()
        assert cell.model == "bert"
        assert cell.batch_size == resolve_batch_size("bert", "ci")

    def test_seed_is_canonicalized_without_noise(self):
        assert SweepCell(model="bert", seed=7).resolved().seed == 0
        assert SweepCell(model="bert", profiling_error=0.1, seed=7).resolved().seed == 7

    def test_cache_key_is_stable_and_sensitive(self):
        cell = SweepCell(model="bert", policy="g10", scale="ci")
        assert cell.cache_key() == SweepCell(model="BERT", policy="g10", scale="ci").cache_key()
        assert cell.cache_key() != dataclasses.replace(cell, policy="deepum").cache_key()
        assert cell.cache_key() != dataclasses.replace(cell, batch_size=16).cache_key()
        assert (
            cell.cache_key()
            != dataclasses.replace(cell, patch=ConfigPatch(host_memory_bytes=GB)).cache_key()
        )

    def test_cell_config_applies_patch_to_scale_default(self):
        cell = SweepCell(model="bert", scale="ci", patch=ConfigPatch(host_memory_bytes=GB))
        config = cell.config()
        assert config.host_memory_bytes == GB
        assert config.gpu.memory_bytes == default_config("bert", "ci").gpu.memory_bytes

    def test_round_trip(self):
        cell = SweepCell(
            model="vit", policy=None, batch_size=32, scale="ci",
            patch=ConfigPatch(ssd_read_bandwidth=GB), profiling_error=0.1, seed=3,
        )
        assert SweepCell.from_dict(cell.to_dict()) == cell


class TestSweepSpecGrid:
    def test_grid_is_model_major(self):
        spec = SweepSpec.grid("g", models=("bert", "vit"), policies=("g10", "deepum"), scale="ci")
        assert [(c.model, c.policy) for c in spec.cells] == [
            ("bert", "g10"), ("bert", "deepum"), ("vit", "g10"), ("vit", "deepum"),
        ]


class TestSweepRunner:
    SPEC = SweepSpec.grid(
        "unit", models=("bert",), policies=("g10", "base_uvm"), scale="ci"
    )

    def test_parallel_matches_serial_bit_for_bit(self):
        serial = SweepRunner().run(self.SPEC)
        parallel = SweepRunner(jobs=2).run(self.SPEC)
        assert [out.cell for out in serial] == [out.cell for out in parallel]
        for s, p in zip(serial, parallel):
            assert s.payload == p.payload
            assert s.result == p.result

    def test_cache_hit_miss_and_invalidation(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        runner = SweepRunner(cache=cache)

        first = runner.run(self.SPEC)
        stats = runner.last_stats
        assert (stats["cells"], stats["cache_hits"], stats["executed"]) == (2, 0, 2)
        # The executed g10 cell planned in-process, so the plan-fragment
        # cache saw at least one lookup (hit or miss depends on what earlier
        # tests already warmed into the process-global cache).
        assert stats["plan_full_hits"] + stats["plan_fragment_hits"] + stats["plan_misses"] >= 1
        assert all(not out.cached for out in first)

        second = runner.run(self.SPEC)
        stats = runner.last_stats
        assert (stats["cells"], stats["cache_hits"], stats["executed"]) == (2, 2, 0)
        # A pure result-cache resume never plans, so no plan-cache lookups.
        assert stats["plan_full_hits"] + stats["plan_fragment_hits"] + stats["plan_misses"] == 0
        assert all(out.cached for out in second)
        assert [s.payload for s in first] == [s.payload for s in second]

        # Changing any configuration input changes the key: a miss, not a stale hit.
        patched = SweepSpec.grid(
            "unit", models=("bert",), policies=("g10", "base_uvm"), scale="ci",
            patches=(ConfigPatch(host_memory_bytes=GB),),
        )
        runner.run(patched)
        assert runner.last_stats["cache_hits"] == 0
        assert runner.last_stats["executed"] == 2

    def test_corrupt_cache_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = SweepRunner(cache=cache)
        cell = self.SPEC.cells[0]
        runner.run([cell])
        cache.path_for(cell.cache_key()).write_text("{not json", encoding="utf-8")
        out = runner.run([cell])[0]
        assert not out.cached

    def test_identical_cells_execute_once(self, tmp_path):
        cell = SweepCell(model="bert", policy="g10", scale="ci")
        runner = SweepRunner(cache=ResultCache(tmp_path))
        outs = runner.run([cell, dataclasses.replace(cell, seed=5), cell])
        assert runner.last_stats["executed"] == 1
        assert outs[0].payload == outs[1].payload == outs[2].payload

    def test_cache_stats_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        SweepRunner(cache=cache).run(self.SPEC)
        stats = cache.stats()
        assert stats["entries"] == 2 and stats["bytes"] > 0
        assert cache.clear() == 2
        assert cache.stats()["entries"] == 0


class TestCharacterizationCells:
    def test_characterization_cell_matches_direct_analysis(self, bert_ci_workload):
        out = SweepRunner().run_one(SweepCell(model="bert", policy=None, scale="ci"))
        assert out.kind == "characterization"
        direct = characterize_workload(bert_ci_workload.report)
        char = out.characterization
        assert np.allclose(char.total_fraction, direct.total_fraction)
        assert np.allclose(char.inactive_period_seconds, direct.inactive_period_seconds)
        assert char.mean_active_fraction == pytest.approx(direct.mean_active_fraction)

    def test_simulation_accessor_guards_kind(self):
        out = SweepRunner().run_one(SweepCell(model="bert", policy=None, scale="ci"))
        with pytest.raises(ConfigurationError):
            _ = out.result

    def test_workload_metadata_present(self):
        out = SweepRunner().run_one(SweepCell(model="bert", policy="g10", scale="ci"))
        meta = out.workload
        assert meta["model"] == "bert"
        assert meta["num_kernels"] > 50
        assert meta["memory_footprint_ratio"] > 1.0


class TestExecuteCell:
    def test_profiling_error_cell(self, bert_ci_workload):
        payload = execute_cell(
            SweepCell(model="bert", policy="g10", scale="ci", profiling_error=0.2, seed=5)
        )
        direct = run_policy(bert_ci_workload, "g10", profiling_error=0.2, seed=5)
        assert SimulationResult.from_dict(payload["result"]) == direct

    def test_patched_cell_simulates_under_patched_config(self):
        # Zero host memory forces every eviction to flash: traffic must shift.
        plain = SweepRunner().run_one(SweepCell(model="bert", policy="g10", scale="ci"))
        patched = SweepRunner().run_one(
            SweepCell(model="bert", policy="g10", scale="ci", patch=ConfigPatch(host_memory_bytes=0))
        )
        assert patched.result.traffic.gpu_host_bytes == 0
        assert plain.result.traffic.gpu_host_bytes > 0
