"""Tests for the smart eviction scheduler, prefetcher and migration plan (§4.3-4.4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import MB, SystemConfig, paper_config
from repro.core import (
    ChannelSchedule,
    Direction,
    EvictionPolicyConfig,
    MemoryPressureTimeline,
    MigrationDestination,
    MigrationPlanner,
    SmartEvictionScheduler,
    SmartPrefetcher,
    instrument_program,
)
from repro.core.plan import MigrationPlan, PlannedEviction, PlannedPrefetch
from repro.core.pressure import period_slot_indices
from repro.core.vitality import InactivePeriod, TensorVitalityAnalyzer
from repro.errors import SchedulingError


def _small_system(gpu_bytes: int, host_bytes: int = 64 * MB) -> SystemConfig:
    return paper_config().with_gpu_memory(gpu_bytes).with_host_memory(host_bytes)


class TestMemoryPressureTimeline:
    def test_excess_and_benefit(self):
        timeline = MemoryPressureTimeline(np.array([10.0, 30.0, 30.0, 10.0]), 20.0)
        assert timeline.total_excess == pytest.approx(20.0)
        period = InactivePeriod(tensor_id=1, size_bytes=15, start_slot=0, end_slot=3)
        assert timeline.eviction_benefit(period) == pytest.approx(20.0)

    def test_benefit_capped_by_tensor_size(self):
        timeline = MemoryPressureTimeline(np.array([10.0, 50.0, 10.0]), 20.0)
        period = InactivePeriod(tensor_id=1, size_bytes=5, start_slot=0, end_slot=2)
        assert timeline.eviction_benefit(period) == pytest.approx(5.0)

    def test_apply_eviction_reduces_pressure(self):
        timeline = MemoryPressureTimeline(np.array([10.0, 30.0, 30.0, 10.0]), 20.0)
        period = InactivePeriod(tensor_id=1, size_bytes=15, start_slot=0, end_slot=3)
        timeline.apply_eviction(period, np.array([1, 2]))
        assert timeline.peak == pytest.approx(15.0)
        assert timeline.fits()

    def test_double_eviction_detected(self):
        timeline = MemoryPressureTimeline(np.array([10.0, 12.0]), 20.0)
        period = InactivePeriod(tensor_id=1, size_bytes=11, start_slot=0, end_slot=2)
        timeline.apply_eviction(period, np.array([1]))
        with pytest.raises(SchedulingError):
            timeline.apply_eviction(period, np.array([1]))

    def test_invalid_capacity_rejected(self):
        with pytest.raises(SchedulingError):
            MemoryPressureTimeline(np.array([1.0]), 0.0)

    def test_period_slot_indices_wraparound(self):
        period = InactivePeriod(tensor_id=0, size_bytes=8, start_slot=7, end_slot=12, wraps_around=True)
        assert list(period_slot_indices(period, 10)) == [8, 9, 0, 1]


class TestChannelSchedule:
    def _schedule(self, slots: int = 10) -> ChannelSchedule:
        return ChannelSchedule(np.full(slots, 0.1), paper_config())

    def test_transfer_time_ssd_slower_than_host(self):
        schedule = self._schedule()
        ssd = schedule.transfer_time(1e9, to_ssd=True, direction=Direction.OUT)
        host = schedule.transfer_time(1e9, to_ssd=False, direction=Direction.OUT)
        assert ssd > host

    def test_probe_forward_finds_completion(self):
        schedule = self._schedule()
        config = paper_config()
        size = config.ssd.write_bandwidth * 0.25  # needs ~2.5 slots of 0.1 s
        assert schedule.probe_forward(size, 0, 10, to_ssd=True) == 2

    def test_probe_forward_detects_congestion(self):
        schedule = self._schedule(slots=3)
        config = paper_config()
        size = config.ssd.write_bandwidth * 10
        assert schedule.probe_forward(size, 0, 3, to_ssd=True) is None

    def test_reserve_consumes_capacity(self):
        schedule = self._schedule()
        config = paper_config()
        size = config.ssd.write_bandwidth * 0.1
        first = schedule.probe_forward(size, 0, 10, to_ssd=True)
        schedule.reserve(size, 0, to_ssd=True, direction=Direction.OUT)
        second = schedule.probe_forward(size, 0, 10, to_ssd=True)
        assert second > first

    def test_probe_backward_symmetry(self):
        schedule = self._schedule()
        config = paper_config()
        size = config.ssd.read_bandwidth * 0.15
        start = schedule.probe_backward(size, 10, 0, to_ssd=True)
        assert start == 8

    def test_pcie_shared_between_ssd_and_host(self):
        schedule = self._schedule()
        config = paper_config()
        # Saturate pcie_out with host traffic, then SSD writes can't be placed.
        schedule.reserve(config.interconnect.bandwidth * 1.0, 0, to_ssd=False, direction=Direction.OUT)
        remaining = schedule.available_bytes(True, Direction.OUT, np.arange(10)).sum()
        assert remaining == pytest.approx(0.0, abs=1e-3)

    def test_invalid_durations_rejected(self):
        with pytest.raises(SchedulingError):
            ChannelSchedule(np.array([0.0, 0.1]), paper_config())
        with pytest.raises(SchedulingError):
            ChannelSchedule(np.array([]), paper_config())


class TestPlanStructures:
    def test_eviction_validation(self):
        period = InactivePeriod(tensor_id=1, size_bytes=10, start_slot=0, end_slot=4)
        with pytest.raises(SchedulingError):
            PlannedEviction(1, 0, MigrationDestination.SSD, 0, 1, period)
        with pytest.raises(SchedulingError):
            PlannedEviction(1, 10, MigrationDestination.SSD, 3, 1, period)

    def test_prefetch_validation(self):
        period = InactivePeriod(tensor_id=1, size_bytes=10, start_slot=0, end_slot=4)
        with pytest.raises(SchedulingError):
            PlannedPrefetch(1, 10, MigrationDestination.SSD, issue_slot=3,
                            latest_safe_slot=2, deadline_slot=4, period=period)

    def test_plan_grouping_and_stats(self):
        period = InactivePeriod(tensor_id=1, size_bytes=10, start_slot=0, end_slot=4)
        eviction = PlannedEviction(1, 10, MigrationDestination.HOST, 0, 1, period)
        prefetch = PlannedPrefetch(1, 10, MigrationDestination.HOST, 3, 3, 4, period)
        plan = MigrationPlan(gpu_capacity_bytes=100, num_slots=5,
                             evictions=[eviction], prefetches=[prefetch])
        assert plan.evictions_by_slot() == {0: [eviction]}
        assert plan.prefetches_by_slot() == {3: [prefetch]}
        assert plan.bytes_to(MigrationDestination.HOST) == 10
        assert plan.bytes_to(MigrationDestination.SSD) == 0
        assert plan.eviction_for_period(period) is eviction


class TestEvictionScheduler:
    def _plan_for(self, report, config, **policy_kwargs):
        scheduler = SmartEvictionScheduler(report, config, EvictionPolicyConfig(**policy_kwargs))
        return scheduler, scheduler.schedule()

    def test_no_evictions_when_workload_fits(self, tiny_training, tiny_report, paper_cfg):
        _, plan = self._plan_for(tiny_report, paper_cfg)
        assert plan.num_evictions == 0
        assert plan.fits_in_gpu

    def test_evictions_appear_under_pressure(self, tiny_training, tiny_report):
        config = _small_system(int(tiny_report.peak_pressure * 0.5))
        scheduler, plan = self._plan_for(tiny_report, config)
        assert plan.num_evictions > 0
        assert plan.planned_peak_pressure < tiny_report.peak_pressure

    def test_every_eviction_has_matching_prefetch(self, tiny_report):
        config = _small_system(int(tiny_report.peak_pressure * 0.5))
        _, plan = self._plan_for(tiny_report, config)
        assert plan.num_prefetches == plan.num_evictions
        for eviction, prefetch in zip(plan.evictions, plan.prefetches_sorted()
                                      if hasattr(plan, "prefetches_sorted") else plan.prefetches):
            assert prefetch.size_bytes > 0

    def test_prefetch_never_before_eviction_completes(self, tiny_report):
        config = _small_system(int(tiny_report.peak_pressure * 0.5))
        _, plan = self._plan_for(tiny_report, config)
        prefetch_by_period = {id(p.period): p for p in plan.prefetches}
        for eviction in plan.evictions:
            prefetch = prefetch_by_period[id(eviction.period)]
            if not eviction.period.wraps_around:
                assert prefetch.issue_slot > eviction.expected_completion_slot

    def test_gds_variant_never_uses_host(self, tiny_report):
        config = _small_system(int(tiny_report.peak_pressure * 0.5))
        _, plan = self._plan_for(tiny_report, config, allow_host=False)
        assert plan.bytes_to(MigrationDestination.HOST) == 0

    def test_planned_peak_never_increases(self, tiny_report):
        config = _small_system(int(tiny_report.peak_pressure * 0.5))
        scheduler, plan = self._plan_for(tiny_report, config)
        assert plan.planned_peak_pressure <= tiny_report.peak_pressure + 1e-6

    def test_alternative_rankings_still_reduce_pressure(self, tiny_report):
        config = _small_system(int(tiny_report.peak_pressure * 0.5))
        for ranking in ("largest_tensor", "longest_period"):
            _, plan = self._plan_for(tiny_report, config, ranking=ranking)
            assert plan.planned_peak_pressure <= tiny_report.peak_pressure

    def test_invalid_policy_rejected(self):
        with pytest.raises(SchedulingError):
            EvictionPolicyConfig(allow_ssd=False, allow_host=False)
        with pytest.raises(SchedulingError):
            EvictionPolicyConfig(ranking="fifo")
        with pytest.raises(SchedulingError):
            EvictionPolicyConfig(ssd_saturation_threshold=0.0)

    def test_benefit_cost_beats_naive_rankings(self, bert_ci_workload):
        """The paper's benefit/cost ranking should clear at least as much excess."""
        report = bert_ci_workload.report
        config = bert_ci_workload.config
        peaks = {}
        for ranking in ("benefit_cost", "largest_tensor", "longest_period"):
            scheduler = SmartEvictionScheduler(report, config, EvictionPolicyConfig(ranking=ranking))
            peaks[ranking] = scheduler.schedule().planned_peak_pressure
        assert peaks["benefit_cost"] <= min(peaks.values()) * 1.05


class TestSmartPrefetcher:
    def test_prefetches_move_earlier_not_later(self, bert_ci_workload):
        report = bert_ci_workload.report
        config = bert_ci_workload.config
        scheduler = SmartEvictionScheduler(report, config)
        plan = scheduler.schedule()
        latest = {id(p.period): p.issue_slot for p in plan.prefetches}
        optimized = SmartPrefetcher(scheduler.pressure).optimize(plan)
        assert optimized.num_prefetches == plan.num_prefetches
        for prefetch in optimized.prefetches:
            assert prefetch.issue_slot <= latest[id(prefetch.period)]
            assert prefetch.issue_slot <= prefetch.latest_safe_slot

    def test_eager_prefetch_respects_capacity(self, bert_ci_workload):
        report = bert_ci_workload.report
        config = bert_ci_workload.config
        scheduler = SmartEvictionScheduler(report, config)
        plan = scheduler.schedule()
        before_peak = scheduler.pressure.peak
        optimized = SmartPrefetcher(scheduler.pressure).optimize(plan)
        # Eager prefetching may fill spare headroom but must not create new
        # overflow beyond what the eviction pass already left.
        assert optimized.planned_peak_pressure <= max(before_peak, config.gpu.memory_bytes) + 1e-6


class TestMigrationPlanner:
    def test_planner_end_to_end(self, bert_ci_workload):
        planner = MigrationPlanner(bert_ci_workload.config)
        result = planner.plan_from_report(bert_ci_workload.report)
        assert result.baseline_peak_pressure >= result.planned_peak_pressure
        assert result.plan.num_slots == bert_ci_workload.graph.num_kernels

    def test_eager_prefetch_toggle(self, bert_ci_workload):
        eager = MigrationPlanner(bert_ci_workload.config, eager_prefetch=True)
        lazy = MigrationPlanner(bert_ci_workload.config, eager_prefetch=False)
        eager_plan = eager.plan_from_report(bert_ci_workload.report).plan
        lazy_plan = lazy.plan_from_report(bert_ci_workload.report).plan
        eager_issue = sum(p.issue_slot for p in eager_plan.prefetches)
        lazy_issue = sum(p.issue_slot for p in lazy_plan.prefetches)
        assert eager_issue <= lazy_issue

    def test_instrumented_program_contains_plan(self, bert_ci_workload):
        planner = MigrationPlanner(bert_ci_workload.config)
        result = planner.plan_from_report(bert_ci_workload.report)
        program = instrument_program(
            bert_ci_workload.graph, bert_ci_workload.report, result.plan
        )
        text = program.text()
        assert "g10_alloc" in text and "g10_free" in text
        if result.plan.num_evictions:
            assert "g10_pre_evict" in text
            assert "g10_prefetch" in text
        assert program.num_instructions >= result.plan.num_evictions


class TestSchedulerProperties:
    @given(
        capacity_fraction=st.floats(min_value=0.3, max_value=1.2),
    )
    @settings(max_examples=12, deadline=None)
    def test_plan_invariants_across_capacities(self, capacity_fraction, tiny_report):
        """For any GPU capacity, the plan never increases pressure and pairs
        every eviction with a prefetch of the same tensor."""
        capacity = max(int(tiny_report.peak_pressure * capacity_fraction), 4 * MB)
        config = _small_system(capacity)
        scheduler = SmartEvictionScheduler(tiny_report, config)
        plan = scheduler.schedule()
        assert plan.planned_peak_pressure <= tiny_report.peak_pressure + 1e-6
        evicted = sorted(e.tensor_id for e in plan.evictions)
        prefetched = sorted(p.tensor_id for p in plan.prefetches)
        assert evicted == prefetched
