"""Tests for the flash SSD substrate: geometry, FTL, GC, wear, device model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import MB, SSDConfig
from repro.errors import SSDError
from repro.ssd import FlashGeometry, FlashTranslationLayer, SSDDevice, WearTracker
from repro.ssd.flash import FlashBlock


def small_ssd_config(**overrides) -> SSDConfig:
    defaults = dict(
        capacity_bytes=8 * MB,
        flash_page_size=4096,
        pages_per_block=16,
        channels=2,
        gc_threshold=0.1,
    )
    defaults.update(overrides)
    return SSDConfig(**defaults)


class TestFlashBlock:
    def test_program_and_invalidate(self):
        block = FlashBlock(block_id=0, pages_per_block=4)
        offsets = [block.program() for _ in range(4)]
        assert offsets == [0, 1, 2, 3]
        assert block.is_full and block.valid_pages == 4
        block.invalidate(1)
        assert block.valid_pages == 3

    def test_program_full_block_rejected(self):
        block = FlashBlock(block_id=0, pages_per_block=1)
        block.program()
        with pytest.raises(SSDError):
            block.program()

    def test_invalidate_unprogrammed_rejected(self):
        block = FlashBlock(block_id=0, pages_per_block=4)
        with pytest.raises(SSDError):
            block.invalidate(0)

    def test_erase_resets_and_counts(self):
        block = FlashBlock(block_id=0, pages_per_block=2)
        block.program()
        block.erase()
        assert block.erase_count == 1
        assert block.valid_pages == 0 and block.free_pages == 2


class TestGeometry:
    def test_from_config_matches_capacity_order(self):
        config = small_ssd_config()
        geometry = FlashGeometry.from_config(config)
        assert geometry.capacity_bytes >= config.capacity_bytes * 0.5
        assert geometry.total_blocks == geometry.channels * geometry.blocks_per_channel

    def test_invalid_geometry_rejected(self):
        with pytest.raises(SSDError):
            FlashGeometry(channels=0, blocks_per_channel=1, pages_per_block=1, page_size=1)


class TestFTL:
    def _ftl(self, blocks: int = 8, pages: int = 8) -> FlashTranslationLayer:
        geometry = FlashGeometry(
            channels=1, blocks_per_channel=blocks, pages_per_block=pages, page_size=4096
        )
        return FlashTranslationLayer(geometry, gc_threshold_blocks=2)

    def test_write_then_read_roundtrip(self):
        ftl = self._ftl()
        ftl.write(7)
        assert ftl.is_mapped(7)
        block, offset = ftl.read(7)
        assert ftl.blocks[block].valid[offset]

    def test_overwrite_invalidates_old_location(self):
        ftl = self._ftl()
        ftl.write(1)
        old = ftl.read(1)
        ftl.write(1)
        new = ftl.read(1)
        assert new != old
        assert not ftl.blocks[old[0]].valid[old[1]]

    def test_unmapped_read_rejected(self):
        with pytest.raises(SSDError):
            self._ftl().read(42)

    def test_trim_unmaps(self):
        ftl = self._ftl()
        ftl.write(3)
        ftl.trim(3)
        assert not ftl.is_mapped(3)

    def test_gc_reclaims_space_and_preserves_data(self):
        ftl = self._ftl(blocks=4, pages=4)
        live = list(range(6))
        for page in live:
            ftl.write(page)
        # Overwrite repeatedly to create stale pages and force GC.
        for _ in range(8):
            for page in live:
                ftl.write(page)
        assert ftl.blocks_erased > 0
        for page in live:
            block, offset = ftl.read(page)
            assert ftl.blocks[block].valid[offset]

    def test_write_amplification_grows_with_gc(self):
        ftl = self._ftl(blocks=4, pages=4)
        for _ in range(10):
            for page in range(6):
                ftl.write(page)
        assert ftl.write_amplification > 1.0

    def test_out_of_space_detected(self):
        ftl = self._ftl(blocks=2, pages=2)
        with pytest.raises(SSDError):
            for page in range(100):
                ftl.write(page)

    @given(st.lists(st.integers(min_value=0, max_value=10), min_size=1, max_size=120))
    @settings(max_examples=30, deadline=None)
    def test_mapping_always_points_to_valid_pages(self, writes):
        ftl = self._ftl(blocks=8, pages=8)
        for logical in writes:
            ftl.write(logical)
        for logical in set(writes):
            block, offset = ftl.read(logical)
            assert ftl.blocks[block].valid[offset]
        assert ftl.mapped_pages == len(set(writes))


class TestWearTracker:
    def test_lifetime_matches_paper_formula(self):
        config = SSDConfig()
        tracker = WearTracker(config)
        # Sustain exactly half the SSD write bandwidth for one second.
        tracker.record_write(config.write_bandwidth / 2)
        estimate = tracker.lifetime(elapsed_seconds=1.0)
        expected_years = (
            config.endurance_dwpd * config.endurance_days * config.capacity_bytes
            / (config.write_bandwidth / 2) / (365 * 24 * 3600)
        )
        assert estimate.lifetime_years == pytest.approx(expected_years, rel=1e-6)

    def test_paper_headline_lifetime(self):
        """§7.7: a 50/50 read/write mix at 3 GB/s projects to ~3.7 years."""
        config = SSDConfig()
        tracker = WearTracker(config)
        # DNN migration traffic is about half writes, half reads, so the device
        # sustains writes at half the 3 GB/s channel rate.
        tracker.record_write(config.write_bandwidth / 2)
        tracker.record_read(config.write_bandwidth / 2)
        estimate = tracker.lifetime(elapsed_seconds=1.0)
        assert 3.0 < estimate.lifetime_years < 4.5

    def test_idle_device_lives_forever(self):
        estimate = WearTracker(SSDConfig()).lifetime(elapsed_seconds=10.0)
        assert estimate.lifetime_years == float("inf")
        assert estimate.meets(100)

    def test_invalid_inputs_rejected(self):
        tracker = WearTracker(SSDConfig())
        with pytest.raises(SSDError):
            tracker.record_write(-1)
        with pytest.raises(SSDError):
            tracker.lifetime(0.0)
        with pytest.raises(SSDError):
            tracker.lifetime(1.0, write_amplification=0.5)


class TestSSDDevice:
    def test_write_read_discard_cycle(self):
        device = SSDDevice(small_ssd_config())
        write_time = device.write_object(1, 1 * MB)
        read_time = device.read_object(1, 1 * MB)
        assert write_time > 0 and read_time > 0
        assert device.contains(1)
        device.discard_object(1)
        assert not device.contains(1)

    def test_read_missing_object_rejected(self):
        device = SSDDevice(small_ssd_config())
        with pytest.raises(SSDError):
            device.read_object(9, 1024)

    def test_service_time_scales_with_size(self):
        device = SSDDevice(small_ssd_config())
        small = device.write_object(1, 64 * 1024)
        large = device.write_object(2, 4 * MB)
        assert large > small

    def test_capacity_enforced(self):
        device = SSDDevice(small_ssd_config(capacity_bytes=2 * MB))
        with pytest.raises(SSDError):
            device.write_object(1, 4 * MB)

    def test_statistics_accumulate(self):
        device = SSDDevice(small_ssd_config())
        device.write_object(1, 1 * MB)
        device.read_object(1, 1 * MB)
        stats = device.statistics
        assert stats.bytes_written == 1 * MB
        assert stats.bytes_read == 1 * MB
        assert stats.host_writes == 1 and stats.host_reads == 1

    def test_preload_skips_wear_accounting(self):
        device = SSDDevice(small_ssd_config())
        device.preload_object(5, 1 * MB)
        assert device.contains(5)
        assert device.statistics.bytes_written == 0
        assert device.wear.bytes_written == 0

    def test_lifetime_projection_uses_traffic(self):
        device = SSDDevice(small_ssd_config())
        device.write_object(1, 4 * MB)
        estimate = device.lifetime(elapsed_seconds=1.0)
        assert estimate.lifetime_years > 0

    def test_mapping_unit_keeps_table_small(self):
        device = SSDDevice(SSDConfig())  # 3.2 TB device
        assert device.geometry.total_pages <= (1 << 17) * 2
