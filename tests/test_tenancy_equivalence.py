"""Degenerate-tenancy equivalence: N=1 reproduces every solo run bit-for-bit.

The multi-tenant engine promises that wrapping a scenario as a single tenant
issuing one request at time zero is a no-op: no queueing, no contention, no
floating-point drift — the request latency *is* the solo ``execution_time``,
down to the last bit. This suite enforces that promise against the same grid
the golden files pin: every distinct simulation cell of every registered
experiment's CI-scale spec (the cells behind ``tests/golden/*.json``) is run
solo and colocated-with-nobody, and the two must agree exactly.

Sharing the session-scoped ``golden_runner`` means each cell simulates once;
the tenancy wrap replays cached kernel timings, so the whole sweep stays
CI-cheap.
"""

from __future__ import annotations

import pytest

from repro.experiments.reporting import EXPERIMENTS
from repro.experiments.tenancy import ArrivalProcess, MultiTenantScenario, Tenant


def simulation_cells():
    """Every distinct simulation cell across all registered experiment specs."""
    seen = {}
    for experiment in EXPERIMENTS:
        if experiment.spec is None:
            continue
        for cell in experiment.spec("ci", None).cells:
            if cell.policy is None:
                continue  # characterization cells simulate nothing to colocate
            resolved = cell.resolved()
            seen.setdefault(resolved, resolved)
    return sorted(
        seen,
        key=lambda c: (c.model, str(c.policy), c.batch_size or 0, c.profiling_error, c.seed),
    )


CELLS = simulation_cells()


def cell_id(cell) -> str:
    parts = [cell.model, str(cell.policy), f"b{cell.batch_size}"]
    if cell.profiling_error:
        parts.append(f"e{cell.profiling_error:g}s{cell.seed}")
    return "/".join(parts)


def test_the_grid_is_nontrivial():
    """The sweep below must actually cover the golden experiments' cells."""
    assert len(CELLS) >= 30
    assert {cell.model for cell in CELLS} >= {"bert", "vit", "resnet152"}


@pytest.mark.parametrize("cell", CELLS, ids=cell_id)
def test_single_tenant_matches_solo_bit_for_bit(cell, golden_runner):
    scenario = cell.scenario()
    solo = scenario.run(runner=golden_runner)
    multi = MultiTenantScenario(
        tenants=(Tenant("only", scenario, ArrivalProcess.trace((0.0,))),)
    ).run(runner=golden_runner)
    outcome = multi.tenants["only"]

    # Bit-for-bit: not approx, equality on the raw floats.
    assert outcome.latencies == (solo.result.execution_time,)
    assert outcome.p50_latency == solo.result.execution_time
    assert outcome.p99_latency == solo.result.execution_time
    assert outcome.solo_latency == solo.result.execution_time
    assert multi.makespan == solo.result.execution_time

    # And the degenerate run is contention-free by construction.
    assert outcome.queue_delays == (0.0,)
    assert outcome.mean_slowdown == 1.0
    assert outcome.eviction_stalls == 0
    assert outcome.eviction_stall_seconds == 0.0
    assert outcome.gc_interference_seconds == 0.0
    assert outcome.times_evicted == 0
    assert multi.fairness == 1.0
    assert outcome.cache_key == solo.cache_key
    assert outcome.config_fingerprint == solo.config_fingerprint
