"""The core-simulator benchmark harness and the ``repro bench`` CLI."""

from __future__ import annotations

import json

import pytest

from repro.bench import (
    CORE_CELLS,
    HEADLINE_CELL,
    PRE_REFACTOR_SECONDS,
    QUICK_TIERS,
    bench_cells,
    check_regressions,
    plan_cache_summary,
    profile_rows,
    run_bench,
    time_cell,
    validate_payload,
    write_bench,
)
from repro.cli import main
from repro.errors import ConfigurationError


class TestBenchEngine:
    def test_quick_subset_keeps_only_smoke_tiers(self):
        quick = bench_cells(quick=True)
        assert quick and all(cell.tier in QUICK_TIERS for cell in quick)
        assert len(bench_cells(quick=False)) == len(CORE_CELLS) > len(quick)

    def test_every_cell_has_a_recorded_pre_refactor_baseline(self):
        assert {cell.name for cell in CORE_CELLS} == set(PRE_REFACTOR_SECONDS)
        assert HEADLINE_CELL in PRE_REFACTOR_SECONDS

    def test_time_cell_records_timing_and_perf(self):
        cell = next(c for c in CORE_CELLS if c.name == "bert@default/ci/g10")
        record = time_cell(cell, repeats=1)
        assert record["seconds"] > 0
        assert len(record["samples"]) == 1
        assert record["perf"]["kernels_executed"] > 0
        assert record["pre_refactor_seconds"] == PRE_REFACTOR_SECONDS[cell.name]
        assert record["speedup_vs_pre_refactor"] == pytest.approx(
            record["pre_refactor_seconds"] / record["seconds"]
        )
        assert set(record["phase_seconds"]) == {"plan", "execute"}
        # Warm-up + timed repeats: at most one planning miss per cell; the
        # timed runs replay from the plan-fragment cache.
        assert set(record["plan_cache"]) == {"full_hits", "fragment_hits", "misses"}
        assert record["plan_cache"]["full_hits"] >= 1

    def test_repeats_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            time_cell(CORE_CELLS[0], repeats=0)

    def test_check_regressions_flags_only_slow_cells(self):
        baseline = {"cells": {"a": {"seconds": 1.0}, "b": {"seconds": 1.0}}}
        current = {"cells": {"a": {"seconds": 2.5}, "b": {"seconds": 1.1}, "new": {"seconds": 9.0}}}
        messages = check_regressions(current, baseline, threshold=2.0)
        assert len(messages) == 1 and messages[0].startswith("a:")
        assert check_regressions(baseline, baseline) == []
        with pytest.raises(ConfigurationError):
            check_regressions(current, baseline, threshold=1.0)

    def test_cells_under_the_noise_floor_never_gate(self):
        baseline = {"cells": {"tiny": {"seconds": 0.004}, "big": {"seconds": 1.0}}}
        current = {"cells": {"tiny": {"seconds": 0.1}, "big": {"seconds": 5.0}}}
        messages = check_regressions(current, baseline, threshold=2.0)
        assert len(messages) == 1 and messages[0].startswith("big:")
        # An explicit floor of 0 gates everything.
        assert len(check_regressions(current, baseline, min_seconds=0.0)) == 2

    def test_regression_message_names_the_slowest_growing_phase(self):
        baseline = {"cells": {"a": {
            "seconds": 1.0, "phase_seconds": {"plan": 0.5, "execute": 0.5},
        }}}
        current = {"cells": {"a": {
            "seconds": 3.0, "phase_seconds": {"plan": 0.6, "execute": 2.4},
        }}}
        (message,) = check_regressions(current, baseline, threshold=2.0)
        assert "slowest-growing phase: execute" in message
        assert "0.5000s" in message and "2.4000s" in message

    def test_regression_message_degrades_without_phase_data(self):
        """Payloads written before per-phase recording still gate cleanly."""
        baseline = {"cells": {"a": {"seconds": 1.0}}}
        current = {"cells": {"a": {"seconds": 3.0}}}
        (message,) = check_regressions(current, baseline, threshold=2.0)
        assert "slowest-growing phase" not in message

    def test_validate_payload_names_file_cell_and_field(self):
        good = {"cells": {"a": {
            "tier": "small", "seconds": 1.0, "samples": [1.0],
            "perf": {}, "phase_seconds": {},
        }}}
        assert validate_payload(good, "good.json") is good
        for missing in ("phase_seconds", "samples"):
            truncated = {"cells": {"a": {
                key: value for key, value in good["cells"]["a"].items()
                if key != missing
            }}}
            with pytest.raises(ConfigurationError) as err:
                validate_payload(truncated, "bad.json")
            assert "bad.json" in str(err.value)
            assert "'a'" in str(err.value)
            assert repr(missing) in str(err.value)
        with pytest.raises(ConfigurationError):
            validate_payload({}, "empty.json")
        with pytest.raises(ConfigurationError):
            validate_payload({"cells": {"a": 7}}, "scalar.json")

    def test_plan_cache_summary_aggregates_cells(self):
        payload = {"cells": {
            "a": {"plan_cache": {"full_hits": 3, "fragment_hits": 0, "misses": 1}},
            "b": {"plan_cache": {"full_hits": 1, "fragment_hits": 2, "misses": 1}},
            "old": {},  # pre-plan-cache payload contributes nothing
        }}
        assert plan_cache_summary(payload) == {
            "full_hits": 4, "fragment_hits": 2, "misses": 2,
        }
        assert plan_cache_summary({"cells": {}}) == {
            "full_hits": 0, "fragment_hits": 0, "misses": 0,
        }

    def test_profile_rows_break_each_cell_into_phases(self):
        payload = {"cells": {
            "a": {"seconds": 1.0, "phase_seconds": {"plan": 0.25, "execute": 0.75}},
            "old": {"seconds": 1.0},  # pre-phase payload: contributes no rows
        }}
        rows = profile_rows(payload)
        assert [(r["cell"], r["phase"]) for r in rows] == [
            ("a", "execute"), ("a", "plan"),
        ]
        by_phase = {r["phase"]: r for r in rows}
        assert by_phase["plan"]["share"] == pytest.approx(0.25)
        assert by_phase["execute"]["share"] == pytest.approx(0.75)
        assert profile_rows({"cells": {}}) == []


class TestBenchCli:
    def test_quick_run_writes_artifact(self, tmp_path, capsys):
        output = tmp_path / "BENCH_core.json"
        assert main(["bench", "--quick", "--repeats", "1", "--output", str(output)]) == 0
        payload = json.loads(output.read_text(encoding="utf-8"))
        assert payload["quick"] is True
        assert set(payload["cells"]) == {cell.name for cell in bench_cells(quick=True)}
        assert "pre_refactor_seconds" in payload
        table = capsys.readouterr().out
        assert "speedup" in table and "pages_moved" in table

    def test_check_gate_fails_on_regression(self, tmp_path):
        current = run_bench(quick=True, repeats=1)
        healthy = tmp_path / "healthy.json"
        write_bench(current, healthy)
        # The plan cache pushed every quick cell under the 50 ms noise floor,
        # so a doctored *baseline* can no longer trip the gate against a real
        # run; instead doctor a slow *current* payload (10 s cells) against an
        # above-floor baseline (0.1 s cells).
        baseline = {
            **current,
            "cells": {
                name: {**record, "seconds": 0.1}
                for name, record in current["cells"].items()
            },
        }
        slow = {
            **current,
            "cells": {
                name: {**record, "seconds": 10.0}
                for name, record in current["cells"].items()
            },
        }
        baseline_path = tmp_path / "baseline.json"
        slow_path = tmp_path / "slow.json"
        write_bench(baseline, baseline_path)
        write_bench(slow, slow_path)

        output = tmp_path / "out.json"
        assert main([
            "bench", "--quick", "--repeats", "1",
            "--output", str(output), "--check", str(healthy), "--threshold", "50",
        ]) == 0
        assert main([
            "bench", "--from", str(slow_path),
            "--check", str(baseline_path), "--threshold", "1.01",
        ]) == 1

    def test_missing_baseline_is_a_configuration_error(self, tmp_path):
        code = main([
            "bench", "--quick", "--repeats", "1",
            "--output", str(tmp_path / "o.json"),
            "--check", str(tmp_path / "missing.json"),
        ])
        assert code == 2  # ReproError exit path

    def test_from_reports_a_saved_payload_without_retiming(self, tmp_path, capsys):
        saved = tmp_path / "saved.json"
        write_bench(run_bench(quick=True, repeats=1), saved)
        before = saved.read_text(encoding="utf-8")

        assert main(["bench", "--from", str(saved), "--profile"]) == 0
        out = capsys.readouterr().out
        assert "pages_moved" in out          # the summary table
        assert "share" in out and "plan" in out  # the per-phase breakdown
        # Report-only mode: nothing is rewritten, and no default artifact
        # appears in the working directory.
        assert saved.read_text(encoding="utf-8") == before

    def test_from_with_check_gates_without_measuring(self, tmp_path):
        """The CI cross-PR diff: measure once, then diff two payloads."""
        current = run_bench(quick=True, repeats=1)
        measured = tmp_path / "measured.json"
        write_bench(current, measured)
        # Regression = a slow current payload vs an above-noise-floor
        # baseline; both are diffed without re-measuring anything.
        baseline = {
            **current,
            "cells": {
                name: {**record, "seconds": 0.1}
                for name, record in current["cells"].items()
            },
        }
        slow = {
            **current,
            "cells": {
                name: {**record, "seconds": 10.0}
                for name, record in current["cells"].items()
            },
        }
        baseline_path = tmp_path / "baseline.json"
        slow_path = tmp_path / "slow.json"
        write_bench(baseline, baseline_path)
        write_bench(slow, slow_path)

        assert main(["bench", "--from", str(measured),
                     "--check", str(measured), "--threshold", "50"]) == 0
        assert main(["bench", "--from", str(slow_path),
                     "--check", str(baseline_path), "--threshold", "1.01"]) == 1

    def test_from_missing_payload_is_a_configuration_error(self, tmp_path):
        assert main(["bench", "--from", str(tmp_path / "missing.json")]) == 2

    @pytest.mark.parametrize("missing", ["phase_seconds", "samples"])
    def test_from_truncated_payload_is_a_configuration_error(
        self, tmp_path, capsys, missing
    ):
        """A saved payload lacking a required cell field must surface as a
        structured ConfigurationError naming the field, not a KeyError."""
        payload = run_bench(quick=True, repeats=1)
        for record in payload["cells"].values():
            record.pop(missing, None)
        truncated = tmp_path / "truncated.json"
        write_bench(payload, truncated)

        assert main(["bench", "--from", str(truncated)]) == 2
        err = capsys.readouterr().err
        assert repr(missing) in err
        assert str(truncated) in err

    def test_from_profile_reports_plan_cache_counters(self, tmp_path, capsys):
        saved = tmp_path / "saved.json"
        write_bench(run_bench(quick=True, repeats=1), saved)
        assert main(["bench", "--from", str(saved), "--profile"]) == 0
        out = capsys.readouterr().out
        assert "plan cache:" in out
        assert "hit rate" in out


def test_committed_bench_artifact_tracks_the_headline_cell():
    """BENCH_core.json at the repo root is the recorded perf trajectory."""
    from pathlib import Path

    path = Path(__file__).resolve().parents[1] / "BENCH_core.json"
    assert path.exists(), "BENCH_core.json must be committed at the repo root"
    payload = json.loads(path.read_text(encoding="utf-8"))
    assert payload["headline"]["cell"] == HEADLINE_CELL
    # The acceptance criterion of the vectorized-planning refactor: >= 4x on
    # the paper-scale batch-sweep cell, recorded for posterity (the earlier
    # extent refactor's bar was 3x).
    assert payload["headline"]["speedup_vs_pre_refactor"] >= 4.0
