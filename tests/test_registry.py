"""Tests for the open registry subsystem (repro.registry).

Covers the generic :class:`~repro.registry.Registry` semantics, the policy /
model alias tables (including the paper-style labels the old closed factory
mishandled), and the headline openness contract: a policy registered in this
test file — without editing any repro module — runs end-to-end through the
:class:`~repro.Scenario` API and the CLI.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import Scenario, register_model, register_policy
from repro.baselines import (
    BaseUVMPolicy,
    DeepUMPolicy,
    FlashNeuronPolicy,
    G10Policy,
    IdealPolicy,
    available_policies,
    make_policy,
    normalize_policy_name,
)
from repro.baselines.g10 import G10Variant
from repro.cli import main as cli_main
from repro.errors import ConfigurationError, ModelError
from repro.experiments.reporting import EXPERIMENTS, get_experiment
from repro.models import available_models, build_model
from repro.models.builder import ModelBuilder
from repro.registry import (
    EXPERIMENT_REGISTRY,
    MODEL_REGISTRY,
    POLICY_REGISTRY,
    Registry,
    load_plugins,
    normalize_token,
    register_experiment,
    squash_token,
)


class TestNormalization:
    @pytest.mark.parametrize(
        "label,expected",
        [
            ("G10+Host", "g10_host"),
            ("G10-GDS", "g10_gds"),
            ("Base UVM", "base_uvm"),
            ("FlashNeuron", "flashneuron"),
            ("DeepUM+", "deepum"),
            ("  g10  ", "g10"),
            ("G10 + Host", "g10_host"),
        ],
    )
    def test_policy_labels(self, label, expected):
        assert normalize_token(label) == expected

    def test_squash_removes_separators(self):
        assert squash_token("ResNet-152") == "resnet152"
        assert squash_token("SENet_154") == "senet154"


class TestGenericRegistry:
    def test_decorator_and_direct_registration(self):
        registry = Registry("thing")

        @registry.register("alpha", aliases=("first",), rank=1)
        def make_alpha():
            return "alpha!"

        registry.register("beta", lambda: "beta!")
        assert registry.available() == ["alpha", "beta"]
        assert registry.create("alpha") == "alpha!"
        assert registry.create("first") == "alpha!"
        assert registry.describe("alpha") == {"name": "alpha", "aliases": ["first"], "rank": 1}

    def test_duplicate_registration_rejected(self):
        registry = Registry("thing")
        registry.register("alpha", lambda: 1)
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.register("alpha", lambda: 2)
        # normalized collisions are duplicates too
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.register("Alpha", lambda: 3)

    def test_alias_collision_rejected(self):
        registry = Registry("thing")
        registry.register("alpha", lambda: 1, aliases=("a",))
        with pytest.raises(ConfigurationError, match="collides"):
            registry.register("beta", lambda: 2, aliases=("a",))

    def test_replace_shadows_existing(self):
        registry = Registry("thing")
        registry.register("alpha", lambda: 1)
        registry.register("alpha", lambda: 2, replace=True)
        assert registry.create("alpha") == 2

    def test_replace_over_alias_really_shadows(self):
        registry = Registry("thing")
        registry.register("alpha", lambda: "old", aliases=("a",))
        registry.register("a", lambda: "new", replace=True)
        assert registry.create("a") == "new"  # no longer resolves to alpha
        assert registry.create("alpha") == "old"

    def test_replace_drops_stale_aliases_of_replaced_entry(self):
        registry = Registry("thing")
        registry.register("alpha", lambda: "old", aliases=("a", "al"))
        registry.register("alpha", lambda: "new", aliases=("a",), replace=True)
        assert registry.create("a") == "new"
        assert "al" not in registry

    def test_unknown_name_lists_alternatives_and_suggests(self):
        registry = Registry("thing")
        registry.register("gamma_ray", lambda: 1)
        registry.register("delta", lambda: 2)
        with pytest.raises(ConfigurationError) as excinfo:
            registry.get("gama_ray")
        message = str(excinfo.value)
        assert "gamma_ray" in message and "delta" in message
        assert "did you mean 'gamma_ray'" in message

    def test_suggestion_from_misspelled_alias_resolves_to_canonical(self):
        registry = Registry("thing")
        registry.register("gamma_ray", lambda: 1, aliases=("gray",))
        with pytest.raises(ConfigurationError, match="did you mean 'gamma_ray'"):
            registry.get("grey")  # close to the alias, reported as its owner

    def test_unknown_name_without_near_miss_omits_suggestion(self):
        registry = Registry("thing")
        registry.register("gamma_ray", lambda: 1)
        with pytest.raises(ConfigurationError) as excinfo:
            registry.get("zzzzzz")
        assert "did you mean" not in str(excinfo.value)

    def test_alias_duplicating_canonical_name_rejected(self):
        registry = Registry("thing")
        registry.register("alpha", lambda: 1)
        with pytest.raises(ConfigurationError, match="collides"):
            registry.register("beta", lambda: 2, aliases=("alpha",))

    def test_self_alias_is_harmless(self):
        registry = Registry("thing")
        registry.register("alpha", lambda: 1, aliases=("Alpha",))
        assert registry.create("alpha") == 1
        assert registry.aliases() == {}  # normalizes to the canonical key itself

    def test_empty_name_rejected(self):
        registry = Registry("thing")
        with pytest.raises(ConfigurationError, match="cannot be empty"):
            registry.register("  - ", lambda: 1)

    def test_unregister_removes_entry_and_aliases(self):
        registry = Registry("thing")
        registry.register("alpha", lambda: 1, aliases=("a",))
        registry.unregister("alpha")
        assert "alpha" not in registry
        assert "a" not in registry
        registry.register("alpha", lambda: 2, aliases=("a",))  # reusable again
        assert registry.create("a") == 2

    def test_unregister_unknown_name_is_a_noop(self):
        registry = Registry("thing")
        registry.register("alpha", lambda: 1)
        registry.unregister("never_registered")  # must not raise
        assert registry.available() == ["alpha"]

    def test_unregister_by_alias_is_a_noop(self):
        # unregister takes the *canonical* name; an alias is deliberately not
        # resolved, so removing "a" leaves alpha (and the alias) in place.
        registry = Registry("thing")
        registry.register("alpha", lambda: 1, aliases=("a",))
        registry.unregister("a")
        assert "alpha" in registry and "a" in registry
        registry.unregister("alpha")
        assert "a" not in registry

    def test_contains_and_len(self):
        registry = Registry("thing")
        assert len(registry) == 0
        registry.register("alpha", lambda: 1)
        assert "ALPHA" in registry and "nope" not in registry
        assert len(registry) == 1


class TestPolicyRegistry:
    @pytest.mark.parametrize(
        "label,expected",
        [
            ("G10+Host", "g10_host"),
            ("G10-GDS", "g10_gds"),
            ("Base UVM", "base_uvm"),
            ("FlashNeuron", "flashneuron"),
            ("DeepUM+", "deepum"),
            ("g10_full", "g10"),
            ("uvm", "base_uvm"),
        ],
    )
    def test_paper_labels_resolve(self, label, expected):
        assert normalize_policy_name(label) == expected

    def test_g10_host_label_constructs_host_variant(self):
        # The old closed factory normalized "G10+Host" to "g10host" and raised.
        policy = make_policy("G10+Host")
        assert isinstance(policy, G10Policy)
        assert policy.describe()["variant"] == G10Variant.HOST.name

    @pytest.mark.parametrize(
        "name,cls",
        [
            ("ideal", IdealPolicy),
            ("base_uvm", BaseUVMPolicy),
            ("deepum", DeepUMPolicy),
            ("flashneuron", FlashNeuronPolicy),
            ("g10", G10Policy),
        ],
    )
    def test_builtins_registered(self, name, cls):
        assert isinstance(POLICY_REGISTRY.create(name), cls)

    def test_available_policies_contains_builtins(self):
        assert {"ideal", "base_uvm", "deepum", "flashneuron",
                "g10", "g10_gds", "g10_host"} <= set(available_policies())

    def test_unknown_policy_suggests_alternative(self):
        with pytest.raises(ConfigurationError, match="did you mean .*'g10_host'"):
            make_policy("g10_hots")

    def test_describe_carries_display_metadata(self):
        info = POLICY_REGISTRY.describe("G10-GDS")
        assert info["name"] == "g10_gds"
        assert info["display"] == "G10-GDS"


class TestModelRegistry:
    def test_builtins_registered_with_metadata(self):
        for name in ("bert", "vit", "inceptionv3", "resnet152", "senet154"):
            info = MODEL_REGISTRY.describe(name)
            assert info["default_batch_size"] > 0
            assert "ci_overrides" in info and "ci_capacity_scale" in info

    def test_unknown_model_raises_model_error(self):
        with pytest.raises(ModelError, match="available"):
            MODEL_REGISTRY.resolve("alexnet")


@pytest.fixture
def scripted_policy():
    """Register a throwaway policy for the duration of one test."""

    @register_policy(
        "unit_test_policy",
        aliases=("utp",),
        display="Unit-Test Policy",
        description="BaseUVM with a custom name, registered from a test file.",
    )
    class UnitTestPolicy(BaseUVMPolicy):
        name = "Unit-Test Policy"

    yield "unit_test_policy"
    POLICY_REGISTRY.unregister("unit_test_policy")


@pytest.fixture
def scripted_model():
    """Register a throwaway model for the duration of one test."""

    @register_model(
        "testnet",
        display="TestNet",
        default_batch_size=8,
    )
    def build_testnet(batch_size, hidden=64, layers=3):
        from repro.graph.tensor import TensorKind

        builder = ModelBuilder(name=f"testnet-{batch_size}", batch_size=batch_size)
        x = builder.graph.add_tensor("input", (batch_size, hidden), TensorKind.INPUT)
        for _ in range(layers):
            x = builder.linear(x, hidden)
            x = builder.relu(x)
        builder.classifier(x, 10)
        return builder.build()

    yield "testnet"
    MODEL_REGISTRY.unregister("testnet")


class TestOpenExtension:
    """A policy/model registered out-of-tree runs through Scenario and the CLI."""

    def test_custom_policy_runs_through_scenario(self, scripted_policy, bert_ci_workload):
        outcome = Scenario("bert", scale="ci").on_policy("UTP").run()
        assert outcome.policy_name == "Unit-Test Policy"
        assert not outcome.failed
        assert outcome.policy["name"] == "unit_test_policy"
        # Identical decisions to the built-in BaseUVM policy, so identical timing.
        baseline = Scenario("bert", scale="ci").on_policy("base_uvm").run()
        assert outcome.execution_time == baseline.execution_time

    def test_custom_policy_runs_through_cli(self, scripted_policy, tmp_path, capsys):
        artifact = tmp_path / "custom.json"
        code = cli_main(
            ["run", "--model", "bert", "--policy", "unit_test_policy",
             "--scale", "ci", "--no-cache", "--output", str(artifact)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Unit-Test Policy" in out
        payload = json.loads(artifact.read_text())
        assert payload["cell"]["policy"] == "unit_test_policy"
        assert payload["provenance"]["policy"]["display"] == "Unit-Test Policy"

    def test_custom_policy_listed_by_cli(self, scripted_policy, capsys):
        assert cli_main(["run", "--list-policies"]) == 0
        out = capsys.readouterr().out
        assert "unit_test_policy" in out and "utp" in out

    def test_custom_model_runs_through_scenario(self, scripted_model):
        outcome = Scenario("testnet", policy="base_uvm").run()
        assert outcome.model_name == "testnet-8"
        assert outcome.batch_size == 8  # registered default
        assert not outcome.failed
        assert "testnet" in available_models()
        graph = build_model("Test-Net", batch_size=4)  # spelling variants resolve
        assert graph.batch_size == 4

    def test_custom_model_without_default_batch_requires_explicit(self):
        register_model("testnet_nobatch", lambda batch_size: None)
        try:
            with pytest.raises(ConfigurationError, match="batch_size"):
                Scenario("testnet_nobatch").resolved()
        finally:
            MODEL_REGISTRY.unregister("testnet_nobatch")


class TestExperimentRegistry:
    def test_builtin_experiments_and_aliases(self):
        assert get_experiment("11").id == "11"
        assert get_experiment("77").id == "lifetime"  # alias
        assert len(EXPERIMENTS) >= 15

    def test_custom_experiment_registration(self):
        @register_experiment(id="unit_test_exp", title="Unit-test experiment")
        def render(scale="ci", runner=None):
            return {"ok": True}

        try:
            experiment = get_experiment("unit_test_exp")
            assert experiment.title == "Unit-test experiment"
            assert experiment.render() == {"ok": True}
            assert "unit_test_exp" in [e.id for e in EXPERIMENTS]
        finally:
            EXPERIMENT_REGISTRY.unregister("unit_test_exp")

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ConfigurationError, match="available"):
            get_experiment("figure99")


class TestPluginLoading:
    def test_load_plugins_imports_module(self, tmp_path, monkeypatch):
        plugin = tmp_path / "repro_test_plugin.py"
        plugin.write_text(
            "from repro import register_policy\n"
            "from repro.baselines import BaseUVMPolicy\n"
            "@register_policy('plugin_test_policy', replace=True)\n"
            "class PluginPolicy(BaseUVMPolicy):\n"
            "    name = 'Plugin Policy'\n"
        )
        monkeypatch.syspath_prepend(str(tmp_path))
        monkeypatch.setenv("REPRO_PLUGINS", "")  # restored after the test
        try:
            assert load_plugins("repro_test_plugin") == ["repro_test_plugin"]
            assert "plugin_test_policy" in POLICY_REGISTRY
            # idempotent: a second load is a no-op
            assert load_plugins("repro_test_plugin") == []
        finally:
            POLICY_REGISTRY.unregister("plugin_test_policy")

    def test_load_plugins_unknown_module_rejected(self):
        with pytest.raises(ConfigurationError, match="cannot import plugin"):
            load_plugins("repro_no_such_plugin_module")


class TestPluginEnvPropagation:
    def test_explicit_loads_append_to_env_for_workers(self, tmp_path, monkeypatch):
        plugin = tmp_path / "env_prop_plugin.py"
        plugin.write_text("VALUE = 1\n")
        monkeypatch.syspath_prepend(str(tmp_path))
        monkeypatch.setenv("REPRO_PLUGINS", "")
        try:
            load_plugins("env_prop_plugin")
            # Spawn-based sweep workers read the env var; the explicit load
            # must be visible there too.
            assert "env_prop_plugin" in os.environ["REPRO_PLUGINS"].split(",")
        finally:
            from repro.registry import _loaded_plugins
            _loaded_plugins.discard("env_prop_plugin")


class TestReviewRegressions:
    def test_replace_stealing_alias_updates_old_owner_description(self):
        registry = Registry("thing")
        registry.register("alpha", lambda: "old", aliases=("a",))
        registry.register("beta", lambda: "new", aliases=("a",), replace=True)
        assert registry.create("a") == "new"
        # the stolen alias no longer appears under its previous owner
        assert registry.describe("alpha")["aliases"] == []
        assert registry.describe("beta")["aliases"] == ["a"]

    def test_failed_bootstrap_is_retried(self):
        registry = Registry("thing", bootstrap="repro_no_such_bootstrap_module")
        with pytest.raises(ImportError):
            registry.available()
        # a second call must retry the import, not report an empty registry
        with pytest.raises(ImportError):
            registry.available()

    def test_peek_plugins_collects_every_occurrence(self):
        from repro.cli import _peek_plugins

        argv = ["figure", "x", "--plugins", "mod_a", "--scale", "ci", "--plugins=mod_b"]
        assert _peek_plugins(argv) == ["mod_a", "mod_b"]
        assert _peek_plugins(["run", "--model", "bert"]) == []


class TestAliasCacheKeyParity:
    def test_alias_spellings_share_the_canonical_cache_key(self):
        from repro.experiments import SweepCell

        assert (
            SweepCell(model="bert", policy="uvm", scale="ci").cache_key()
            == SweepCell(model="bert", policy="base_uvm", scale="ci").cache_key()
        )
        assert (
            SweepCell(model="bert", policy="G10+Host", scale="ci").cache_key()
            == SweepCell(model="bert", policy="g10_host", scale="ci").cache_key()
        )

    def test_replace_alias_over_canonical_entry_drops_shadowed_entry(self):
        registry = Registry("thing")
        registry.register("old", lambda: "old", aliases=("o",))
        registry.register("mine", lambda: "new", aliases=("old",), replace=True)
        assert registry.create("old") == "new"
        # the shadowed entry (and its own aliases) left the listings entirely
        assert registry.available() == ["mine"]
        assert "o" not in registry


class TestTable1Robustness:
    def test_metadata_less_model_does_not_break_table1(self):
        from repro.experiments.tables import table1_models, table1_spec

        register_model("toynobatch", lambda batch_size: None, display="Toy")
        try:
            spec = table1_spec("ci")
            assert all(cell.model != "toynobatch" for cell in spec.cells)
            rows = table1_models(scale="ci")
            assert {row["model"] for row in rows} == {
                "BERT", "ViT", "Inceptionv3", "ResNet152", "SENet154",
            }
        finally:
            MODEL_REGISTRY.unregister("toynobatch")
