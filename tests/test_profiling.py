"""Tests for the cost model, trace generation and profiling-noise injection."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import GPUConfig, paper_config
from repro.errors import ConfigurationError
from repro.graph import Kernel, KernelPhase, expand_training
from repro.profiling import (
    KernelCostModel,
    perturb_durations,
    perturb_trace,
    profile_training_graph,
)

from helpers import build_tiny_mlp


def _kernel(flops: float, nbytes: float, compute_class: str = "generic") -> Kernel:
    return Kernel(
        index=0, name="k", phase=KernelPhase.FORWARD, op_id=0,
        output_ids=(1,), flops=flops, bytes_accessed=nbytes, compute_class=compute_class,
    )


class TestCostModel:
    def test_compute_bound_kernel(self):
        gpu = GPUConfig()
        model = KernelCostModel(gpu)
        kernel = _kernel(flops=1e12, nbytes=1e6)
        expected = 1e12 / (gpu.peak_flops * gpu.compute_efficiency) + gpu.kernel_launch_overhead
        assert model.kernel_duration(kernel) == pytest.approx(expected)

    def test_memory_bound_kernel(self):
        gpu = GPUConfig()
        model = KernelCostModel(gpu)
        kernel = _kernel(flops=1.0, nbytes=1e9)
        expected = 1e9 / gpu.memory_bandwidth + gpu.kernel_launch_overhead
        assert model.kernel_duration(kernel) == pytest.approx(expected)

    def test_gemm_is_faster_than_conv_for_same_flops(self):
        model = KernelCostModel(GPUConfig())
        gemm = model.kernel_duration(_kernel(1e12, 0, "gemm"))
        conv = model.kernel_duration(_kernel(1e12, 0, "conv"))
        grouped = model.kernel_duration(_kernel(1e12, 0, "grouped_conv"))
        assert gemm < conv < grouped

    def test_launch_overhead_is_floor(self):
        gpu = GPUConfig()
        model = KernelCostModel(gpu)
        assert model.kernel_duration(_kernel(0.0, 0.0)) == pytest.approx(
            gpu.kernel_launch_overhead
        )

    def test_negative_flops_rejected(self):
        with pytest.raises(ConfigurationError):
            KernelCostModel(GPUConfig()).compute_time(-1)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ConfigurationError):
            KernelCostModel(GPUConfig()).memory_time(-1)

    @given(flops=st.floats(min_value=0, max_value=1e15), nbytes=st.floats(min_value=0, max_value=1e12))
    @settings(max_examples=50, deadline=None)
    def test_duration_is_positive_and_monotone(self, flops, nbytes):
        model = KernelCostModel(GPUConfig())
        duration = model.kernel_duration(_kernel(flops, nbytes))
        assert duration > 0
        assert model.kernel_duration(_kernel(flops * 2, nbytes)) >= duration - 1e-12


class TestTraceProfiling:
    def test_profile_fills_every_duration(self):
        training = expand_training(build_tiny_mlp())
        profiled = profile_training_graph(training, paper_config())
        assert all(k.duration > 0 for k in profiled.kernels)

    def test_original_graph_is_untouched(self):
        training = expand_training(build_tiny_mlp())
        profile_training_graph(training, paper_config())
        assert all(k.duration == 0 for k in training.kernels)

    def test_accepts_bare_gpu_config(self):
        training = expand_training(build_tiny_mlp())
        profiled = profile_training_graph(training, paper_config().gpu)
        assert profiled.trace().total_compute_time > 0


class TestProfilingNoise:
    def test_zero_error_is_identity(self, tiny_training):
        assert perturb_durations(tiny_training.kernels, 0.0) == list(tiny_training.kernels)

    def test_noise_is_bounded(self, tiny_training):
        noisy = perturb_durations(tiny_training.kernels, 0.2, seed=3)
        for original, perturbed in zip(tiny_training.kernels, noisy):
            ratio = perturbed.duration / original.duration
            assert 0.8 - 1e-9 <= ratio <= 1.2 + 1e-9

    def test_noise_is_deterministic_per_seed(self, tiny_training):
        a = perturb_durations(tiny_training.kernels, 0.1, seed=7)
        b = perturb_durations(tiny_training.kernels, 0.1, seed=7)
        c = perturb_durations(tiny_training.kernels, 0.1, seed=8)
        assert [k.duration for k in a] == [k.duration for k in b]
        assert [k.duration for k in a] != [k.duration for k in c]

    def test_perturb_trace_wraps_graph(self, tiny_training):
        noisy = perturb_trace(tiny_training, 0.1, seed=1)
        assert noisy.num_kernels == tiny_training.num_kernels
        assert noisy.tensors is tiny_training.tensors

    @pytest.mark.parametrize("error", [-0.1, 1.0, 1.5])
    def test_invalid_error_rejected(self, tiny_training, error):
        with pytest.raises(ConfigurationError):
            perturb_durations(tiny_training.kernels, error)
