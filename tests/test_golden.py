"""Golden-file regression suite: every figure/table, bit-for-bit.

Each experiment in :data:`repro.experiments.reporting.EXPERIMENTS` is rendered
at CI scale and its canonical JSON serialization compared — as *text*, so any
drift down to the last float bit fails — against the committed file under
``tests/golden/``. This pins the paper's curves: an edit to the simulator,
profiler, vitality analyzer or policies that changes any figure must
consciously regenerate the goldens with

    python -m pytest tests/test_golden.py --update-goldens

and the resulting diff is reviewable in the PR.

The same serialization (``jsonify`` + ``json.dumps(sort_keys=True)``) is used
by the CLI's ``--output`` artifacts and ``repro report``, so these goldens
also pin the on-disk artifact format.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments import jsonify
from repro.experiments.reporting import EXPERIMENTS, artifact_name

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"


def golden_text(payload) -> str:
    """The canonical serialization goldens are stored and compared in."""
    return json.dumps(jsonify(payload), indent=2, sort_keys=True) + "\n"


@pytest.mark.parametrize("experiment", EXPERIMENTS, ids=lambda e: e.id)
def test_golden(experiment, golden_runner, update_goldens):
    path = GOLDEN_DIR / f"{artifact_name(experiment.id)}.json"
    actual = golden_text(experiment.render(scale="ci", runner=golden_runner))
    if update_goldens:
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(actual, encoding="utf-8")
        return
    assert path.exists(), (
        f"missing golden file {path.name}; generate it with "
        "`python -m pytest tests/test_golden.py --update-goldens`"
    )
    expected = path.read_text(encoding="utf-8")
    assert actual == expected, (
        f"{experiment.title} drifted from {path.name}. If the change is "
        "intentional, regenerate with --update-goldens and review the diff."
    )


def test_goldens_are_committed_for_every_experiment():
    """A new experiment must ship its golden in the same PR."""
    missing = [
        artifact_name(e.id)
        for e in EXPERIMENTS
        if not (GOLDEN_DIR / f"{artifact_name(e.id)}.json").exists()
    ]
    assert not missing, f"experiments without goldens: {missing}"


def test_golden_serialization_is_deterministic(golden_runner):
    """Rendering twice (second time fully from cache) is bit-identical."""
    experiment = next(e for e in EXPERIMENTS if e.id == "12")
    first = golden_text(experiment.render(scale="ci", runner=golden_runner))
    second = golden_text(experiment.render(scale="ci", runner=golden_runner))
    assert golden_runner.last_stats["executed"] == 0
    assert first == second
