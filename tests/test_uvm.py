"""Tests for the unified memory substrate: address space, page table, pools, engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import MB, UVMConfig, paper_config
from repro.errors import AllocationError, SimulationError, TranslationError
from repro.ssd import SSDDevice
from repro.uvm import (
    MemoryLocation,
    MemoryPool,
    MigrationEngine,
    MigrationKind,
    MigrationRequest,
    PageFaultModel,
    TLB,
    TransferSet,
    UnifiedAddressSpace,
    UnifiedPageTable,
)


class TestAddressSpace:
    def test_allocation_is_page_aligned_and_disjoint(self):
        space = UnifiedAddressSpace()
        a = space.allocate(1, 10_000)
        b = space.allocate(2, 5_000)
        assert a.start % 4096 == 0 and b.start % 4096 == 0
        assert a.end <= b.start

    def test_allocation_is_idempotent(self):
        space = UnifiedAddressSpace()
        assert space.allocate(1, 4096) == space.allocate(1, 4096)

    def test_reverse_lookup(self):
        space = UnifiedAddressSpace()
        vrange = space.allocate(7, 20_000)
        assert space.tensor_at(vrange.start) == 7
        assert space.tensor_at(vrange.end - 1) == 7
        with pytest.raises(TranslationError):
            space.tensor_at(vrange.end + 4096 * 10)

    def test_zero_size_rejected(self):
        with pytest.raises(AllocationError):
            UnifiedAddressSpace().allocate(1, 0)

    @given(sizes=st.lists(st.integers(min_value=1, max_value=10 * MB), min_size=1, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_ranges_never_overlap(self, sizes):
        space = UnifiedAddressSpace()
        ranges = [space.allocate(i, size) for i, size in enumerate(sizes)]
        for first, second in zip(ranges, ranges[1:]):
            assert first.end <= second.start
        assert space.total_mapped_bytes >= sum(sizes)


class TestPageTable:
    def _table(self) -> UnifiedPageTable:
        return UnifiedPageTable(UnifiedAddressSpace())

    def test_place_and_translate(self):
        table = self._table()
        vrange = table.register(1, 3 * 4096)
        table.place(1, MemoryLocation.GPU)
        entry = table.translate(vrange.start + 4096)
        assert entry.location is MemoryLocation.GPU
        assert entry.is_resident_on_gpu

    def test_unmapped_translation_rejected(self):
        table = self._table()
        vrange = table.register(1, 4096)
        with pytest.raises(TranslationError):
            table.translate(vrange.start)

    def test_location_transitions(self):
        table = self._table()
        table.register(1, 4096)
        for location in (MemoryLocation.GPU, MemoryLocation.HOST, MemoryLocation.FLASH):
            table.place(1, location)
            assert table.location_of(1) is location
        assert not table.is_resident(1)

    def test_pte_update_count_tracks_pages(self):
        table = self._table()
        table.register(1, 10 * 4096)
        updated = table.place(1, MemoryLocation.GPU)
        assert updated == 10
        assert table.pte_updates == 10

    def test_gc_remap_requires_flash_residency(self):
        table = self._table()
        table.register(1, 4096)
        table.place(1, MemoryLocation.GPU)
        with pytest.raises(TranslationError):
            table.remap_flash_pages(1, new_base=100)
        table.place(1, MemoryLocation.FLASH)
        assert table.remap_flash_pages(1, new_base=100) == 1

    def test_ssd_alias_is_flash(self):
        assert MemoryLocation.SSD is MemoryLocation.FLASH

    def test_unregistered_tensor_rejected(self):
        with pytest.raises(TranslationError):
            self._table().place(5, MemoryLocation.GPU)


class TestTLB:
    def test_hit_after_miss(self):
        tlb = TLB(entries=4)
        assert tlb.access(1) is False
        assert tlb.access(1) is True
        assert tlb.hits == 1 and tlb.misses == 1

    def test_lru_eviction(self):
        tlb = TLB(entries=2)
        tlb.access(1)
        tlb.access(2)
        tlb.access(3)  # evicts 1
        assert tlb.access(1) is False

    def test_invalidate_and_flush(self):
        tlb = TLB(entries=4)
        tlb.access(1)
        tlb.invalidate(1)
        assert tlb.access(1) is False
        tlb.flush()
        assert tlb.access(1) is False
        assert 0.0 <= tlb.hit_rate <= 1.0


class TestMemoryPool:
    def test_allocation_rounds_to_pages(self):
        pool = MemoryPool("gpu", capacity_bytes=3 * 4096)
        pool.allocate(1, 5000)
        assert pool.used_bytes == 2 * 4096

    def test_capacity_enforced(self):
        pool = MemoryPool("gpu", capacity_bytes=4096)
        pool.allocate(1, 4096)
        with pytest.raises(AllocationError):
            pool.allocate(2, 1)

    def test_free_returns_bytes(self):
        pool = MemoryPool("gpu", capacity_bytes=8192)
        pool.allocate(1, 4096)
        assert pool.free(1) == 4096
        assert pool.free(1) == 0

    def test_peak_tracking(self):
        pool = MemoryPool("gpu", capacity_bytes=8192)
        pool.allocate(1, 4096)
        pool.allocate(2, 4096)
        pool.free(1)
        assert pool.peak_used_bytes == 8192

    def test_double_allocation_is_noop(self):
        pool = MemoryPool("gpu", capacity_bytes=8192)
        pool.allocate(1, 4096)
        pool.allocate(1, 4096)
        assert pool.used_bytes == 4096


class TestFaultModel:
    def test_fault_batches(self):
        model = PageFaultModel(UVMConfig())
        assert model.fault_batches(0) == 0
        assert model.fault_batches(1) == 1
        assert model.fault_batches(4 * 2 * 1024 * 1024) == 4

    def test_fault_overhead_uses_table2_latency(self):
        config = UVMConfig()
        model = PageFaultModel(config)
        assert model.fault_overhead(config.fault_batch_bytes * 3) == pytest.approx(
            3 * config.fault_latency
        )

    def test_translation_overhead(self):
        model = PageFaultModel(UVMConfig())
        assert model.translation_overhead(10, 4) == pytest.approx(4 * UVMConfig().page_walk_latency)


class TestMigrationEngine:
    def _engine(self, overhead: float = 0.0) -> MigrationEngine:
        config = paper_config()
        return MigrationEngine(config, SSDDevice(config.ssd), per_request_overhead=overhead)

    def test_host_eviction_timing(self):
        engine = self._engine()
        request = MigrationRequest(1, int(1e9), MemoryLocation.GPU, MemoryLocation.HOST, MigrationKind.EVICTION)
        completion = engine.submit(request, now=0.0)
        expected = 1e9 / paper_config().interconnect.bandwidth
        assert completion == pytest.approx(expected, rel=0.05)

    def test_flash_eviction_limited_by_ssd_bandwidth(self):
        engine = self._engine()
        request = MigrationRequest(1, int(1e9), MemoryLocation.GPU, MemoryLocation.FLASH, MigrationKind.EVICTION)
        completion = engine.submit(request, now=0.0)
        assert completion == pytest.approx(1e9 / paper_config().ssd.write_bandwidth, rel=0.05)

    def test_fifo_queueing_per_channel(self):
        engine = self._engine()
        request = MigrationRequest(1, int(1e9), MemoryLocation.GPU, MemoryLocation.HOST, MigrationKind.EVICTION)
        first = engine.submit(request, now=0.0)
        second = engine.submit(
            MigrationRequest(2, int(1e9), MemoryLocation.GPU, MemoryLocation.HOST, MigrationKind.EVICTION),
            now=0.0,
        )
        assert second > first

    def test_opposite_directions_do_not_queue_on_each_other(self):
        engine = self._engine()
        out = engine.submit(
            MigrationRequest(1, int(1e9), MemoryLocation.GPU, MemoryLocation.HOST, MigrationKind.EVICTION), 0.0
        )
        inbound = engine.submit(
            MigrationRequest(2, int(1e9), MemoryLocation.HOST, MemoryLocation.GPU, MigrationKind.PREFETCH), 0.0
        )
        assert inbound == pytest.approx(out, rel=0.05)

    def test_traffic_accounting(self):
        engine = self._engine()
        engine.submit(MigrationRequest(1, 1000, MemoryLocation.GPU, MemoryLocation.FLASH, MigrationKind.EVICTION), 0.0)
        engine.submit(MigrationRequest(1, 1000, MemoryLocation.FLASH, MemoryLocation.GPU, MigrationKind.PREFETCH), 0.0)
        engine.submit(MigrationRequest(2, 500, MemoryLocation.GPU, MemoryLocation.HOST, MigrationKind.EVICTION), 0.0)
        traffic = engine.traffic
        assert traffic.gpu_ssd_bytes == 2000
        assert traffic.gpu_host_bytes == 500
        assert traffic.ssd_write_bytes == 1000 and traffic.ssd_read_bytes == 1000
        assert traffic.eviction_count == 2 and traffic.prefetch_count == 1

    def test_per_request_overhead_added(self):
        fast = self._engine(overhead=0.0)
        slow = self._engine(overhead=1e-3)
        request = MigrationRequest(1, 1000, MemoryLocation.GPU, MemoryLocation.HOST, MigrationKind.EVICTION)
        assert slow.submit(request, 0.0) > fast.submit(request, 0.0)

    def test_transfer_set_priorities(self):
        batch = TransferSet(
            requests=[
                MigrationRequest(1, 100, MemoryLocation.GPU, MemoryLocation.HOST, MigrationKind.EVICTION),
                MigrationRequest(2, 100, MemoryLocation.HOST, MemoryLocation.GPU, MigrationKind.FAULT),
                MigrationRequest(3, 100, MemoryLocation.HOST, MemoryLocation.GPU, MigrationKind.PREFETCH),
            ]
        )
        kinds = [r.kind for r in batch.ordered()]
        assert kinds == [MigrationKind.FAULT, MigrationKind.PREFETCH, MigrationKind.EVICTION]
        assert batch.total_bytes == 300

    def test_invalid_request_rejected(self):
        with pytest.raises(SimulationError):
            MigrationRequest(1, 0, MemoryLocation.GPU, MemoryLocation.HOST, MigrationKind.EVICTION)
        with pytest.raises(SimulationError):
            MigrationRequest(1, 10, MemoryLocation.GPU, MemoryLocation.GPU, MigrationKind.EVICTION)
