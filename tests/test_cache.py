"""Property-based and failure-injection tests for :class:`ResultCache`.

The cache sits under every figure of the reproduction, so its contract is
load-bearing: arbitrary JSON payloads must round-trip exactly, any corrupted
or foreign on-disk state must read as a *miss* (never an exception, never a
wrong payload), schema bumps must invalidate, ``stats``/``clear`` must agree,
and crashed writers must not leak temp files that shadow real entries.
"""

from __future__ import annotations

import json
import os
import threading

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments.cache import CACHE_SCHEMA_VERSION, ResultCache, _tmp_path

# Cache keys are SHA-256 hex digests; any hex string >= 2 chars is layout-valid.
keys = st.text(alphabet="0123456789abcdef", min_size=2, max_size=64)

json_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**53), max_value=2**53)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=20),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=15,
)

#: Payloads are dicts at the top level (the executed-cell payload shape).
payloads = st.dictionaries(st.text(max_size=8), json_values, max_size=5)

relaxed = settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


class TestRoundTrip:
    @relaxed
    @given(key=keys, payload=payloads)
    def test_put_get_round_trip(self, tmp_path, key, payload):
        cache = ResultCache(tmp_path / "c")
        cache.put(key, payload)
        assert cache.get(key) == payload
        assert cache.has(key)

    @relaxed
    @given(key=keys, first=payloads, second=payloads)
    def test_put_overwrites(self, tmp_path, key, first, second):
        cache = ResultCache(tmp_path / "c")
        cache.put(key, first)
        cache.put(key, second)
        assert cache.get(key) == second

    @relaxed
    @given(key=keys)
    def test_missing_key_is_a_miss(self, tmp_path, key):
        cache = ResultCache(tmp_path / "c")
        assert cache.get(key) is None
        assert not cache.has(key)


class TestCorruptionTolerance:
    @relaxed
    @given(key=keys, payload=payloads, data=st.data())
    def test_truncated_entry_is_a_miss(self, tmp_path, key, payload, data):
        """Any strict prefix of a valid entry must read as a miss, never crash
        (a writer killed mid-write on a non-atomic filesystem, a torn copy)."""
        cache = ResultCache(tmp_path / "c")
        path = cache.put(key, payload)
        raw = path.read_bytes()
        cut = data.draw(st.integers(min_value=0, max_value=len(raw) - 1))
        path.write_bytes(raw[:cut])
        assert cache.get(key) is None

    @relaxed
    @given(key=keys, garbage=st.binary(max_size=64))
    def test_garbage_bytes_never_crash(self, tmp_path, key, garbage):
        cache = ResultCache(tmp_path / "c")
        path = cache.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(garbage)
        got = cache.get(key)
        assert got is None or isinstance(got, dict)

    @relaxed
    @given(key=keys, entry=json_values)
    def test_non_entry_json_is_a_miss(self, tmp_path, key, entry):
        """Valid JSON that is not a schema-tagged entry dict must be a miss."""
        cache = ResultCache(tmp_path / "c")
        path = cache.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(entry), encoding="utf-8")
        if not (isinstance(entry, dict) and entry.get("schema") == CACHE_SCHEMA_VERSION):
            assert cache.get(key) is None

    @relaxed
    @given(key=keys, payload=payloads, bump=st.integers(min_value=1, max_value=5))
    def test_schema_version_mismatch_is_a_miss(self, tmp_path, key, payload, bump):
        cache = ResultCache(tmp_path / "c")
        path = cache.put(key, payload)
        entry = json.loads(path.read_text(encoding="utf-8"))
        entry["schema"] = CACHE_SCHEMA_VERSION + bump
        path.write_text(json.dumps(entry), encoding="utf-8")
        assert cache.get(key) is None
        assert not cache.has(key)


class TestStatsClearAgreement:
    @relaxed
    @given(keyset=st.sets(keys, max_size=8))
    def test_stats_and_clear_agree(self, tmp_path, keyset):
        root = tmp_path / "c"
        cache = ResultCache(root)
        for key in keyset:
            cache.put(key, {"v": key})
        stats = cache.stats()
        assert stats["entries"] == len(keyset)
        assert stats["stale_tmp"] == 0
        assert (stats["bytes"] > 0) == (len(keyset) > 0)
        assert cache.clear() == len(keyset)
        after = cache.stats()
        assert after["entries"] == 0 and after["bytes"] == 0
        assert not root.exists()

    def test_stats_tolerates_files_vanishing_mid_scan(self, tmp_path, monkeypatch):
        """Regression: a concurrent worker (or ``clear``) deleting a file
        between the directory glob and its ``stat`` made ``stats()`` raise
        ``FileNotFoundError``; a read-only accounting pass must instead count
        the vanished file as zero bytes."""
        from pathlib import Path

        cache = ResultCache(tmp_path / "c")
        cache.put("ab12cd", {"v": 1})
        cache.put("ef34ab", {"v": 2})
        stale = cache.root / "fe" / "fe99.tmp.4242.0"
        stale.parent.mkdir(parents=True, exist_ok=True)
        stale.write_text("{torn", encoding="utf-8")

        victims = {cache.path_for("ab12cd"), stale}
        original_stat = Path.stat

        def racing_stat(self, **kwargs):
            if self in victims:
                # Simulate the racer: the file is gone by the time stats()
                # stats it, even though the glob still listed it.
                raise FileNotFoundError(str(self))
            return original_stat(self, **kwargs)

        monkeypatch.setattr(Path, "stat", racing_stat)
        stats = cache.stats()
        # The glob still saw every path; only the sizes degrade to zero.
        assert stats["entries"] == 2
        assert stats["stale_tmp"] == 1
        assert stats["bytes"] == cache.path_for("ef34ab").stat().st_size
        assert stats["stale_tmp_bytes"] == 0


class TestTempFileHygiene:
    def test_failed_put_leaves_no_temp_file(self, tmp_path):
        """An in-process writer crash (unserializable payload) must clean up
        its temp file instead of leaking ``*.tmp.<pid>`` forever."""
        cache = ResultCache(tmp_path / "c")
        with pytest.raises(TypeError):
            cache.put("ab12cd", {"bad": object()})
        assert list((tmp_path / "c").rglob("*.tmp.*")) == []
        assert cache.get("ab12cd") is None

    def test_stale_temp_files_are_reported_and_swept(self, tmp_path):
        """A *killed* writer leaves a temp file; stats must surface it and
        clear must reclaim it alongside the real entries."""
        cache = ResultCache(tmp_path / "c")
        cache.put("ab12cd", {"v": 1})
        stale = cache.root / "fe" / "fe99.tmp.4242"
        stale.parent.mkdir(parents=True, exist_ok=True)
        stale.write_text("{torn write", encoding="utf-8")

        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["stale_tmp"] == 1
        assert stats["stale_tmp_bytes"] > 0

        # clear() counts real entries but sweeps the stale temp file too.
        assert cache.clear() == 1
        assert not cache.root.exists()
        assert cache.stats()["stale_tmp"] == 0

    def test_current_naming_leak_from_killed_put_is_reported_and_swept(self, tmp_path):
        """Regression: ``stats``/``clear`` stale-tmp detection must track the
        *current* ``<key>.tmp.<pid>.<n>`` temp naming. After the concurrency
        fix widened temp names, a detector still globbing the old ``*.tmp``
        spelling would silently stop reporting leaks from killed writers."""
        cache = ResultCache(tmp_path / "c")
        cache.put("ab12cd", {"v": 1})
        # A put() SIGKILLed between write and rename leaves exactly the file
        # _tmp_path names — build it with the real helper so this test follows
        # any future renaming of the scheme.
        target = cache.path_for("fe99aa")
        leaked = _tmp_path(target)
        leaked.parent.mkdir(parents=True, exist_ok=True)
        leaked.write_text('{"schema": 1, "payload": {"half": ', encoding="utf-8")
        assert leaked.name.startswith("fe99aa.tmp.")

        stats = cache.stats()
        assert stats["entries"] == 1  # the leak is never counted as an entry
        assert stats["stale_tmp"] == 1
        assert stats["stale_tmp_bytes"] == leaked.stat().st_size
        assert cache.get("fe99aa") is None and not cache.has("fe99aa")

        assert cache.clear() == 1
        assert not leaked.exists()
        assert cache.stats() == {
            "root": str(cache.root), "entries": 0, "bytes": 0,
            "stale_tmp": 0, "stale_tmp_bytes": 0,
        }

    def test_merge_from_skips_stale_temp_files(self, tmp_path):
        shard = ResultCache(tmp_path / "shard")
        shard.put("ab12cd", {"v": 1})
        leaked = _tmp_path(shard.path_for("fe99aa"))
        leaked.parent.mkdir(parents=True, exist_ok=True)
        leaked.write_text("{torn", encoding="utf-8")

        combined = ResultCache(tmp_path / "combined")
        assert combined.merge_from(shard) == 1
        assert combined.get("ab12cd") == {"v": 1}
        assert combined.stats()["stale_tmp"] == 0

    def test_stale_temp_file_never_shadows_an_entry(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        path = cache.path_for("ab12cd")
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.parent.mkdir(parents=True, exist_ok=True)
        tmp.write_text(json.dumps({"schema": CACHE_SCHEMA_VERSION, "payload": {"v": 1}}))
        assert cache.get("ab12cd") is None


class TestConcurrentPutRace:
    """Regression suite for the queue-worker ``put()`` race: two writers of
    the same key used to share one ``<key>.tmp.<pid>`` temporary when they
    shared a pid, so one could truncate or rename the other's half-written
    file. Temp names are now unique per call; the only shared step left is
    the atomic rename (last writer wins, bit-identically)."""

    def test_tmp_names_are_unique_per_call(self, tmp_path):
        target = tmp_path / "ab" / "ab12.json"
        first, second = _tmp_path(target), _tmp_path(target)
        assert first != second
        assert first.parent == second.parent == target.parent

    def test_concurrent_same_key_puts_never_corrupt_the_entry(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        payload = {"rows": list(range(64)), "text": "x" * 512}
        barrier = threading.Barrier(8)
        errors: list[BaseException] = []

        def writer():
            try:
                barrier.wait()
                for _ in range(25):
                    cache.put("ab12cd", payload)
                    # Readers racing the writers must always see a full,
                    # valid entry (atomic rename), never a partial one.
                    assert cache.get("ab12cd") == payload
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=writer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert errors == []
        assert cache.get("ab12cd") == payload
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["stale_tmp"] == 0  # every writer cleaned up its temp

    def test_distinct_payload_race_is_last_writer_wins(self, tmp_path):
        """Divergent payloads for one key (can't happen for content-addressed
        sweep results, but the cache must still never tear): the final entry
        is exactly one of the competing payloads, intact."""
        cache = ResultCache(tmp_path / "c")
        payloads = [{"writer": index, "blob": f"{index}" * 256} for index in range(4)]
        barrier = threading.Barrier(4)

        def writer(payload):
            barrier.wait()
            for _ in range(25):
                cache.put("fe99", payload)

        threads = [threading.Thread(target=writer, args=(p,)) for p in payloads]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert cache.get("fe99") in payloads
        assert cache.stats()["stale_tmp"] == 0


class TestMerge:
    def test_merge_copies_missing_entries(self, tmp_path):
        source = ResultCache(tmp_path / "a")
        dest = ResultCache(tmp_path / "b")
        entries = {"ab12": {"v": 1}, "cd34": {"v": 2}, "ab99": {"v": 3}}
        for key, payload in entries.items():
            source.put(key, payload)
        assert dest.merge_from(source) == 3
        for key, payload in entries.items():
            assert dest.get(key) == payload
        # Idempotent: nothing left to merge.
        assert dest.merge_from(source) == 0
        assert dest.stats()["entries"] == 3

    def test_merge_skips_existing_and_stale_temp_files(self, tmp_path):
        source = ResultCache(tmp_path / "a")
        dest = ResultCache(tmp_path / "b")
        source.put("ab12", {"v": "source"})
        dest.put("ab12", {"v": "dest"})
        stale = source.root / "ff" / "ffff.tmp.7"
        stale.parent.mkdir(parents=True, exist_ok=True)
        stale.write_text("torn", encoding="utf-8")

        assert dest.merge_from(source) == 0
        assert dest.get("ab12") == {"v": "dest"}
        assert dest.stats()["stale_tmp"] == 0

    def test_merge_from_empty_or_absent_cache(self, tmp_path):
        dest = ResultCache(tmp_path / "b")
        assert dest.merge_from(ResultCache(tmp_path / "missing")) == 0
