"""Smoke tests executing every example script end-to-end.

The examples are the public face of the library API; running them in CI
(each in a fresh interpreter, exactly as a user would) guards the Scenario
quickstart path against regressions that unit tests structured around
internals might miss.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))


def run_example(path: Path, *argv: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    return subprocess.run(
        [sys.executable, str(path), *argv],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
        cwd=REPO_ROOT,
    )


def test_every_example_is_covered():
    names = {path.name for path in EXAMPLES}
    assert names == {"quickstart.py", "compare_designs.py", "inspect_migration_plan.py"}, (
        "new example added: extend the smoke assertions below"
    )


@pytest.mark.parametrize("example", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_clean(example):
    proc = run_example(example)
    assert proc.returncode == 0, proc.stderr
    assert proc.stderr == ""


def test_quickstart_output_shape():
    out = run_example(REPO_ROOT / "examples" / "quickstart.py").stdout
    assert "Workload: BERT-64" in out
    assert "Smart tensor migration plan" in out
    for policy in ("Ideal", "Base UVM", "DeepUM+", "G10"):
        assert policy in out
    assert "SimObserver" in out and "prefetches" in out


def test_compare_designs_output_shape():
    out = run_example(REPO_ROOT / "examples" / "compare_designs.py").stdout
    assert "Normalized training performance" in out
    for model in ("bert", "vit", "inceptionv3", "resnet152", "senet154"):
        assert model in out
    assert "ssd_lifetime_years" in out
