"""Integration tests for the experiment harness, figures, tables and analysis."""

import numpy as np
import pytest

from repro.analysis import estimate_ssd_lifetime, traffic_breakdown
from repro.config import GB
from repro.errors import ConfigurationError
from repro.experiments import (
    figure2_memory_consumption,
    figure11_end_to_end,
    figure16_host_memory,
    figure19_profiling_error,
    format_table,
    table1_models,
    table2_configuration,
)
from repro.experiments.harness import (
    build_workload,
    clear_workload_cache,
    default_batch_size,
    run_policy,
)


class TestHarness:
    def test_build_workload_is_memoized(self):
        a = build_workload("bert", scale="ci")
        b = build_workload("bert", scale="ci")
        assert a is b
        clear_workload_cache()
        c = build_workload("bert", scale="ci")
        assert c is not a

    def test_default_batch_sizes(self):
        assert default_batch_size("bert") == 256
        assert default_batch_size("SENet154") == 1024

    def test_ci_workloads_still_exceed_gpu_memory(self):
        for model in ("bert", "resnet152"):
            workload = build_workload(model, scale="ci")
            assert workload.memory_footprint_ratio > 1.0

    def test_unknown_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            build_workload("bert", scale="huge")

    def test_run_policy_with_profiling_error(self, bert_ci_workload):
        clean = run_policy(bert_ci_workload, "g10", profiling_error=0.0)
        noisy = run_policy(bert_ci_workload, "g10", profiling_error=0.2, seed=5)
        assert not noisy.failed
        # §7.6: eager prefetching keeps the impact of ±20% timing error tiny.
        assert noisy.execution_time <= clean.execution_time * 1.10


class TestTables:
    def test_table1_lists_all_models(self):
        rows = table1_models(scale="ci")
        assert {row["model"] for row in rows} == {"BERT", "ViT", "Inceptionv3", "ResNet152", "SENet154"}
        for row in rows:
            assert row["kernels"] > 50

    def test_table2_matches_paper(self):
        table = table2_configuration()
        assert table["GPU memory"] == "40 GB HBM2e"
        assert table["Page size"] == "4 KB"
        assert "3.2/3.0" in table["SSD read/write bandwidth"]
        assert table["GPU page fault handling latency"] == "45 us"

    def test_format_table_renders_dict_rows(self):
        text = format_table([{"a": 1, "b": 2.5}, {"a": 3, "b": 4.0}])
        assert "a" in text and "|" in text and "2.500" in text

    def test_format_table_handles_sequences_and_empty(self):
        assert "x" in format_table([[1, 2]], headers=["x", "y"])
        assert format_table([]) == "(no rows)"
        with pytest.raises(ConfigurationError):
            format_table([[1, 2]])


class TestFigures:
    """Each figure function must return the series the paper plots, at CI scale."""

    def test_figure2_active_fraction_small(self):
        results = figure2_memory_consumption(scale="ci")
        assert len(results) == 4
        for series in results.values():
            assert float(series["mean_active_fraction"]) < 0.15
            assert series["total"].max() == pytest.approx(1.0)

    def test_figure11_shape(self):
        results = figure11_end_to_end(scale="ci", models=("bert", "resnet152"))
        for model, values in results.items():
            assert values["g10"] > values["base_uvm"]
            assert values["g10"] >= values["deepum"] - 0.02
            assert 0.0 <= values["g10"] <= 1.0

    def test_figure16_more_host_memory_never_hurts_much(self):
        results = figure16_host_memory(scale="ci", models=("bert",), host_memory_gb=(0, 32, 128))
        times = list(results["bert"].values())
        assert times[-1] <= times[0] * 1.05

    def test_figure19_profiling_error_is_tolerated(self):
        results = figure19_profiling_error(scale="ci", models=("bert",), errors=(0.0, 0.2))
        assert results["bert"][0.2] > 0.9


class TestAnalysis:
    def test_traffic_breakdown_consistency(self, bert_ci_workload):
        run = run_policy(bert_ci_workload, "g10")
        breakdown = traffic_breakdown(run)
        assert breakdown.total_gb == pytest.approx(breakdown.gpu_ssd_gb + breakdown.gpu_host_gb)
        assert breakdown.read_gb + breakdown.write_gb == pytest.approx(breakdown.total_gb, rel=1e-6)

    def test_lifetime_estimate_positive(self, bert_ci_workload):
        run = run_policy(bert_ci_workload, "g10")
        estimate = estimate_ssd_lifetime(run, bert_ci_workload.config.ssd)
        assert estimate.lifetime_years > 0
        assert estimate.write_amplification >= 1.0

    def test_lifetime_rejects_failed_runs(self, bert_ci_workload):
        from repro.sim.results import SimulationResult

        failed = SimulationResult(
            model_name="m", batch_size=1, policy_name="p",
            ideal_time=1.0, execution_time=float("inf"), failed=True,
        )
        with pytest.raises(ConfigurationError):
            estimate_ssd_lifetime(failed, bert_ci_workload.config.ssd)

    def test_g10_writes_less_than_deepum(self, bert_ci_workload):
        """§7.7: smarter migration means less write traffic, hence longer SSD life."""
        g10 = run_policy(bert_ci_workload, "g10")
        uvm = run_policy(bert_ci_workload, "base_uvm")
        g10_writes = g10.traffic.ssd_write_bytes + g10.traffic.host_write_bytes
        uvm_writes = uvm.traffic.ssd_write_bytes + uvm.traffic.host_write_bytes
        assert g10_writes <= uvm_writes * 1.2
