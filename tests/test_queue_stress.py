"""Concurrency stress: 8 competing consumers over ~100 tiny cells.

Marked ``slow`` and excluded from the tier-1 run (``-m "not slow"`` is the
default); CI exercises it in the queue-mode sweep job with ``-m slow``.

The suite hammers the lease protocol with real worker processes and then
audits the event log: with a generous lease timeout no lease may ever be
retried, so every cell must have been computed exactly once — dynamic load
balancing must not duplicate work beyond lease-timeout retries — and the
``repro queue status`` accounting must reconcile exactly.
"""

from __future__ import annotations

import dataclasses
from collections import Counter

import pytest

from repro.cli import main as cli_main
from repro.experiments import (
    QueueRunner,
    ResultCache,
    SweepCell,
    WorkQueue,
    execute_cell,
)

pytestmark = pytest.mark.slow

#: ~100 tiny distinct cells: one ci-scale workload, 96 profiling-noise seeds
#: (every seed is a distinct cache key, but the workload is profiled once per
#: worker process).
BASE = SweepCell(model="bert", policy="g10", scale="ci", profiling_error=0.01)
CELLS = [dataclasses.replace(BASE, seed=seed) for seed in range(96)]


def test_eight_workers_drain_hundred_cells_exactly_once(tmp_path):
    keys = [cell.cache_key() for cell in CELLS]
    assert len(set(keys)) == len(CELLS)  # every seed really is a distinct cell

    queue = WorkQueue(tmp_path / "queue", lease_timeout=600.0)
    cache = ResultCache(tmp_path / "cache")
    counts = QueueRunner(queue, cache, workers=8).run(CELLS)
    assert counts["queued"] == len(CELLS)

    # Accounting reconciles exactly once the queue is quiescent.
    status = queue.status()
    assert status["done"] == status["total"] == len(CELLS)
    assert status["queued"] == status["leased"] == status["failed"] == 0
    assert (
        status["queued"] + status["leased"] + status["done"] + status["failed"]
        == status["total"]
    )

    # `repro queue status` agrees and reports the reconciliation itself.
    assert cli_main(["queue", "status", "--queue-dir", str(tmp_path / "queue")]) == 0

    # No duplicate computation beyond lease-timeout retries: with a 600s
    # lease timeout nothing expired, so every cell was leased exactly once
    # and acked exactly once.
    events = queue.events()
    assert sum(1 for e in events if e["event"] == "requeue") == 0
    lease_counts = Counter(e["key"] for e in events if e["event"] == "lease")
    ack_counts = Counter(e["key"] for e in events if e["event"] == "ack")
    assert set(lease_counts) == set(keys)
    assert max(lease_counts.values()) == 1
    assert max(ack_counts.values()) == 1

    # The work was spread across genuinely competing consumers.
    workers = {e["worker"] for e in events if e["event"] == "lease"}
    assert len(workers) > 1

    # Every result landed in the cache; spot-check a few against in-process
    # execution for bit-identical payloads.
    assert cache.stats()["entries"] == len(CELLS)
    for cell in (CELLS[0], CELLS[31], CELLS[95]):
        assert cache.get(cell.cache_key()) == execute_cell(cell)
