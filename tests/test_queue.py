"""The distributed work queue: lease/ack/requeue semantics and queue execution.

Three layers of guarantees, each load-bearing for crash-safe sweeps:

* **unit** — every transition (enqueue, lease, ack, release, renew, expiry,
  attempts cap) moves exactly one file between state directories, idempotently;
* **property** — arbitrary interleavings of operations (driven by Hypothesis
  against an injected clock) never lose a cell, never hold two files for one
  cache key (which makes double-completion structurally impossible), and
  always drain to empty;
* **integration** — ``SweepRunner`` in queue mode is bit-identical to a serial
  run, and permanently failing cells surface as :class:`QueueError` instead of
  hanging the queue.
"""

from __future__ import annotations

import dataclasses
import json
import tempfile
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, QueueError
from repro.experiments import (
    QueueRunner,
    ResultCache,
    SweepRunner,
    SweepSpec,
    WorkQueue,
    execute_cell,
    jsonify,
)
from repro.experiments.queue import _LEASED_RE, _QUEUED_RE

#: Three fast ci-scale simulation cells (one workload, three policies).
SPEC = SweepSpec.grid(
    "queue-test", models=("bert",), policies=("ideal", "base_uvm", "g10"), scale="ci"
)

KEYS = [f"{i:02x}a0b1c2" for i in range(6)]


class FakeClock:
    def __init__(self, start: float = 1000.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_queue(root, timeout: float = 1.0, **kwargs) -> tuple[WorkQueue, FakeClock]:
    clock = FakeClock()
    return WorkQueue(root, lease_timeout=timeout, clock=clock, **kwargs), clock


def states_per_key(queue: WorkQueue) -> dict[str, list[str]]:
    """Every state directory a key currently has a file in (fs ground truth)."""
    found: dict[str, list[str]] = {}
    for path in (queue.root / "queued").glob("*.json"):
        match = _QUEUED_RE.match(path.name)
        if match:
            found.setdefault(match["key"], []).append("queued")
    for path in (queue.root / "leased").glob("*.json"):
        match = _LEASED_RE.match(path.name)
        if match:
            found.setdefault(match["key"], []).append("leased")
    for state in ("done", "failed"):
        for path in (queue.root / state).glob("*.json"):
            found.setdefault(path.stem, []).append(state)
    return found


class TestWorkQueueTransitions:
    def test_enqueue_lease_ack_lifecycle(self, tmp_path):
        queue, _ = make_queue(tmp_path / "q")
        counts = queue.enqueue_tasks((key, {"cell": None}) for key in KEYS[:3])
        assert counts == {"queued": 3, "warm": 0, "retried": 0, "skipped": 0}
        assert queue.status()["queued"] == 3 and queue.pending() == 3

        lease = queue.lease("w0")
        assert lease.key == KEYS[0]  # deterministic key-sorted drain order
        assert lease.attempts == 1 and lease.worker == "w0"
        assert queue.status()["leased"] == 1

        assert queue.ack(lease)
        status = queue.status()
        assert status["done"] == 1 and status["queued"] == 2 and status["leased"] == 0
        assert status["total"] == 3
        assert not queue.drained()

    def test_lease_drains_in_deterministic_key_order_then_none(self, tmp_path):
        queue, _ = make_queue(tmp_path / "q")
        queue.enqueue_tasks((key, {"cell": None}) for key in reversed(KEYS))
        leased = [queue.lease(f"w{i}").key for i in range(len(KEYS))]
        assert leased == sorted(KEYS)
        assert queue.lease("late") is None

    def test_enqueue_is_idempotent(self, tmp_path):
        queue, _ = make_queue(tmp_path / "q")
        queue.enqueue_tasks([(KEYS[0], {"cell": None})])
        lease = queue.lease("w0")
        queue.ack(lease)
        queue.enqueue_tasks([(KEYS[0], {"cell": None}), (KEYS[1], {"cell": None})])
        status = queue.status()
        # The done key was not re-queued; only the genuinely new key was added.
        assert status["done"] == 1 and status["queued"] == 1 and status["total"] == 2

    def test_warm_keys_are_recorded_as_done(self, tmp_path):
        queue, _ = make_queue(tmp_path / "q")
        counts = queue.enqueue_tasks(
            ((key, {"cell": None}) for key in KEYS[:2]), warm={KEYS[0]}
        )
        assert counts == {"queued": 1, "warm": 1, "retried": 0, "skipped": 0}
        status = queue.status()
        assert status["done"] == 1 and status["queued"] == 1 and status["total"] == 2

    def test_ack_is_idempotent(self, tmp_path):
        queue, _ = make_queue(tmp_path / "q")
        queue.enqueue_tasks([(KEYS[0], {"cell": None})])
        lease = queue.lease("w0")
        assert queue.ack(lease)
        assert queue.ack(lease)  # second ack: key already done, still True
        assert queue.status()["done"] == 1

    def test_release_keeps_the_attempt_counter(self, tmp_path):
        queue, _ = make_queue(tmp_path / "q")
        queue.enqueue_tasks([(KEYS[0], {"cell": None})])
        first = queue.lease("w0")
        assert queue.release(first)
        second = queue.lease("w1")
        assert second.key == KEYS[0] and second.attempts == 2

    def test_requeue_stale_honours_the_deadline(self, tmp_path):
        queue, clock = make_queue(tmp_path / "q", timeout=1.0)
        queue.enqueue_tasks([(KEYS[0], {"cell": None})])
        queue.lease("dying-worker")
        clock.advance(0.5)
        assert queue.requeue_stale() == []  # still within its lease
        clock.advance(0.6)
        assert queue.requeue_stale() == [KEYS[0]]
        status = queue.status()
        assert status["queued"] == 1 and status["leased"] == 0
        # The reclaimed task remembers it was tried once.
        assert queue.lease("rescuer").attempts == 2

    def test_ack_after_expiry_reclaims_from_queued(self, tmp_path):
        """A worker that finishes *after* its lease expired still completes the
        task (the result is cached; recomputing would be pure waste)."""
        queue, clock = make_queue(tmp_path / "q", timeout=1.0)
        queue.enqueue_tasks([(KEYS[0], {"cell": None})])
        lease = queue.lease("slow-worker")
        clock.advance(2.0)
        assert queue.requeue_stale() == [KEYS[0]]
        assert queue.ack(lease)  # lease path is gone, but ack reclaims the task
        status = queue.status()
        assert status["done"] == 1 and status["queued"] == 0 and status["total"] == 1

    def test_ack_after_reassignment_defers_to_the_new_holder(self, tmp_path):
        queue, clock = make_queue(tmp_path / "q", timeout=1.0)
        queue.enqueue_tasks([(KEYS[0], {"cell": None})])
        stale = queue.lease("slow-worker")
        clock.advance(2.0)
        queue.requeue_stale()
        fresh = queue.lease("rescuer")
        assert not queue.ack(stale)  # the rescuer owns it now
        assert queue.status()["leased"] == 1
        assert queue.ack(fresh)
        assert queue.status()["done"] == 1

    def test_renew_extends_a_live_lease(self, tmp_path):
        queue, clock = make_queue(tmp_path / "q", timeout=1.0)
        queue.enqueue_tasks([(KEYS[0], {"cell": None})])
        lease = queue.lease("w0")
        clock.advance(0.8)
        renewed = queue.renew(lease)
        assert renewed is not None and renewed.deadline > lease.deadline
        clock.advance(0.5)  # 1.3s after the original lease, 0.5s after renewal
        assert queue.requeue_stale() == []
        clock.advance(0.6)
        assert queue.requeue_stale() == [KEYS[0]]
        # Renewing the lost lease now fails instead of resurrecting it.
        assert queue.renew(renewed) is None

    def test_attempts_cap_parks_the_task_as_failed(self, tmp_path):
        queue, _ = make_queue(tmp_path / "q", max_attempts=2)
        queue.enqueue_tasks([(KEYS[0], {"cell": None})])
        for _ in range(2):
            queue.release(queue.lease("w0"))
        assert queue.lease("w0") is None
        status = queue.status()
        assert status["failed"] == 1 and status["queued"] == 0 and status["total"] == 1
        assert queue.failed_keys() == {KEYS[0]}
        assert queue.drained()  # failed tasks do not hang the queue

    def test_reenqueue_retries_a_failed_task_with_a_fresh_budget(self, tmp_path):
        queue, _ = make_queue(tmp_path / "q", max_attempts=1)
        queue.enqueue_tasks([(KEYS[0], {"cell": None})])
        queue.release(queue.lease("w0"))
        assert queue.lease("w0") is None  # attempts exhausted -> failed/
        assert queue.failed_keys() == {KEYS[0]}

        counts = queue.enqueue_tasks([(KEYS[0], {"cell": None})])
        assert counts == {"queued": 0, "warm": 0, "retried": 1, "skipped": 0}
        assert queue.failed_keys() == set()
        lease = queue.lease("w1")
        assert lease.key == KEYS[0] and lease.attempts == 1  # budget reset
        assert queue.ack(lease)
        assert queue.status()["done"] == 1

    def test_concurrent_producers_cannot_duplicate_a_key(self, tmp_path):
        """Task creation is an exclusive link: with the target already present
        (the losing side of a producer race), creation reports a skip."""
        queue, _ = make_queue(tmp_path / "q")
        assert queue._create_task(
            queue.root / "queued" / f"{KEYS[0]}.a0.json", KEYS[0], {"cell": None}
        )
        assert not queue._create_task(
            queue.root / "queued" / f"{KEYS[0]}.a0.json", KEYS[0], {"cell": None}
        )
        assert queue.status()["queued"] == 1
        # No temp files linger from either attempt.
        assert list((queue.root / "queued").glob("*.tmp.*")) == []

    def test_status_reconciliation_detects_lost_task_files(self, tmp_path):
        queue, _ = make_queue(tmp_path / "q")
        queue.enqueue_tasks((key, {"cell": None}) for key in KEYS[:3])
        status = queue.status()
        assert status["total"] == status["expected"] == 3
        # Simulate external damage: a task file vanishes. The structural sum
        # still balances, but the events-derived expectation catches it.
        next((queue.root / "queued").glob("*.json")).unlink()
        status = queue.status()
        assert status["total"] == 2 and status["expected"] == 3

    def test_foreign_files_are_ignored(self, tmp_path):
        queue, _ = make_queue(tmp_path / "q")
        (queue.root / "queued").mkdir(parents=True)
        (queue.root / "queued" / "README.txt").write_text("not a task")
        assert queue.lease("w0") is None
        assert queue.status()["total"] == 0

    def test_status_counts_stale_leases(self, tmp_path):
        queue, clock = make_queue(tmp_path / "q", timeout=1.0)
        queue.enqueue_tasks((key, {"cell": None}) for key in KEYS[:2])
        queue.lease("w0")
        clock.advance(2.0)
        queue.lease("w1")
        status = queue.status()
        assert status["leased"] == 2 and status["stale"] == 1

    def test_events_audit_every_transition(self, tmp_path):
        queue, clock = make_queue(tmp_path / "q", timeout=1.0)
        queue.enqueue_tasks([(KEYS[0], {"cell": None})])
        lease = queue.lease("w0")
        queue.release(lease)
        lease = queue.lease("w0")
        clock.advance(2.0)
        queue.requeue_stale()
        lease = queue.lease("w1")
        queue.ack(lease)
        kinds = [event["event"] for event in queue.events()]
        assert kinds == ["enqueue", "lease", "release", "lease", "requeue", "lease", "ack"]
        assert all(e["key"] == KEYS[0] for e in queue.events() if e["event"] == "lease")

    def test_clear_removes_everything(self, tmp_path):
        queue, _ = make_queue(tmp_path / "q")
        queue.enqueue_tasks([(KEYS[0], {"cell": None})])
        queue.clear()
        assert not queue.root.exists()
        assert queue.status()["total"] == 0

    def test_invalid_arguments_are_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            WorkQueue(tmp_path / "q", lease_timeout=0)
        with pytest.raises(ConfigurationError):
            WorkQueue(tmp_path / "q", max_attempts=0)
        queue, _ = make_queue(tmp_path / "q")
        with pytest.raises(ConfigurationError):
            queue.enqueue_tasks([("NOT-HEX!", {"cell": None})])
        with pytest.raises(QueueError):
            queue.enqueue_tasks([(KEYS[0], {"cell": None})])
            queue.lease("w0").cell()  # task carries no cell payload


class TestWorkerIdsAndLeaseRecovery:
    """The two PR 7 lease bugs: dotted worker ids producing lease filenames the
    strict regex could never parse (so the task was stranded and status
    undercounted), and unparseable lease files being skipped forever."""

    def test_sanitize_worker_id_flattens_fqdns(self):
        from repro.experiments import sanitize_worker_id

        assert sanitize_worker_id("node1.cluster.local") == "node1-cluster-local"
        assert sanitize_worker_id("plain_worker-3") == "plain_worker-3"
        assert sanitize_worker_id("a b/c:d") == "a-b-c-d"
        assert sanitize_worker_id("") == "worker"
        assert sanitize_worker_id("...") == "---"  # dashes are lease-safe
        assert len(sanitize_worker_id("x" * 200)) == 64

    def test_default_worker_id_is_lease_safe(self):
        import re

        from repro.experiments import default_worker_id

        assert re.fullmatch(r"[A-Za-z0-9_-]{1,64}", default_worker_id())

    def test_dotted_worker_id_yields_a_strictly_parseable_lease(self, tmp_path):
        queue, clock = make_queue(tmp_path / "q", timeout=1.0)
        queue.enqueue_tasks([(KEYS[0], {"cell": None})])
        lease = queue.lease("node1.cluster.example.com-90210")
        assert lease.worker == "node1-cluster-example-com-90210"
        assert states_per_key(queue) == {KEYS[0]: ["leased"]}  # strict regexes
        clock.advance(2.0)
        assert queue.requeue_stale() == [KEYS[0]]  # reclaimable, not stranded

    def test_unparseable_lease_counts_as_leased_and_stale(self, tmp_path):
        queue, _ = make_queue(tmp_path / "q", timeout=1.0)
        queue.enqueue_tasks([(KEYS[0], {"cell": None})])
        lease = queue.lease("w0")
        # Simulate a lease written by a pre-sanitization release: a dotted
        # worker id the strict regex rejects.
        bad = lease.path.with_name(f"{KEYS[0]}.a1.d999999999.wfqdn.host.json")
        lease.path.rename(bad)
        status = queue.status()
        assert status["leased"] == 1 and status["stale"] == 1
        assert status["total"] == status["expected"] == 1

    def test_unparseable_lease_is_requeued_with_a_warning_event(self, tmp_path):
        queue, _ = make_queue(tmp_path / "q", timeout=1.0)
        queue.enqueue_tasks([(KEYS[0], {"cell": None})])
        lease = queue.lease("w0")
        bad = lease.path.with_name(f"{KEYS[0]}.a1.d999999999.wfqdn.host.json")
        lease.path.rename(bad)

        assert queue.requeue_stale() == [KEYS[0]]  # stale *immediately*
        warnings = [e for e in queue.events() if e.get("warning")]
        assert len(warnings) == 1
        assert warnings[0]["event"] == "requeue"
        assert warnings[0]["reason"] == "unparseable-lease"
        assert warnings[0]["lease_file"] == bad.name

        # The attempt counter survives the lenient filename parse.
        revived = queue.lease("w1")
        assert revived.key == KEYS[0] and revived.attempts == 2
        assert queue.ack(revived)
        assert queue.drained()

    def test_mangled_lease_name_recovers_key_from_the_task_payload(self, tmp_path):
        queue, _ = make_queue(tmp_path / "q", timeout=1.0)
        queue.enqueue_tasks([(KEYS[0], {"cell": None})])
        lease = queue.lease("w0")
        # Even the lenient filename parse fails here; only the JSON payload's
        # own ``key`` field identifies the task.
        bad = lease.path.with_name("mangled-by-an-operator.json")
        lease.path.rename(bad)

        assert queue.status()["leased"] == 1  # payload fallback, not undercount
        assert queue.requeue_stale() == [KEYS[0]]
        revived = queue.lease("w1")
        assert revived.key == KEYS[0] and revived.attempts == 1  # counter reset

    def test_foreign_files_in_leased_are_never_requeued(self, tmp_path):
        queue, _ = make_queue(tmp_path / "q", timeout=1.0)
        (queue.root / "leased").mkdir(parents=True)
        foreign_txt = queue.root / "leased" / "NOTES.txt"
        foreign_txt.write_text("operator scratch space")
        foreign_json = queue.root / "leased" / "metrics.json"
        foreign_json.write_text(json.dumps({"latency_ms": 12}))

        assert queue.requeue_stale() == []
        assert foreign_txt.exists() and foreign_json.exists()
        assert queue.status()["total"] == 0


# -- property suite ------------------------------------------------------------

operations = st.lists(
    st.one_of(
        st.tuples(st.just("enqueue"), st.integers(0, len(KEYS) - 1)),
        st.tuples(st.just("lease"), st.integers(0, 2)),
        st.tuples(st.just("ack"), st.integers(0, 7)),
        st.tuples(st.just("release"), st.integers(0, 7)),
        st.tuples(st.just("advance"), st.integers(1, 30)),  # tenths of a second
        st.tuples(st.just("requeue"), st.just(0)),
    ),
    max_size=40,
)

relaxed = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


class TestWorkQueueProperties:
    """Arbitrary interleavings of queue operations preserve the invariants the
    sweep relies on: no cell is ever lost, no cache key can complete twice
    (there is never more than one task file per key), done is sticky, and the
    queue always drains to empty."""

    @relaxed
    @given(ops=operations)
    def test_interleavings_preserve_task_conservation_and_drain(self, ops):
        with tempfile.TemporaryDirectory() as root:
            queue, clock = make_queue(Path(root) / "q", timeout=1.0, max_attempts=None)
            enqueued: set[str] = set()
            completed: set[str] = set()
            leases = []

            def check_invariants():
                found = states_per_key(queue)
                # Conservation: every enqueued key exists in exactly one state,
                # and no unknown keys appear.
                assert set(found) == enqueued
                for key, states in found.items():
                    assert len(states) == 1, f"{key} duplicated across {states}"
                # Done is sticky: a completed key can never leave done/.
                for key in completed:
                    assert found[key] == ["done"]

            for op, arg in ops:
                if op == "enqueue":
                    queue.enqueue_tasks([(KEYS[arg], {"cell": None})])
                    enqueued.add(KEYS[arg])
                elif op == "lease":
                    lease = queue.lease(f"w{arg}")
                    if lease is not None:
                        leases.append(lease)
                elif op == "ack" and leases:
                    lease = leases.pop(arg % len(leases))
                    if queue.ack(lease):
                        completed.add(lease.key)
                elif op == "release" and leases:
                    queue.release(leases.pop(arg % len(leases)))
                elif op == "advance":
                    clock.advance(arg / 10)
                elif op == "requeue":
                    queue.requeue_stale()
                check_invariants()

            # Drain: expire anything outstanding and lease/ack to completion.
            for _ in range(10 * len(KEYS) + 10):
                if queue.drained():
                    break
                lease = queue.lease("drain")
                if lease is None:
                    clock.advance(2.0)
                    queue.requeue_stale()
                    continue
                assert queue.ack(lease)
                completed.add(lease.key)
                check_invariants()

            assert queue.drained()
            status = queue.status()
            assert status["done"] == status["total"] == len(enqueued)
            assert status["queued"] == status["leased"] == status["failed"] == 0


# -- execution integration -----------------------------------------------------

class TestQueueExecution:
    def test_sweep_runner_queue_mode_is_bit_identical_to_serial(self, tmp_path):
        serial = SweepRunner(cache=None).run(SPEC)
        reference = json.dumps(jsonify([out.payload for out in serial]), sort_keys=True)

        runner = SweepRunner(
            jobs=2, cache=ResultCache(tmp_path / "cache"),
            queue_dir=tmp_path / "queue", lease_timeout=60.0,
        )
        queued = runner.run(SPEC)
        assert runner.last_stats["executed"] == 3
        assert json.dumps(jsonify([out.payload for out in queued]), sort_keys=True) == reference

        # A second run is a pure cache resume: the queue is not touched again.
        resumed = runner.run(SPEC)
        stats = runner.last_stats
        assert (stats["cells"], stats["cache_hits"], stats["executed"]) == (3, 3, 0)
        assert json.dumps(jsonify([out.payload for out in resumed]), sort_keys=True) == reference

        queue = WorkQueue(tmp_path / "queue")
        status = queue.status()
        assert status["done"] == status["total"] == 3
        # No lease was ever retried: every cell was computed exactly once.
        events = queue.events()
        assert sum(1 for e in events if e["event"] == "lease") == 3
        assert sum(1 for e in events if e["event"] == "requeue") == 0

    def test_queue_runner_reports_permanent_failures(self, tmp_path):
        queue = WorkQueue(tmp_path / "q", lease_timeout=60.0, max_attempts=2)
        cache = ResultCache(tmp_path / "c")
        bad_cell = {
            "model": "no-such-model", "policy": "g10",
            "batch_size": 8, "scale": "ci",
        }
        queue.enqueue_tasks([("ab" * 32, {"cell": bad_cell})])
        with pytest.raises(QueueError, match="failed permanently"):
            QueueRunner(queue, cache, workers=1).drain()
        assert queue.status()["failed"] == 1

    def test_unrelated_failed_tasks_do_not_poison_a_scoped_run(self, tmp_path):
        """Another sweep's permanently-failed task in the same queue directory
        must not fail a run whose own cells all succeed."""
        queue = WorkQueue(tmp_path / "q", lease_timeout=60.0, max_attempts=1)
        cache = ResultCache(tmp_path / "c")
        # Park a foreign key in failed/ the hard way: exhaust its attempts.
        queue.enqueue_tasks([("ff" * 32, {"cell": None})])
        queue.release(queue.lease("w0"))
        assert queue.lease("w0") is None and queue.failed_keys() == {"ff" * 32}

        counts = QueueRunner(queue, cache, workers=1).run([SPEC.cells[0]])
        assert counts["queued"] == 1
        assert cache.get(SPEC.cells[0].cache_key()) is not None
        # The foreign failure is still visible, just not fatal to this run.
        assert queue.failed_keys() == {"ff" * 32}

    def test_drain_of_an_empty_queue_is_a_noop(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        QueueRunner(queue, ResultCache(tmp_path / "c"), workers=2).drain()
        assert queue.status()["total"] == 0

    def test_queue_mode_requires_a_cache(self, tmp_path):
        with pytest.raises(ConfigurationError):
            SweepRunner(cache=None, queue_dir=tmp_path / "q")
        with pytest.raises(ConfigurationError):
            QueueRunner(WorkQueue(tmp_path / "q"), cache=None)
        with pytest.raises(ConfigurationError):
            QueueRunner(WorkQueue(tmp_path / "q"), ResultCache(tmp_path / "c"), workers=0)

    def test_queue_task_identity_matches_the_scenario_api(self, tmp_path):
        """A queue task is exactly Scenario.cell() + Scenario.cache_key()."""
        from repro import Scenario

        scenario = Scenario("bert", scale="ci").on_policy("g10")
        queue = WorkQueue(tmp_path / "q", lease_timeout=60.0)
        queue.enqueue([scenario.cell()])
        lease = queue.lease("w0")
        assert lease.key == scenario.cache_key()
        assert lease.cell() == scenario.cell().resolved()

    def test_enqueue_records_warm_cells_from_the_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        cell = SPEC.cells[0]
        cache.put(cell.cache_key(), execute_cell(cell), cell=cell.to_dict())
        queue = WorkQueue(tmp_path / "q", lease_timeout=60.0)
        counts = queue.enqueue(SPEC.cells, cache=cache)
        assert counts == {"queued": 2, "warm": 1, "retried": 0, "skipped": 0}
        status = queue.status()
        assert status["done"] == 1 and status["queued"] == 2
