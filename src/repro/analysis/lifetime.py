"""SSD lifetime impact of tensor migration traffic (§7.7)."""

from __future__ import annotations

from ..config import SSDConfig
from ..errors import ConfigurationError
from ..sim.results import SimulationResult
from ..ssd.wear import LifetimeEstimate, WearTracker


def estimate_ssd_lifetime(
    result: SimulationResult, ssd_config: SSDConfig
) -> LifetimeEstimate:
    """Project SSD lifetime if the simulated iteration ran back-to-back forever.

    Reproduces the paper's §7.7 arithmetic: the device is rated for
    ``DWPD x warranty days x capacity`` of writes; dividing by the sustained
    write bandwidth of the training workload gives the expected lifetime. The
    FTL's write amplification measured during the run is folded in.
    """
    if result.failed:
        raise ConfigurationError("cannot project lifetime from a failed run")
    tracker = WearTracker(ssd_config)
    tracker.record_write(result.ssd_bytes_written)
    tracker.record_read(result.ssd_bytes_read)
    return tracker.lifetime(result.execution_time, max(1.0, result.ssd_write_amplification))
