"""Interprocedural dataflow analyses and the ``--project`` lint rules.

Three rule families run on top of the :mod:`~repro.analysis.symbols` table
and :mod:`~repro.analysis.callgraph` graph, all activated only by
``repro lint --project`` (they need every module at once):

* **DET005** — interprocedural determinism taint. A function anywhere in the
  tree that consumes wall-clock/entropy (``time.time``, ``random.*``,
  ``uuid``, ``os.urandom``, ``numpy.random``) taints itself; taint propagates
  callee→caller over the call graph; any call *from* a deterministic layer
  (``sim/``, ``core/``, ``uvm/``, ``ssd/``, ``graph/``, ``baselines/``) into
  a tainted function outside those layers is flagged, with the full call
  chain down to the entropy read as evidence. This closes the hole DET001
  cannot see: laundering nondeterminism through a helper in another module.
* **ASY001** — await-atomicity. Inside any ``async def``, a write to shared
  mutable state (``self.<attr>`` or a module global) whose value or guarding
  condition derives from a read of the *same* state performed before an
  intervening ``await`` is a statically detected race on the per-request
  atomicity invariant ``repro serve`` depends on ("all queue/cache work
  happens synchronously between await points").
* **EXC001** — exception contract. Only :class:`~repro.errors.ReproError`
  subclasses may propagate out of CLI command handlers (``_cmd_*`` in
  ``cli.py``) and :class:`~repro.experiments.backend.QueueBackend`
  implementations. Each function's raise-set is propagated over the call
  graph and intersected with the except-handlers enclosing each call site;
  whatever non-``ReproError`` survives at a contract boundary is flagged with
  the raise chain as evidence.

Conservatism contract (shared by all three): the call graph resolves only
statically certain targets, so dynamically dispatched paths (registry
``create``, callbacks, duck-typed attributes) are invisible — these rules can
miss such paths but never fabricate one. ASY001 linearizes branches and scans
loop bodies once; EXC001 only sees explicit ``raise`` statements of
resolvable exception classes and treats an unresolvable ``except`` clause as
catching everything.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from .callgraph import CallEdge, CallGraph
from .lint.framework import (
    DETERMINISTIC_LAYERS,
    LintFinding,
    ModuleSource,
    ProjectRule,
    dotted_name,
    register_rule,
)
from .lint.rules import NoEntropyRule
from .symbols import FunctionSymbol, ModuleSymbols, SymbolTable

__all__ = [
    "ProjectContext",
    "EntropyTaintRule",
    "AwaitAtomicityRule",
    "ExceptionContractRule",
]

#: Package path of the exception hierarchy root every contract allows.
_REPRO_ERROR = "errors.py::ReproError"

#: Module holding the CLI command handlers EXC001 guards.
_CLI_MODULE = "cli.py"

#: Class id of the queue-backend contract EXC001 guards implementations of.
_QUEUE_BACKEND = "experiments/backend.py::QueueBackend"

#: Exceptions that may always propagate: they are control flow, not errors.
_CONTROL_FLOW_EXCEPTIONS = frozenset(
    {"KeyboardInterrupt", "SystemExit", "GeneratorExit"}
)

#: Sentinel for "this handler catches everything" (bare ``except:`` or an
#: ``except`` whose class expression we cannot resolve — conservative).
_CATCH_ALL = "*"


@dataclass
class ProjectContext:
    """Everything a :class:`ProjectRule` sees: modules, symbols, call graph."""

    modules: dict[str, ModuleSource]
    table: SymbolTable
    graph: CallGraph

    @classmethod
    def build(cls, sources: Sequence[ModuleSource]) -> "ProjectContext":
        table = SymbolTable.build(sources)
        graph = CallGraph.build(table)
        return cls(
            modules={source.package_path: source for source in sources},
            table=table,
            graph=graph,
        )

    def finding(
        self,
        code: str,
        module_path: str,
        line: int,
        col: int,
        message: str,
        evidence: Iterable[str] = (),
    ) -> LintFinding | None:
        """Build one finding, honouring inline suppressions on its line."""
        module = self.modules[module_path]
        if module.suppressed(code, line):
            return None
        return LintFinding(
            rule=code,
            path=str(module.path),
            package_path=module.package_path,
            line=line,
            col=col,
            message=message,
            snippet=module.source_line(line),
            evidence=tuple(evidence),
        )

    def in_deterministic_layers(self, module_path: str) -> bool:
        return any(module_path.startswith(layer) for layer in DETERMINISTIC_LAYERS)


def _sorted_findings(findings: Iterable[LintFinding | None]) -> list[LintFinding]:
    kept = [f for f in findings if f is not None]
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return kept


# ---------------------------------------------------------------------------
# DET005 — interprocedural determinism taint
# ---------------------------------------------------------------------------


@register_rule(
    "DET005",
    title="no call path from a deterministic layer to wall-clock/entropy",
    rationale=(
        "helpers in other modules can launder nondeterminism DET001 cannot "
        "see; taint is propagated over the whole call graph"
    ),
)
class EntropyTaintRule(ProjectRule):
    """Forward entropy taint over the project call graph.

    Seeds are direct entropy calls anywhere in the tree — except those
    DET001 already sanctions (its per-module allowlist and inline
    suppressions). Taint propagates callee→caller; a finding is the frontier
    edge where a deterministic-layer function calls a tainted function that
    lives *outside* the deterministic layers (entropy calls inside them are
    DET001's per-module findings, so each violation is reported exactly
    once). Dynamic dispatch is invisible to the call graph, so a launder
    routed through a registry or callback is not caught — the conservative
    trade documented in :mod:`repro.analysis.callgraph`.
    """

    code = "DET005"
    title = "no call path from a deterministic layer to wall-clock/entropy"
    rationale = (
        "helpers in other modules can launder nondeterminism DET001 cannot "
        "see; taint is propagated over the whole call graph"
    )

    def check_project(self, project: ProjectContext) -> list[LintFinding]:
        breadcrumb = self._propagate(project)
        findings: list[LintFinding | None] = []
        seen: set[tuple[str, int, int, str]] = set()
        for edge in project.graph.project_edges():
            caller = project.table.functions[edge.caller]
            if not project.in_deterministic_layers(caller.module):
                continue
            callee = project.table.functions[edge.callee]
            if project.in_deterministic_layers(callee.module):
                continue
            if edge.callee not in breadcrumb:
                continue
            dedupe = (caller.module, edge.line, edge.col, edge.callee)
            if dedupe in seen:
                continue
            seen.add(dedupe)
            chain, source = self._chain(edge, breadcrumb)
            findings.append(
                project.finding(
                    self.code,
                    caller.module,
                    edge.line,
                    edge.col,
                    f"call into {callee.qual} ({callee.module}) reaches "
                    f"{source}() {len(chain) - 1} call(s) away; deterministic "
                    "layers must not consume wall-clock/entropy-derived "
                    "values, however indirectly",
                    evidence=chain,
                )
            )
        return _sorted_findings(findings)

    def _propagate(self, project: ProjectContext) -> dict[str, CallEdge]:
        """Taint every function with a path to an unsanctioned entropy call.

        Returns a breadcrumb map: tainted fid → the outgoing edge that taints
        it (external entropy edge for seeds, project edge toward the source
        otherwise), from which evidence chains are reconstructed.
        """
        breadcrumb: dict[str, CallEdge] = {}
        work: list[str] = []
        for edge in project.graph.external_edges():
            if not NoEntropyRule.matches(edge.callee):
                continue
            caller = project.table.functions[edge.caller]
            module = project.modules[caller.module]
            allowed = NoEntropyRule.ALLOWLIST.get(module.package_path, frozenset())
            if edge.callee in allowed:
                continue
            if module.suppressed("DET001", edge.line) or module.suppressed(
                self.code, edge.line
            ):
                continue
            if edge.caller not in breadcrumb:
                breadcrumb[edge.caller] = edge
                work.append(edge.caller)
        while work:
            fid = work.pop()
            for edge in project.graph.calls_to(fid):
                if edge.caller not in breadcrumb:
                    breadcrumb[edge.caller] = edge
                    work.append(edge.caller)
        return breadcrumb

    @staticmethod
    def _chain(
        frontier: CallEdge, breadcrumb: Mapping[str, CallEdge]
    ) -> tuple[list[str], str]:
        """The evidence chain from a frontier edge down to the entropy call."""
        chain = [frontier.describe()]
        current = frontier.callee
        visited = {frontier.caller}
        while current not in visited:
            visited.add(current)
            step = breadcrumb.get(current)
            if step is None:  # pragma: no cover - breadcrumbs are complete
                break
            chain.append(step.describe())
            if step.external:
                return chain, step.callee
            current = step.callee
        return chain, chain[-1].rsplit("-> ", 1)[-1].rstrip("()")


# ---------------------------------------------------------------------------
# ASY001 — await-atomicity in async functions
# ---------------------------------------------------------------------------


@dataclass
class _StateEvent:
    """One ordered read/write/await event inside an async function body."""

    kind: str  #: "read" | "write" | "await"
    key: tuple[str, str] | None  #: ("self", attr) or ("global", name)
    pos: int
    line: int
    #: For writes: dependency sources — same-key read positions feeding the
    #: written value, its guards, or locals tainted by such reads.
    deps: dict[tuple[str, str], int] = field(default_factory=dict)


class _AsyncStateScan:
    """Evaluation-ordered scan of one async function.

    Produces read/write/await events against shared state with monotonically
    increasing positions, visiting expressions in CPython evaluation order
    (assignment values before targets, awaited expressions before the
    suspension itself) so "the read happened before the suspension" is
    decided by position comparison alone. Branches are linearized and loop
    bodies scanned once — conservative, documented in the module docstring.
    """

    def __init__(
        self, function: FunctionSymbol, module_globals: frozenset[str]
    ) -> None:
        self.function = function
        self.events: list[_StateEvent] = []
        self.awaits: list[_StateEvent] = []
        self.writes: list[_StateEvent] = []
        self._pos = 0
        #: local name → same-key read positions it carries (taint)
        self._taint: dict[str, dict[tuple[str, str], int]] = {}
        #: dependency sources contributed by enclosing tests/iterables
        self._guards: list[dict[tuple[str, str], int]] = []
        locals_, globals_decl = _function_locals(function.node)
        self._globals_decl = globals_decl
        self._locals = locals_ - globals_decl
        self._module_globals = module_globals
        self._scan_body(function.node.body)

    # -- event plumbing --------------------------------------------------------

    def _emit(
        self,
        kind: str,
        key: tuple[str, str] | None,
        line: int,
        deps: dict[tuple[str, str], int] | None = None,
    ) -> _StateEvent:
        self._pos += 1
        event = _StateEvent(kind=kind, key=key, pos=self._pos, line=line, deps=deps or {})
        self.events.append(event)
        if kind == "await":
            self.awaits.append(event)
        elif kind == "write":
            self.writes.append(event)
        return event

    def _guard_deps(self) -> dict[tuple[str, str], int]:
        merged: dict[tuple[str, str], int] = {}
        for guard in self._guards:
            merged.update(guard)
        return merged

    # -- expressions (evaluation order), returning dependency sources ----------

    def _scan_expr(self, node: ast.expr | None) -> dict[tuple[str, str], int]:
        if node is None:
            return {}
        if isinstance(node, ast.Await):
            deps = self._scan_expr(node.value)
            self._emit("await", None, node.lineno)
            return deps
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            if node.id in self._taint:
                return dict(self._taint[node.id])
            if self._is_global(node.id):
                key = ("global", node.id)
                event = self._emit("read", key, node.lineno)
                return {key: event.pos}
            return {}
        if isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
            deps = self._scan_expr(node.value)
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                key = ("self", node.attr)
                event = self._emit("read", key, node.lineno)
                deps = dict(deps)
                deps[key] = event.pos
            return deps
        if isinstance(node, (ast.Lambda,)):
            return {}  # deferred execution: out of scope
        deps: dict[tuple[str, str], int] = {}
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                deps.update(self._scan_expr(child))
            elif isinstance(child, ast.comprehension):
                deps.update(self._scan_expr(child.iter))
                for if_clause in child.ifs:
                    deps.update(self._scan_expr(if_clause))
            elif isinstance(child, ast.keyword):
                deps.update(self._scan_expr(child.value))
        return deps

    def _is_global(self, name: str) -> bool:
        if name in self._globals_decl:
            return name in self._module_globals
        return name in self._module_globals and name not in self._locals

    # -- assignment targets ----------------------------------------------------

    def _scan_target(
        self, target: ast.expr, deps: dict[tuple[str, str], int], line: int
    ) -> None:
        if isinstance(target, ast.Attribute):
            if isinstance(target.value, ast.Name) and target.value.id == "self":
                merged = dict(deps)
                merged.update(self._guard_deps())
                self._emit("write", ("self", target.attr), line, merged)
            else:
                self._scan_expr(target.value)
        elif isinstance(target, ast.Name):
            if target.id in self._globals_decl and target.id in self._module_globals:
                merged = dict(deps)
                merged.update(self._guard_deps())
                self._emit("write", ("global", target.id), line, merged)
            else:
                if deps:
                    self._taint[target.id] = dict(deps)
                else:
                    self._taint.pop(target.id, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._scan_target(element, deps, line)
        elif isinstance(target, ast.Subscript):
            self._scan_expr(target.value)
            self._scan_expr(target.slice)

    def _read_target(self, target: ast.expr) -> dict[tuple[str, str], int]:
        """The read half of an augmented assignment's target."""
        if isinstance(target, ast.Attribute) and isinstance(target.value, ast.Name):
            if target.value.id == "self":
                key = ("self", target.attr)
                event = self._emit("read", key, target.lineno)
                return {key: event.pos}
        if isinstance(target, ast.Name):
            if target.id in self._taint:
                return dict(self._taint[target.id])
            if self._is_global(target.id):
                key = ("global", target.id)
                event = self._emit("read", key, target.lineno)
                return {key: event.pos}
        return {}

    # -- statements ------------------------------------------------------------

    def _scan_body(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._scan_stmt(stmt)

    def _scan_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested definitions execute later
        if isinstance(stmt, ast.Assign):
            deps = self._scan_expr(stmt.value)
            for target in stmt.targets:
                self._scan_target(target, deps, stmt.lineno)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                deps = self._scan_expr(stmt.value)
                self._scan_target(stmt.target, deps, stmt.lineno)
        elif isinstance(stmt, ast.AugAssign):
            deps = self._read_target(stmt.target)
            deps.update(self._scan_expr(stmt.value))
            self._scan_target(stmt.target, deps, stmt.lineno)
        elif isinstance(stmt, (ast.If, ast.While)):
            guard = self._scan_expr(stmt.test)
            self._guards.append(guard)
            self._scan_body(stmt.body)
            self._scan_body(stmt.orelse)
            self._guards.pop()
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            guard = self._scan_expr(stmt.iter)
            if isinstance(stmt, ast.AsyncFor):
                self._emit("await", None, stmt.lineno)
            self._scan_target(stmt.target, guard, stmt.lineno)
            self._guards.append(guard)
            self._scan_body(stmt.body)
            self._scan_body(stmt.orelse)
            self._guards.pop()
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            deps: dict[tuple[str, str], int] = {}
            for item in stmt.items:
                deps.update(self._scan_expr(item.context_expr))
            if isinstance(stmt, ast.AsyncWith):
                self._emit("await", None, stmt.lineno)
            for item in stmt.items:
                if item.optional_vars is not None:
                    self._scan_target(item.optional_vars, deps, stmt.lineno)
            self._scan_body(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._scan_body(stmt.body)
            for handler in stmt.handlers:
                self._scan_body(handler.body)
            self._scan_body(stmt.orelse)
            self._scan_body(stmt.finalbody)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self._taint.pop(target.id, None)
                elif isinstance(target, ast.Attribute) and isinstance(
                    target.value, ast.Name
                ):
                    if target.value.id == "self":
                        self._emit("write", ("self", target.attr), stmt.lineno, {})
        elif isinstance(stmt, ast.Return):
            self._scan_expr(stmt.value)
        elif isinstance(stmt, ast.Expr):
            self._scan_expr(stmt.value)
        elif isinstance(stmt, ast.Raise):
            self._scan_expr(stmt.exc)
            self._scan_expr(stmt.cause)
        elif isinstance(stmt, ast.Assert):
            self._scan_expr(stmt.test)
            self._scan_expr(stmt.msg)


def _function_locals(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
) -> tuple[set[str], set[str]]:
    """(names bound locally, names declared ``global``) for one function."""
    locals_: set[str] = set()
    globals_decl: set[str] = set()
    args = node.args
    for arg in (
        *args.posonlyargs, *args.args, *args.kwonlyargs,
        *filter(None, (args.vararg, args.kwarg)),
    ):
        locals_.add(arg.arg)
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and isinstance(child.ctx, (ast.Store, ast.Del)):
            locals_.add(child.id)
        elif isinstance(child, ast.Global):
            globals_decl.update(child.names)
    return locals_, globals_decl


@register_rule(
    "ASY001",
    title="no shared-state write derived from a read across an await",
    rationale=(
        "repro serve's per-request atomicity holds only between await points; "
        "a read→await→dependent-write sequence is an async race"
    ),
)
class AwaitAtomicityRule(ProjectRule):
    """Statically detects read→await→dependent-write races in ``async def``.

    Shared state is ``self.<attr>`` and module globals. A write is flagged
    when any of its dependency sources — a read feeding the written value, a
    read in a guarding condition, or a local carrying such a read — happened
    before an ``await`` that precedes the write: the decision was made
    against state another request may have changed during the suspension.
    Writes whose every dependency was (re-)read after the last suspension are
    clean, as is any read/write pair within one synchronous segment.
    """

    code = "ASY001"
    title = "no shared-state write derived from a read across an await"
    rationale = (
        "repro serve's per-request atomicity holds only between await points; "
        "a read→await→dependent-write sequence is an async race"
    )

    def check_project(self, project: ProjectContext) -> list[LintFinding]:
        findings: list[LintFinding | None] = []
        for function in project.table.functions.values():
            if not function.is_async:
                continue
            module = project.table.modules[function.module]
            scan = _AsyncStateScan(function, frozenset(module.module_globals))
            if not scan.awaits or not scan.writes:
                continue
            findings.extend(self._check_function(project, function, scan))
        return _sorted_findings(findings)

    def _check_function(
        self,
        project: ProjectContext,
        function: FunctionSymbol,
        scan: _AsyncStateScan,
    ) -> list[LintFinding | None]:
        findings: list[LintFinding | None] = []
        for write in scan.writes:
            source_pos = write.deps.get(write.key) if write.key else None
            if source_pos is None:
                continue
            barrier = next(
                (
                    a
                    for a in scan.awaits
                    if source_pos < a.pos < write.pos
                ),
                None,
            )
            if barrier is None:
                continue
            source = next(e for e in scan.events if e.pos == source_pos)
            kind, name = write.key  # type: ignore[misc]
            label = f"self.{name}" if kind == "self" else name
            findings.append(
                project.finding(
                    self.code,
                    function.module,
                    write.line,
                    0,
                    f"write to shared {label} depends on a read made before "
                    f"the await on line {barrier.line} (read at line "
                    f"{source.line}); another request can interleave at that "
                    "await — re-read and write within one synchronous segment",
                    evidence=(
                        f"{function.module}:{source.line} {function.qual} "
                        f"reads {label}",
                        f"{function.module}:{barrier.line} suspends at await",
                        f"{function.module}:{write.line} writes {label} "
                        "from the stale read",
                    ),
                )
            )
        return findings


# ---------------------------------------------------------------------------
# EXC001 — exception contracts at CLI and queue-backend boundaries
# ---------------------------------------------------------------------------

#: Parent links for the builtin exceptions the analysis understands. Names
#: outside this table (and outside the project) never enter raise-sets.
_BUILTIN_PARENTS: dict[str, str | None] = {
    "BaseException": None,
    "Exception": "BaseException",
    "GeneratorExit": "BaseException",
    "KeyboardInterrupt": "BaseException",
    "SystemExit": "BaseException",
    "ArithmeticError": "Exception",
    "ZeroDivisionError": "ArithmeticError",
    "OverflowError": "ArithmeticError",
    "FloatingPointError": "ArithmeticError",
    "AssertionError": "Exception",
    "AttributeError": "Exception",
    "BufferError": "Exception",
    "EOFError": "Exception",
    "ImportError": "Exception",
    "ModuleNotFoundError": "ImportError",
    "LookupError": "Exception",
    "IndexError": "LookupError",
    "KeyError": "LookupError",
    "MemoryError": "Exception",
    "NameError": "Exception",
    "UnboundLocalError": "NameError",
    "OSError": "Exception",
    "IOError": "Exception",
    "FileExistsError": "OSError",
    "FileNotFoundError": "OSError",
    "InterruptedError": "OSError",
    "IsADirectoryError": "OSError",
    "NotADirectoryError": "OSError",
    "PermissionError": "OSError",
    "ProcessLookupError": "OSError",
    "ChildProcessError": "OSError",
    "BlockingIOError": "OSError",
    "TimeoutError": "OSError",
    "ConnectionError": "OSError",
    "BrokenPipeError": "ConnectionError",
    "ConnectionAbortedError": "ConnectionError",
    "ConnectionRefusedError": "ConnectionError",
    "ConnectionResetError": "ConnectionError",
    "ReferenceError": "Exception",
    "RuntimeError": "Exception",
    "NotImplementedError": "RuntimeError",
    "RecursionError": "RuntimeError",
    "StopIteration": "Exception",
    "StopAsyncIteration": "Exception",
    "SyntaxError": "Exception",
    "IndentationError": "SyntaxError",
    "TabError": "IndentationError",
    "SystemError": "Exception",
    "TypeError": "Exception",
    "ValueError": "Exception",
    "UnicodeError": "ValueError",
    "UnicodeDecodeError": "UnicodeError",
    "UnicodeEncodeError": "UnicodeError",
    "UnicodeTranslateError": "UnicodeError",
}


@dataclass(frozen=True)
class _RaiseOrigin:
    """Where an exception in a raise-set comes from: a raise or a call."""

    kind: str  #: "raise" | "call"
    module: str
    line: int
    col: int
    via: str | None = None  #: callee fid for kind == "call"


class _ExceptionLattice:
    """Hierarchy queries over project exception classes + known builtins."""

    def __init__(self, table: SymbolTable) -> None:
        self.table = table

    def ancestors(self, key: str) -> set[str]:
        out: set[str] = set()
        stack = [key]
        while stack:
            current = stack.pop()
            klass = self.table.classes.get(current)
            if klass is not None:
                for base in klass.bases:
                    if base not in out:
                        out.add(base)
                        stack.append(base)
            else:
                parent = _BUILTIN_PARENTS.get(current)
                if parent is not None and parent not in out:
                    out.add(parent)
                    stack.append(parent)
        return out

    def is_repro_error(self, key: str) -> bool:
        return key == _REPRO_ERROR or _REPRO_ERROR in self.ancestors(key)

    def caught_by(self, raised: str, handlers: Iterable[str]) -> bool:
        lineage = {raised} | self.ancestors(raised)
        for handler in handlers:
            if handler == _CATCH_ALL or handler in lineage:
                return True
        return False

    def resolve(self, node: ast.expr, module: ModuleSymbols) -> str | None:
        """The exception key named by ``node`` (class ref or call), if any."""
        if isinstance(node, ast.Call):
            node = node.func
        dotted = dotted_name(node, module.aliases)
        if dotted is None:
            return None
        resolved = self.table.resolve_dotted(dotted, module.path)
        if resolved is not None and resolved[0] == "class":
            return resolved[1].cid  # type: ignore[union-attr]
        if "." not in dotted and dotted in _BUILTIN_PARENTS:
            return dotted
        return None


class _FunctionRaises:
    """Raise sites and call sites of one function, with handler contexts."""

    def __init__(
        self,
        function: FunctionSymbol,
        module: ModuleSymbols,
        lattice: _ExceptionLattice,
        edges: Mapping[tuple[int, int], CallEdge],
    ) -> None:
        self.function = function
        self.module = module
        self.lattice = lattice
        self.edges = edges
        #: (exception key, origin, enclosing handler keys)
        self.raises: list[tuple[str, _RaiseOrigin, tuple[str, ...]]] = []
        #: (project call edge, enclosing handler keys)
        self.calls: list[tuple[CallEdge, tuple[str, ...]]] = []
        self._walk(function.node.body, ())

    def _handler_keys(self, handler: ast.ExceptHandler) -> list[str]:
        if handler.type is None:
            return [_CATCH_ALL]
        types = (
            list(handler.type.elts)
            if isinstance(handler.type, ast.Tuple)
            else [handler.type]
        )
        keys = []
        for node in types:
            key = self.lattice.resolve(node, self.module)
            # An unresolvable except clause conservatively catches everything:
            # better to miss a leak than to flag an exception that is caught.
            keys.append(key if key is not None else _CATCH_ALL)
        return keys

    def _walk(self, body: Sequence[ast.stmt], caught: tuple[str, ...]) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            if isinstance(stmt, ast.Try):
                handler_keys: list[str] = []
                for handler in stmt.handlers:
                    handler_keys.extend(self._handler_keys(handler))
                self._walk(stmt.body, caught + tuple(handler_keys))
                for handler in stmt.handlers:
                    self._walk(handler.body, caught)
                self._walk(stmt.orelse, caught)
                self._walk(stmt.finalbody, caught)
                continue
            if isinstance(stmt, ast.Raise) and stmt.exc is not None:
                key = self.lattice.resolve(stmt.exc, self.module)
                if key is not None:
                    origin = _RaiseOrigin(
                        kind="raise",
                        module=self.function.module,
                        line=stmt.lineno,
                        col=stmt.col_offset,
                    )
                    self.raises.append((key, origin, caught))
            self._scan_calls(stmt, caught)
            for child_body in _sub_bodies(stmt):
                self._walk(child_body, caught)

    def _scan_calls(self, stmt: ast.stmt, caught: tuple[str, ...]) -> None:
        """Record project call edges in this statement's *own* expressions.

        Only the statement's header expressions are scanned (an ``if`` test,
        a ``for`` iterable, an assignment's value); nested statement bodies
        are walked recursively by :meth:`_walk` so a ``try`` inside them gets
        its own handler context. Calls inside lambdas are skipped — their
        execution is deferred, so attributing their raises here could flag an
        exception that never propagates through this function.
        """
        stack: list[ast.AST] = list(_own_exprs(stmt))
        while stack:
            node = stack.pop()
            if isinstance(node, ast.Lambda):
                continue
            if isinstance(node, ast.Call):
                edge = self.edges.get((node.lineno, node.col_offset))
                if edge is not None and not edge.external:
                    self.calls.append((edge, caught))
            stack.extend(ast.iter_child_nodes(node))


def _own_exprs(stmt: ast.stmt) -> list[ast.expr]:
    """The expressions evaluated by a statement itself (not its bodies)."""
    out: list[ast.expr] = []
    for _, value in ast.iter_fields(stmt):
        if isinstance(value, ast.expr):
            out.append(value)
        elif isinstance(value, list):
            for item in value:
                if isinstance(item, ast.expr):
                    out.append(item)
                elif isinstance(item, ast.withitem):
                    out.append(item.context_expr)
                    if item.optional_vars is not None:
                        out.append(item.optional_vars)
    return out


def _sub_bodies(stmt: ast.stmt) -> list[list[ast.stmt]]:
    bodies = []
    for name in ("body", "orelse", "finalbody"):
        value = getattr(stmt, name, None)
        if isinstance(value, list) and value and isinstance(value[0], ast.stmt):
            bodies.append(value)
    for handler in getattr(stmt, "handlers", []) or []:
        bodies.append(handler.body)
    for case in getattr(stmt, "cases", []) or []:  # match statements
        bodies.append(case.body)
    return bodies


@register_rule(
    "EXC001",
    title="only ReproError subclasses may escape CLI handlers and queue backends",
    rationale=(
        "the CLI's exit-code contract and the queue conformance suite both "
        "assume every failure surfaces as a ReproError"
    ),
)
class ExceptionContractRule(ProjectRule):
    """Propagated raise-sets intersected with except-handlers at boundaries.

    Each function's raise-set is its own (uncaught) explicit raises plus its
    callees' raise-sets filtered through the except-handlers enclosing each
    call site, iterated to a fixpoint over the call graph. At the two
    contract boundaries — ``_cmd_*`` handlers in ``cli.py`` and public
    methods of :class:`QueueBackend` implementations — anything that is not a
    ``ReproError`` (or pure control flow) is flagged, with the propagation
    chain down to the offending ``raise`` as evidence. Only explicit raises
    of statically resolvable classes participate: exceptions born inside the
    standard library (or behind dynamic dispatch) are invisible, so this rule
    under-approximates — by design.
    """

    code = "EXC001"
    title = "only ReproError subclasses may escape CLI handlers and queue backends"
    rationale = (
        "the CLI's exit-code contract and the queue conformance suite both "
        "assume every failure surfaces as a ReproError"
    )

    def check_project(self, project: ProjectContext) -> list[LintFinding]:
        lattice = _ExceptionLattice(project.table)
        summaries = self._summaries(project, lattice)
        raise_sets = self._fixpoint(summaries, lattice)
        findings: list[LintFinding | None] = []
        for function in self._contract_functions(project):
            for key, origin in sorted(raise_sets.get(function.fid, {}).items()):
                if lattice.is_repro_error(key) or key in _CONTROL_FLOW_EXCEPTIONS:
                    continue
                chain, root = self._chain(function.fid, key, raise_sets)
                findings.append(
                    project.finding(
                        self.code,
                        function.module,
                        origin.line,
                        origin.col,
                        f"{_exception_label(key)} can escape "
                        f"{self._describe_contract(function)} (raised at "
                        f"{root}); only ReproError subclasses may propagate "
                        "out of this boundary",
                        evidence=chain,
                    )
                )
        return _sorted_findings(findings)

    # -- analysis --------------------------------------------------------------

    def _summaries(
        self, project: ProjectContext, lattice: _ExceptionLattice
    ) -> dict[str, _FunctionRaises]:
        summaries: dict[str, _FunctionRaises] = {}
        for function in project.table.functions.values():
            module = project.table.modules[function.module]
            edges = {
                (edge.line, edge.col): edge
                for edge in project.graph.calls_from(function.fid)
            }
            summaries[function.fid] = _FunctionRaises(
                function, module, lattice, edges
            )
        return summaries

    def _fixpoint(
        self, summaries: Mapping[str, _FunctionRaises], lattice: _ExceptionLattice
    ) -> dict[str, dict[str, _RaiseOrigin]]:
        """Iterate raise-set propagation over the call graph to a fixpoint."""
        raise_sets: dict[str, dict[str, _RaiseOrigin]] = {
            fid: {} for fid in summaries
        }
        for fid, summary in summaries.items():
            for key, origin, caught in summary.raises:
                if not lattice.caught_by(key, caught):
                    raise_sets[fid].setdefault(key, origin)
        changed = True
        while changed:
            changed = False
            for fid, summary in summaries.items():
                current = raise_sets[fid]
                for edge, caught in summary.calls:
                    for key in list(raise_sets.get(edge.callee, {})):
                        if key in current:
                            continue
                        if lattice.caught_by(key, caught):
                            continue
                        current[key] = _RaiseOrigin(
                            kind="call",
                            module=summary.function.module,
                            line=edge.line,
                            col=edge.col,
                            via=edge.callee,
                        )
                        changed = True
        return raise_sets

    def _contract_functions(self, project: ProjectContext) -> list[FunctionSymbol]:
        targets: list[FunctionSymbol] = []
        cli = project.table.modules.get(_CLI_MODULE)
        if cli is not None:
            targets.extend(
                f for name, f in sorted(cli.functions.items())
                if name.startswith("_cmd_")
            )
        for cid in sorted(project.table.classes):
            klass = project.table.classes[cid]
            if _QUEUE_BACKEND in project.table.class_ancestry(klass):
                targets.extend(
                    method
                    for name, method in sorted(klass.methods.items())
                    if not name.startswith("_")
                )
        return targets

    def _describe_contract(self, function: FunctionSymbol) -> str:
        if function.cls is not None:
            return f"QueueBackend implementation {function.qual}"
        return f"CLI handler {function.qual}"

    @staticmethod
    def _chain(
        fid: str, key: str, raise_sets: Mapping[str, dict[str, _RaiseOrigin]]
    ) -> tuple[list[str], str]:
        """Evidence chain from a contract function down to the raise site."""
        chain: list[str] = []
        current = fid
        visited: set[str] = set()
        while current not in visited:
            visited.add(current)
            origin = raise_sets.get(current, {}).get(key)
            if origin is None:  # pragma: no cover - chains are complete
                break
            _, _, qual = current.partition("::")
            if origin.kind == "raise":
                chain.append(
                    f"{origin.module}:{origin.line} {qual} raises "
                    f"{_exception_label(key)}"
                )
                return chain, f"{origin.module}:{origin.line}"
            chain.append(
                f"{origin.module}:{origin.line} {qual} -> {origin.via}"
            )
            current = origin.via or ""
        return chain, chain[-1] if chain else fid  # pragma: no cover - defensive


def _exception_label(key: str) -> str:
    _, _, qual = key.rpartition("::")
    return qual
