"""GPU memory characterization of DNN training workloads (§3, Figures 2-4)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.vitality import VitalityReport


@dataclass(frozen=True)
class CharacterizationResult:
    """All three characterization views for one workload."""

    model_name: str
    #: Per-kernel total live bytes and active bytes, both normalised to the peak
    #: live footprint (Figure 2's two curves).
    total_fraction: np.ndarray
    active_fraction: np.ndarray
    #: Lengths of every tensor inactive period in seconds (Figure 3).
    inactive_period_seconds: np.ndarray
    #: Matching tensor sizes in bytes (Figure 4 pairs sizes with period lengths).
    inactive_period_bytes: np.ndarray

    @property
    def mean_active_fraction(self) -> float:
        """Average share of the footprint that is active (the paper reports ~1 %)."""
        return float(self.active_fraction.mean()) if self.active_fraction.size else 0.0

    def fraction_of_periods_longer_than(self, seconds: float) -> float:
        """Share of inactive periods longer than a threshold (O2's headline numbers)."""
        if self.inactive_period_seconds.size == 0:
            return 0.0
        return float((self.inactive_period_seconds > seconds).mean())

    def fraction_hideable(self, swap_latency: float) -> float:
        """Share of periods long enough to hide one SSD round trip (O3)."""
        return self.fraction_of_periods_longer_than(2.0 * swap_latency)


def memory_consumption_profile(report: VitalityReport) -> tuple[np.ndarray, np.ndarray]:
    """Figure 2: per-kernel total and active memory, normalised to the peak."""
    peak = report.peak_pressure
    if peak <= 0:
        raise ValueError("workload has no memory footprint")
    total = report.baseline_pressure / peak
    active = report.active_bytes / peak
    return total, active


def inactive_period_distribution(report: VitalityReport) -> np.ndarray:
    """Figure 3: lengths (seconds) of all tensor inactive periods, sorted ascending."""
    lengths = np.asarray(
        [report.period_duration(p) for p in report.periods], dtype=np.float64
    )
    lengths.sort()
    return lengths


def inactive_period_size_scatter(report: VitalityReport) -> tuple[np.ndarray, np.ndarray]:
    """Figure 4: (inactive period length, tensor size) pairs."""
    lengths = np.asarray(
        [report.period_duration(p) for p in report.periods], dtype=np.float64
    )
    sizes = np.asarray([p.size_bytes for p in report.periods], dtype=np.float64)
    return lengths, sizes


def characterize_workload(report: VitalityReport) -> CharacterizationResult:
    """Run the full §3 characterization for one workload."""
    total, active = memory_consumption_profile(report)
    lengths, sizes = inactive_period_size_scatter(report)
    return CharacterizationResult(
        model_name=report.graph.name,
        total_fraction=total,
        active_fraction=active,
        inactive_period_seconds=lengths,
        inactive_period_bytes=sizes,
    )
