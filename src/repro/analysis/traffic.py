"""Migration traffic breakdown (Figure 14)."""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.results import SimulationResult


@dataclass(frozen=True)
class TrafficBreakdown:
    """Traffic of one policy run, split by route and direction."""

    policy: str
    gpu_ssd_gb: float
    gpu_host_gb: float
    ssd_read_gb: float
    ssd_write_gb: float
    host_read_gb: float
    host_write_gb: float

    @property
    def total_gb(self) -> float:
        return self.gpu_ssd_gb + self.gpu_host_gb

    @property
    def write_gb(self) -> float:
        """Bytes leaving the GPU (evictions) in GB."""
        return self.ssd_write_gb + self.host_write_gb

    @property
    def read_gb(self) -> float:
        """Bytes entering the GPU (prefetches and faults) in GB."""
        return self.ssd_read_gb + self.host_read_gb


def traffic_breakdown(result: SimulationResult) -> TrafficBreakdown:
    """Convert a simulation result's counters into the Figure 14 breakdown."""
    traffic = result.traffic
    return TrafficBreakdown(
        policy=result.policy_name,
        gpu_ssd_gb=traffic.gpu_ssd_bytes / 1e9,
        gpu_host_gb=traffic.gpu_host_bytes / 1e9,
        ssd_read_gb=traffic.ssd_read_bytes / 1e9,
        ssd_write_gb=traffic.ssd_write_bytes / 1e9,
        host_read_gb=traffic.host_read_bytes / 1e9,
        host_write_gb=traffic.host_write_bytes / 1e9,
    )
