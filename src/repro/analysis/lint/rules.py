"""The built-in ``repro lint`` rules.

Each rule encodes one invariant the repository's correctness story already
depends on informally:

* **DET001–DET004** protect the bit-for-bit golden files: the deterministic
  layers (``sim/``, ``core/``, ``uvm/``, ``ssd/``, ``graph/``,
  ``baselines/``) must be pure functions of the workload and configuration —
  no wall clocks, no entropy, no object identities, no unordered iteration,
  no approximate float equality.
* **QUE001** protects the work queue's crash-safety proof: task/lease state
  may only become visible through the atomic rename/exclusive-link idioms the
  SIGKILL fault suite assumes.
* **API001** keeps the deprecation story honest: internal code must use the
  modern API, never the ``_compat`` shims kept for external callers.
* **PERF001** protects the vectorized planning hot path: ``core/`` and
  ``sim/`` must not fall back to per-element Python loops over numpy arrays.

Rules self-register into :data:`~repro.analysis.lint.framework.LINT_REGISTRY`
when this module is imported (it is the registry's bootstrap module).
"""

from __future__ import annotations

import ast
from typing import Mapping

from .framework import (
    DETERMINISTIC_LAYERS,
    LintRule,
    ModuleSource,
    dotted_name,
    import_aliases,
    register_rule,
)

__all__ = ["dotted_name", "import_aliases"]  # re-exported for compatibility


@register_rule(
    "DET001",
    title="no wall clock or entropy in the deterministic layers",
    rationale="golden files are bit-for-bit; any clock/entropy read breaks them",
)
class NoEntropyRule(LintRule):
    """Bans wall-clock and entropy reads inside the deterministic layers.

    The simulated clock is the only clock those layers may consult. The one
    sanctioned exception is the :class:`~repro.sim.results.PerfCounters`
    wall-time phase instrumentation in ``sim/executor.py`` (its readings are
    deliberately excluded from serialized results), captured in
    :attr:`ALLOWLIST`.
    """

    code = "DET001"
    title = "no wall clock or entropy in the deterministic layers"
    rationale = "golden files are bit-for-bit; any clock/entropy read breaks them"

    BANNED = frozenset(
        {
            "time.time",
            "time.time_ns",
            "time.monotonic",
            "time.monotonic_ns",
            "time.perf_counter",
            "time.perf_counter_ns",
            "time.process_time",
            "time.process_time_ns",
            "datetime.datetime.now",
            "datetime.datetime.utcnow",
            "datetime.datetime.today",
            "datetime.date.today",
            "datetime.now",
            "datetime.utcnow",
            "datetime.today",
            "date.today",
            "os.urandom",
            "os.getrandom",
            "uuid.uuid1",
            "uuid.uuid4",
        }
    )

    #: Module-level functions of the process-global ``random`` RNG. Policies
    #: needing noise must take a seeded ``random.Random`` (or numpy
    #: ``Generator``) instance from their configuration instead.
    RANDOM_FUNCS = frozenset(
        {
            "betavariate", "choice", "choices", "expovariate", "gauss",
            "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
            "randbytes", "randint", "random", "randrange", "sample", "seed",
            "shuffle", "triangular", "uniform", "vonmisesvariate",
            "weibullvariate",
        }
    )

    #: package path -> dotted calls sanctioned there (the PerfCounters
    #: wall-time phases; their readings never reach serialized results).
    ALLOWLIST: Mapping[str, frozenset[str]] = {
        "sim/executor.py": frozenset({"time.perf_counter"}),
    }

    #: Modules whose ``from X import *`` would smuggle banned callables in as
    #: bare names; a star import of one expands the alias map with every
    #: banned member so ``from time import *; time()`` still resolves.
    STAR_MODULES = frozenset({"time", "datetime", "os", "uuid", "random"})

    @classmethod
    def matches(cls, dotted: str) -> bool:
        """Whether a resolved dotted path names a banned entropy source.

        Shared with the interprocedural DET005 rule, which seeds its taint
        from exactly this predicate applied to call-graph externals.
        """
        if dotted in cls.BANNED:
            return True
        if dotted.startswith("random.") and dotted.split(".", 1)[1] in cls.RANDOM_FUNCS:
            return True
        return dotted.startswith("numpy.random.") or dotted.startswith("np.random.")

    def applies_to(self, module: ModuleSource) -> bool:
        return module.in_layers(DETERMINISTIC_LAYERS)

    def begin(self, module: ModuleSource) -> None:
        self._aliases = import_aliases(module.tree)
        self._expand_star_imports(module.tree)
        self._allowed = self.ALLOWLIST.get(module.package_path, frozenset())
        # AST nodes hash by identity, so the set members are the func nodes
        # themselves (an id()-keyed set would trip DET002).
        self._call_funcs = {
            call.func for call in ast.walk(module.tree) if isinstance(call, ast.Call)
        }

    def _expand_star_imports(self, tree: ast.Module) -> None:
        starred = {
            node.module
            for node in ast.walk(tree)
            if isinstance(node, ast.ImportFrom)
            and node.level == 0
            and node.module in self.STAR_MODULES
            and any(alias.name == "*" for alias in node.names)
        }
        if not starred:
            return
        expanded: dict[str, str] = {}
        for dotted in self.BANNED:
            head, _, rest = dotted.partition(".")
            if head in starred and rest:
                member = rest.split(".")[0]
                expanded.setdefault(member, f"{head}.{member}")
        if "random" in starred:
            for name in self.RANDOM_FUNCS:
                expanded.setdefault(name, f"random.{name}")
        # Explicit imports win over the star expansion.
        self._aliases = {**expanded, **self._aliases}

    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func, self._aliases)
        if name is not None and name not in self._allowed and self.matches(name):
            self.report(
                node,
                f"call to {name}() in a deterministic layer; the simulated "
                "clock and seeded generators are the only allowed sources",
            )
        self.generic_visit(node)

    def _check_reference(self, node: ast.expr) -> None:
        """Flag a banned callable captured as a value rather than called.

        ``clock = time.time`` (or passing ``time`` from a from-import as a
        callback) injects the entropy source just as surely as calling it —
        deferred by one hop.
        """
        if node in self._call_funcs:
            return  # the call form is visit_Call's report
        name = dotted_name(node, self._aliases)
        if name is not None and name not in self._allowed and self.matches(name):
            self.report(
                node,
                f"reference to {name} captured without a call; storing the "
                "callable still routes wall-clock/entropy into a "
                "deterministic layer",
            )

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.ctx, ast.Load):
            self._check_reference(node)
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self._check_reference(node)
        self.generic_visit(node)


def _is_id_call(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "id"
        and len(node.args) == 1
    )


@register_rule(
    "DET002",
    title="no id(...) used as a dict or memo key",
    rationale="CPython addresses vary run to run; id-keyed memos break caching and replay",
)
class NoIdKeyRule(LintRule):
    """Bans ``id(...)`` in key positions (the exact bug PR 1 fixed in
    ``build_workload``: an ``id(config)``-keyed memo made cache keys depend on
    allocator addresses)."""

    code = "DET002"
    title = "no id(...) used as a dict or memo key"
    rationale = "CPython addresses vary run to run; id-keyed memos break caching and replay"

    MESSAGE = (
        "id(...) used as a key; key on a value hash or the object itself "
        "(identity hashing without the address leaking into results)"
    )

    def visit_Dict(self, node: ast.Dict) -> None:
        for key in node.keys:
            if key is not None and _is_id_call(key):
                self.report(key, self.MESSAGE)
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        if _is_id_call(node.key):
            self.report(node.key, self.MESSAGE)
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if _is_id_call(node.slice):
            self.report(node.slice, self.MESSAGE)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in ("get", "setdefault", "pop")
            and node.args
            and _is_id_call(node.args[0])
        ):
            self.report(node.args[0], self.MESSAGE)
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        if _is_id_call(node.left) and any(
            isinstance(op, (ast.In, ast.NotIn)) for op in node.ops
        ):
            self.report(node.left, self.MESSAGE)
        self.generic_visit(node)


@register_rule(
    "DET003",
    title="no ordered iteration over bare set values",
    rationale="set order varies with hash seeding/history; results and schedules must not inherit it",
)
class NoSetIterationRule(LintRule):
    """Flags order-sensitive iteration over values statically known to be sets.

    Inside the deterministic layers, a ``for`` loop, list/dict comprehension,
    generator expression or ``list()/tuple()/enumerate()/iter()/map()/
    filter()/join()`` over a bare set leaks the set's arbitrary order into
    whatever gets built from it. The compliant idiom is ``sorted(...)`` (or an
    ordered container to begin with). Set comprehensions over sets stay
    order-insensitive and are allowed, as are ``len``/``min``/``max``/``sum``/
    ``any``/``all`` and membership tests.

    Detection is intraprocedural: set literals, ``set()``/``frozenset()``
    calls, set comprehensions, unions of those, and local names last assigned
    from one.
    """

    code = "DET003"
    title = "no ordered iteration over bare set values"
    rationale = (
        "set order varies with hash seeding/history; results and schedules "
        "must not inherit it"
    )

    ORDER_SENSITIVE_CALLS = frozenset({"list", "tuple", "enumerate", "iter"})
    ORDER_SENSITIVE_SECOND_ARG = frozenset({"map", "filter"})
    SET_METHODS = frozenset(
        {"union", "intersection", "difference", "symmetric_difference", "copy"}
    )

    def applies_to(self, module: ModuleSource) -> bool:
        return module.in_layers(DETERMINISTIC_LAYERS)

    def begin(self, module: ModuleSource) -> None:
        self._scopes: list[set[str]] = [set()]

    # -- set-ness inference ---------------------------------------------------

    def _is_setish(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return any(node.id in scope for scope in self._scopes)
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id in ("set", "frozenset"):
                return True
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in self.SET_METHODS
                and self._is_setish(node.func.value)
            ):
                return True
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_setish(node.left) and self._is_setish(node.right)
        return False

    def _bind(self, target: ast.expr, setish: bool) -> None:
        if isinstance(target, ast.Name):
            if setish:
                self._scopes[-1].add(target.id)
            else:
                self._scopes[-1].discard(target.id)

    # -- scope tracking -------------------------------------------------------

    def _visit_function(self, node: ast.AST) -> None:
        self._scopes.append(set())
        self.generic_visit(node)
        self._scopes.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_Assign(self, node: ast.Assign) -> None:
        self.generic_visit(node)
        setish = self._is_setish(node.value)
        for target in node.targets:
            self._bind(target, setish)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self.generic_visit(node)
        if node.value is not None:
            self._bind(node.target, self._is_setish(node.value))

    # -- order-sensitive sinks ------------------------------------------------

    def _check_iter(self, node: ast.expr) -> None:
        if self._is_setish(node):
            self.report(
                node,
                "iteration over a bare set leaks arbitrary ordering; wrap it "
                "in sorted(...) or use an ordered container",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def _visit_ordered_comp(self, node: ast.AST) -> None:
        for generator in node.generators:
            self._check_iter(generator.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_ordered_comp
    visit_GeneratorExp = _visit_ordered_comp
    visit_DictComp = _visit_ordered_comp

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name) and node.args:
            if func.id in self.ORDER_SENSITIVE_CALLS:
                self._check_iter(node.args[0])
            elif func.id in self.ORDER_SENSITIVE_SECOND_ARG and len(node.args) >= 2:
                self._check_iter(node.args[1])
        elif isinstance(func, ast.Attribute) and func.attr == "join" and node.args:
            self._check_iter(node.args[0])
        self.generic_visit(node)


@register_rule(
    "DET004",
    title="no float equality in core/sim outside annotated sentinels",
    rationale="float == is usually a tolerance bug; exact-float sentinels must be named and annotated",
)
class NoFloatEqualityRule(LintRule):
    """Flags ``==``/``!=`` against float literals in ``core/`` and ``sim/``.

    Exact float comparison is almost always a latent tolerance bug in planner
    arithmetic. Where exactness is the *point* — e.g. the path-compressed
    skip index in ``core/bandwidth.py``, where an exhausted slot holds exactly
    ``0.0`` — the sentinel must be a named module-level constant annotated
    with ``# repro-lint: exact-float`` on its assignment; comparisons against
    annotated sentinels are allowed.
    """

    code = "DET004"
    title = "no float equality in core/sim outside annotated sentinels"
    rationale = (
        "float == is usually a tolerance bug; exact-float sentinels must be "
        "named and annotated"
    )

    LAYERS = ("core/", "sim/")

    def applies_to(self, module: ModuleSource) -> bool:
        return module.in_layers(self.LAYERS)

    def begin(self, module: ModuleSource) -> None:
        self._sentinels: set[str] = set()
        self._unannotated_consts: set[str] = set()
        for node in module.tree.body:
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                target, value = node.target, node.value
            else:
                continue
            if isinstance(target, ast.Name) and _is_float_literal(value):
                if module.annotated(node.lineno, "exact-float"):
                    self._sentinels.add(target.id)
                else:
                    self._unannotated_consts.add(target.id)

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for index, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for side in (operands[index], operands[index + 1]):
                if _is_float_literal(side):
                    self.report(
                        side,
                        "exact float comparison; use a tolerance, or compare "
                        "against a named sentinel annotated "
                        "'# repro-lint: exact-float'",
                    )
                elif isinstance(side, ast.Name) and side.id in self._unannotated_consts:
                    self.report(
                        side,
                        f"float constant {side.id} compared exactly; annotate "
                        "its assignment with '# repro-lint: exact-float' if "
                        "exactness is intended",
                    )
        self.generic_visit(node)


def _is_float_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        node = node.operand
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


@register_rule(
    "QUE001",
    title="queue state may only be published atomically",
    rationale="the SIGKILL fault suite's crash-safety proof assumes rename/exclusive-link publication",
)
class AtomicQueuePublishRule(LintRule):
    """Restricts how ``experiments/queue.py`` writes files.

    Task and lease state must be written to a temporary name and published
    with ``os.replace``/``os.rename``/``os.link`` — a bare write into a live
    state directory can be observed half-written by a competing consumer, or
    survive a SIGKILL as garbage. The rule flags every write-capable ``open``
    and every ``write_text``/``write_bytes`` whose target expression does not
    mention a temporary (``tmp``) path. Genuinely append-only artifacts (the
    events audit log) carry an inline suppression with justification.
    """

    code = "QUE001"
    title = "queue state may only be published atomically"
    rationale = (
        "the SIGKILL fault suite's crash-safety proof assumes "
        "rename/exclusive-link publication"
    )

    WRITE_MODES = ("w", "a", "x", "+")

    def applies_to(self, module: ModuleSource) -> bool:
        return module.package_path.endswith("experiments/queue.py")

    @staticmethod
    def _mode_of(node: ast.Call, position: int) -> str:
        for keyword in node.keywords:
            if keyword.arg == "mode" and isinstance(keyword.value, ast.Constant):
                return str(keyword.value.value)
        if len(node.args) > position and isinstance(node.args[position], ast.Constant):
            return str(node.args[position].value)
        return "r"

    @staticmethod
    def _mentions_tmp(node: ast.expr) -> bool:
        return "tmp" in ast.unparse(node).lower()

    def _flag(self, node: ast.AST, what: str) -> None:
        self.report(
            node,
            f"{what} publishes into live queue state; write to a *.tmp name "
            "and publish with os.replace()/os.link() (see the lease/task "
            "idioms in this module)",
        )

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name) and func.id == "open" and node.args:
            if any(ch in self._mode_of(node, 1) for ch in self.WRITE_MODES):
                if not self._mentions_tmp(node.args[0]):
                    self._flag(node, "write-mode open()")
        elif isinstance(func, ast.Attribute):
            if func.attr == "open":
                if any(ch in self._mode_of(node, 0) for ch in self.WRITE_MODES):
                    if not self._mentions_tmp(func.value):
                        self._flag(node, "write-mode .open()")
            elif func.attr in ("write_text", "write_bytes"):
                if not self._mentions_tmp(func.value):
                    self._flag(node, f".{func.attr}()")
        self.generic_visit(node)


@register_rule(
    "API001",
    title="no internal imports of the _compat deprecation shims",
    rationale="shims exist for external callers; internal use hides the modern API and defeats the deprecation",
)
class NoCompatImportRule(LintRule):
    """Bans ``repro._compat`` imports inside the package.

    The shims re-exported from ``repro/__init__.py`` keep external callers
    working through a deprecation cycle; internal code importing them would
    never see the warnings fire and would silently freeze the legacy
    surface. Only the package root (which must re-export them) and
    ``_compat.py`` itself are exempt.
    """

    code = "API001"
    title = "no internal imports of the _compat deprecation shims"
    rationale = (
        "shims exist for external callers; internal use hides the modern API "
        "and defeats the deprecation"
    )

    EXEMPT = ("__init__.py", "_compat.py")

    def applies_to(self, module: ModuleSource) -> bool:
        return module.package_path not in self.EXEMPT

    MESSAGE = (
        "internal import of the _compat deprecation shims; call the modern "
        "Scenario/registry API directly"
    )

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        if module == "_compat" or module.endswith("._compat") or module.endswith(".repro._compat"):
            self.report(node, self.MESSAGE)
        elif node.level > 0 and module == "" and any(
            name.name == "_compat" for name in node.names
        ):
            self.report(node, self.MESSAGE)
        self.generic_visit(node)

    def visit_Import(self, node: ast.Import) -> None:
        if any(
            name.name == "_compat" or name.name.endswith("._compat")
            for name in node.names
        ):
            self.report(node, self.MESSAGE)
        self.generic_visit(node)


@register_rule(
    "PERF001",
    title="no per-element Python loops over numpy arrays in core/sim",
    rationale="the planning hot path is vectorized; an element-wise Python loop over an array silently reverts it",
)
class NoScalarArrayLoopRule(LintRule):
    """Flags ``for`` loops (and ordered comprehensions) iterating a value
    statically known to be a numpy array in ``core/`` and ``sim/``.

    Iterating a numpy array element-by-element pays boxing plus dispatch per
    element — the exact cost the vectorized channel-schedule/pressure paths
    were rewritten to avoid. The compliant idioms are whole-array numpy
    operations, or — where a sequential early-exit walk is genuinely needed
    (the chunked probe scans in ``core/bandwidth.py``) — iterating a small
    ``.tolist()`` block, which converts once and then walks plain floats.

    Detection mirrors DET003's intraprocedural inference, tracking
    array-ness instead of set-ness: ``np.*`` array constructors/elementwise
    calls, slices of known arrays, array methods returning arrays, and local
    names last assigned from one. ``.tolist()`` / ``.item()`` and scalar
    reductions break the taint, so the chunked-scan idiom passes clean.
    """

    code = "PERF001"
    title = "no per-element Python loops over numpy arrays in core/sim"
    rationale = (
        "the planning hot path is vectorized; an element-wise Python loop "
        "over an array silently reverts it"
    )

    LAYERS = ("core/", "sim/")

    #: ``numpy.*`` callables that return arrays (constructors + elementwise).
    ARRAY_FUNCS = frozenset(
        {
            "array", "asarray", "ascontiguousarray", "zeros", "zeros_like",
            "ones", "ones_like", "empty", "empty_like", "full", "full_like",
            "arange", "linspace", "concatenate", "stack", "hstack", "vstack",
            "minimum", "maximum", "clip", "where", "cumsum", "cumprod",
            "diff", "sort", "argsort", "flatnonzero", "nonzero", "abs",
            "sqrt", "floor", "ceil", "rint", "exp", "log",
        }
    )

    #: Array methods that return arrays (keep the taint flowing).
    ARRAY_METHODS = frozenset(
        {"copy", "astype", "clip", "cumsum", "round", "reshape", "ravel"}
    )

    def applies_to(self, module: ModuleSource) -> bool:
        return module.in_layers(self.LAYERS)

    def begin(self, module: ModuleSource) -> None:
        self._aliases = import_aliases(module.tree)
        self._scopes: list[set[str]] = [set()]

    # -- array-ness inference -------------------------------------------------

    def _is_arrayish(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            return any(node.id in scope for scope in self._scopes)
        if isinstance(node, ast.Call):
            func = node.func
            dotted = dotted_name(func, self._aliases)
            if (
                dotted is not None
                and dotted.startswith("numpy.")
                and dotted.split(".", 1)[1] in self.ARRAY_FUNCS
            ):
                return True
            if (
                isinstance(func, ast.Attribute)
                and func.attr in self.ARRAY_METHODS
                and self._is_arrayish(func.value)
            ):
                return True
            return False
        if isinstance(node, ast.Subscript):
            # A slice of an array is an array view; an indexed element is a
            # scalar, so only slice subscripts keep the taint.
            return isinstance(node.slice, ast.Slice) and self._is_arrayish(node.value)
        if isinstance(node, ast.BinOp):
            # Elementwise arithmetic on an array yields an array.
            return self._is_arrayish(node.left) or self._is_arrayish(node.right)
        return False

    def _bind(self, target: ast.expr, arrayish: bool) -> None:
        if isinstance(target, ast.Name):
            if arrayish:
                self._scopes[-1].add(target.id)
            else:
                self._scopes[-1].discard(target.id)

    # -- scope tracking -------------------------------------------------------

    def _visit_function(self, node: ast.AST) -> None:
        self._scopes.append(set())
        self.generic_visit(node)
        self._scopes.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_Assign(self, node: ast.Assign) -> None:
        self.generic_visit(node)
        arrayish = self._is_arrayish(node.value)
        for target in node.targets:
            self._bind(target, arrayish)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self.generic_visit(node)
        if node.value is not None:
            self._bind(node.target, self._is_arrayish(node.value))

    # -- per-element sinks ----------------------------------------------------

    MESSAGE = (
        "per-element Python loop over a numpy array; use whole-array numpy "
        "operations, or walk a small .tolist() chunk when a sequential "
        "early-exit scan is required"
    )

    def _check_iter(self, node: ast.expr) -> None:
        if self._is_arrayish(node):
            self.report(node, self.MESSAGE)

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def _visit_ordered_comp(self, node: ast.AST) -> None:
        for generator in node.generators:
            self._check_iter(generator.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_ordered_comp
    visit_GeneratorExp = _visit_ordered_comp
    visit_DictComp = _visit_ordered_comp


# The interprocedural rules (DET005/ASY001/EXC001) live in
# repro.analysis.dataflow and register themselves on import; pulling the
# module in here makes registry bootstrap (which imports this module) load
# them too, so `repro lint --list`/`--project` see the full rule set.
from .. import dataflow  # noqa: E402,F401
