"""``repro lint`` — project-specific static analysis for determinism and
queue atomicity.

The public surface:

* :func:`lint_paths` / :func:`lint_source` run the analyzer;
* :data:`LINT_REGISTRY` / :func:`register_rule` are the open rule registry
  (same machinery as policies/models, including ``REPRO_PLUGINS``);
* :class:`LintFinding`, :class:`LintRule`, :class:`ModuleSource` and
  :class:`Baseline` are the framework types;
* the built-in rules live in :mod:`repro.analysis.lint.rules` and are
  documented in CONTRIBUTING.md.
"""

from .framework import (
    DETERMINISTIC_LAYERS,
    ERROR_CODES,
    LINT_REGISTRY,
    PARSE_ERROR_CODE,
    UNREADABLE_CODE,
    Baseline,
    LintFinding,
    LintRule,
    ModuleSource,
    ProjectRule,
    active_rules,
    dotted_name,
    import_aliases,
    iter_python_files,
    lint_paths,
    lint_project_sources,
    lint_source,
    package_path_of,
    register_rule,
)

__all__ = [
    "DETERMINISTIC_LAYERS",
    "ERROR_CODES",
    "LINT_REGISTRY",
    "PARSE_ERROR_CODE",
    "UNREADABLE_CODE",
    "Baseline",
    "LintFinding",
    "LintRule",
    "ModuleSource",
    "ProjectRule",
    "active_rules",
    "dotted_name",
    "import_aliases",
    "iter_python_files",
    "lint_paths",
    "lint_project_sources",
    "lint_source",
    "package_path_of",
    "register_rule",
]
