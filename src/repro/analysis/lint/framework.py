"""The ``repro lint`` rule framework: sources, findings, suppressions, baseline.

Every correctness claim this repository makes rests on two informal
disciplines: *bit-for-bit golden reproduction* (the 15 figure/table goldens
must not drift, so the simulation layers may not read wall clocks, entropy
sources, object identities or unordered containers) and *crash-safe queue
publication* (task/lease state becomes visible only through atomic
rename/exclusive-link, never through bare writes into live directories).
This module turns those disciplines into machine-checked lint rules that run
before a single simulation does.

The moving parts:

* :class:`ModuleSource` — one parsed Python file: its AST, its comments, its
  inline suppressions and its *package path* (the path relative to the
  ``repro`` package root, which is what layer-scoped rules match against);
* :class:`LintRule` — an :class:`ast.NodeVisitor` subclass with a ``code``,
  a ``title`` and a ``rationale``; concrete rules live in
  :mod:`repro.analysis.lint.rules` and register themselves into
  :data:`LINT_REGISTRY` (a :class:`repro.registry.Registry`, so rule lookup
  gets the same alias/did-you-mean/unregister hygiene as policies and models,
  and out-of-tree rules can plug in through ``REPRO_PLUGINS``);
* :class:`LintFinding` — one violation, with a line-number-independent
  ``fingerprint`` (rule + package path + offending source line) used by the
  committed baseline so grandfathered findings survive unrelated edits;
* :class:`Baseline` — the committed grandfather file: known findings are
  subtracted from a run by fingerprint multiset, anything left fails the run;
* :func:`lint_paths` / :func:`lint_source` — the entry points used by the
  ``repro lint`` CLI and by the fixture-snippet tests.

Suppressions are inline comments anywhere on the offending statement::

    with log.open("a") as fh:  # repro-lint: disable=QUE001 -- append-only audit log

A justification after ``--`` is conventional (CONTRIBUTING.md requires one);
``disable=all`` silences every rule on that statement. DET004's exact-float
sentinel annotation (``# repro-lint: exact-float``) is read from the same
comment stream.
"""

from __future__ import annotations

import ast
import hashlib
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator, Mapping, Sequence

from ...errors import LintError
from ...registry import Registry

#: Packages whose behaviour must be a pure function of the workload + config
#: (they feed the golden files). Rules use this to scope themselves.
DETERMINISTIC_LAYERS: tuple[str, ...] = (
    "sim/", "core/", "uvm/", "ssd/", "graph/", "baselines/",
)

#: Rule code reserved for files the linter cannot parse (always emitted,
#: never selectable or suppressible).
PARSE_ERROR_CODE = "E001"

#: Rule code reserved for paths the linter cannot read at all: a missing
#: file/directory, a directory containing no Python files, or an unreadable
#: file. Like :data:`PARSE_ERROR_CODE` these are *analysis errors*, not rule
#: findings — they can be neither suppressed nor baselined, and the CLI exits
#: 2 (analysis incomplete) instead of 1 (violations found) when any appear.
UNREADABLE_CODE = "E002"

#: Codes that mean "the analysis could not complete", as opposed to "the
#: analysis found a violation".
ERROR_CODES: tuple[str, ...] = (PARSE_ERROR_CODE, UNREADABLE_CODE)

_SUPPRESS_RE = re.compile(r"repro-lint:\s*disable=([A-Za-z0-9_*,\s]+?)(?:\s*--.*)?$")
_ANNOTATION_RE = re.compile(r"repro-lint:\s*([a-z][a-z0-9-]*)(?:\s*--.*)?$")


def package_path_of(path: Path) -> str:
    """``path`` relative to the ``repro`` package root, as a posix string.

    ``src/repro/sim/engine.py`` → ``"sim/engine.py"``. Files outside any
    ``repro`` directory fall back to their own name, so layer-scoped rules
    simply do not match them.
    """
    parts = path.parts
    for index in range(len(parts) - 2, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index + 1:])
    return path.name


@dataclass(frozen=True)
class LintFinding:
    """One rule violation at one source location.

    Interprocedural rules additionally carry ``evidence``: the call chain (or
    read/await/write sequence) proving the finding, one human-readable hop per
    entry, ending at the root cause. Evidence is diagnostic only — it is not
    part of the :attr:`fingerprint`, so a finding's baseline identity survives
    refactors that merely reroute the chain.
    """

    rule: str
    path: str
    package_path: str
    line: int
    col: int
    message: str
    snippet: str
    evidence: tuple[str, ...] = ()

    @property
    def fingerprint(self) -> str:
        """Stable identity for baseline matching.

        Hashes the rule, the package-relative path and the stripped source
        line — not the line *number* — so edits elsewhere in the file do not
        invalidate grandfathered entries.
        """
        payload = f"{self.rule}\x00{self.package_path}\x00{self.snippet}"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint,
            "evidence": list(self.evidence),
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass
class ModuleSource:
    """One parsed source file plus the comment-derived lint metadata."""

    path: Path
    package_path: str
    text: str
    tree: ast.Module
    #: line number -> comment text (without the leading ``#``), for every
    #: comment token in the file.
    comments: dict[int, str] = field(default_factory=dict)
    #: line number -> uppercased rule codes disabled on that line ("*" = all).
    suppressions: dict[int, frozenset[str]] = field(default_factory=dict)

    @classmethod
    def parse(
        cls, path: Path, text: str | None = None, package_path: str | None = None
    ) -> "ModuleSource":
        """Parse one file (or an in-memory snippet posing as ``path``).

        Raises :class:`SyntaxError` for unparseable source; callers turn that
        into an :data:`PARSE_ERROR_CODE` finding.
        """
        if text is None:
            text = path.read_text(encoding="utf-8")
        tree = ast.parse(text, filename=str(path))
        comments = _collect_comments(text)
        suppressions: dict[int, frozenset[str]] = {}
        for line, comment in comments.items():
            match = _SUPPRESS_RE.search(comment)
            if match:
                codes = frozenset(
                    token.strip().upper()
                    for token in match.group(1).split(",")
                    if token.strip()
                )
                if codes:
                    suppressions[line] = codes
        return cls(
            path=path,
            package_path=package_path if package_path is not None else package_path_of(path),
            text=text,
            tree=tree,
            comments=comments,
            suppressions=suppressions,
        )

    def in_layers(self, layers: Sequence[str]) -> bool:
        """Whether this file lives under any of the given package-relative dirs."""
        return any(self.package_path.startswith(layer) for layer in layers)

    def annotated(self, line: int, annotation: str) -> bool:
        """Whether ``line`` carries ``# repro-lint: <annotation>``."""
        comment = self.comments.get(line)
        if comment is None:
            return False
        match = _ANNOTATION_RE.search(comment)
        return match is not None and match.group(1) == annotation

    def suppressed(self, code: str, first_line: int, last_line: int | None = None) -> bool:
        """Whether ``code`` is disabled anywhere on the statement's line span."""
        last = first_line if last_line is None else last_line
        for line in range(first_line, last + 1):
            codes = self.suppressions.get(line)
            if codes and (code.upper() in codes or "ALL" in codes or "*" in codes):
                return True
        return False

    def source_line(self, line: int) -> str:
        lines = self.text.splitlines()
        if 1 <= line <= len(lines):
            return lines[line - 1].strip()
        return ""


def import_aliases(tree: ast.Module) -> dict[str, str]:
    """Local name -> imported dotted path, for resolving call targets.

    ``import time as _time`` maps ``_time`` to ``time``; ``from time import
    perf_counter as pc`` maps ``pc`` to ``time.perf_counter``; a bare
    ``import numpy.random`` maps ``numpy`` to ``numpy``. Relative imports are
    kept with their leading dots (``from ._compat import x`` maps ``x`` to
    ``._compat.x``). The walk covers function-level imports too — the map is
    module-wide, a deliberate (conservative) flattening.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                if name.asname:
                    aliases[name.asname] = name.name
                else:
                    root = name.name.split(".")[0]
                    aliases[root] = root
        elif isinstance(node, ast.ImportFrom):
            module = "." * node.level + (node.module or "")
            for name in node.names:
                if name.name == "*":
                    continue
                bound = name.asname or name.name
                aliases[bound] = f"{module}.{name.name}" if module else name.name
    return aliases


def dotted_name(node: ast.expr, aliases: Mapping[str, str]) -> str | None:
    """The resolved dotted path of a Name/Attribute chain, or ``None``.

    ``_time.perf_counter`` under ``import time as _time`` resolves to
    ``"time.perf_counter"``.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    base = aliases.get(node.id, node.id)
    parts.append(base)
    return ".".join(reversed(parts))


def _collect_comments(text: str) -> dict[int, str]:
    comments: dict[int, str] = {}
    try:
        for token in tokenize.generate_tokens(io.StringIO(text).readline):
            if token.type == tokenize.COMMENT:
                comments[token.start[0]] = token.string.lstrip("#").strip()
    except tokenize.TokenError:  # pragma: no cover - ast.parse succeeded first
        pass
    return comments


class LintRule(ast.NodeVisitor):
    """Base class for lint rules: an AST visitor that reports findings.

    Subclasses set :attr:`code`, :attr:`title` and :attr:`rationale`, override
    :meth:`applies_to` to scope themselves to a layer, optionally override
    :meth:`begin` for per-module setup (import maps, sentinel collection), and
    call :meth:`report` from ``visit_*`` methods.
    """

    code: str = "RULE000"
    title: str = ""
    rationale: str = ""

    def __init__(self) -> None:
        self.module: ModuleSource | None = None
        self._reports: list[tuple[ast.AST, str]] = []

    # -- subclass hooks -------------------------------------------------------

    def applies_to(self, module: ModuleSource) -> bool:
        return True

    def begin(self, module: ModuleSource) -> None:
        """Per-module setup before the AST walk."""

    def report(self, node: ast.AST, message: str) -> None:
        self._reports.append((node, message))

    # -- framework entry point ------------------------------------------------

    def check(self, module: ModuleSource) -> list[LintFinding]:
        """Run this rule over one module, honouring inline suppressions."""
        self.module = module
        self._reports = []
        self.begin(module)
        self.visit(module.tree)
        findings = []
        for node, message in self._reports:
            line = getattr(node, "lineno", 1)
            end_line = getattr(node, "end_lineno", None) or line
            if module.suppressed(self.code, line, end_line):
                continue
            findings.append(
                LintFinding(
                    rule=self.code,
                    path=str(module.path),
                    package_path=module.package_path,
                    line=line,
                    col=getattr(node, "col_offset", 0),
                    message=message,
                    snippet=module.source_line(line),
                )
            )
        return findings


class ProjectRule(LintRule):
    """Base class for interprocedural rules needing whole-program context.

    A project rule sees the entire lint run at once — every parsed module,
    the project symbol table and the call graph — instead of one module at a
    time, so it can follow a value across files (``DET005``), order events
    inside one function against shared state (``ASY001``), or intersect
    propagated raise-sets with except-handlers (``EXC001``). Because its
    verdicts depend on files *not* currently being edited, it only activates
    under ``repro lint --project`` (selecting one explicitly without
    ``--project`` is an error: a partial file list would silently weaken the
    analysis).

    Subclasses implement :meth:`check_project` and receive a
    :class:`repro.analysis.dataflow.ProjectContext`; they report through
    ``context.finding(...)``, which applies the same inline-suppression and
    fingerprint semantics as per-module rules. ``applies_to`` is pinned
    ``False`` so the per-module pass skips project rules entirely.
    """

    project_only = True

    def applies_to(self, module: ModuleSource) -> bool:
        return False

    def check_project(self, project: Any) -> list[LintFinding]:
        raise NotImplementedError  # pragma: no cover - interface


#: Open registry of lint rules. Rule classes self-register on import of
#: :mod:`repro.analysis.lint.rules` (the bootstrap); plugins add their own
#: through ``@register_rule("XYZ123", title=..., rationale=...)``.
LINT_REGISTRY = Registry(
    "lint rule", bootstrap="repro.analysis.lint.rules", error_cls=LintError
)

#: Decorator registering a :class:`LintRule` subclass under its code.
register_rule = LINT_REGISTRY.register


def resolve_codes(codes: Iterable[str]) -> list[str]:
    """Canonical registry keys for user-supplied rule codes (case-insensitive)."""
    return [LINT_REGISTRY.resolve(code) for code in codes]


def active_rules(
    select: Iterable[str] | None = None, ignore: Iterable[str] | None = None
) -> list[LintRule]:
    """Instantiate the requested rules in registration order."""
    selected = set(resolve_codes(select)) if select is not None else None
    ignored = set(resolve_codes(ignore)) if ignore else set()
    rules = []
    for key in LINT_REGISTRY.available():
        if selected is not None and key not in selected:
            continue
        if key in ignored:
            continue
        rules.append(LINT_REGISTRY.create(key))
    return rules


def iter_python_files(paths: Sequence[Path | str]) -> Iterator[Path]:
    """Every ``.py`` file under the given files/directories, sorted, deduped."""
    seen = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates = sorted(
                p for p in path.rglob("*.py") if "__pycache__" not in p.parts
            )
        elif path.exists():
            candidates = [path]
        else:
            raise LintError(f"no such file or directory: {path}")
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


def lint_modules(
    modules: Iterable[ModuleSource], rules: Sequence[LintRule]
) -> list[LintFinding]:
    findings: list[LintFinding] = []
    for module in modules:
        for rule in rules:
            if rule.applies_to(module):
                findings.extend(rule.check(module))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def _split_rules(
    rules: Sequence[LintRule],
    select: Iterable[str] | None,
    project: bool,
) -> tuple[list[LintRule], list[LintRule]]:
    """Partition into (per-module, project) rules, policing ``--project``.

    Explicitly selecting an interprocedural rule without project mode is an
    error — running DET005 over two files out of eighty would silently miss
    every cross-module path and report a false clean. With no explicit
    selection the project rules are just skipped outside project mode.
    """
    module_rules = [r for r in rules if not getattr(r, "project_only", False)]
    project_rules = [r for r in rules if getattr(r, "project_only", False)]
    if not project:
        if select is not None and project_rules:
            names = ", ".join(r.code for r in project_rules)
            raise LintError(
                f"rule(s) {names} are interprocedural and need whole-program "
                "context; re-run with --project"
            )
        return module_rules, []
    return module_rules, project_rules


def _collect_files(
    paths: Sequence[Path | str],
) -> tuple[list[Path], list[LintFinding]]:
    """Expand paths to .py files; unusable paths become ``E002`` findings."""
    files: list[Path] = []
    errors: list[LintFinding] = []
    seen = set()

    def error(path: Path, message: str) -> None:
        errors.append(
            LintFinding(
                rule=UNREADABLE_CODE,
                path=str(path),
                package_path=package_path_of(path),
                line=1,
                col=0,
                message=message,
                snippet="",
            )
        )

    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates = sorted(
                p for p in path.rglob("*.py") if "__pycache__" not in p.parts
            )
            if not candidates:
                error(path, "directory contains no Python files")
        elif path.exists():
            candidates = [path]
        else:
            error(path, "no such file or directory")
            continue
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                files.append(candidate)
    return files, errors


def _parse_error(path: Path, exc: SyntaxError) -> LintFinding:
    return LintFinding(
        rule=PARSE_ERROR_CODE,
        path=str(path),
        package_path=package_path_of(path),
        line=exc.lineno or 1,
        col=(exc.offset or 1) - 1,
        message=f"cannot parse file: {exc.msg}",
        snippet=(exc.text or "").strip(),
    )


def _lint_project(
    modules: Sequence[ModuleSource], rules: Sequence[LintRule]
) -> list[LintFinding]:
    """Run the interprocedural rules over the whole parsed module set."""
    if not rules:
        return []
    from ..dataflow import ProjectContext  # deferred: dataflow imports this module

    context = ProjectContext.build(modules)
    findings: list[LintFinding] = []
    for rule in rules:
        findings.extend(rule.check_project(context))
    return findings


def lint_paths(
    paths: Sequence[Path | str],
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    project: bool = False,
) -> list[LintFinding]:
    """Lint files/directories.

    Parse failures become :data:`PARSE_ERROR_CODE` findings and unusable
    paths become :data:`UNREADABLE_CODE` findings — structured output rather
    than exceptions, so CI artifacts capture them alongside rule findings.
    With ``project=True`` the interprocedural rules (DET005/ASY001/EXC001 and
    any registered :class:`ProjectRule`) also run, over a symbol table and
    call graph built from *all* the given files.
    """
    module_rules, project_rules = _split_rules(
        active_rules(select, ignore), select, project
    )
    files, error_findings = _collect_files(paths)
    modules: list[ModuleSource] = []
    for path in files:
        try:
            modules.append(ModuleSource.parse(path))
        except SyntaxError as exc:
            error_findings.append(_parse_error(path, exc))
        except (OSError, UnicodeDecodeError) as exc:
            error_findings.append(
                LintFinding(
                    rule=UNREADABLE_CODE,
                    path=str(path),
                    package_path=package_path_of(path),
                    line=1,
                    col=0,
                    message=f"cannot read file: {exc}",
                    snippet="",
                )
            )
    findings = lint_modules(modules, module_rules)
    findings += _lint_project(modules, project_rules)
    findings += error_findings
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_source(
    text: str,
    package_path: str = "snippet.py",
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> list[LintFinding]:
    """Lint an in-memory snippet as if it lived at ``package_path``.

    This is the fixture-test entry point: rules scoped to a layer are
    exercised by passing e.g. ``package_path="sim/engine.py"``.
    """
    module = ModuleSource.parse(
        Path(package_path), text=text, package_path=package_path
    )
    module_rules, _ = _split_rules(active_rules(select, ignore), select, project=False)
    return lint_modules([module], module_rules)


def lint_project_sources(
    sources: Sequence[tuple[str, str]],
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> list[LintFinding]:
    """Lint a set of in-memory modules in project mode.

    ``sources`` is ``[(package_path, text), ...]`` — the fixture entry point
    for interprocedural rules, letting tests assemble a miniature project
    ("sim/engine.py calls a helper in experiments/helper.py") without
    touching disk. Per-module rules run too, exactly as ``--project`` does.
    """
    modules = [
        ModuleSource.parse(Path(package_path), text=text, package_path=package_path)
        for package_path, text in sources
    ]
    module_rules, project_rules = _split_rules(
        active_rules(select, ignore), select, project=True
    )
    findings = lint_modules(modules, module_rules)
    findings += _lint_project(modules, project_rules)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


# -- baseline -----------------------------------------------------------------


class Baseline:
    """The committed grandfather file for pre-existing findings.

    A baseline is a JSON document listing finding fingerprints (plus their
    human-readable context, for reviewability). :meth:`partition` subtracts
    baselined findings from a run as a *multiset* — two identical offending
    lines need two entries — so fixing one of them surfaces the other.
    """

    VERSION = 1

    def __init__(self, entries: Iterable[dict[str, Any]] = ()) -> None:
        self.entries = list(entries)

    @classmethod
    def load(cls, path: Path | str | None) -> "Baseline":
        """Read a baseline file; a missing path (or ``None``) means empty."""
        if path is None:
            return cls()
        path = Path(path)
        if not path.exists():
            return cls()
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise LintError(f"cannot parse lint baseline {path}: {exc}")
        if not isinstance(data, dict) or "findings" not in data:
            raise LintError(f"lint baseline {path} is not a baseline document")
        return cls(data["findings"])

    @classmethod
    def from_findings(cls, findings: Iterable[LintFinding]) -> "Baseline":
        return cls(
            {
                "rule": f.rule,
                "package_path": f.package_path,
                "snippet": f.snippet,
                "fingerprint": f.fingerprint,
            }
            for f in findings
        )

    def write(self, path: Path | str) -> None:
        document = {
            "version": self.VERSION,
            "findings": sorted(
                self.entries,
                key=lambda e: (e.get("package_path", ""), e.get("rule", ""), e.get("fingerprint", "")),
            ),
        }
        Path(path).write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )

    def partition(
        self, findings: Sequence[LintFinding]
    ) -> tuple[list[LintFinding], list[LintFinding], int]:
        """Split a run into (new, grandfathered) findings; also count stale entries.

        Returns ``(new, baselined, stale)`` where ``stale`` is the number of
        baseline entries that matched nothing (fixed findings whose entries
        should be removed).
        """
        budget: dict[str, int] = {}
        for entry in self.entries:
            fingerprint = entry.get("fingerprint", "")
            budget[fingerprint] = budget.get(fingerprint, 0) + 1
        new: list[LintFinding] = []
        baselined: list[LintFinding] = []
        for finding in findings:
            if budget.get(finding.fingerprint, 0) > 0:
                budget[finding.fingerprint] -= 1
                baselined.append(finding)
            else:
                new.append(finding)
        stale = sum(budget.values())
        return new, baselined, stale
