"""Workload characterization and result analysis (§3 and §7 post-processing)."""

from .characterization import (
    CharacterizationResult,
    characterize_workload,
    inactive_period_distribution,
    inactive_period_size_scatter,
    memory_consumption_profile,
)
from .traffic import TrafficBreakdown, traffic_breakdown
from .lifetime import estimate_ssd_lifetime

__all__ = [
    "CharacterizationResult",
    "characterize_workload",
    "memory_consumption_profile",
    "inactive_period_distribution",
    "inactive_period_size_scatter",
    "TrafficBreakdown",
    "traffic_breakdown",
    "estimate_ssd_lifetime",
]
