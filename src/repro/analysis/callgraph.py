"""Conservative project call graph for the interprocedural lint rules.

Built on the :class:`~repro.analysis.symbols.SymbolTable`, this resolves
every syntactic call inside every project function to one of:

* a **project edge** — the callee is a project function/method, found through
  module-level names, import aliases (plain, ``from``-imports and re-exports
  through ``__init__``), ``self.method()``/``cls.method()`` with method
  resolution over project base classes, ``ClassName(...)`` constructors
  (edge to ``__init__``), ``self.attr.method()`` where ``attr`` was assigned
  a constructor call, and ``local.method()`` where ``local = ClassName(...)``
  earlier in the same function;
* an **external edge** — the target resolves to a dotted name outside the
  project (``time.time``, ``json.dumps``); kept because taint analyses seed
  from them;
* nothing — dynamic dispatch (registry lookups, callbacks, untyped
  attributes) produces no edge. The graph therefore *under*-approximates the
  true call relation: analyses built on it can miss dynamically-routed paths
  (documented per rule) but never report a path that cannot exist.

The only users are the ``--project`` rules in :mod:`repro.analysis.dataflow`;
the graph is rebuilt per lint run (sub-second over the whole tree).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from .lint.framework import dotted_name
from .symbols import ClassSymbol, FunctionSymbol, ModuleSymbols, SymbolTable

__all__ = ["CallEdge", "CallGraph"]


@dataclass(frozen=True)
class CallEdge:
    """One resolved call site: ``caller`` invokes ``callee`` at ``line``."""

    caller: str  #: caller function id (``"module.py::qual"``)
    callee: str  #: project function id, or external dotted name
    external: bool
    line: int
    col: int

    def describe(self) -> str:
        """Human-readable hop for finding evidence chains."""
        caller_module, _, caller_qual = self.caller.partition("::")
        target = f"{self.callee}()" if self.external else self.callee
        return f"{caller_module}:{self.line} {caller_qual} -> {target}"


class CallGraph:
    """Forward and reverse adjacency over every project function."""

    def __init__(self, table: SymbolTable) -> None:
        self.table = table
        self.edges_from: dict[str, list[CallEdge]] = {}
        self.edges_to: dict[str, list[CallEdge]] = {}
        for function in table.functions.values():
            self._build_function(function)

    @classmethod
    def build(cls, table: SymbolTable) -> "CallGraph":
        return cls(table)

    # -- queries ---------------------------------------------------------------

    def calls_from(self, fid: str) -> list[CallEdge]:
        return self.edges_from.get(fid, [])

    def calls_to(self, fid: str) -> list[CallEdge]:
        return self.edges_to.get(fid, [])

    def project_edges(self) -> Iterator[CallEdge]:
        for edges in self.edges_from.values():
            for edge in edges:
                if not edge.external:
                    yield edge

    def external_edges(self) -> Iterator[CallEdge]:
        for edges in self.edges_from.values():
            for edge in edges:
                if edge.external:
                    yield edge

    # -- construction ----------------------------------------------------------

    def _build_function(self, function: FunctionSymbol) -> None:
        module = self.table.modules[function.module]
        klass = module.classes.get(function.cls) if function.cls else None
        local_types = _local_constructor_types(function.node, module, self.table)
        edges: list[CallEdge] = []
        for node in ast.walk(function.node):
            if not isinstance(node, ast.Call):
                continue
            edge = self._resolve_call(node, function, module, klass, local_types)
            if edge is not None:
                edges.append(edge)
        self.edges_from[function.fid] = edges
        for edge in edges:
            if not edge.external:
                self.edges_to.setdefault(edge.callee, []).append(edge)

    def _resolve_call(
        self,
        node: ast.Call,
        function: FunctionSymbol,
        module: ModuleSymbols,
        klass: ClassSymbol | None,
        local_types: dict[str, str],
    ) -> CallEdge | None:
        func = node.func

        def project(callee: FunctionSymbol) -> CallEdge:
            return CallEdge(
                caller=function.fid,
                callee=callee.fid,
                external=False,
                line=node.lineno,
                col=node.col_offset,
            )

        def external(target: str) -> CallEdge:
            return CallEdge(
                caller=function.fid,
                callee=target,
                external=True,
                line=node.lineno,
                col=node.col_offset,
            )

        # self.method(...) / cls.method(...) and self.attr.method(...)
        if isinstance(func, ast.Attribute):
            receiver = func.value
            if (
                klass is not None
                and isinstance(receiver, ast.Name)
                and receiver.id in ("self", "cls")
            ):
                method = self.table.resolve_method(klass, func.attr)
                return project(method) if method is not None else None
            if (
                klass is not None
                and isinstance(receiver, ast.Attribute)
                and isinstance(receiver.value, ast.Name)
                and receiver.value.id in ("self", "cls")
            ):
                attr_cid = klass.attr_types.get(receiver.attr)
                attr_class = self.table.classes.get(attr_cid) if attr_cid else None
                if attr_class is not None:
                    method = self.table.resolve_method(attr_class, func.attr)
                    return project(method) if method is not None else None
                return None
            if isinstance(receiver, ast.Name) and receiver.id in local_types:
                local_class = self.table.classes.get(local_types[receiver.id])
                if local_class is not None:
                    method = self.table.resolve_method(local_class, func.attr)
                    return project(method) if method is not None else None
                return None

        # Bare names bind to the current module's own functions/classes first
        # (shadowed by imports, which the alias map records).
        if isinstance(func, ast.Name) and func.id not in module.aliases:
            local_fn = module.functions.get(func.id)
            if local_fn is not None:
                return project(local_fn)
            local_cls = module.classes.get(func.id)
            if local_cls is not None:
                init = self.table.resolve_method(local_cls, "__init__")
                return project(init) if init is not None else None

        dotted = dotted_name(func, module.aliases)
        if dotted is None:
            return None
        resolved = self.table.resolve_dotted(dotted, module.path)
        if resolved is None:
            # Dotted externals ("time.time") are kept for taint seeding.
            # Unqualified unknown names (builtins like "sorted", locals, and
            # parameters) and leading-dot relative paths that failed to
            # resolve are neither project nor meaningfully external: no edge.
            if dotted.startswith(".") or "." not in dotted:
                return None
            return external(dotted)
        kind, symbol = resolved
        if kind == "function":
            return project(symbol)  # type: ignore[arg-type]
        if kind == "class":
            init = self.table.resolve_method(symbol, "__init__")  # type: ignore[arg-type]
            return project(init) if init is not None else None
        return None


def _local_constructor_types(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    module: ModuleSymbols,
    table: SymbolTable,
) -> dict[str, str]:
    """Local name → class id, for ``x = ClassName(...)`` assignments.

    Last assignment wins (source order); re-binding a name to anything that
    is not a recognizable constructor clears it.
    """
    types: dict[str, str] = {}
    for stmt in ast.walk(node):
        if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
            continue
        target = stmt.targets[0]
        if not isinstance(target, ast.Name):
            continue
        constructed: str | None = None
        if isinstance(stmt.value, ast.Call):
            dotted = dotted_name(stmt.value.func, module.aliases)
            if dotted is not None:
                resolved = table.resolve_dotted(dotted, module.path)
                if resolved is not None and resolved[0] == "class":
                    constructed = resolved[1].cid  # type: ignore[union-attr]
        if constructed is not None:
            types[target.id] = constructed
        else:
            types.pop(target.id, None)
    return types
