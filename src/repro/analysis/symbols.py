"""Project-wide symbol table for the interprocedural lint rules.

The per-module rules in :mod:`repro.analysis.lint.rules` deliberately see one
file at a time; the ``--project`` rules (DET005/ASY001/EXC001) need to answer
questions like "which function does ``WorkQueue.lease`` name from over in
``server.py``?" across the whole ``src/repro`` tree. This module builds that
index:

* :class:`FunctionSymbol` — one ``def``/``async def``, module-level or
  method, addressed by a stable id ``"<package_path>::<qualname>"``
  (``"experiments/queue.py::WorkQueue.lease"``);
* :class:`ClassSymbol` — one class with its methods, resolved base classes
  and the inferred types of ``self.<attr>`` fields assigned from constructor
  calls (``self.queue = WorkQueue(...)`` types ``queue`` as ``WorkQueue``);
* :class:`ModuleSymbols` — one module: its functions, classes, module-level
  (global) names and import-alias map;
* :class:`SymbolTable` — the project: lookup by package path or dotted name,
  alias/from-import-aware :meth:`resolve_dotted` (following re-exports
  through ``__init__`` modules), and method resolution over project base
  classes.

Everything here is *conservative by construction*: a name that cannot be
resolved statically resolves to nothing, and downstream analyses treat
"nothing" as "no edge" — the rules built on top may miss dynamic dispatch
(registry lookups, duck typing) but never invent a call that cannot happen.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from .lint.framework import ModuleSource, dotted_name, import_aliases

__all__ = [
    "ClassSymbol",
    "FunctionSymbol",
    "ModuleSymbols",
    "Resolution",
    "SymbolTable",
    "module_dotted",
]

#: Maximum re-export hops followed through ``__init__`` alias chains before
#: resolution gives up (cycle guard; real chains are 1-2 hops deep).
_MAX_REEXPORT_HOPS = 8


def module_dotted(package_path: str) -> str:
    """Package-relative dotted module name for a package path.

    ``"experiments/queue.py"`` → ``"experiments.queue"``;
    ``"experiments/__init__.py"`` → ``"experiments"``; the package root
    ``"__init__.py"`` → ``""``.
    """
    path = package_path
    if path.endswith(".py"):
        path = path[:-3]
    if path.endswith("__init__"):
        path = path[: -len("__init__")].rstrip("/")
    return path.replace("/", ".")


@dataclass
class FunctionSymbol:
    """One function or method definition in the project."""

    module: str  #: package path of the defining module
    qual: str  #: ``"name"`` or ``"Class.name"``
    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    cls: str | None = None  #: defining class name, for methods
    is_async: bool = False

    @property
    def fid(self) -> str:
        """Stable project-unique id: ``"<package_path>::<qual>"``."""
        return f"{self.module}::{self.qual}"

    @property
    def lineno(self) -> int:
        return self.node.lineno


@dataclass
class ClassSymbol:
    """One class definition with its methods and resolved bases."""

    module: str
    name: str
    node: ast.ClassDef
    #: Base expressions resolved to project class ids (``"module::Class"``)
    #: or external dotted names (``"abc.ABC"``); unresolvable bases dropped.
    bases: list[str] = field(default_factory=list)
    methods: dict[str, FunctionSymbol] = field(default_factory=dict)
    #: ``self.<attr>`` → class id, inferred from ``self.attr = ClassName(...)``
    #: assignments anywhere in the class body (typically ``__init__``).
    attr_types: dict[str, str] = field(default_factory=dict)

    @property
    def cid(self) -> str:
        return f"{self.module}::{self.name}"


@dataclass
class ModuleSymbols:
    """The symbols of one parsed module."""

    source: ModuleSource
    dotted: str
    aliases: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionSymbol] = field(default_factory=dict)
    classes: dict[str, ClassSymbol] = field(default_factory=dict)
    #: Names assigned at module level — the mutable-global candidates ASY001
    #: tracks inside ``async def`` bodies.
    module_globals: set[str] = field(default_factory=set)

    @property
    def path(self) -> str:
        return self.source.package_path


#: One resolution result: ``(kind, payload)`` where kind is ``"function"``,
#: ``"class"`` or ``"module"``.
Resolution = tuple[str, object]


class SymbolTable:
    """Symbols of every module handed to one project lint run."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleSymbols] = {}
        self._by_dotted: dict[str, str] = {}
        self.functions: dict[str, FunctionSymbol] = {}
        self.classes: dict[str, ClassSymbol] = {}

    @classmethod
    def build(cls, sources: Iterable[ModuleSource]) -> "SymbolTable":
        table = cls()
        for source in sources:
            table._index_module(source)
        table._resolve_class_bases()
        return table

    # -- construction ----------------------------------------------------------

    def _index_module(self, source: ModuleSource) -> None:
        module = ModuleSymbols(
            source=source,
            dotted=module_dotted(source.package_path),
            aliases=import_aliases(source.tree),
        )
        for node in source.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                symbol = FunctionSymbol(
                    module=module.path,
                    qual=node.name,
                    name=node.name,
                    node=node,
                    is_async=isinstance(node, ast.AsyncFunctionDef),
                )
                module.functions[node.name] = symbol
                self.functions[symbol.fid] = symbol
            elif isinstance(node, ast.ClassDef):
                self._index_class(module, node)
            else:
                for target in _assigned_names(node):
                    module.module_globals.add(target)
        self.modules[module.path] = module
        self._by_dotted[module.dotted] = module.path

    def _index_class(self, module: ModuleSymbols, node: ast.ClassDef) -> None:
        symbol = ClassSymbol(module=module.path, name=node.name, node=node)
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                method = FunctionSymbol(
                    module=module.path,
                    qual=f"{node.name}.{item.name}",
                    name=item.name,
                    node=item,
                    cls=node.name,
                    is_async=isinstance(item, ast.AsyncFunctionDef),
                )
                symbol.methods[item.name] = method
                self.functions[method.fid] = method
        module.classes[node.name] = symbol
        self.classes[symbol.cid] = symbol

    def _resolve_class_bases(self) -> None:
        """Resolve base-class expressions and ``self.<attr>`` constructor types.

        Runs after every module is indexed so forward references across
        modules resolve regardless of build order.
        """
        for module in self.modules.values():
            for klass in module.classes.values():
                for base in klass.node.bases:
                    dotted = dotted_name(base, module.aliases)
                    if dotted is None:
                        continue
                    resolved = self.resolve_dotted(dotted, module.path)
                    if resolved is not None and resolved[0] == "class":
                        klass.bases.append(resolved[1].cid)  # type: ignore[union-attr]
                    else:
                        klass.bases.append(dotted)
                self._infer_attr_types(module, klass)

    def _infer_attr_types(self, module: ModuleSymbols, klass: ClassSymbol) -> None:
        for method in klass.methods.values():
            for stmt in ast.walk(method.node):
                if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
                    continue
                target = stmt.targets[0]
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                constructed = self._constructed_class(stmt.value, module)
                if constructed is not None:
                    klass.attr_types[target.attr] = constructed.cid

    def _constructed_class(
        self, value: ast.expr, module: ModuleSymbols
    ) -> ClassSymbol | None:
        """The project class instantiated by ``value``, if it is ``Cls(...)``."""
        if not isinstance(value, ast.Call):
            return None
        dotted = dotted_name(value.func, module.aliases)
        if dotted is None:
            return None
        resolved = self.resolve_dotted(dotted, module.path)
        if resolved is not None and resolved[0] == "class":
            return resolved[1]  # type: ignore[return-value]
        return None

    # -- lookup ----------------------------------------------------------------

    def module_at(self, package_path: str) -> ModuleSymbols | None:
        return self.modules.get(package_path)

    def resolve_dotted(
        self, dotted: str, current_module: str, _hops: int = 0
    ) -> Resolution | None:
        """Resolve a dotted path to a project function, class or module.

        Handles absolute package paths (``repro.experiments.queue.WorkQueue``
        or the package-relative ``experiments.queue.WorkQueue``), relative
        imports carried by the alias map (``..errors.ConfigurationError``
        seen from ``experiments/server.py``), and re-exports: a name bound in
        an ``__init__`` module by ``from .sweep import SweepRunner`` resolves
        through to the defining module. Returns ``None`` for anything outside
        the project — callers treat that as an external/unknown target.
        """
        if _hops > _MAX_REEXPORT_HOPS:
            return None
        # A bare (un-aliased) name binds to the current module's own namespace
        # first — Python scoping, and required for ``class Sub(Base)`` where
        # ``Base`` is defined earlier in the same file.
        if not dotted.startswith("."):
            local = self.modules.get(current_module)
            head = dotted.split(".", 1)[0]
            if local is not None and (
                head in local.functions or head in local.classes
            ):
                return self._resolve_in_module(local, dotted.split("."), _hops)
        parts = self._normalize(dotted, current_module)
        if parts is None:
            return None
        # Longest prefix naming a project module wins; the remainder is looked
        # up inside it.
        for split in range(len(parts), 0, -1):
            prefix = ".".join(parts[:split])
            module_path = self._by_dotted.get(prefix)
            if module_path is None:
                continue
            module = self.modules[module_path]
            return self._resolve_in_module(module, parts[split:], _hops)
        # Names re-exported from the package root ("repro.Scenario"): try the
        # root __init__ module before declaring the path external.
        root_path = self._by_dotted.get("")
        if root_path is not None:
            return self._resolve_in_module(self.modules[root_path], parts, _hops)
        return None

    def _normalize(self, dotted: str, current_module: str) -> list[str] | None:
        """Split a dotted path into package-relative parts, or ``None``."""
        if dotted.startswith("."):
            level = len(dotted) - len(dotted.lstrip("."))
            remainder = dotted.lstrip(".")
            package = current_module.rsplit("/", 1)[0] if "/" in current_module else ""
            parts = package.split("/") if package else []
            ups = level - 1
            if ups > len(parts):
                return None
            if ups:
                parts = parts[:-ups]
            return parts + (remainder.split(".") if remainder else [])
        parts = dotted.split(".")
        if parts[0] == "repro":
            parts = parts[1:]
            return parts if parts else None
        # Package-relative absolute paths ("experiments.queue") and top-level
        # module names ("errors") are accepted as-is; anything whose first
        # component is not a project module falls out of resolution naturally.
        return parts

    def _resolve_in_module(
        self, module: ModuleSymbols, rest: Sequence[str], hops: int
    ) -> Resolution | None:
        if not rest:
            return ("module", module)
        head = rest[0]
        if head in module.functions and len(rest) == 1:
            return ("function", module.functions[head])
        if head in module.classes:
            klass = module.classes[head]
            if len(rest) == 1:
                return ("class", klass)
            if len(rest) == 2:
                method = self.resolve_method(klass, rest[1])
                if method is not None:
                    return ("function", method)
            return None
        # Re-export: the name is bound by an import in this module (the
        # ``from .sweep import SweepRunner`` idiom in __init__ files).
        alias = module.aliases.get(head)
        if alias is not None:
            target = ".".join([alias, *rest[1:]])
            return self.resolve_dotted(target, module.path, hops + 1)
        return None

    def resolve_method(self, klass: ClassSymbol, name: str) -> FunctionSymbol | None:
        """Look ``name`` up on ``klass``, then along its project base chain."""
        seen: set[str] = set()
        stack = [klass]
        while stack:
            current = stack.pop(0)
            if current.cid in seen:
                continue
            seen.add(current.cid)
            if name in current.methods:
                return current.methods[name]
            for base in current.bases:
                base_class = self.classes.get(base)
                if base_class is not None:
                    stack.append(base_class)
        return None

    def class_ancestry(self, klass: ClassSymbol) -> list[str]:
        """Every base id reachable from ``klass`` (project ids + externals)."""
        out: list[str] = []
        seen: set[str] = set()
        stack = list(klass.bases)
        while stack:
            base = stack.pop(0)
            if base in seen:
                continue
            seen.add(base)
            out.append(base)
            base_class = self.classes.get(base)
            if base_class is not None:
                stack.extend(base_class.bases)
        return out


def _assigned_names(node: ast.stmt) -> list[str]:
    """Module-level names bound by an assignment statement."""
    targets: list[ast.expr] = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
        targets = [node.target]
    names: list[str] = []
    for target in targets:
        if isinstance(target, ast.Name):
            names.append(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            names.extend(e.id for e in target.elts if isinstance(e, ast.Name))
    return names
