"""System configuration for the G10 reproduction.

The values in :func:`paper_config` mirror Table 2 of the paper (A100 GPU with
40 GB HBM2e, 128 GB host DRAM, a Samsung Z-NAND class SSD, PCIe Gen3 x16).
:func:`ci_config` provides a proportionally scaled-down system so that the
test-suite and the benchmark harness run in seconds while preserving the
capacity/bandwidth ratios that drive every result in the paper.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field

from .errors import ConfigurationError

KB = 1024
MB = 1024 * KB
GB = 1024 * MB
TB = 1024 * GB

#: Bytes per FP32 element, the tensor representation used throughout the paper.
FP32_BYTES = 4

#: Page size used by the unified memory system (Table 2).
PAGE_SIZE = 4 * KB


@dataclass(frozen=True)
class GPUConfig:
    """Compute and on-board memory parameters of the simulated GPU."""

    #: On-board HBM capacity in bytes.
    memory_bytes: int = 40 * GB
    #: Peak FP32 throughput in FLOP/s (A100: 19.5 TFLOPS).
    peak_flops: float = 19.5e12
    #: HBM bandwidth in bytes/s (A100: ~1555 GB/s).
    memory_bandwidth: float = 1555 * GB
    # The four efficiency factors below calibrate the roofline cost model so
    # that kernel durations land in the same duration-vs-footprint regime as
    # the kernel traces the paper replays (see DESIGN.md, "Substitutions").
    # They are deliberately below what a tuned A100 achieves: the paper's
    # traces come from eager-mode FP32 PyTorch at very large batch sizes.
    #: Fraction of peak achieved by generic compute kernels.
    compute_efficiency: float = 0.20
    #: Fraction of peak achieved by FP32 convolution kernels.
    conv_efficiency: float = 0.035
    #: Fraction of peak achieved by grouped convolutions (ResNeXt/SENet style).
    grouped_conv_efficiency: float = 0.015
    #: Fraction of peak achieved by large GEMM / attention kernels.
    gemm_efficiency: float = 0.15
    #: Fixed per-kernel launch overhead in seconds.
    kernel_launch_overhead: float = 4e-6

    def __post_init__(self) -> None:
        if self.memory_bytes <= 0:
            raise ConfigurationError("GPU memory must be positive")
        if self.peak_flops <= 0 or self.memory_bandwidth <= 0:
            raise ConfigurationError("GPU throughput parameters must be positive")
        for name in ("compute_efficiency", "conv_efficiency", "grouped_conv_efficiency", "gemm_efficiency"):
            value = getattr(self, name)
            if not 0 < value <= 1:
                raise ConfigurationError(f"{name} must be in (0, 1]")

    def efficiency_for(self, compute_class: str) -> float:
        """Achieved fraction of peak FLOPs for one kernel compute class."""
        table = {
            "conv": self.conv_efficiency,
            "grouped_conv": self.grouped_conv_efficiency,
            "gemm": self.gemm_efficiency,
        }
        return table.get(compute_class, self.compute_efficiency)


@dataclass(frozen=True)
class SSDConfig:
    """Flash SSD parameters (Table 2, Samsung Z-NAND class device)."""

    #: Sequential read bandwidth in bytes/s.
    read_bandwidth: float = 3.2 * GB
    #: Sequential write bandwidth in bytes/s.
    write_bandwidth: float = 3.0 * GB
    #: Read latency in seconds.
    read_latency: float = 20e-6
    #: Write (program) latency in seconds.
    write_latency: float = 16e-6
    #: Device capacity in bytes.
    capacity_bytes: int = int(3.2 * TB)
    #: Number of independent flash channels used by the internal geometry model.
    channels: int = 8
    #: Flash page size in bytes.
    flash_page_size: int = 16 * KB
    #: Pages per erase block.
    pages_per_block: int = 256
    #: Over-provisioning ratio reserved for garbage collection.
    overprovisioning: float = 0.07
    #: GC trigger threshold: fraction of free blocks below which GC runs.
    gc_threshold: float = 0.05
    #: Block erase latency in seconds.
    erase_latency: float = 3e-3
    #: Rated endurance in drive-writes-per-day over the warranty period.
    endurance_dwpd: float = 30.0
    #: Warranty period in days (5 years).
    endurance_days: int = 1825

    def __post_init__(self) -> None:
        if self.read_bandwidth <= 0 or self.write_bandwidth <= 0:
            raise ConfigurationError("SSD bandwidth must be positive")
        if self.capacity_bytes <= 0:
            raise ConfigurationError("SSD capacity must be positive")
        if not 0 <= self.overprovisioning < 1:
            raise ConfigurationError("overprovisioning must be in [0, 1)")

    def scaled_bandwidth(self, factor: float) -> "SSDConfig":
        """Return a copy whose read/write bandwidth is multiplied by ``factor``.

        Used by the Figure 18 sensitivity sweep (stacking multiple SSDs).
        """
        return dataclasses.replace(
            self,
            read_bandwidth=self.read_bandwidth * factor,
            write_bandwidth=self.write_bandwidth * factor,
        )


@dataclass(frozen=True)
class InterconnectConfig:
    """PCIe interconnect shared by GPU<->host and GPU<->SSD traffic."""

    #: Usable unidirectional bandwidth in bytes/s (PCIe Gen3 x16 ~ 15.754 GB/s).
    bandwidth: float = 15.754 * GB
    #: Per-transfer setup latency in seconds.
    latency: float = 5e-6

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ConfigurationError("interconnect bandwidth must be positive")


@dataclass(frozen=True)
class UVMConfig:
    """Unified-virtual-memory behaviour knobs."""

    #: Page size for the unified page table.
    page_size: int = PAGE_SIZE
    #: End-to-end GPU page-fault handling latency in seconds (Table 2).
    fault_latency: float = 45e-6
    #: Bytes migrated per fault-handling round trip (fault-neighbourhood prefetch).
    fault_batch_bytes: int = 2 * MB
    #: Software overhead per explicit (pre-evict / prefetch) migration request
    #: when the flash space is NOT integrated into the page table (G10-Host).
    software_migration_overhead: float = 15e-6
    #: Software overhead per explicit migration with the full UVM extension (G10).
    extended_uvm_overhead: float = 2e-6
    #: TLB reach in pages; misses add a page-table-walk latency.
    tlb_entries: int = 4096
    #: Latency of one page table walk in seconds.
    page_walk_latency: float = 1e-6

    def __post_init__(self) -> None:
        if self.page_size <= 0 or self.fault_batch_bytes <= 0:
            raise ConfigurationError("page size and fault batch must be positive")
        if self.fault_latency < 0:
            raise ConfigurationError("fault latency cannot be negative")


@dataclass(frozen=True)
class SystemConfig:
    """Complete configuration of the simulated GPU + host + SSD system."""

    gpu: GPUConfig = field(default_factory=GPUConfig)
    ssd: SSDConfig = field(default_factory=SSDConfig)
    interconnect: InterconnectConfig = field(default_factory=InterconnectConfig)
    uvm: UVMConfig = field(default_factory=UVMConfig)
    #: Host DRAM capacity in bytes available for tensor staging.
    host_memory_bytes: int = 128 * GB
    #: Effective GPU<->host migration bandwidth in bytes/s (bounded by PCIe).
    host_bandwidth: float = 15.754 * GB

    def __post_init__(self) -> None:
        if self.host_memory_bytes < 0:
            raise ConfigurationError("host memory cannot be negative")
        if self.host_bandwidth <= 0:
            raise ConfigurationError("host bandwidth must be positive")

    # -- convenience ----------------------------------------------------

    @property
    def gpu_pages(self) -> int:
        """Number of UVM pages that fit in GPU memory."""
        return self.gpu.memory_bytes // self.uvm.page_size

    @property
    def host_pages(self) -> int:
        """Number of UVM pages that fit in host memory."""
        return self.host_memory_bytes // self.uvm.page_size

    def with_host_memory(self, nbytes: int) -> "SystemConfig":
        """Return a copy with a different host memory capacity (Figures 16/17)."""
        return dataclasses.replace(self, host_memory_bytes=nbytes)

    def with_ssd_bandwidth(self, read_bw: float, write_bw: float | None = None) -> "SystemConfig":
        """Return a copy with a different SSD bandwidth (Figure 18)."""
        if write_bw is None:
            write_bw = read_bw * (self.ssd.write_bandwidth / self.ssd.read_bandwidth)
        ssd = dataclasses.replace(self.ssd, read_bandwidth=read_bw, write_bandwidth=write_bw)
        return dataclasses.replace(self, ssd=ssd)

    def with_interconnect_bandwidth(self, bandwidth: float) -> "SystemConfig":
        """Return a copy with a different PCIe bandwidth (PCIe 4.0 for Figure 18)."""
        ic = dataclasses.replace(self.interconnect, bandwidth=bandwidth)
        return dataclasses.replace(self, interconnect=ic, host_bandwidth=bandwidth)

    def with_gpu_memory(self, nbytes: int) -> "SystemConfig":
        """Return a copy with a different GPU memory capacity."""
        gpu = dataclasses.replace(self.gpu, memory_bytes=nbytes)
        return dataclasses.replace(self, gpu=gpu)

    # -- serialization --------------------------------------------------

    def to_dict(self) -> dict:
        """All configuration fields as a plain (JSON-safe) nested dictionary."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "SystemConfig":
        """Inverse of :meth:`to_dict`."""
        return cls(
            gpu=GPUConfig(**data["gpu"]),
            ssd=SSDConfig(**data["ssd"]),
            interconnect=InterconnectConfig(**data["interconnect"]),
            uvm=UVMConfig(**data["uvm"]),
            host_memory_bytes=data["host_memory_bytes"],
            host_bandwidth=data["host_bandwidth"],
        )

    def fingerprint(self) -> str:
        """Stable content hash over every configuration field.

        Two configs with equal field values share a fingerprint regardless of
        object identity; any field change produces a different one. Used as
        the memoization/cache key component wherever results depend on the
        simulated system.
        """
        payload = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def paper_config() -> SystemConfig:
    """The configuration used throughout the paper's evaluation (Table 2)."""
    return SystemConfig()


def pcie4_config() -> SystemConfig:
    """Paper configuration with a PCIe 4.0 x16 interconnect (Figure 18)."""
    return paper_config().with_interconnect_bandwidth(32 * GB)


def ci_config(scale: float = 1 / 64) -> SystemConfig:
    """A scaled-down configuration preserving the paper's capacity/bandwidth ratios.

    ``scale`` shrinks capacities; bandwidths are shrunk by the same factor so
    that transfer-time/compute-time ratios (the quantity every experiment
    depends on) stay the same while the simulated working set becomes small
    enough for CI.
    """
    if scale <= 0 or scale > 1:
        raise ConfigurationError("scale must be in (0, 1]")
    base = paper_config()
    gpu = dataclasses.replace(
        base.gpu,
        memory_bytes=max(int(base.gpu.memory_bytes * scale), 16 * MB),
        peak_flops=base.gpu.peak_flops * scale,
        memory_bandwidth=base.gpu.memory_bandwidth * scale,
    )
    ssd = dataclasses.replace(
        base.ssd,
        read_bandwidth=base.ssd.read_bandwidth * scale,
        write_bandwidth=base.ssd.write_bandwidth * scale,
        capacity_bytes=max(int(base.ssd.capacity_bytes * scale), 256 * MB),
    )
    ic = dataclasses.replace(base.interconnect, bandwidth=base.interconnect.bandwidth * scale)
    return SystemConfig(
        gpu=gpu,
        ssd=ssd,
        interconnect=ic,
        uvm=base.uvm,
        host_memory_bytes=max(int(base.host_memory_bytes * scale), 64 * MB),
        host_bandwidth=base.host_bandwidth * scale,
    )
