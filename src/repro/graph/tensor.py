"""Tensor metadata used by the dataflow graph and the vitality analyzer."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Sequence

from ..config import FP32_BYTES, PAGE_SIZE
from ..errors import GraphError


class TensorKind(Enum):
    """Semantic class of a tensor in a DNN training iteration.

    The paper (§4.2) distinguishes *global* tensors (weights, optimizer state)
    which live across iterations, from *intermediate* tensors (activations,
    gradients, workspaces) which are born and die within one iteration.
    """

    WEIGHT = "weight"
    ACTIVATION = "activation"
    GRADIENT = "gradient"
    WEIGHT_GRADIENT = "weight_gradient"
    WORKSPACE = "workspace"
    OPTIMIZER_STATE = "optimizer_state"
    INPUT = "input"

    @property
    def is_global(self) -> bool:
        """Whether tensors of this kind persist across training iterations."""
        return self in (TensorKind.WEIGHT, TensorKind.OPTIMIZER_STATE)


@dataclass(frozen=True)
class TensorInfo:
    """Static description of one tensor in the dataflow graph.

    Attributes:
        tensor_id: Unique integer id within the graph.
        name: Human-readable name (e.g. ``"layer3.conv2.weight"``).
        shape: Logical shape; the first dimension is usually the batch size.
        kind: Semantic class, see :class:`TensorKind`.
        dtype_bytes: Bytes per element (FP32 by default, as in the paper).
    """

    tensor_id: int
    name: str
    shape: tuple[int, ...]
    kind: TensorKind
    dtype_bytes: int = FP32_BYTES

    def __post_init__(self) -> None:
        if self.tensor_id < 0:
            raise GraphError(f"tensor id must be non-negative, got {self.tensor_id}")
        if not self.shape:
            raise GraphError(f"tensor {self.name!r} has an empty shape")
        if any(d <= 0 for d in self.shape):
            raise GraphError(f"tensor {self.name!r} has non-positive dimension: {self.shape}")
        if self.dtype_bytes <= 0:
            raise GraphError("dtype_bytes must be positive")

    @property
    def num_elements(self) -> int:
        """Total number of elements."""
        return math.prod(self.shape)

    @property
    def size_bytes(self) -> int:
        """Size of the tensor in bytes."""
        return self.num_elements * self.dtype_bytes

    @property
    def num_pages(self) -> int:
        """Number of 4 KB UVM pages the tensor occupies."""
        return max(1, math.ceil(self.size_bytes / PAGE_SIZE))

    @property
    def is_global(self) -> bool:
        """Whether the tensor persists across training iterations (§4.2)."""
        return self.kind.is_global

    def with_id(self, tensor_id: int) -> "TensorInfo":
        """Return a copy with a different id (used when merging graphs)."""
        return TensorInfo(
            tensor_id=tensor_id,
            name=self.name,
            shape=self.shape,
            kind=self.kind,
            dtype_bytes=self.dtype_bytes,
        )


def make_tensor(
    tensor_id: int,
    name: str,
    shape: Sequence[int],
    kind: TensorKind,
    dtype_bytes: int = FP32_BYTES,
) -> TensorInfo:
    """Convenience constructor accepting any integer sequence as shape."""
    return TensorInfo(
        tensor_id=tensor_id,
        name=name,
        shape=tuple(int(d) for d in shape),
        kind=kind,
        dtype_bytes=dtype_bytes,
    )


@dataclass
class TensorSet:
    """A mutable registry of tensors with auto-assigned ids."""

    _tensors: dict[int, TensorInfo] = field(default_factory=dict)
    _next_id: int = 0

    def add(
        self,
        name: str,
        shape: Sequence[int],
        kind: TensorKind,
        dtype_bytes: int = FP32_BYTES,
    ) -> TensorInfo:
        """Create, register and return a new tensor."""
        tensor = make_tensor(self._next_id, name, shape, kind, dtype_bytes)
        self._tensors[tensor.tensor_id] = tensor
        self._next_id += 1
        return tensor

    def register(self, tensor: TensorInfo) -> TensorInfo:
        """Register an externally-constructed tensor, enforcing id uniqueness."""
        if tensor.tensor_id in self._tensors:
            raise GraphError(f"duplicate tensor id {tensor.tensor_id}")
        self._tensors[tensor.tensor_id] = tensor
        self._next_id = max(self._next_id, tensor.tensor_id + 1)
        return tensor

    def __getitem__(self, tensor_id: int) -> TensorInfo:
        return self._tensors[tensor_id]

    def __contains__(self, tensor_id: int) -> bool:
        return tensor_id in self._tensors

    def __len__(self) -> int:
        return len(self._tensors)

    def __iter__(self):
        return iter(self._tensors.values())

    @property
    def total_bytes(self) -> int:
        """Sum of all registered tensor sizes."""
        return sum(t.size_bytes for t in self._tensors.values())
