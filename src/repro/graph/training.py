"""Expansion of a forward dataflow graph into a full training iteration.

The expansion mirrors what a deep-learning framework does when compiling one
training step:

* every forward operator becomes one forward kernel;
* the backward pass visits operators in reverse order, producing gradient
  kernels that read the forward activations (this is what creates the long
  forward->backward inactive periods the paper exploits);
* every weight tensor receives an optimizer-update kernel at the end of the
  iteration (SGD with momentum by default, which adds one optimizer-state
  tensor per weight).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import GraphError
from .dataflow import DataflowGraph
from .kernel import Kernel, KernelPhase, KernelTrace
from .operator import Operator
from .tensor import TensorInfo, TensorKind, TensorSet

#: Backward FLOPs relative to forward FLOPs for weighted operators
#: (one pass for the data gradient, one for the weight gradient).
BACKWARD_FLOP_FACTOR = 2.0


@dataclass
class TrainingGraph:
    """A complete training iteration: kernels plus the extended tensor set."""

    name: str
    batch_size: int
    tensors: TensorSet
    kernels: list[Kernel] = field(default_factory=list)
    #: Map forward-tensor id -> gradient-tensor id created by the expansion.
    gradient_of: dict[int, int] = field(default_factory=dict)
    #: Ids of the trainable weight tensors.
    weight_ids: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        for position, kernel in enumerate(self.kernels):
            if kernel.index != position:
                raise GraphError("training kernels must be indexed consecutively from zero")

    @property
    def num_kernels(self) -> int:
        return len(self.kernels)

    def tensor(self, tensor_id: int) -> TensorInfo:
        return self.tensors[tensor_id]

    def trace(self) -> KernelTrace:
        """The kernel trace view consumed by the simulator."""
        return KernelTrace(list(self.kernels))

    def global_tensor_ids(self) -> set[int]:
        """Ids of tensors that persist across iterations (weights, optimizer state)."""
        return {t.tensor_id for t in self.tensors if t.is_global}

    def peak_all_tensor_bytes(self) -> int:
        """Total bytes of every tensor in the iteration (upper bound on footprint)."""
        return self.tensors.total_bytes

    def with_kernels(self, kernels: list[Kernel]) -> "TrainingGraph":
        """Return a copy sharing tensors but with a different kernel list."""
        return TrainingGraph(
            name=self.name,
            batch_size=self.batch_size,
            tensors=self.tensors,
            kernels=kernels,
            gradient_of=dict(self.gradient_of),
            weight_ids=list(self.weight_ids),
        )


def _tensor_bytes(tensors: TensorSet, ids: tuple[int, ...] | list[int]) -> float:
    return float(sum(tensors[tid].size_bytes for tid in ids))


def expand_training(
    graph: DataflowGraph,
    include_optimizer: bool = True,
    momentum_state: bool = True,
) -> TrainingGraph:
    """Expand a validated forward graph into one training iteration.

    Args:
        graph: The forward dataflow graph (validated by the caller or here).
        include_optimizer: Whether to append weight-update kernels.
        momentum_state: Whether the optimizer keeps one state tensor per weight
            (SGD-momentum / Adam first moment). Global tensors grow accordingly.

    Returns:
        A :class:`TrainingGraph` whose kernels cover forward, backward and
        optimizer phases in execution order.
    """
    graph.validate()

    tensors = graph.tensors
    kernels: list[Kernel] = []
    gradient_of: dict[int, int] = {}
    weight_ids = [t.tensor_id for t in graph.weight_tensors()]

    def next_index() -> int:
        return len(kernels)

    # ------------------------------------------------------------------ forward
    workspace_of: dict[int, int] = {}
    for op in graph.operators:
        workspace_id = None
        if op.workspace_bytes > 0:
            workspace = tensors.add(
                f"{op.name}.workspace",
                (op.workspace_bytes // 4 or 1,),
                TensorKind.WORKSPACE,
            )
            workspace_id = workspace.tensor_id
            workspace_of[op.op_id] = workspace_id
        inputs = tuple(op.input_ids)
        outputs = tuple(op.output_ids)
        kernels.append(
            Kernel(
                index=next_index(),
                name=f"{op.name}.fwd",
                phase=KernelPhase.FORWARD,
                op_id=op.op_id,
                input_ids=inputs,
                output_ids=outputs,
                flops=op.flops,
                bytes_accessed=_tensor_bytes(tensors, inputs) + _tensor_bytes(tensors, outputs),
                workspace_id=workspace_id,
                compute_class=op.compute_class,
            )
        )

    # ------------------------------------------------------------- loss seeding
    # The gradient of every final output is seeded by a loss kernel so the
    # backward pass has a starting point even if the model builder did not add
    # an explicit loss operator.
    final_outputs = graph.final_outputs()
    loss_inputs: list[int] = []
    for out in final_outputs:
        grad = tensors.add(f"{out.name}.grad", out.shape, TensorKind.GRADIENT)
        gradient_of[out.tensor_id] = grad.tensor_id
        loss_inputs.append(out.tensor_id)
    if final_outputs:
        loss_outputs = tuple(gradient_of[t.tensor_id] for t in final_outputs)
        kernels.append(
            Kernel(
                index=next_index(),
                name="loss.fwd_bwd",
                phase=KernelPhase.BACKWARD,
                op_id=graph.operators[-1].op_id,
                input_ids=tuple(loss_inputs),
                output_ids=loss_outputs,
                flops=sum(t.num_elements for t in final_outputs) * 4.0,
                bytes_accessed=_tensor_bytes(tensors, tuple(loss_inputs)) * 2,
            )
        )

    # ------------------------------------------------------------------ backward
    for op in reversed(graph.operators):
        kernels.extend(
            _backward_kernels(op, graph, tensors, gradient_of, workspace_of, next_index)
        )

    # ------------------------------------------------------------------ optimizer
    if include_optimizer:
        for wid in weight_ids:
            weight = tensors[wid]
            grad_id = gradient_of.get(wid)
            if grad_id is None:
                # Weight never received a gradient (e.g. frozen embedding): skip.
                continue
            op_inputs = [wid, grad_id]
            op_outputs = [wid]
            if momentum_state:
                state = tensors.add(
                    f"{weight.name}.momentum", weight.shape, TensorKind.OPTIMIZER_STATE
                )
                op_inputs.append(state.tensor_id)
                op_outputs.append(state.tensor_id)
            kernels.append(
                Kernel(
                    index=next_index(),
                    name=f"{weight.name}.sgd_update",
                    phase=KernelPhase.OPTIMIZER,
                    op_id=_owner_op(graph, wid),
                    input_ids=tuple(op_inputs),
                    output_ids=tuple(op_outputs),
                    flops=weight.num_elements * 4.0,
                    bytes_accessed=_tensor_bytes(tensors, tuple(op_inputs)) * 2,
                )
            )

    return TrainingGraph(
        name=graph.name,
        batch_size=graph.batch_size,
        tensors=tensors,
        kernels=kernels,
        gradient_of=gradient_of,
        weight_ids=weight_ids,
    )


def _owner_op(graph: DataflowGraph, weight_id: int) -> int:
    """Find the operator owning a weight (first consumer)."""
    for op in graph.operators:
        if weight_id in op.weight_ids:
            return op.op_id
    return graph.operators[-1].op_id


def _grad_for(
    tensors: TensorSet,
    gradient_of: dict[int, int],
    tensor_id: int,
    kind: TensorKind,
) -> int:
    """Get or create the gradient tensor for ``tensor_id``."""
    existing = gradient_of.get(tensor_id)
    if existing is not None:
        return existing
    source = tensors[tensor_id]
    grad = tensors.add(f"{source.name}.grad", source.shape, kind)
    gradient_of[tensor_id] = grad.tensor_id
    return grad.tensor_id


def _backward_kernels(
    op: Operator,
    graph: DataflowGraph,
    tensors: TensorSet,
    gradient_of: dict[int, int],
    workspace_of: dict[int, int],
    next_index,
) -> list[Kernel]:
    """Produce the backward kernel(s) for one forward operator."""
    output_grads = [gradient_of.get(tid) for tid in op.output_ids]
    output_grads = [g for g in output_grads if g is not None]
    if not output_grads:
        # Outputs were never used downstream and are not final outputs
        # (can happen for auxiliary statistics); nothing to back-propagate.
        return []

    kernels: list[Kernel] = []

    # Gradients w.r.t. data inputs.
    data_grad_ids = [
        _grad_for(tensors, gradient_of, tid, TensorKind.GRADIENT)
        for tid in op.data_input_ids
        if tensors[tid].kind is TensorKind.ACTIVATION
    ]
    # Gradients w.r.t. weights.
    weight_grad_ids = [
        _grad_for(tensors, gradient_of, wid, TensorKind.WEIGHT_GRADIENT)
        for wid in op.weight_ids
    ]

    inputs = list(dict.fromkeys([*op.input_ids, *output_grads]))
    # Backward of compute-bound ops also re-reads forward activations; that is
    # already covered because op.input_ids includes them.
    outputs = list(dict.fromkeys([*data_grad_ids, *weight_grad_ids]))
    if not outputs:
        return []

    workspace_id = workspace_of.get(op.op_id)
    flops_factor = BACKWARD_FLOP_FACTOR if op.op_type.is_compute_bound else 1.0
    kernels.append(
        Kernel(
            index=next_index(),
            name=f"{op.name}.bwd",
            phase=KernelPhase.BACKWARD,
            op_id=op.op_id,
            input_ids=tuple(inputs),
            output_ids=tuple(outputs),
            flops=op.flops * flops_factor,
            bytes_accessed=_tensor_bytes(tensors, tuple(inputs))
            + _tensor_bytes(tensors, tuple(outputs)),
            workspace_id=workspace_id,
            compute_class=op.compute_class,
        )
    )
    return kernels
