"""Dataflow-graph substrate: tensors, operators, kernels, training expansion.

This package provides the compiler-level representation that G10's tensor
vitality analyzer consumes: a forward dataflow graph of operators over named
tensors (:class:`DataflowGraph`), and its expansion into a full training
iteration — an ordered list of :class:`Kernel` launches covering the forward
pass, the backward pass, and the optimizer update (:func:`expand_training`).
"""

from .tensor import TensorInfo, TensorKind
from .operator import Operator, OpType
from .kernel import Kernel, KernelPhase
from .dataflow import DataflowGraph
from .training import TrainingGraph, expand_training

__all__ = [
    "TensorInfo",
    "TensorKind",
    "Operator",
    "OpType",
    "Kernel",
    "KernelPhase",
    "DataflowGraph",
    "TrainingGraph",
    "expand_training",
]
