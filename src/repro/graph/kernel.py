"""Kernel launch records: the unit replayed by the execution simulator."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum

from ..errors import GraphError


class KernelPhase(Enum):
    """Which phase of the training iteration a kernel belongs to."""

    FORWARD = "forward"
    BACKWARD = "backward"
    OPTIMIZER = "optimizer"


@dataclass(frozen=True)
class Kernel:
    """One CUDA-kernel-equivalent launch in the training trace.

    The migration scheduler and the execution simulator only need to know
    which tensors a kernel touches, in which order kernels run, and how long
    each kernel takes; this record carries exactly that.

    Attributes:
        index: Position in execution order within one training iteration.
        name: Human-readable kernel name.
        phase: Forward / backward / optimizer phase.
        op_id: Id of the originating forward operator (optimizer kernels use
            the id of the operator owning the updated weight).
        input_ids: Tensor ids that must be resident when the kernel starts.
        output_ids: Tensor ids produced (must also be resident / allocated).
        flops: Floating point work, consumed by the cost model.
        bytes_accessed: DRAM traffic estimate, consumed by the cost model.
        workspace_id: Optional id of a temporary workspace tensor that is
            alive only while the kernel runs.
        duration: Profiled/estimated execution time in seconds. ``0.0`` until
            the profiling substrate fills it in.
    """

    index: int
    name: str
    phase: KernelPhase
    op_id: int
    input_ids: tuple[int, ...] = ()
    output_ids: tuple[int, ...] = ()
    flops: float = 0.0
    bytes_accessed: float = 0.0
    workspace_id: int | None = None
    duration: float = 0.0
    #: Efficiency class used by the cost model (inherited from the operator).
    compute_class: str = "generic"

    def __post_init__(self) -> None:
        if self.index < 0:
            raise GraphError("kernel index must be non-negative")
        if self.flops < 0 or self.bytes_accessed < 0 or self.duration < 0:
            raise GraphError(f"kernel {self.name!r} has negative cost attributes")

    @property
    def tensor_ids(self) -> tuple[int, ...]:
        """All tensors that must be resident in GPU memory while the kernel runs."""
        seen: list[int] = []
        extra = (self.workspace_id,) if self.workspace_id is not None else ()
        for tid in (*self.input_ids, *self.output_ids, *extra):
            if tid not in seen:
                seen.append(tid)
        return tuple(seen)

    def with_duration(self, duration: float) -> "Kernel":
        """Return a copy with the profiled duration filled in."""
        if duration < 0:
            raise GraphError("kernel duration cannot be negative")
        return replace(self, duration=duration)

    def with_index(self, index: int) -> "Kernel":
        """Return a copy with a different execution index."""
        return replace(self, index=index)


@dataclass
class KernelTrace:
    """An ordered sequence of kernels with cumulative timing helpers."""

    kernels: list[Kernel] = field(default_factory=list)

    def __post_init__(self) -> None:
        for position, kernel in enumerate(self.kernels):
            if kernel.index != position:
                raise GraphError(
                    f"kernel at position {position} has index {kernel.index}; "
                    "trace indices must be consecutive from zero"
                )

    def __len__(self) -> int:
        return len(self.kernels)

    def __iter__(self):
        return iter(self.kernels)

    def __getitem__(self, index: int) -> Kernel:
        return self.kernels[index]

    @property
    def total_compute_time(self) -> float:
        """Sum of all kernel durations (the ideal iteration time)."""
        return sum(k.duration for k in self.kernels)

    def start_times(self) -> list[float]:
        """Ideal (no-stall) start time of each kernel."""
        times: list[float] = []
        now = 0.0
        for kernel in self.kernels:
            times.append(now)
            now += kernel.duration
        return times

    def end_times(self) -> list[float]:
        """Ideal (no-stall) end time of each kernel."""
        times: list[float] = []
        now = 0.0
        for kernel in self.kernels:
            now += kernel.duration
            times.append(now)
        return times
