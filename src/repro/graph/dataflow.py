"""Forward dataflow graph of a DNN model."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..errors import GraphError
from .operator import Operator, OpType
from .tensor import TensorInfo, TensorKind, TensorSet


@dataclass
class DataflowGraph:
    """A forward dataflow graph: tensors plus operators in execution order.

    Builders (``repro.models``) append operators in a valid topological order;
    :meth:`validate` checks the invariants (every consumed activation has a
    producer or is a model input, ids are unique, no operator reads a tensor
    produced later).
    """

    name: str
    tensors: TensorSet = field(default_factory=TensorSet)
    operators: list[Operator] = field(default_factory=list)
    batch_size: int = 1

    # -- construction ----------------------------------------------------

    def add_tensor(
        self,
        name: str,
        shape: Sequence[int],
        kind: TensorKind,
    ) -> TensorInfo:
        """Create and register a tensor."""
        return self.tensors.add(name, shape, kind)

    def add_operator(
        self,
        name: str,
        op_type: OpType,
        inputs: Iterable[TensorInfo | int],
        outputs: Iterable[TensorInfo | int],
        weights: Iterable[TensorInfo | int] = (),
        flops: float = 0.0,
        workspace_bytes: int = 0,
        compute_class: str = "generic",
    ) -> Operator:
        """Create, append and return an operator.

        ``inputs``/``outputs``/``weights`` accept tensors or raw tensor ids.
        Weights are automatically added to the operator inputs if missing.
        """
        input_ids = [self._tensor_id(t) for t in inputs]
        output_ids = [self._tensor_id(t) for t in outputs]
        weight_ids = [self._tensor_id(t) for t in weights]
        for wid in weight_ids:
            if wid not in input_ids:
                input_ids.append(wid)
        operator = Operator(
            op_id=len(self.operators),
            name=name,
            op_type=op_type,
            input_ids=input_ids,
            output_ids=output_ids,
            weight_ids=weight_ids,
            flops=flops,
            workspace_bytes=workspace_bytes,
            compute_class=compute_class,
        )
        for tid in (*input_ids, *output_ids):
            if tid not in self.tensors:
                raise GraphError(f"operator {name!r} references unknown tensor id {tid}")
        self.operators.append(operator)
        return operator

    @staticmethod
    def _tensor_id(tensor: TensorInfo | int) -> int:
        return tensor.tensor_id if isinstance(tensor, TensorInfo) else int(tensor)

    # -- queries ---------------------------------------------------------

    @property
    def num_operators(self) -> int:
        return len(self.operators)

    @property
    def num_tensors(self) -> int:
        return len(self.tensors)

    def tensor(self, tensor_id: int) -> TensorInfo:
        """Look up a tensor by id."""
        return self.tensors[tensor_id]

    def weight_tensors(self) -> list[TensorInfo]:
        """All trainable parameter tensors."""
        return [t for t in self.tensors if t.kind is TensorKind.WEIGHT]

    def total_weight_bytes(self) -> int:
        """Total size of the model parameters."""
        return sum(t.size_bytes for t in self.weight_tensors())

    def producers(self) -> dict[int, int]:
        """Map tensor id -> op id of the operator producing it."""
        produced: dict[int, int] = {}
        for op in self.operators:
            for tid in op.output_ids:
                produced[tid] = op.op_id
        return produced

    def consumers(self) -> dict[int, list[int]]:
        """Map tensor id -> op ids that read it, in execution order."""
        consumed: dict[int, list[int]] = {}
        for op in self.operators:
            for tid in op.input_ids:
                consumed.setdefault(tid, []).append(op.op_id)
        return consumed

    def final_outputs(self) -> list[TensorInfo]:
        """Tensors produced by some operator but never consumed (model outputs)."""
        produced = set(self.producers())
        consumed = {tid for op in self.operators for tid in op.input_ids}
        return [self.tensors[tid] for tid in sorted(produced - consumed)]

    # -- validation --------------------------------------------------------

    def validate(self) -> None:
        """Check graph invariants; raise :class:`GraphError` on violation."""
        if not self.operators:
            raise GraphError(f"graph {self.name!r} has no operators")
        produced_by: dict[int, int] = {}
        for op in self.operators:
            for tid in op.output_ids:
                if tid in produced_by:
                    if tid not in op.input_ids:
                        raise GraphError(
                            f"tensor {tid} produced by both op {produced_by[tid]} and op {op.op_id}"
                        )
                    # In-place operators legitimately "re-produce" one of their
                    # inputs (e.g. ReLU(inplace=True)); keep the original producer.
                    continue
                produced_by[tid] = op.op_id
        for op in self.operators:
            for tid in op.data_input_ids:
                tensor = self.tensors[tid]
                if tensor.kind in (TensorKind.INPUT, TensorKind.WEIGHT, TensorKind.OPTIMIZER_STATE):
                    continue
                producer = produced_by.get(tid)
                if producer is None:
                    raise GraphError(
                        f"op {op.name!r} consumes activation tensor {tensor.name!r} "
                        "which has no producer and is not a model input"
                    )
                if producer >= op.op_id:
                    raise GraphError(
                        f"op {op.name!r} (id {op.op_id}) consumes tensor {tensor.name!r} "
                        f"produced by a later op (id {producer}); operators must be "
                        "appended in topological order"
                    )

    # -- summary -----------------------------------------------------------

    def summary(self) -> dict[str, float | int | str]:
        """Compact statistics used by Table 1 style reporting."""
        weights = self.total_weight_bytes()
        activations = sum(
            t.size_bytes for t in self.tensors if t.kind is TensorKind.ACTIVATION
        )
        return {
            "name": self.name,
            "batch_size": self.batch_size,
            "operators": self.num_operators,
            "tensors": self.num_tensors,
            "weight_bytes": weights,
            "activation_bytes": activations,
            "total_bytes": self.tensors.total_bytes,
        }
