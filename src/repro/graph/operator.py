"""Operator (layer/kernel) nodes of the forward dataflow graph."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..errors import GraphError


class OpType(Enum):
    """Operator categories recognised by the cost model and the backward expander."""

    CONV2D = "conv2d"
    LINEAR = "linear"
    MATMUL = "matmul"
    BATCHNORM = "batchnorm"
    LAYERNORM = "layernorm"
    RELU = "relu"
    GELU = "gelu"
    SIGMOID = "sigmoid"
    SOFTMAX = "softmax"
    POOL = "pool"
    GLOBAL_POOL = "global_pool"
    ADD = "add"
    CONCAT = "concat"
    RESHAPE = "reshape"
    MUL = "mul"
    DROPOUT = "dropout"
    EMBEDDING = "embedding"
    ATTENTION_SCORE = "attention_score"
    ATTENTION_CONTEXT = "attention_context"
    LOSS = "loss"
    OPTIMIZER = "optimizer"

    @property
    def is_compute_bound(self) -> bool:
        """True for operators dominated by FLOPs rather than memory traffic."""
        return self in (
            OpType.CONV2D,
            OpType.LINEAR,
            OpType.MATMUL,
            OpType.ATTENTION_SCORE,
            OpType.ATTENTION_CONTEXT,
        )

    @property
    def has_weights(self) -> bool:
        """True for operators that carry trainable parameters."""
        return self in (
            OpType.CONV2D,
            OpType.LINEAR,
            OpType.BATCHNORM,
            OpType.LAYERNORM,
            OpType.EMBEDDING,
        )


@dataclass
class Operator:
    """One forward operator in the dataflow graph.

    Attributes:
        op_id: Unique id within the graph; also the forward execution order.
        name: Human-readable name, e.g. ``"layer4.2.conv3"``.
        op_type: Category used by the cost model and backward expansion.
        input_ids: Tensor ids read by the operator (activations and weights).
        output_ids: Tensor ids produced by the operator.
        weight_ids: Subset of ``input_ids`` that are trainable parameters.
        flops: Forward floating-point operations.
        workspace_bytes: Scratch memory (e.g. cuDNN workspace) required while
            the operator runs; allocated just before and freed just after.
    """

    op_id: int
    name: str
    op_type: OpType
    input_ids: list[int] = field(default_factory=list)
    output_ids: list[int] = field(default_factory=list)
    weight_ids: list[int] = field(default_factory=list)
    flops: float = 0.0
    workspace_bytes: int = 0
    #: Efficiency class used by the cost model: "conv", "grouped_conv", "gemm" or "generic".
    compute_class: str = "generic"

    def __post_init__(self) -> None:
        if self.op_id < 0:
            raise GraphError("operator id must be non-negative")
        if not self.output_ids:
            raise GraphError(f"operator {self.name!r} produces no outputs")
        if self.flops < 0 or self.workspace_bytes < 0:
            raise GraphError(f"operator {self.name!r} has negative cost attributes")
        unknown_weights = set(self.weight_ids) - set(self.input_ids)
        if unknown_weights:
            raise GraphError(
                f"operator {self.name!r} lists weight ids {sorted(unknown_weights)} "
                "that are not inputs"
            )

    @property
    def data_input_ids(self) -> list[int]:
        """Input tensors that are not weights (activations from upstream ops)."""
        weights = set(self.weight_ids)
        return [t for t in self.input_ids if t not in weights]

    @property
    def all_tensor_ids(self) -> list[int]:
        """Every tensor touched by the forward execution of this operator."""
        seen: list[int] = []
        for tid in (*self.input_ids, *self.output_ids):
            if tid not in seen:
                seen.append(tid)
        return seen
