"""DeepUM+ baseline: UVM with a correlation-table prefetcher (Jung et al., ASPLOS'23).

DeepUM records which kernel follows which during training and prefetches the
pages the upcoming kernels touched last iteration. Because one training
iteration repeats the same kernel sequence, the correlation prefetcher is well
approximated by a fixed lookahead over the (deterministic) kernel trace: while
kernel *k* runs, the tensors of kernels *k+1 .. k+L* are prefetched. Eviction
remains LRU; the paper's DeepUM+ extension spills to the SSD when host memory
is full, which the executor's host-capacity fallback provides.
"""

from __future__ import annotations

from ..graph.kernel import Kernel
from ..registry import register_policy
from ..sim.policy import MigrationDecision, MigrationPolicy, PolicyContext
from ..uvm.page_table import MemoryLocation


@register_policy(
    "deepum",
    aliases=("deepum_plus",),
    display="DeepUM+",
    description="UVM plus a correlation-table prefetcher (Jung et al., ASPLOS'23).",
)
class DeepUMPolicy(MigrationPolicy):
    """Correlation-prefetching UVM (the paper's DeepUM+).

    ``correlation_hit_rate`` models the imperfection of the correlation
    tables: DeepUM predicts future pages from the previous iteration's fault
    stream, so a fraction of the upcoming working set is not prefetched and
    takes the full demand-fault path instead. The rich tensor semantics G10
    gets from the compiler are exactly what this prefetcher lacks.
    """

    name = "DeepUM+"

    def __init__(
        self,
        lookahead: int = 8,
        eviction_watermark: float = 0.90,
        correlation_hit_rate: float = 0.75,
    ):
        super().__init__()
        if lookahead < 1:
            raise ValueError("lookahead must be at least 1")
        if not 0 < eviction_watermark <= 1:
            raise ValueError("eviction_watermark must be in (0, 1]")
        if not 0 < correlation_hit_rate <= 1:
            raise ValueError("correlation_hit_rate must be in (0, 1]")
        self._lookahead = lookahead
        self._watermark = eviction_watermark
        self._hit_rate = correlation_hit_rate
        self._gpu_capacity = 0

    def setup(self, context: PolicyContext) -> None:
        super().setup(context)
        self._gpu_capacity = context.config.gpu.memory_bytes

    # -- hooks -------------------------------------------------------------------

    def prefetches_for(self, kernel: Kernel, now: float) -> list[MigrationDecision]:
        kernels = self.context.graph.kernels
        decisions: list[MigrationDecision] = []
        seen: set[int] = set()
        for upcoming in kernels[kernel.index + 1 : kernel.index + 1 + self._lookahead]:
            for tensor_id in upcoming.tensor_ids:
                if tensor_id in seen:
                    continue
                seen.add(tensor_id)
                if not self._correlation_predicts(tensor_id):
                    continue
                decisions.append(MigrationDecision(tensor_id))
        return decisions

    def _correlation_predicts(self, tensor_id: int) -> bool:
        """Deterministic stand-in for the correlation table's hit/miss behaviour."""
        bucket = (tensor_id * 2654435761) % 1000
        return bucket < int(self._hit_rate * 1000)

    def evictions_for(self, kernel: Kernel, now: float) -> list[MigrationDecision]:
        # DeepUM evicts reactively (on faults) rather than by plan; proactive
        # eviction is handled through select_victims when allocations fail.
        return []

    def select_victims(
        self, needed_bytes: int, protected: set[int], resident: list[int], now: float
    ) -> list[MigrationDecision]:
        decisions: list[MigrationDecision] = []
        freed = 0
        host_free = self.context.config.host_memory_bytes
        # Free a little beyond the immediate need so the next few allocations
        # do not fault straight back into the eviction path.
        target = needed_bytes + int((1.0 - self._watermark) * self._gpu_capacity)
        for tensor_id in resident:
            if freed >= target:
                break
            size = self.context.tensor_size(tensor_id)
            destination = MemoryLocation.HOST if size <= host_free else MemoryLocation.SSD
            if destination is MemoryLocation.HOST:
                host_free -= size
            decisions.append(MigrationDecision(tensor_id, destination))
            freed += size
        return decisions
