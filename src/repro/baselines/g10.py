"""The G10 policies: smart tensor migration driven by the compile-time plan."""

from __future__ import annotations

from enum import Enum

from ..core.eviction import EvictionPolicyConfig
from ..core.plan import MigrationDestination, MigrationPlan
from ..core.scheduler import MigrationPlanner
from ..graph.kernel import Kernel
from ..registry import register_policy
from ..sim.policy import MigrationDecision, MigrationPolicy, PolicyContext
from ..uvm.page_table import MemoryLocation


class G10Variant(Enum):
    """The three G10 configurations evaluated in Figure 11."""

    #: Tensor migrations between GPU and SSD only (GPUDirect Storage path).
    GDS = "G10-GDS"
    #: Adds host memory as a staging destination.
    HOST = "G10-Host"
    #: Full system: host + SSD destinations plus the extended-UVM page table,
    #: which cuts the software cost of each migration.
    FULL = "G10"


class G10Policy(MigrationPolicy):
    """Executes the migration plan produced by the smart tensor scheduler.

    The heavy lifting happens at compile time: :class:`MigrationPlanner` turns
    the vitality report into pre-eviction and prefetch instructions per kernel
    slot. At run time the policy simply issues those instructions; if the plan
    mispredicted (or did not fit everything), the executor's demand-fault path
    plus the LRU fallback of :meth:`select_victims` keep the run correct.
    """

    def __init__(
        self,
        variant: G10Variant = G10Variant.FULL,
        eager_prefetch: bool = True,
        ranking: str = "benefit_cost",
    ):
        super().__init__()
        self._variant = variant
        self._eager_prefetch = eager_prefetch
        self._ranking = ranking
        self.name = variant.value
        self._plan: MigrationPlan | None = None
        self._evictions_by_slot: dict[int, list] = {}
        self._prefetches_by_slot: dict[int, list] = {}

    # -- compile-time planning -----------------------------------------------------

    def setup(self, context: PolicyContext) -> None:
        super().setup(context)
        policy_config = EvictionPolicyConfig(
            allow_host=self._variant is not G10Variant.GDS,
            ranking=self._ranking,
        )
        planner = MigrationPlanner(
            config=context.config,
            policy=policy_config,
            eager_prefetch=self._eager_prefetch,
        )
        result = planner.plan_from_report(context.report)
        self._plan = result.plan
        self._evictions_by_slot = self._plan.evictions_by_slot()
        self._prefetches_by_slot = self._plan.prefetches_by_slot()

    @property
    def plan(self) -> MigrationPlan:
        if self._plan is None:
            raise RuntimeError("G10Policy used before setup()")
        return self._plan

    def per_request_overhead(self) -> float:
        uvm = self.context.config.uvm
        if self._variant is G10Variant.FULL:
            return uvm.extended_uvm_overhead
        return uvm.software_migration_overhead

    # -- hooks -------------------------------------------------------------------------

    def prefetches_for(self, kernel: Kernel, now: float) -> list[MigrationDecision]:
        return [
            MigrationDecision(p.tensor_id)
            for p in self._prefetches_by_slot.get(kernel.index, ())
        ]

    def evictions_for(self, kernel: Kernel, now: float) -> list[MigrationDecision]:
        decisions = []
        for eviction in self._evictions_by_slot.get(kernel.index, ()):
            destination = (
                MemoryLocation.HOST
                if eviction.destination is MigrationDestination.HOST
                else MemoryLocation.SSD
            )
            decisions.append(MigrationDecision(eviction.tensor_id, destination))
        return decisions

    def select_victims(
        self, needed_bytes: int, protected: set[int], resident: list[int], now: float
    ) -> list[MigrationDecision]:
        """LRU fallback for anything the compile-time plan did not cover."""
        allow_host = self._variant is not G10Variant.GDS
        decisions: list[MigrationDecision] = []
        freed = 0
        host_free = self.context.config.host_memory_bytes if allow_host else 0
        for tensor_id in resident:
            if freed >= needed_bytes:
                break
            size = self.context.tensor_size(tensor_id)
            if allow_host and size <= host_free:
                destination = MemoryLocation.HOST
                host_free -= size
            else:
                destination = MemoryLocation.SSD
            decisions.append(MigrationDecision(tensor_id, destination))
            freed += size
        return decisions

    def describe(self) -> dict[str, str]:
        return {
            "policy": self.name,
            "variant": self._variant.name,
            "eager_prefetch": str(self._eager_prefetch),
            "ranking": self._ranking,
        }


# The three G10 configurations of Figure 11, registered as separate policies
# so experiment grids and the CLI can name each variant directly.
register_policy(
    "g10",
    lambda: G10Policy(G10Variant.FULL),
    aliases=("g10_full",),
    display="G10",
    description="Full system: host + SSD staging plus the extended-UVM page table.",
)
register_policy(
    "g10_gds",
    lambda: G10Policy(G10Variant.GDS),
    display="G10-GDS",
    description="Smart migrations between GPU and SSD only (GPUDirect Storage path).",
)
register_policy(
    "g10_host",
    lambda: G10Policy(G10Variant.HOST),
    display="G10-Host",
    description="Adds host memory as a staging destination, without the UVM extension.",
)
