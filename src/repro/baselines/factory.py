"""Policy construction by name, backed by the open policy registry.

The closed ``_FACTORIES`` dict this module used to hold lives on as
registrations in :data:`repro.registry.POLICY_REGISTRY`; third-party policies
join them with ``@register_policy`` and are constructible here (and through
the :class:`~repro.api.Scenario` API and the CLI) without editing repro
source. Paper-style labels (``"G10+Host"``, ``"Base UVM"``, ``"DeepUM+"``,
``"G10-GDS"``, ``"FlashNeuron"``) resolve through the registry's name
normalizer and alias table.
"""

from __future__ import annotations

from ..registry import POLICY_REGISTRY
from ..sim.policy import MigrationPolicy

#: Canonical policy names in the order the paper's figures present them.
POLICY_NAMES: tuple[str, ...] = (
    "ideal",
    "base_uvm",
    "flashneuron",
    "deepum",
    "g10_gds",
    "g10_host",
    "g10",
)


def make_policy(name: str) -> MigrationPolicy:
    """Construct a fresh policy instance by any registered name or alias."""
    return POLICY_REGISTRY.create(name)


def available_policies() -> list[str]:
    """Every registered policy name (built-ins first, in registration order)."""
    return POLICY_REGISTRY.available()


def normalize_policy_name(name: str) -> str:
    """Canonical key for any accepted policy spelling (``"G10+Host"`` → ``"g10_host"``)."""
    return POLICY_REGISTRY.resolve(name)
