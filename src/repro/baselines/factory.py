"""Factory for constructing policies by name (used by the experiment harness)."""

from __future__ import annotations

from typing import Callable

from ..errors import ConfigurationError
from ..sim.policy import MigrationPolicy
from .base_uvm import BaseUVMPolicy
from .deepum import DeepUMPolicy
from .flashneuron import FlashNeuronPolicy
from .g10 import G10Policy, G10Variant
from .ideal import IdealPolicy

_FACTORIES: dict[str, Callable[[], MigrationPolicy]] = {
    "ideal": IdealPolicy,
    "base_uvm": BaseUVMPolicy,
    "deepum": DeepUMPolicy,
    "flashneuron": FlashNeuronPolicy,
    "g10_gds": lambda: G10Policy(G10Variant.GDS),
    "g10_host": lambda: G10Policy(G10Variant.HOST),
    "g10": lambda: G10Policy(G10Variant.FULL),
}

#: Canonical policy names in the order the paper's figures present them.
POLICY_NAMES: tuple[str, ...] = (
    "ideal",
    "base_uvm",
    "flashneuron",
    "deepum",
    "g10_gds",
    "g10_host",
    "g10",
)


def make_policy(name: str) -> MigrationPolicy:
    """Construct a fresh policy instance by canonical name."""
    key = name.lower().replace("-", "_").replace(" ", "_").replace("+", "")
    if key not in _FACTORIES:
        raise ConfigurationError(
            f"unknown policy {name!r}; available: {sorted(_FACTORIES)}"
        )
    return _FACTORIES[key]()
