"""Migration policies: G10 variants and the published baselines.

The evaluation (§7) compares seven designs; each is a
:class:`~repro.sim.policy.MigrationPolicy`:

* :class:`IdealPolicy` — infinite GPU memory (upper bound).
* :class:`BaseUVMPolicy` — demand paging with LRU eviction only.
* :class:`DeepUMPolicy` — UVM plus a correlation prefetcher (DeepUM+).
* :class:`FlashNeuronPolicy` — compile-time selective offload of intermediate
  tensors over GPUDirect Storage only.
* :class:`G10Policy` — the full system, plus the G10-GDS and G10-Host
  variants via :func:`make_policy`.
"""

from .ideal import IdealPolicy
from .base_uvm import BaseUVMPolicy
from .deepum import DeepUMPolicy
from .flashneuron import FlashNeuronPolicy
from .g10 import G10Policy, G10Variant
from .factory import POLICY_NAMES, available_policies, make_policy, normalize_policy_name

__all__ = [
    "IdealPolicy",
    "BaseUVMPolicy",
    "DeepUMPolicy",
    "FlashNeuronPolicy",
    "G10Policy",
    "G10Variant",
    "POLICY_NAMES",
    "available_policies",
    "make_policy",
    "normalize_policy_name",
]
