"""Base UVM: on-demand page migration with LRU eviction (the paper's Base UVM)."""

from __future__ import annotations

from ..graph.kernel import Kernel
from ..registry import register_policy
from ..sim.policy import MigrationDecision, MigrationPolicy
from ..uvm.page_table import MemoryLocation


@register_policy(
    "base_uvm",
    aliases=("uvm",),
    display="Base UVM",
    description="Stock UVM demand paging with LRU eviction (no planning).",
)
class BaseUVMPolicy(MigrationPolicy):
    """The stock GPU-CPU-SSD UVM system.

    Nothing is planned: tensors are faulted into GPU memory when a kernel
    touches them, and when the GPU is full the least-recently-used tensors are
    evicted — to host memory while it has room, to the SSD otherwise. Every
    fault pays the 45 µs handling round trip per fault batch, which is what
    makes this design ~4-5x slower than ideal in the paper.
    """

    name = "Base UVM"

    def prefetches_for(self, kernel: Kernel, now: float) -> list[MigrationDecision]:
        return []

    def evictions_for(self, kernel: Kernel, now: float) -> list[MigrationDecision]:
        return []

    def select_victims(
        self, needed_bytes: int, protected: set[int], resident: list[int], now: float
    ) -> list[MigrationDecision]:
        decisions: list[MigrationDecision] = []
        freed = 0
        host_free = self.context.config.host_memory_bytes
        for tensor_id in resident:
            if freed >= needed_bytes:
                break
            size = self.context.tensor_size(tensor_id)
            destination = MemoryLocation.HOST if size <= host_free else MemoryLocation.SSD
            if destination is MemoryLocation.HOST:
                host_free -= size
            decisions.append(MigrationDecision(tensor_id, destination))
            freed += size
        return decisions
