"""FlashNeuron baseline (Bae et al., FAST'21): selective offload over GPUDirect Storage.

FlashNeuron picks a subset of *intermediate* tensors at compile time (weights
are never offloaded), writes them to the SSD over direct GPU-SSD DMA after
their last forward use, and reads them back shortly before their backward use.
Host memory is never used. Tensors are chosen with FlashNeuron's linear
selection heuristic: walk the forward activations in execution order and keep
offloading until the projected memory peak fits in GPU memory.

When even the per-kernel working set cannot fit (large-batch ViT and
Inceptionv3 in the paper's footnote 1), the run fails — the executor reports a
failed :class:`~repro.sim.results.SimulationResult`.
"""

from __future__ import annotations

from ..core.pressure import MemoryPressureTimeline, period_slot_indices
from ..graph.kernel import Kernel
from ..registry import register_policy
from ..sim.policy import MigrationDecision, MigrationPolicy, PolicyContext
from ..uvm.page_table import MemoryLocation


@register_policy(
    "flashneuron",
    aliases=("flash_neuron",),
    display="FlashNeuron",
    description="Compile-time selective offload over GPUDirect Storage (Bae et al., FAST'21).",
)
class FlashNeuronPolicy(MigrationPolicy):
    """Compile-time selective tensor offloading to the SSD (no host memory, no UVM)."""

    name = "FlashNeuron"

    def __init__(self, prefetch_lookahead: int = 4):
        super().__init__()
        if prefetch_lookahead < 1:
            raise ValueError("prefetch_lookahead must be at least 1")
        self._lookahead = prefetch_lookahead
        self._evict_at_slot: dict[int, list[int]] = {}
        self._prefetch_at_slot: dict[int, list[int]] = {}
        self._offloaded: set[int] = set()

    # -- compile-time selection ---------------------------------------------------

    def setup(self, context: PolicyContext) -> None:
        super().setup(context)
        report = context.report
        pressure = MemoryPressureTimeline(
            report.baseline_pressure, context.config.gpu.memory_bytes
        )
        num_slots = report.num_slots
        self._evict_at_slot.clear()
        self._prefetch_at_slot.clear()
        self._offloaded.clear()

        # Linear selection: walk forward-phase inactive periods of intermediate
        # tensors in start order and offload until the projected peak fits.
        candidates = [
            period
            for period in report.periods
            if not period.wraps_around
            and not context.graph.tensor(period.tensor_id).is_global
            and period.num_free_slots > 0
        ]
        candidates.sort(key=lambda p: (p.start_slot, -p.size_bytes))
        for period in candidates:
            if pressure.fits():
                break
            if pressure.eviction_benefit(period) <= 0:
                continue
            slots = period_slot_indices(period, num_slots)
            pressure.apply_eviction(period, slots)
            self._offloaded.add(period.tensor_id)
            self._evict_at_slot.setdefault(period.start_slot, []).append(period.tensor_id)
            fetch_slot = max(period.start_slot + 1, period.end_slot - self._lookahead)
            self._prefetch_at_slot.setdefault(fetch_slot, []).append(period.tensor_id)

    # -- hooks ------------------------------------------------------------------------

    def prefetches_for(self, kernel: Kernel, now: float) -> list[MigrationDecision]:
        return [
            MigrationDecision(tensor_id)
            for tensor_id in self._prefetch_at_slot.get(kernel.index, ())
        ]

    def evictions_for(self, kernel: Kernel, now: float) -> list[MigrationDecision]:
        return [
            MigrationDecision(tensor_id, MemoryLocation.SSD)
            for tensor_id in self._evict_at_slot.get(kernel.index, ())
        ]

    def select_victims(
        self, needed_bytes: int, protected: set[int], resident: list[int], now: float
    ) -> list[MigrationDecision]:
        # FlashNeuron has no demand-paging fallback: it only offloads the
        # intermediate tensors chosen at compile time. If the working set does
        # not fit the run fails, mirroring the paper's footnote about ViT and
        # Inceptionv3 at large batch sizes.
        decisions: list[MigrationDecision] = []
        freed = 0
        for tensor_id in resident:
            if freed >= needed_bytes:
                break
            if self.context.graph.tensor(tensor_id).is_global:
                continue
            if tensor_id not in self._offloaded:
                continue
            decisions.append(MigrationDecision(tensor_id, MemoryLocation.SSD))
            freed += self.context.tensor_size(tensor_id)
        return decisions
