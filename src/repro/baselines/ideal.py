"""The ideal baseline: a GPU with unlimited on-board memory."""

from __future__ import annotations

from ..graph.kernel import Kernel
from ..sim.policy import MigrationDecision, MigrationPolicy


class IdealPolicy(MigrationPolicy):
    """Upper bound used to normalise every result: nothing ever migrates."""

    name = "Ideal"
    enforce_capacity = False

    def per_request_overhead(self) -> float:
        return 0.0

    def prefetches_for(self, kernel: Kernel, now: float) -> list[MigrationDecision]:
        return []

    def evictions_for(self, kernel: Kernel, now: float) -> list[MigrationDecision]:
        return []

    def select_victims(
        self, needed_bytes: int, protected: set[int], resident: list[int], now: float
    ) -> list[MigrationDecision]:
        return []
