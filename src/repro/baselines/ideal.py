"""The ideal baseline: a GPU with unlimited on-board memory."""

from __future__ import annotations

from ..graph.kernel import Kernel
from ..registry import register_policy
from ..sim.policy import MigrationDecision, MigrationPolicy


@register_policy(
    "ideal",
    display="Ideal",
    description="Infinite GPU memory; the upper bound every result is normalised to.",
)
class IdealPolicy(MigrationPolicy):
    """Upper bound used to normalise every result: nothing ever migrates."""

    name = "Ideal"
    enforce_capacity = False

    def per_request_overhead(self) -> float:
        return 0.0

    def prefetches_for(self, kernel: Kernel, now: float) -> list[MigrationDecision]:
        return []

    def evictions_for(self, kernel: Kernel, now: float) -> list[MigrationDecision]:
        return []

    def select_victims(
        self, needed_bytes: int, protected: set[int], resident: list[int], now: float
    ) -> list[MigrationDecision]:
        return []
