"""``python -m repro`` — reproduce the paper's figures and tables from the shell.

Subcommands:

* ``run``    — simulate one (model, policy) cell and print its summary;
* ``figure`` — reproduce a figure (2-4, 11-19), a table (table1/table2) or the
  §7.7 lifetime study, optionally writing a JSON artifact;
* ``sweep``  — run a custom (models x policies x batches) grid;
* ``cache``  — inspect or clear the on-disk result cache.

Every experiment honours ``--jobs`` (process-parallel fan-out) and the result
cache under ``--cache-dir`` (default ``.repro_cache/``, or ``$REPRO_CACHE_DIR``);
re-running any command is a cache hit. ``--no-cache`` forces re-execution.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Callable, Sequence

import numpy as np

from .experiments import (
    ConfigPatch,
    ResultCache,
    SweepCell,
    SweepRunner,
    SweepSpec,
    figure2_memory_consumption,
    figure3_inactive_periods,
    figure4_size_vs_inactive,
    figure11_end_to_end,
    figure12_breakdown,
    figure13_kernel_slowdown,
    figure14_traffic,
    figure15_batch_sweep,
    figure16_host_memory,
    figure17_host_memory_compare,
    figure18_ssd_bandwidth,
    figure19_profiling_error,
    format_table,
    section77_ssd_lifetime,
    table1_models,
    table2_configuration,
)
from .config import GB
from .errors import ReproError

#: Experiment id -> (callable, accepts a ``models`` keyword).
FIGURES: dict[str, tuple[Callable, bool]] = {
    "2": (figure2_memory_consumption, False),
    "3": (figure3_inactive_periods, False),
    "4": (figure4_size_vs_inactive, False),
    "11": (figure11_end_to_end, True),
    "12": (figure12_breakdown, True),
    "13": (figure13_kernel_slowdown, True),
    "14": (figure14_traffic, True),
    "15": (figure15_batch_sweep, True),
    "16": (figure16_host_memory, True),
    "17": (figure17_host_memory_compare, False),
    "18": (figure18_ssd_bandwidth, True),
    "19": (figure19_profiling_error, True),
    "77": (section77_ssd_lifetime, True),
    "lifetime": (section77_ssd_lifetime, True),
    "table1": (table1_models, False),
}


def _jsonify(obj):
    """Recursively convert numpy arrays/scalars so ``json.dump`` accepts them."""
    if isinstance(obj, dict):
        return {str(key): _jsonify(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonify(value) for value in obj]
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, np.generic):
        return obj.item()
    return obj


def _csv(text: str) -> list[str]:
    return [item.strip() for item in text.split(",") if item.strip()]


def _make_runner(args: argparse.Namespace) -> SweepRunner:
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    return SweepRunner(jobs=args.jobs, cache=cache)


def _emit(args: argparse.Namespace, results, as_table: bool = False) -> None:
    payload = _jsonify(results)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"wrote {args.output}")
    elif as_table:
        print(format_table(results))
    else:
        json.dump(payload, sys.stdout, indent=2, sort_keys=True)
        print()


def _report_stats(label: str, runner: SweepRunner, elapsed: float) -> None:
    stats = runner.last_stats
    print(
        f"{label}: {stats['cells']} cells "
        f"({stats['cache_hits']} cached, {stats['executed']} executed), "
        f"jobs={runner.jobs or 1}, {elapsed:.2f}s",
        file=sys.stderr,
    )


def _cmd_run(args: argparse.Namespace) -> int:
    runner = _make_runner(args)
    cell = SweepCell(
        model=args.model,
        policy=args.policy,
        batch_size=args.batch,
        scale=args.scale,
        patch=ConfigPatch(
            host_memory_bytes=None if args.host_memory_gb is None else int(args.host_memory_gb * GB),
            ssd_read_bandwidth=None if args.ssd_bandwidth_gbs is None else args.ssd_bandwidth_gbs * GB,
        ),
        profiling_error=args.error,
        seed=args.seed,
    )
    start = time.monotonic()
    out = runner.run_one(cell)
    _report_stats(f"run {args.model}/{args.policy}", runner, time.monotonic() - start)
    result = out.result
    print(format_table([result.summary()]))
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump({"cell": cell.to_dict(), "result": result.to_dict()}, fh, indent=2)
        print(f"wrote {args.output}")
    return 1 if result.failed else 0


def _cmd_figure(args: argparse.Namespace) -> int:
    if args.id == "table2":
        _emit(args, [{"parameter": k, "value": v} for k, v in table2_configuration().items()],
              as_table=True)
        return 0
    func, supports_models = FIGURES[args.id]
    runner = _make_runner(args)
    kwargs = {"scale": args.scale, "runner": runner}
    if args.models:
        if not supports_models:
            print(f"figure {args.id} has a fixed workload set; --models ignored", file=sys.stderr)
        else:
            kwargs["models"] = tuple(_csv(args.models))
    start = time.monotonic()
    results = func(**kwargs)
    _report_stats(f"figure {args.id} [{args.scale}]", runner, time.monotonic() - start)
    _emit(args, results, as_table=args.id == "table1")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    runner = _make_runner(args)
    spec = SweepSpec.grid(
        "cli-sweep",
        models=_csv(args.models),
        policies=_csv(args.policies),
        batch_sizes=[int(b) for b in _csv(args.batches)] if args.batches else (None,),
        scale=args.scale,
        profiling_errors=[float(e) for e in _csv(args.errors)] if args.errors else (0.0,),
    )
    start = time.monotonic()
    outs = runner.run(spec)
    _report_stats(f"sweep ({len(spec.cells)} cells)", runner, time.monotonic() - start)
    rows = [out.result.summary() for out in outs]
    print(format_table(rows))
    if args.output:
        payload = [
            {"cell": out.cell.to_dict(), "summary": _jsonify(row)}
            for out, row in zip(outs, rows)
        ]
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote {args.output}")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    cache = ResultCache(args.cache_dir)
    if args.action == "info":
        stats = cache.stats()
        print(f"cache root : {stats['root']}")
        print(f"entries    : {stats['entries']}")
        print(f"size       : {stats['bytes'] / 1e6:.2f} MB")
    elif args.action == "clear":
        print(f"removed {cache.clear()} cached results")
    elif args.action == "path":
        print(cache.root)
    return 0


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", choices=("ci", "paper"), default="ci",
                        help="workload scale (default: ci)")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="fan cells out over N worker processes")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="result cache directory (default: .repro_cache or $REPRO_CACHE_DIR)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the on-disk result cache")
    parser.add_argument("--output", default=None, metavar="FILE",
                        help="write results as a JSON artifact instead of stdout")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="simulate one (model, policy) cell")
    run.add_argument("--model", required=True, help="model name (bert, vit, ...)")
    run.add_argument("--policy", default="g10", help="policy name (default: g10)")
    run.add_argument("--batch", type=int, default=None, help="batch size (default: Figure 11's)")
    run.add_argument("--error", type=float, default=0.0, help="profiling error fraction (§7.6)")
    run.add_argument("--seed", type=int, default=0, help="profiling-error noise seed")
    run.add_argument("--host-memory-gb", type=float, default=None,
                     help="override host memory capacity (GB)")
    run.add_argument("--ssd-bandwidth-gbs", type=float, default=None,
                     help="override SSD read bandwidth (GB/s, write scaled proportionally)")
    _add_common(run)
    run.set_defaults(func=_cmd_run)

    figure = sub.add_parser("figure", help="reproduce a figure or table of the paper")
    figure.add_argument("id", choices=sorted(FIGURES) + ["table2"],
                        help="figure number, table1/table2, or lifetime (§7.7)")
    figure.add_argument("--models", default=None,
                        help="comma-separated model subset (figures that sweep models)")
    _add_common(figure)
    figure.set_defaults(func=_cmd_figure)

    sweep = sub.add_parser("sweep", help="run a custom model x policy x batch grid")
    sweep.add_argument("--models", required=True, help="comma-separated model names")
    sweep.add_argument("--policies", required=True, help="comma-separated policy names")
    sweep.add_argument("--batches", default=None, help="comma-separated batch sizes")
    sweep.add_argument("--errors", default=None, help="comma-separated profiling error levels")
    _add_common(sweep)
    sweep.set_defaults(func=_cmd_sweep)

    cache = sub.add_parser("cache", help="inspect or clear the result cache")
    cache.add_argument("action", choices=("info", "clear", "path"))
    cache.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="result cache directory (default: .repro_cache or $REPRO_CACHE_DIR)")
    cache.set_defaults(func=_cmd_cache)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
