"""``python -m repro`` — reproduce the paper's figures and tables from the shell.

Subcommands:

* ``run``    — simulate one (model, policy) cell and print its summary;
  ``--list-policies``/``--list-models`` print the open registries instead;
* ``figure`` — reproduce a figure (2-4, 11-19), a table (table1/table2) or the
  §7.7 lifetime study, optionally writing a JSON artifact;
* ``sweep``  — run a custom (models x policies x batches) grid;
* ``report`` — render *every* figure/table from the result cache into
  Markdown + JSON artifacts (or warm one shard of the full grid);
* ``bench``  — time the simulation core on representative cells and write
  ``BENCH_core.json`` (the repo's recorded perf trajectory); ``--check``
  gates CI against >2x regressions of the committed baseline;
* ``lint``   — run the project's AST-based static analyzer (determinism and
  queue-atomicity rules, DET001.. QUE001/API001) over source trees;
  ``--project`` adds the interprocedural rules (DET005 entropy taint over the
  call graph, ASY001 await-atomicity, EXC001 exception contracts); findings
  not in the committed baseline fail the run (``--update-baseline`` refreshes
  it, ``--list-rules`` documents every rule);
* ``cache``  — inspect, clear, or merge on-disk result caches;
* ``queue``  — drive the distributed work queue: ``enqueue`` the report grid,
  ``work`` as a competing consumer, ``status`` the task states,
  ``requeue-stale`` expired leases of dead workers, or ``clear`` the queue —
  against the local queue directory or (``--queue-url``) a ``repro serve``
  server;
* ``serve``  — host a work queue + result cache over HTTP so workers on other
  machines drain one sweep without a shared filesystem.

Every experiment honours ``--jobs`` (process-parallel fan-out) and the result
cache under ``--cache-dir`` (default ``.repro_cache/``, or ``$REPRO_CACHE_DIR``);
re-running any command is a cache hit. ``--no-cache`` forces re-execution.

Paper-scale grids distribute across machines with ``--shard-index I
--shard-count N``: each shard executes a deterministic, cache-key-owned slice
of the grid into its own cache; ``repro cache merge`` combines the shard
caches; and ``--resume`` (or ``repro report --expect-warm``) regenerates the
figures incrementally from the merged cache, bit-identical to a serial run.

Dynamic load balancing replaces static shard ownership with ``--queue
--workers N``: cells become tasks in a file-backed work queue under
``--queue-dir`` (default ``.repro_queue/`` or ``$REPRO_QUEUE_DIR``) that N
competing consumers drain with crash-safe lease/ack semantics — a killed
worker's cells are reclaimed after ``--lease-timeout`` seconds (``repro queue
requeue-stale``) instead of straggling the run. Without a shared filesystem,
``repro serve`` hosts the queue and cache over HTTP and the same commands
point at it with ``--queue-url http://host:port`` instead of ``--queue-dir``
(lease timing then lives on the server — it is the single clock authority).

Policies, models and experiments resolve through the open registries
(:mod:`repro.registry`); out-of-tree registrations load with ``--plugins
module_a,module_b`` or the ``REPRO_PLUGINS`` environment variable (the latter
also reaches sweep worker processes and is read before the parser is built,
so plugin experiments appear among the ``repro figure`` choices).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Sequence

from .api import Scenario
from .experiments import (
    DEFAULT_LEASE_TIMEOUT,
    DEFAULT_MAX_ATTEMPTS,
    ConfigPatch,
    HttpResultCache,
    HttpWorkQueue,
    ResultCache,
    SweepRunner,
    SweepSpec,
    WorkQueue,
    combined_spec,
    default_queue_root,
    enqueue_report,
    format_table,
    generate_report,
    get_experiment,
    jsonify,
    run_worker,
    table2_configuration,
    warm_cache,
)
from .experiments.reporting import experiment_ids
from .config import GB
from .errors import ConfigurationError, ReproError
from .registry import MODEL_REGISTRY, POLICY_REGISTRY, load_plugins


def _csv(text: str) -> list[str]:
    return [item.strip() for item in text.split(",") if item.strip()]


def _make_runner(args: argparse.Namespace) -> SweepRunner:
    workers = getattr(args, "workers", None)
    jobs = args.jobs
    queue_url = getattr(args, "queue_url", None)
    if queue_url is not None:
        # HTTP queue mode: the server owns the queue, the cache *and* the
        # lease timing, so every local override of those is a contradiction.
        if getattr(args, "queue", False) or getattr(args, "queue_dir", None):
            raise ConfigurationError("--queue-url and --queue/--queue-dir are mutually exclusive")
        if getattr(args, "no_cache", False):
            raise ConfigurationError(
                "--queue-url routes results through the server's cache (drop --no-cache)"
            )
        if getattr(args, "cache_dir", None):
            raise ConfigurationError(
                "--cache-dir has no effect with --queue-url: results live in the "
                "server's cache (merge or report from there)"
            )
        if getattr(args, "lease_timeout", None) is not None:
            raise ConfigurationError(
                "--lease-timeout is server configuration: set it on repro serve"
            )
        return SweepRunner(jobs=workers or jobs, queue_url=queue_url)
    cache = None if getattr(args, "no_cache", False) else ResultCache(args.cache_dir)
    queue_dir = None
    if getattr(args, "queue", False):
        if cache is None:
            raise ConfigurationError("--queue requires the result cache (drop --no-cache)")
        queue_dir = getattr(args, "queue_dir", None) or default_queue_root()
        if workers is not None:
            jobs = workers
    elif workers is not None or getattr(args, "queue_dir", None):
        raise ConfigurationError("--workers/--queue-dir require --queue")
    return SweepRunner(
        jobs=jobs,
        cache=cache,
        queue_dir=queue_dir,
        lease_timeout=getattr(args, "lease_timeout", None),
    )


def _shard_args(args: argparse.Namespace) -> tuple[int, int] | None:
    index, count = getattr(args, "shard_index", None), getattr(args, "shard_count", None)
    if index is None and count is None:
        return None
    if index is None or count is None:
        raise ConfigurationError("--shard-index and --shard-count must be given together")
    if getattr(args, "no_cache", False):
        raise ConfigurationError("sharded execution requires the result cache (drop --no-cache)")
    return index, count


def _require_cache_for_resume(args: argparse.Namespace) -> None:
    if args.resume and args.no_cache:
        raise ConfigurationError("--resume requires the result cache (drop --no-cache)")


def _emit(args: argparse.Namespace, results, as_table: bool = False) -> None:
    payload = jsonify(results)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"wrote {args.output}")
    elif as_table:
        print(format_table(results))
    else:
        json.dump(payload, sys.stdout, indent=2, sort_keys=True)
        print()


def _report_stats(label: str, runner: SweepRunner, elapsed: float) -> None:
    stats = runner.last_stats
    shard = ""
    if "shard_index" in stats:
        shard = f", shard {stats['shard_index']}/{stats['shard_count']} ({stats['skipped']} skipped)"
    print(
        f"{label}: {stats['cells']} cells "
        f"({stats['cache_hits']} cached, {stats['executed']} executed){shard}, "
        f"jobs={runner.jobs or 1}, {elapsed:.2f}s",
        file=sys.stderr,
    )


def _print_plan(label: str, runner: SweepRunner, spec: SweepSpec) -> None:
    counts = runner.plan(spec).counts()
    print(
        f"{label}: resuming {counts['cells']} cells "
        f"({counts['distinct']} distinct): {counts['warm']} warm, "
        f"{counts['to_execute']} to execute",
        file=sys.stderr,
    )


def _registry_listing(registry) -> str:
    rows = []
    for info in registry.describe_all():
        description = info.get("description", "")
        if not description and "dataset" in info:
            description = f"{info.get('source', '?')} / {info['dataset']}"
        rows.append(
            {
                "name": info["name"],
                "aliases": ", ".join(info["aliases"]) or "-",
                "display": info.get("display", info["name"]),
                "description": description,
            }
        )
    return format_table(rows)


def _cmd_run(args: argparse.Namespace) -> int:
    if args.list_policies:
        print(_registry_listing(POLICY_REGISTRY))
        return 0
    if args.list_models:
        print(_registry_listing(MODEL_REGISTRY))
        return 0
    if args.model is None:
        raise ConfigurationError("repro run requires --model (or --list-policies/--list-models)")

    runner = _make_runner(args)
    patch = ConfigPatch(
        host_memory_bytes=None if args.host_memory_gb is None else int(args.host_memory_gb * GB),
        ssd_read_bandwidth=None if args.ssd_bandwidth_gbs is None else args.ssd_bandwidth_gbs * GB,
    )
    if args.tenants is not None:
        return _run_tenants(args, runner, patch)
    scenario = Scenario(
        model=args.model,
        policy=args.policy,
        batch_size=args.batch,
        scale=args.scale,
        patch=patch,
        profiling_error=args.error,
        seed=args.seed,
    )
    start = time.monotonic()
    outcome = scenario.run(runner=runner)
    _report_stats(f"run {args.model}/{args.policy}", runner, time.monotonic() - start)
    result = outcome.result
    print(format_table([result.summary()]))
    if args.output:
        payload = {
            "cell": scenario.cell().to_dict(),
            "result": result.to_dict(),
            "provenance": {
                "config_fingerprint": outcome.config_fingerprint,
                "cache_key": outcome.cache_key,
                "policy": dict(outcome.policy),
                "cached": outcome.cached,
            },
        }
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote {args.output}")
    return 1 if result.failed else 0


def _run_tenants(args: argparse.Namespace, runner: SweepRunner, patch: ConfigPatch) -> int:
    """``repro run --tenants N``: co-locate N sessions on one shared system."""
    from .experiments.tenancy import ArrivalProcess, MultiTenantScenario, Tenant

    if args.tenants < 1:
        raise ConfigurationError(f"--tenants must be >= 1, got {args.tenants}")
    policies = _csv(args.tenant_policies) if args.tenant_policies else [args.policy]
    tenants = []
    for index in range(args.tenants):
        policy = policies[index % len(policies)]
        scenario = Scenario(
            model=args.model,
            policy=policy,
            batch_size=args.batch,
            scale=args.scale,
            patch=patch,
            profiling_error=args.error,
            seed=args.seed,
        )
        # Per-tenant offered load sums to --arrival-load across the system.
        arrivals = ArrivalProcess.poisson(
            load=args.arrival_load / args.tenants,
            requests=args.requests,
            seed=args.seed,
        )
        tenants.append(Tenant(name=f"t{index}-{policy}", scenario=scenario, arrivals=arrivals))
    start = time.monotonic()
    result = MultiTenantScenario(tenants=tuple(tenants)).run(runner=runner)
    _report_stats(f"run {args.model} x{args.tenants} tenants", runner, time.monotonic() - start)
    print(format_table(result.summary_rows()))
    print(
        f"fairness (Jain): {result.fairness:.4f}, makespan: {result.makespan:.4f}s",
        file=sys.stderr,
    )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(jsonify(result.to_dict()), fh, indent=2, sort_keys=True)
        print(f"wrote {args.output}")
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    experiment = get_experiment(args.id)
    models = None
    if args.models:
        if not experiment.supports_models:
            print(f"figure {args.id} has a fixed workload set; --models ignored", file=sys.stderr)
        else:
            models = tuple(_csv(args.models))

    shard = _shard_args(args)
    if shard is not None:
        # Warm one shard of the figure's grid into the cache; render nothing.
        if args.output:
            print("shard mode warms the cache without rendering; --output ignored",
                  file=sys.stderr)
        if experiment.spec is None:
            print(f"figure {args.id} has no sweep cells; nothing to shard", file=sys.stderr)
            return 0
        runner = _make_runner(args)
        spec = experiment.spec(args.scale, models)
        start = time.monotonic()
        runner.run(spec, shard_index=shard[0], shard_count=shard[1])
        _report_stats(f"figure {args.id} [{args.scale}]", runner, time.monotonic() - start)
        return 0

    if experiment.id == "table2":
        _emit(args, [{"parameter": k, "value": v} for k, v in table2_configuration().items()],
              as_table=True)
        return 0

    _require_cache_for_resume(args)
    runner = _make_runner(args)
    kwargs = {"scale": args.scale, "runner": runner}
    if models is not None:
        kwargs["models"] = models
    if args.resume and experiment.spec is not None:
        _print_plan(f"figure {args.id}", runner, experiment.spec(args.scale, models))
    start = time.monotonic()
    results = experiment.render(**kwargs)
    _report_stats(f"figure {args.id} [{args.scale}]", runner, time.monotonic() - start)
    _emit(args, results, as_table=experiment.id == "table1")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    runner = _make_runner(args)
    spec = SweepSpec.grid(
        "cli-sweep",
        models=_csv(args.models),
        policies=_csv(args.policies),
        batch_sizes=[int(b) for b in _csv(args.batches)] if args.batches else (None,),
        scale=args.scale,
        profiling_errors=[float(e) for e in _csv(args.errors)] if args.errors else (0.0,),
    )
    shard = _shard_args(args)
    _require_cache_for_resume(args)
    if args.resume and shard is None:
        _print_plan("sweep", runner, spec)
    start = time.monotonic()
    if shard is not None:
        outs = runner.run(spec, shard_index=shard[0], shard_count=shard[1])
    else:
        outs = runner.run(spec)
    _report_stats(f"sweep ({len(spec.cells)} cells)", runner, time.monotonic() - start)
    rows = [out.result.summary() for out in outs]
    print(format_table(rows))
    if args.output:
        payload = [
            {"cell": out.cell.to_dict(), "summary": jsonify(row)}
            for out, row in zip(outs, rows)
        ]
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote {args.output}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    runner = _make_runner(args)
    figures = _csv(args.figures) if args.figures else None
    shard = _shard_args(args)
    if shard is not None:
        # Distributed mode: warm this shard's slice of the full report grid.
        start = time.monotonic()
        warm_cache(
            scale=args.scale, figures=figures, runner=runner,
            shard_index=shard[0], shard_count=shard[1],
        )
        _report_stats(f"report warm [{args.scale}]", runner, time.monotonic() - start)
        return 0
    _require_cache_for_resume(args)
    if args.resume:
        _print_plan("report", runner, combined_spec(args.scale, figures))
    start = time.monotonic()
    manifest = generate_report(
        scale=args.scale,
        figures=figures,
        runner=runner,
        output_dir=args.output_dir,
        expect_warm=args.expect_warm,
    )
    totals = manifest["totals"]
    print(
        f"report [{args.scale}]: {len(manifest['figures'])} artifacts, "
        f"{totals['cells']} cells ({totals['warm']} warm, {totals['recomputed']} recomputed), "
        f"{time.monotonic() - start:.2f}s -> {args.output_dir}/report.md",
        file=sys.stderr,
    )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from . import bench as bench_mod

    start = time.monotonic()
    if args.from_file is not None:
        try:
            payload = bench_mod.load_bench(args.from_file)
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigurationError(f"cannot read bench payload {args.from_file}: {exc}")
        bench_mod.validate_payload(payload, args.from_file)
    else:
        payload = bench_mod.run_bench(
            quick=args.quick,
            repeats=args.repeats,
            progress=lambda message: print(message, file=sys.stderr),
        )
    print(format_table(bench_mod.bench_rows(payload)))
    if args.profile:
        rows = bench_mod.profile_rows(payload)
        if rows:
            print(format_table(rows))
        else:
            print("no per-phase timings recorded in this payload", file=sys.stderr)
        cache_totals = bench_mod.plan_cache_summary(payload)
        if any(cache_totals.values()):
            lookups = sum(cache_totals.values())
            hits = cache_totals["full_hits"] + cache_totals["fragment_hits"]
            print(
                f"plan cache: {cache_totals['full_hits']} full hits, "
                f"{cache_totals['fragment_hits']} fragment hits, "
                f"{cache_totals['misses']} misses "
                f"(hit rate {hits / lookups:.0%})"
            )
    headline = payload.get("headline")
    if headline is not None:
        print(
            f"headline {headline['cell']}: {headline['seconds']:.4f}s vs "
            f"{headline['pre_refactor_seconds']:.4f}s pre-refactor "
            f"({headline['speedup_vs_pre_refactor']:.2f}x)",
            file=sys.stderr,
        )
    if args.from_file is None:
        output = args.output or bench_mod.DEFAULT_BENCH_PATH
        bench_mod.write_bench(payload, output)
        print(f"wrote {output} ({time.monotonic() - start:.1f}s)", file=sys.stderr)
    elif args.output is not None:
        bench_mod.write_bench(payload, args.output)
        print(f"wrote {args.output}", file=sys.stderr)
    if args.check is not None:
        try:
            baseline = bench_mod.load_bench(args.check)
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigurationError(f"cannot read bench baseline {args.check}: {exc}")
        regressions = bench_mod.check_regressions(
            payload, baseline, threshold=args.threshold
        )
        if regressions:
            for message in regressions:
                print(f"REGRESSION {message}", file=sys.stderr)
            return 1
        print(
            f"no cell regressed beyond {args.threshold:.1f}x of {args.check}",
            file=sys.stderr,
        )
    return 0


#: Baseline consulted by ``repro lint`` when ``--baseline`` is not given.
DEFAULT_LINT_BASELINE = "lint-baseline.json"


def _cmd_lint(args: argparse.Namespace) -> int:
    from .analysis.lint import ERROR_CODES, LINT_REGISTRY, Baseline, lint_paths

    if args.list_rules:
        rows = []
        for info in LINT_REGISTRY.describe_all():
            rows.append(
                {
                    "code": info["name"].upper(),
                    "title": info.get("title", ""),
                    "rationale": info.get("rationale", ""),
                }
            )
        print(format_table(rows))
        return 0

    paths = args.paths
    if not paths:
        default = os.path.join("src", "repro")
        if os.path.isdir(default):
            paths = [default]
        else:  # installed package: lint the importable sources
            paths = [os.path.dirname(os.path.abspath(__file__))]

    all_findings = lint_paths(
        paths,
        select=_csv(args.rule) if args.rule else None,
        ignore=_csv(args.ignore) if args.ignore else None,
        project=args.project,
    )
    # Analysis errors (E001 unparseable, E002 unreadable) are never rule
    # findings: they cannot be baselined away and force exit 2 below.
    errors = [f for f in all_findings if f.rule in ERROR_CODES]
    findings = [f for f in all_findings if f.rule not in ERROR_CODES]

    baseline_path = args.baseline
    if baseline_path is None and os.path.exists(DEFAULT_LINT_BASELINE):
        baseline_path = DEFAULT_LINT_BASELINE
    if args.update_baseline:
        if errors:
            for finding in errors:
                print(finding.render(), file=sys.stderr)
            print(
                "refusing to update the baseline: the analysis is incomplete",
                file=sys.stderr,
            )
            return 2
        target = baseline_path or DEFAULT_LINT_BASELINE
        Baseline.from_findings(findings).write(target)
        print(f"wrote {len(findings)} finding(s) to {target}", file=sys.stderr)
        return 0
    baseline = Baseline.load(baseline_path)
    new, baselined, stale = baseline.partition(findings)

    if args.format == "json":
        json.dump(
            {
                "findings": [f.to_dict() for f in new],
                "baselined": [f.to_dict() for f in baselined],
                "errors": [f.to_dict() for f in errors],
                "summary": {
                    "checked_paths": [str(p) for p in paths],
                    "baseline": str(baseline_path) if baseline_path else None,
                    "project": bool(args.project),
                    "new": len(new),
                    "baselined": len(baselined),
                    "errors": len(errors),
                    "stale_baseline_entries": stale,
                },
            },
            sys.stdout,
            indent=2,
            sort_keys=True,
        )
        print()
    else:
        for finding in (*errors, *new):
            print(finding.render())
        summary = f"repro lint: {len(new)} finding(s)"
        if errors:
            summary += f", {len(errors)} analysis error(s)"
        if baselined:
            summary += f", {len(baselined)} baselined"
        if stale:
            summary += (
                f", {stale} stale baseline entrie(s) — fixed findings still "
                f"grandfathered; re-run with --update-baseline"
            )
        print(summary, file=sys.stderr)
    if errors:
        return 2
    return 1 if new else 0


def _cmd_cache(args: argparse.Namespace) -> int:
    if args.action != "merge" and args.sources:
        raise ConfigurationError(
            f"cache {args.action} takes no source directories "
            f"(got {args.sources}); did you mean --cache-dir?"
        )
    cache = ResultCache(args.cache_dir)
    if args.action == "info":
        stats = cache.stats()
        print(f"cache root : {stats['root']}")
        print(f"entries    : {stats['entries']}")
        print(f"size       : {stats['bytes'] / 1e6:.2f} MB")
        print(f"stale tmp  : {stats['stale_tmp']} ({stats['stale_tmp_bytes']} bytes)")
    elif args.action == "clear":
        print(f"removed {cache.clear()} cached results")
    elif args.action == "path":
        print(cache.root)
    elif args.action == "merge":
        if not args.sources:
            raise ConfigurationError("cache merge requires at least one source directory")
        total = 0
        for source in args.sources:
            merged = cache.merge_from(ResultCache(source))
            print(f"merged {merged} entries from {source}", file=sys.stderr)
            total += merged
        print(f"merged {total} entries into {cache.root}")
    return 0


def _cmd_queue(args: argparse.Namespace) -> int:
    if args.queue_url is not None:
        if args.queue_dir is not None:
            raise ConfigurationError("--queue-url and --queue-dir are mutually exclusive")
        if args.lease_timeout is not None or args.max_attempts is not None:
            raise ConfigurationError(
                "--lease-timeout/--max-attempts are server configuration: "
                "set them on repro serve"
            )
        if args.cache_dir is not None:
            raise ConfigurationError(
                "--cache-dir has no effect with --queue-url: results live in "
                "the server's cache"
            )
        queue: WorkQueue | HttpWorkQueue = HttpWorkQueue(args.queue_url)
        cache: ResultCache | HttpResultCache | None = (
            None if args.no_cache else HttpResultCache(args.queue_url)
        )
    else:
        kwargs = {} if args.max_attempts is None else {"max_attempts": args.max_attempts}
        queue = WorkQueue(
            args.queue_dir or default_queue_root(),
            lease_timeout=(
                DEFAULT_LEASE_TIMEOUT if args.lease_timeout is None else args.lease_timeout
            ),
            **kwargs,
        )
        cache = None if args.no_cache else ResultCache(args.cache_dir)
    if args.action == "status":
        status = queue.status()
        # `total` is what the state directories contain; `expected` is what
        # the events log says was ever enqueued — comparing them catches
        # lost/mangled task files, which a purely structural sum cannot.
        reconciled = (
            status["queued"] + status["leased"] + status["done"] + status["failed"]
            == status["total"] == status["expected"]
        )
        print(f"queue root : {status['root']}")
        print(f"queued     : {status['queued']}")
        print(f"leased     : {status['leased']} ({status['stale']} stale)")
        print(f"done       : {status['done']}")
        print(f"failed     : {status['failed']}")
        print(f"total      : {status['total']} ({status['expected']} expected)")
        print(f"reconciled : queued + leased + done + failed == total == expected -> "
              f"{'yes' if reconciled else 'NO'}")
        return 0 if reconciled else 1
    if args.action == "requeue-stale":
        keys = queue.requeue_stale()
        print(f"requeued {len(keys)} stale lease(s)")
        return 0
    if args.action == "enqueue":
        counts = enqueue_report(
            queue,
            scale=args.scale,
            figures=_csv(args.figures) if args.figures else None,
            cache=cache,
            priority=args.priority,
        )
        print(
            f"enqueued {counts['queued']} cell(s) into {queue.describe()} "
            f"({counts['warm']} already warm, {counts['retried']} failed retried, "
            f"{counts['skipped']} already tracked)"
        )
        return 0
    if args.action == "work":
        if cache is None:
            raise ConfigurationError("queue workers need a result cache (drop --no-cache)")
        executed = run_worker(
            queue,
            cache,
            worker_id=args.worker_id,
            poll_interval=args.poll_interval,
        )
        status = queue.status()
        print(
            f"worker {args.worker_id or f'pid-{os.getpid()}'}: "
            f"executed {executed} cell(s); queue now "
            f"{status['done']} done / {status['failed']} failed / "
            f"{status['queued']} queued / {status['leased']} leased",
            file=sys.stderr,
        )
        return 0 if status["failed"] == 0 else 1
    if args.action == "clear":
        queue.clear()
        print(f"cleared queue at {queue.describe()}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .experiments.server import serve

    limits = {}
    if args.read_timeout is not None:
        # 0 disables the per-read deadline (trusted-network escape hatch).
        limits["read_timeout"] = None if args.read_timeout == 0 else args.read_timeout
    if args.max_body_bytes is not None:
        limits["max_body_bytes"] = args.max_body_bytes
    serve(
        args.queue_dir or default_queue_root(),
        args.cache_dir,
        host=args.host,
        port=args.port,
        lease_timeout=args.lease_timeout,
        max_attempts=args.max_attempts if args.max_attempts is not None else DEFAULT_MAX_ATTEMPTS,
        stream=sys.stderr,
        **limits,
    )
    return 0


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", choices=("ci", "paper"), default="ci",
                        help="workload scale (default: ci)")
    parser.add_argument("--plugins", default=None, metavar="MODULES",
                        help="comma-separated modules to import before running "
                             "(registering policies/models; also $REPRO_PLUGINS)")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="fan cells out over N worker processes")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="result cache directory (default: .repro_cache or $REPRO_CACHE_DIR)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the on-disk result cache")


def _add_output(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--output", default=None, metavar="FILE",
                        help="write results as a JSON artifact instead of stdout")


def _add_queue(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--queue", action="store_true",
                        help="dispatch cell execution through the file-backed work "
                             "queue (dynamic load balancing, crash-safe leases)")
    parser.add_argument("--queue-dir", default=None, metavar="DIR",
                        help="work-queue directory (default: .repro_queue or $REPRO_QUEUE_DIR)")
    parser.add_argument("--workers", type=int, default=None, metavar="N",
                        help="competing consumer processes in queue mode (default: --jobs or 1)")
    parser.add_argument("--lease-timeout", type=float, default=None, metavar="SECONDS",
                        help="seconds before a dead worker's lease is reclaimable "
                             f"(default: {DEFAULT_LEASE_TIMEOUT:.0f}; file queue only)")
    parser.add_argument("--queue-url", default=None, metavar="URL",
                        help="drain a repro serve queue at this URL instead of a "
                             "local queue directory (results land in the server's cache)")


def _add_shard(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--shard-index", type=int, default=None, metavar="I",
                        help="execute only shard I of the grid (0-based; warms the cache)")
    parser.add_argument("--shard-count", type=int, default=None, metavar="N",
                        help="total number of shards the grid is split into")
    parser.add_argument("--resume", action="store_true",
                        help="report the warm/missing plan before running; requires the cache")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="simulate one (model, policy) cell")
    run.add_argument("--model", default=None, help="model name (bert, vit, ...)")
    run.add_argument("--policy", default="g10", help="policy name (default: g10)")
    run.add_argument("--list-policies", action="store_true",
                     help="list every registered policy (with aliases) and exit")
    run.add_argument("--list-models", action="store_true",
                     help="list every registered model (with aliases) and exit")
    run.add_argument("--batch", type=int, default=None, help="batch size (default: Figure 11's)")
    run.add_argument("--error", type=float, default=0.0, help="profiling error fraction (§7.6)")
    run.add_argument("--seed", type=int, default=0, help="profiling-error noise seed")
    run.add_argument("--host-memory-gb", type=float, default=None,
                     help="override host memory capacity (GB)")
    run.add_argument("--ssd-bandwidth-gbs", type=float, default=None,
                     help="override SSD read bandwidth (GB/s, write scaled proportionally)")
    run.add_argument("--tenants", type=int, default=None, metavar="N",
                     help="co-locate N sessions of this model on one shared "
                          "GPU+SSD and report per-tenant SLO/fairness metrics")
    run.add_argument("--arrival-load", type=float, default=1.0, metavar="RHO",
                     help="tenants: total offered load (requests per solo "
                          "latency) split evenly across tenants (default: 1.0)")
    run.add_argument("--requests", type=int, default=4, metavar="K",
                     help="tenants: Poisson-arrival requests per tenant (default: 4)")
    run.add_argument("--tenant-policies", default=None, metavar="P1,P2",
                     help="tenants: per-tenant policies assigned round-robin "
                          "(default: --policy for every tenant)")
    _add_common(run)
    _add_output(run)
    run.set_defaults(func=_cmd_run)

    figure = sub.add_parser("figure", help="reproduce a figure or table of the paper")
    # Computed lazily so experiments registered by plugins appear as choices.
    figure.add_argument("id", choices=tuple(experiment_ids()),
                        help="figure number, table1/table2, or lifetime (§7.7)")
    figure.add_argument("--models", default=None,
                        help="comma-separated model subset (figures that sweep models)")
    _add_common(figure)
    _add_output(figure)
    _add_shard(figure)
    _add_queue(figure)
    figure.set_defaults(func=_cmd_figure)

    sweep = sub.add_parser("sweep", help="run a custom model x policy x batch grid")
    sweep.add_argument("--models", required=True, help="comma-separated model names")
    sweep.add_argument("--policies", required=True, help="comma-separated policy names")
    sweep.add_argument("--batches", default=None, help="comma-separated batch sizes")
    sweep.add_argument("--errors", default=None, help="comma-separated profiling error levels")
    _add_common(sweep)
    _add_output(sweep)
    _add_shard(sweep)
    _add_queue(sweep)
    sweep.set_defaults(func=_cmd_sweep)

    report = sub.add_parser(
        "report", help="render every figure/table from the cache (Markdown + JSON)"
    )
    report.add_argument("--figures", default=None, metavar="IDS",
                        help="comma-separated experiment ids (default: all)")
    report.add_argument("--output-dir", default="report", metavar="DIR",
                        help="artifact directory (default: report/)")
    report.add_argument("--expect-warm", action="store_true",
                        help="fail if any cell had to be recomputed (CI resume contract)")
    _add_common(report)
    _add_shard(report)
    _add_queue(report)
    report.set_defaults(func=_cmd_report)

    queue = sub.add_parser(
        "queue", help="drive the distributed work queue (competing consumers)"
    )
    queue.add_argument("action",
                       choices=("status", "requeue-stale", "enqueue", "work", "clear"))
    queue.add_argument("--queue-dir", default=None, metavar="DIR",
                       help="work-queue directory (default: .repro_queue or $REPRO_QUEUE_DIR)")
    queue.add_argument("--queue-url", default=None, metavar="URL",
                       help="operate on a repro serve queue at this URL instead of "
                            "a local queue directory")
    queue.add_argument("--lease-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="deadline encoded into leases this process *takes* "
                            "(work); existing leases expire at the deadline "
                            "recorded when they were claimed "
                            f"(default: {DEFAULT_LEASE_TIMEOUT:.0f}; file queue only)")
    queue.add_argument("--max-attempts", type=int, default=None, metavar="N",
                       help="lease attempts per cell before it is parked as failed "
                            "(default: 5; file queue only)")
    queue.add_argument("--figures", default=None, metavar="IDS",
                       help="enqueue: comma-separated experiment ids (default: all)")
    queue.add_argument("--priority", choices=("slowest-first",), default=None,
                       help="enqueue: drain order — slowest-first starts the "
                            "costliest cells first to shorten the critical path")
    queue.add_argument("--scale", choices=("ci", "paper"), default="ci",
                       help="enqueue: workload scale (default: ci)")
    queue.add_argument("--worker-id", default=None, metavar="ID",
                       help="work: stable identity recorded in leases/events")
    queue.add_argument("--poll-interval", type=float, default=0.05, metavar="SECONDS",
                       help="work: idle polling interval while peers hold leases")
    queue.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="result cache directory (default: .repro_cache or $REPRO_CACHE_DIR)")
    queue.add_argument("--no-cache", action="store_true",
                       help="enqueue without consulting the cache for warm cells")
    queue.set_defaults(func=_cmd_queue)

    serve = sub.add_parser(
        "serve", help="host the work queue + result cache over HTTP (repro queue/sweep --queue-url)"
    )
    serve.add_argument("--host", default="127.0.0.1", metavar="ADDR",
                       help="bind address (default: 127.0.0.1; 0.0.0.0 for a fleet)")
    serve.add_argument("--port", type=int, default=8765, metavar="PORT",
                       help="bind port; 0 picks a free port (default: 8765)")
    serve.add_argument("--queue-dir", default=None, metavar="DIR",
                       help="backing queue directory (default: .repro_queue or $REPRO_QUEUE_DIR)")
    serve.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="backing result cache (default: .repro_cache or $REPRO_CACHE_DIR)")
    serve.add_argument("--lease-timeout", type=float, default=DEFAULT_LEASE_TIMEOUT,
                       metavar="SECONDS",
                       help="lease deadline handed to workers; the server's clock is "
                            f"the single authority (default: {DEFAULT_LEASE_TIMEOUT:.0f})")
    serve.add_argument("--max-attempts", type=int, default=None, metavar="N",
                       help="lease attempts per cell before it is parked as failed "
                            "(default: 5)")
    serve.add_argument("--read-timeout", type=float, default=None, metavar="SECONDS",
                       help="per-read client timeout; a stalled request is answered "
                            "408 instead of pinning the server (default: 30; 0 disables)")
    serve.add_argument("--max-body-bytes", type=int, default=None, metavar="BYTES",
                       help="largest accepted request body; bigger uploads are "
                            "answered 413 (default: 8 MiB)")
    serve.set_defaults(func=_cmd_serve)

    bench = sub.add_parser(
        "bench", help="time the simulation core on representative cells"
    )
    bench.add_argument("--quick", action="store_true",
                       help="time only the small/medium tiers (the CI smoke set)")
    bench.add_argument("--repeats", type=int, default=3, metavar="N",
                       help="timed repetitions per cell; the minimum is recorded (default: 3)")
    bench.add_argument("--output", default=None, metavar="FILE",
                       help="benchmark artifact path (default: BENCH_core.json)")
    bench.add_argument("--check", default=None, metavar="BASELINE",
                       help="compare against a committed BENCH_core.json and exit "
                            "non-zero if any timed cell regressed beyond --threshold")
    bench.add_argument("--threshold", type=float, default=2.0, metavar="X",
                       help="regression gate for --check (default: 2.0x)")
    bench.add_argument("--profile", action="store_true",
                       help="print the per-cell, per-phase time breakdown "
                            "(planning vs. event-loop execution)")
    bench.add_argument("--from", dest="from_file", default=None, metavar="FILE",
                       help="report/check a previously measured payload instead "
                            "of re-timing (nothing is written unless --output)")
    bench.set_defaults(func=_cmd_bench)

    lint = sub.add_parser(
        "lint", help="run the determinism/atomicity static analyzer over source trees"
    )
    lint.add_argument("paths", nargs="*", metavar="PATH",
                      help="files or directories to lint (default: src/repro)")
    lint.add_argument("--format", choices=("text", "json"), default="text",
                      help="finding output format (default: text)")
    lint.add_argument("--rule", default=None, metavar="CODES",
                      help="comma-separated rule codes to run (default: all)")
    lint.add_argument("--ignore", default=None, metavar="CODES",
                      help="comma-separated rule codes to skip")
    lint.add_argument("--project", action="store_true",
                      help="also run the interprocedural rules "
                           "(DET005/ASY001/EXC001) over a whole-program "
                           "symbol table and call graph built from PATHs")
    lint.add_argument("--baseline", default=None, metavar="FILE",
                      help="grandfather file for pre-existing findings "
                           f"(default: {DEFAULT_LINT_BASELINE} when present)")
    lint.add_argument("--update-baseline", action="store_true",
                      help="write the current findings to the baseline and exit 0")
    lint.add_argument("--list-rules", action="store_true",
                      help="describe every registered rule and exit")
    lint.set_defaults(func=_cmd_lint)

    cache = sub.add_parser("cache", help="inspect, clear, or merge result caches")
    cache.add_argument("action", choices=("info", "clear", "path", "merge"))
    cache.add_argument("sources", nargs="*", metavar="SRC",
                       help="shard cache directories to merge into --cache-dir (merge only)")
    cache.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="result cache directory (default: .repro_cache or $REPRO_CACHE_DIR)")
    cache.set_defaults(func=_cmd_cache)

    return parser


def _peek_plugins(argv: Sequence[str] | None) -> list[str]:
    """Every ``--plugins`` value, extracted before full argument parsing.

    All occurrences are collected (argparse keeps only the last, but each
    named module may register experiments the parser's choices depend on).
    """
    tokens = list(sys.argv[1:] if argv is None else argv)
    values = []
    for index, token in enumerate(tokens):
        flag, eq, inline = token.partition("=")
        # Accept the unambiguous abbreviations argparse accepts ("--plu",
        # "--plugin", ...); "--pl" is the shortest prefix no other option
        # shares.
        if len(flag) >= 4 and "--plugins".startswith(flag) and flag.startswith("--"):
            if eq:
                values.append(inline)
            elif index + 1 < len(tokens):
                values.append(tokens[index + 1])
    return values


def main(argv: Sequence[str] | None = None) -> int:
    try:
        # Plugins ($REPRO_PLUGINS and --plugins) load before the parser is
        # built so plugin-registered experiments appear among the
        # `repro figure` choices.
        load_plugins()
        for peeked in _peek_plugins(argv):
            load_plugins(peeked)
        args = build_parser().parse_args(argv)
        if getattr(args, "plugins", None):
            load_plugins(args.plugins)  # no-op when already peeked
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
