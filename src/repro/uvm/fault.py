"""GPU page-fault path cost model."""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..config import UVMConfig
from ..errors import ConfigurationError


@dataclass(frozen=True)
class PageFaultModel:
    """Latency model of the UVM demand-paging path.

    Faulting a tensor in via on-demand paging costs one fault round trip per
    *fault batch* (real UVM drivers service a faulting warp by migrating a
    neighbourhood of pages, not a single 4 KB page), plus the page-table-walk
    and transfer costs charged elsewhere. The 45 µs round trip comes straight
    from Table 2.
    """

    config: UVMConfig

    def __post_init__(self) -> None:
        if self.config.fault_batch_bytes <= 0:
            raise ConfigurationError("fault batch size must be positive")

    def fault_batches(self, size_bytes: int) -> int:
        """How many fault round trips a tensor of the given size needs."""
        if size_bytes <= 0:
            return 0
        return max(1, math.ceil(size_bytes / self.config.fault_batch_bytes))

    def fault_overhead(self, size_bytes: int) -> float:
        """Total fault-handling latency (excluding the data transfer itself)."""
        return self.fault_batches(size_bytes) * self.config.fault_latency

    def batch_fault_batches(self, sizes: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`fault_batches` over an array of tensor sizes.

        One ``ceil``/``maximum`` pass instead of a scalar call per tensor; the
        executor precomputes the per-tensor fault tables for a whole graph with
        it. ``np.ceil`` on float64 matches ``math.ceil`` for any realistic
        tensor size (< 2**53 bytes), so each element is bit-identical to the
        scalar method (pinned against
        :func:`repro.core.reference.scalar_fault_costs` by the Hypothesis
        suite).
        """
        sizes = np.asarray(sizes, dtype=np.float64)
        batches = np.maximum(1, np.ceil(sizes / self.config.fault_batch_bytes))
        return np.where(sizes <= 0, 0, batches).astype(np.int64)

    def batch_fault_overheads(self, sizes: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`fault_overhead` over an array of tensor sizes."""
        return self.batch_fault_batches(sizes) * self.config.fault_latency

    def translation_overhead(self, num_pages: int, tlb_misses: int) -> float:
        """Address-translation cost for touching ``num_pages`` with given misses."""
        if num_pages < 0 or tlb_misses < 0:
            raise ConfigurationError("page and miss counts cannot be negative")
        return tlb_misses * self.config.page_walk_latency
