"""GPU page-fault path cost model."""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..config import UVMConfig
from ..errors import ConfigurationError


@dataclass(frozen=True)
class PageFaultModel:
    """Latency model of the UVM demand-paging path.

    Faulting a tensor in via on-demand paging costs one fault round trip per
    *fault batch* (real UVM drivers service a faulting warp by migrating a
    neighbourhood of pages, not a single 4 KB page), plus the page-table-walk
    and transfer costs charged elsewhere. The 45 µs round trip comes straight
    from Table 2.
    """

    config: UVMConfig

    def __post_init__(self) -> None:
        if self.config.fault_batch_bytes <= 0:
            raise ConfigurationError("fault batch size must be positive")

    def fault_batches(self, size_bytes: int) -> int:
        """How many fault round trips a tensor of the given size needs."""
        if size_bytes <= 0:
            return 0
        return max(1, math.ceil(size_bytes / self.config.fault_batch_bytes))

    def fault_overhead(self, size_bytes: int) -> float:
        """Total fault-handling latency (excluding the data transfer itself)."""
        return self.fault_batches(size_bytes) * self.config.fault_latency

    def translation_overhead(self, num_pages: int, tlb_misses: int) -> float:
        """Address-translation cost for touching ``num_pages`` with given misses."""
        if num_pages < 0 or tlb_misses < 0:
            raise ConfigurationError("page and miss counts cannot be negative")
        return tlb_misses * self.config.page_walk_latency
