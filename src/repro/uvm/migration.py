"""Runtime migration engine: metadata queues, arbiter and transfer batching.

This is the runtime half of Figure 10. The executor enqueues migration
requests (pre-evictions, prefetches, demand faults); the engine resolves each
into a timed transfer over the shared PCIe link and, for flash-bound traffic,
the SSD's internal read/write path, honouring priorities (faults first, then
prefetches, then pre-evictions) within each batch.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum

from ..config import SystemConfig
from ..errors import SimulationError
from ..ssd.ssd import SSDDevice
from .page_table import MemoryLocation


class MigrationKind(Enum):
    """Why a transfer is happening; determines its arbiter priority."""

    FAULT = "fault"
    PREFETCH = "prefetch"
    EVICTION = "eviction"

    @property
    def priority(self) -> int:
        order = {MigrationKind.FAULT: 0, MigrationKind.PREFETCH: 1, MigrationKind.EVICTION: 2}
        return order[self]


@dataclass(frozen=True)
class MigrationRequest:
    """One tensor-granularity migration between two levels of the hierarchy."""

    tensor_id: int
    size_bytes: int
    source: MemoryLocation
    destination: MemoryLocation
    kind: MigrationKind

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise SimulationError("migration size must be positive")
        if self.source == self.destination:
            raise SimulationError("migration source and destination must differ")

    @property
    def involves_flash(self) -> bool:
        return MemoryLocation.FLASH in (self.source, self.destination)

    @property
    def direction_in(self) -> bool:
        """True when data flows toward the GPU."""
        return self.destination is MemoryLocation.GPU


@dataclass
class TransferSet:
    """A batch of migrations admitted together by the migration arbiter."""

    requests: list[MigrationRequest] = field(default_factory=list)

    def ordered(self) -> list[MigrationRequest]:
        """Requests in arbiter priority order (faults, prefetches, evictions)."""
        return sorted(
            self.requests, key=lambda r: (r.kind.priority, -r.size_bytes)
        )

    @property
    def total_bytes(self) -> int:
        return sum(r.size_bytes for r in self.requests)


@dataclass
class TrafficCounters:
    """Cumulative migration traffic, split the way Figure 14 reports it."""

    gpu_ssd_bytes: float = 0.0
    gpu_host_bytes: float = 0.0
    ssd_read_bytes: float = 0.0
    ssd_write_bytes: float = 0.0
    host_read_bytes: float = 0.0
    host_write_bytes: float = 0.0
    fault_count: int = 0
    prefetch_count: int = 0
    eviction_count: int = 0

    @property
    def total_bytes(self) -> float:
        return self.gpu_ssd_bytes + self.gpu_host_bytes


class MigrationEngine:
    """Times tensor migrations over the PCIe link, host DRAM and the SSD.

    Channel model: the GPU's PCIe link has one queue per direction; traffic to
    or from flash additionally occupies the SSD's internal read/write path.
    Each channel serves one transfer at a time at full bandwidth (transfers of
    DNN tensors are large and sequential, so FIFO service is a close model of
    the DMA/DSA engines' behaviour). A transfer's completion time is the
    latest completion over the channels it crosses.
    """

    def __init__(
        self,
        config: SystemConfig,
        ssd: SSDDevice | None = None,
        per_request_overhead: float = 0.0,
    ):
        self._config = config
        self._ssd = ssd if ssd is not None else SSDDevice(config.ssd)
        self._overhead = per_request_overhead
        self._free_at = {
            "pcie_in": 0.0,
            "pcie_out": 0.0,
            "ssd_read": 0.0,
            "ssd_write": 0.0,
        }
        self._busy_time = dict.fromkeys(self._free_at, 0.0)
        self.traffic = TrafficCounters()
        self._sequence = itertools.count()

    # -- properties -----------------------------------------------------------

    @property
    def ssd(self) -> SSDDevice:
        return self._ssd

    @property
    def config(self) -> SystemConfig:
        return self._config

    def channel_busy_time(self, channel: str) -> float:
        return self._busy_time[channel]

    def channel_free_at(self, channel: str) -> float:
        return self._free_at[channel]

    # -- submission ---------------------------------------------------------------

    def submit(self, request: MigrationRequest, now: float) -> float:
        """Schedule one migration; returns its completion time."""
        channels = self._channels_for(request)
        start = max([now] + [self._free_at[c] for c in channels])
        duration = self._service_time(request)
        completion = start + duration
        for channel in channels:
            self._busy_time[channel] += duration
            self._free_at[channel] = completion
        self._account(request)
        return completion

    def submit_batch(self, batch: TransferSet, now: float) -> dict[int, float]:
        """Schedule a transfer set; returns completion time per tensor id."""
        completions: dict[int, float] = {}
        for request in batch.ordered():
            completions[request.tensor_id] = self.submit(request, now)
        return completions

    def earliest_start(self, request: MigrationRequest, now: float) -> float:
        """When a request would begin service if submitted now (no side effects)."""
        channels = self._channels_for(request)
        return max([now] + [self._free_at[c] for c in channels])

    # -- internals -----------------------------------------------------------------

    def _channels_for(self, request: MigrationRequest) -> list[str]:
        channels = ["pcie_in" if request.direction_in else "pcie_out"]
        if request.involves_flash:
            channels.append("ssd_read" if request.direction_in else "ssd_write")
        return channels

    def _service_time(self, request: MigrationRequest) -> float:
        pcie = self._config.interconnect
        time = self._overhead + pcie.latency
        pcie_leg = request.size_bytes / pcie.bandwidth
        if request.involves_flash:
            # Flash transfers are pipelined page-by-page through the PCIe link,
            # so the end-to-end time is governed by the slower of the two legs.
            if request.direction_in:
                ssd_leg = self._ssd.read_object(request.tensor_id, request.size_bytes)
            else:
                ssd_leg = self._ssd.write_object(request.tensor_id, request.size_bytes)
            time += max(ssd_leg, pcie_leg)
        else:
            bandwidth = min(pcie.bandwidth, self._config.host_bandwidth)
            time += request.size_bytes / bandwidth
        return time

    def preload_flash(self, tensor_id: int, size_bytes: int) -> None:
        """Place a tensor on flash at time zero without charging traffic or time.

        Used to set up the initial residency of global tensors whose backing
        store is the SSD (e.g. checkpointed weights before the first iteration).
        """
        self._ssd.preload_object(tensor_id, size_bytes)

    def _account(self, request: MigrationRequest) -> None:
        traffic = self.traffic
        if request.involves_flash:
            traffic.gpu_ssd_bytes += request.size_bytes
            if request.direction_in:
                traffic.ssd_read_bytes += request.size_bytes
            else:
                traffic.ssd_write_bytes += request.size_bytes
        else:
            traffic.gpu_host_bytes += request.size_bytes
            if request.direction_in:
                traffic.host_read_bytes += request.size_bytes
            else:
                traffic.host_write_bytes += request.size_bytes
        if request.kind is MigrationKind.FAULT:
            traffic.fault_count += 1
        elif request.kind is MigrationKind.PREFETCH:
            traffic.prefetch_count += 1
        else:
            traffic.eviction_count += 1
