"""Unified virtual address space shared by GPU, host and flash."""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass, field
from functools import cached_property

from ..config import PAGE_SIZE
from ..core.extents import Extent
from ..errors import AllocationError, TranslationError


@dataclass(frozen=True)
class VirtualRange:
    """A contiguous virtual allocation backing one tensor."""

    start: int
    size_bytes: int
    page_size: int = PAGE_SIZE

    def __post_init__(self) -> None:
        if self.start % self.page_size:
            raise AllocationError("virtual ranges must be page aligned")
        if self.size_bytes <= 0:
            raise AllocationError("virtual ranges must have positive size")

    # Derived page arithmetic is queried on every residency check/migration;
    # cache it (works on a frozen dataclass: cached_property writes straight
    # to __dict__, and dataclass equality only considers declared fields).
    @cached_property
    def num_pages(self) -> int:
        return math.ceil(self.size_bytes / self.page_size)

    @cached_property
    def end(self) -> int:
        return self.start + self.num_pages * self.page_size

    @cached_property
    def first_page(self) -> int:
        return self.start // self.page_size

    def pages(self) -> range:
        """Virtual page numbers covered by the range."""
        return range(self.first_page, self.first_page + self.num_pages)

    def contains(self, vaddr: int) -> bool:
        return self.start <= vaddr < self.end

    @property
    def extent(self) -> Extent:
        """The virtual page run backing this range."""
        return Extent(self.first_page, self.num_pages)


@dataclass
class UnifiedAddressSpace:
    """Allocates tensors into one flat, page-aligned virtual address space.

    Mirrors the paper's design where the compiler plans migrations purely in
    terms of virtual addresses and the unified memory system resolves physical
    placement at run time. Small tensors are packed into whole pages (the
    paper compacts sub-4 KB tensors; modelling them as one page keeps the same
    footprint bound).
    """

    page_size: int = PAGE_SIZE
    _ranges: dict[int, VirtualRange] = field(default_factory=dict)
    _next_start: int = 0
    #: Allocation-ordered (== address-ordered: the space is a bump allocator)
    #: extent index for O(log n) reverse lookup.
    _starts: list[int] = field(default_factory=list)
    _owners: list[int] = field(default_factory=list)

    def allocate(self, tensor_id: int, size_bytes: int) -> VirtualRange:
        """Assign a virtual range to a tensor (idempotent per tensor)."""
        existing = self._ranges.get(tensor_id)
        if existing is not None:
            return existing
        if size_bytes <= 0:
            raise AllocationError(f"tensor {tensor_id} has non-positive size")
        vrange = VirtualRange(self._next_start, size_bytes, self.page_size)
        self._ranges[tensor_id] = vrange
        self._next_start = vrange.end
        self._starts.append(vrange.start)
        self._owners.append(tensor_id)
        return vrange

    def range_of(self, tensor_id: int) -> VirtualRange:
        try:
            return self._ranges[tensor_id]
        except KeyError as exc:
            raise TranslationError(f"tensor {tensor_id} has no virtual mapping") from exc

    def tensor_at(self, vaddr: int) -> int:
        """Reverse lookup: which tensor owns a virtual address (binary search)."""
        index = bisect_right(self._starts, vaddr) - 1
        if index >= 0:
            tensor_id = self._owners[index]
            if self._ranges[tensor_id].contains(vaddr):
                return tensor_id
        raise TranslationError(f"virtual address {vaddr:#x} is unmapped")

    def extent_of(self, tensor_id: int) -> Extent:
        """The virtual page run assigned to a tensor."""
        return self.range_of(tensor_id).extent

    def extents(self) -> list[tuple[int, Extent]]:
        """Every (tensor_id, extent) pair in address order."""
        return [(tid, self._ranges[tid].extent) for tid in self._owners]

    def __contains__(self, tensor_id: int) -> bool:
        return tensor_id in self._ranges

    def __len__(self) -> int:
        return len(self._ranges)

    @property
    def total_mapped_bytes(self) -> int:
        return sum(r.num_pages * self.page_size for r in self._ranges.values())
