"""Unified GPU memory and storage substrate (§4.5, §4.6 of the paper).

This package models the memory-system half of G10:

* :class:`UnifiedAddressSpace` — tensors mapped into one virtual address space
  at 4 KB page granularity;
* :class:`UnifiedPageTable` — leaf PTEs resolving to GPU memory, host memory,
  or flash pages (the paper's UVM extension), plus a :class:`TLB` model;
* :class:`MemoryPool` — byte/page accounted GPU and host memory pools;
* :class:`PageFaultModel` — the cost of the GPU fault path (Table 2's 45 µs);
* :class:`MigrationEngine` — migration metadata queues, the migration arbiter
  and transfer-set batching of Figure 10.
"""

from .address_space import UnifiedAddressSpace, VirtualRange
from .page_table import MemoryLocation, PageTableEntry, UnifiedPageTable
from .tlb import TLB
from .memory import MemoryPool
from .fault import PageFaultModel
from .migration import MigrationEngine, MigrationRequest, MigrationKind, TransferSet

__all__ = [
    "UnifiedAddressSpace",
    "VirtualRange",
    "MemoryLocation",
    "PageTableEntry",
    "UnifiedPageTable",
    "TLB",
    "MemoryPool",
    "PageFaultModel",
    "MigrationEngine",
    "MigrationRequest",
    "MigrationKind",
    "TransferSet",
]
