"""Unified page table whose leaf entries resolve to GPU, host, or flash."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Sequence

from ..core.extents import Extent
from ..errors import TranslationError
from .address_space import UnifiedAddressSpace, VirtualRange


class MemoryLocation(Enum):
    """Physical backing of a page in the unified space."""

    GPU = "gpu"
    HOST = "host"
    FLASH = "flash"
    #: Alias: policies talk about "the SSD", the page table about flash pages.
    SSD = "flash"
    UNMAPPED = "unmapped"


@dataclass(frozen=True)
class PageTableEntry:
    """One leaf PTE: where a virtual page currently lives.

    The paper extends UVM's page table so a PTE can hold a flash page address
    in addition to host/GPU physical addresses, letting the SSD controller
    update mappings during garbage collection without host involvement.
    """

    virtual_page: int
    location: MemoryLocation
    physical_page: int

    @property
    def is_resident_on_gpu(self) -> bool:
        return self.location is MemoryLocation.GPU


@dataclass
class UnifiedPageTable:
    """Tracks the physical location of every tensor's pages.

    The table keeps one extent-level record per tensor — all of a tensor's
    pages are contiguous and move together under G10's tensor-granularity
    migration — while still exposing per-page translation for fault-path
    modelling. Per-location page totals are maintained incrementally, so
    residency accounting is O(1) rather than a scan over every tensor.
    """

    address_space: UnifiedAddressSpace
    _locations: dict[int, MemoryLocation] = field(default_factory=dict)
    _physical_base: dict[int, int] = field(default_factory=dict)
    _next_physical: dict[MemoryLocation, int] = field(default_factory=dict)
    #: Pages currently mapped per location (incrementally maintained).
    _location_pages: dict[MemoryLocation, int] = field(default_factory=dict)
    #: Counters of PTE updates, exercised by GC remapping and migrations.
    pte_updates: int = 0

    def register(self, tensor_id: int, size_bytes: int) -> VirtualRange:
        """Create the virtual mapping for a tensor; initially unmapped."""
        vrange = self.address_space.allocate(tensor_id, size_bytes)
        self._locations.setdefault(tensor_id, MemoryLocation.UNMAPPED)
        return vrange

    # -- queries ---------------------------------------------------------------

    def location_of(self, tensor_id: int) -> MemoryLocation:
        try:
            return self._locations[tensor_id]
        except KeyError as exc:
            raise TranslationError(f"tensor {tensor_id} is not registered") from exc

    def is_resident(self, tensor_id: int) -> bool:
        return self.location_of(tensor_id) is MemoryLocation.GPU

    def translate(self, vaddr: int) -> PageTableEntry:
        """Translate one virtual address to its leaf PTE."""
        tensor_id = self.address_space.tensor_at(vaddr)
        vrange = self.address_space.range_of(tensor_id)
        location = self._locations[tensor_id]
        if location is MemoryLocation.UNMAPPED:
            raise TranslationError(f"virtual address {vaddr:#x} is not backed by any memory")
        page_offset = (vaddr - vrange.start) // vrange.page_size
        base = self._physical_base.get(tensor_id, 0)
        return PageTableEntry(
            virtual_page=vrange.first_page + page_offset,
            location=location,
            physical_page=base + page_offset,
        )

    def resident_tensors(self, location: MemoryLocation) -> list[int]:
        """All tensors currently placed in one location."""
        return [tid for tid, loc in self._locations.items() if loc is location]

    def resident_pages(self, location: MemoryLocation) -> int:
        """Total pages currently mapped at one location (O(1))."""
        return self._location_pages.get(location, 0)

    def physical_extent(self, tensor_id: int) -> Extent:
        """The contiguous physical page run backing one mapped tensor."""
        location = self.location_of(tensor_id)
        if location is MemoryLocation.UNMAPPED:
            raise TranslationError(f"tensor {tensor_id} has no physical backing")
        vrange = self.address_space.range_of(tensor_id)
        return Extent(self._physical_base.get(tensor_id, 0), vrange.num_pages)

    # -- updates ---------------------------------------------------------------

    def place(self, tensor_id: int, location: MemoryLocation) -> int:
        """Move a tensor's pages to a new location, updating its PTEs.

        The move is one extent-level operation; the return value is the number
        of leaf PTEs the move covers (one per 4 KB page), which the simulator
        uses to charge page-table maintenance costs.
        """
        previous = self._locations.get(tensor_id)
        if previous is None:
            raise TranslationError(f"tensor {tensor_id} is not registered")
        vrange = self.address_space.range_of(tensor_id)
        if previous is not MemoryLocation.UNMAPPED:
            self._location_pages[previous] -= vrange.num_pages
        self._locations[tensor_id] = location
        base = self._next_physical.get(location, 0)
        self._physical_base[tensor_id] = base
        self._next_physical[location] = base + vrange.num_pages
        self._location_pages[location] = (
            self._location_pages.get(location, 0) + vrange.num_pages
        )
        self.pte_updates += vrange.num_pages
        return vrange.num_pages

    def place_batch(self, tensor_ids: Sequence[int], location: MemoryLocation) -> int:
        """Move several tensors to one location with one grouped PTE update.

        Used by the executor's batched fault path: all of a kernel's faulting
        tensors land on the GPU together. Tensors are placed in list order, so
        physical-base assignment matches the equivalent sequence of
        :meth:`place` calls; the PTE-maintenance counter is bumped once with
        the grouped total.
        """
        total_pages = 0
        pages = self._location_pages
        next_base = self._next_physical.get(location, 0)
        for tensor_id in tensor_ids:
            previous = self._locations.get(tensor_id)
            if previous is None:
                raise TranslationError(f"tensor {tensor_id} is not registered")
            num_pages = self.address_space.range_of(tensor_id).num_pages
            if previous is not MemoryLocation.UNMAPPED:
                pages[previous] -= num_pages
            self._locations[tensor_id] = location
            self._physical_base[tensor_id] = next_base
            next_base += num_pages
            total_pages += num_pages
        self._next_physical[location] = next_base
        pages[location] = pages.get(location, 0) + total_pages
        self.pte_updates += total_pages
        return total_pages

    def unmap(self, tensor_id: int) -> None:
        """Drop the physical backing of a tensor (freed intermediate)."""
        previous = self._locations.get(tensor_id)
        if previous is None:
            raise TranslationError(f"tensor {tensor_id} is not registered")
        if previous is not MemoryLocation.UNMAPPED:
            self._location_pages[previous] -= self.address_space.range_of(tensor_id).num_pages
        self._locations[tensor_id] = MemoryLocation.UNMAPPED

    def remap_flash_pages(self, tensor_id: int, new_base: int) -> int:
        """SSD-controller-driven remap after garbage collection moved flash pages."""
        if self.location_of(tensor_id) is not MemoryLocation.FLASH:
            raise TranslationError("only flash-resident tensors can be GC-remapped")
        vrange = self.address_space.range_of(tensor_id)
        self._physical_base[tensor_id] = new_base
        self.pte_updates += vrange.num_pages
        return vrange.num_pages
