"""Byte/page accounted memory pools for GPU and host memory.

The pool tracks residency at *extent* granularity: each resident tensor owns
one (or, under fragmentation, a few) contiguous page runs assigned by a
first-fit :class:`~repro.core.extents.ExtentAllocator`. Occupancy counters are
maintained incrementally, so ``used_bytes``/``free_bytes``/``can_fit`` — the
simulator's innermost admission checks — are O(1) instead of a sum over every
resident tensor.
"""

from __future__ import annotations

import math

from ..config import PAGE_SIZE
from ..core.extents import Extent, ExtentAllocator
from ..errors import AllocationError


class MemoryPool:
    """A capacity-limited memory pool tracking per-tensor residency.

    Allocation is accounted at page granularity (a tensor occupies whole
    pages), which is how the unified memory system manages every tensor.
    Admission is purely byte-based — the extent allocator records *where* the
    pages live and never rejects a fitting request (a fragmented pool spills a
    tensor across multiple runs, like a real allocator would).
    """

    def __init__(self, name: str, capacity_bytes: int, page_size: int = PAGE_SIZE):
        if capacity_bytes < 0:
            raise AllocationError(f"pool {name!r} cannot have negative capacity")
        if page_size <= 0:
            raise AllocationError("page size must be positive")
        self.name = name
        self.capacity_bytes = capacity_bytes
        self.page_size = page_size
        self._resident: dict[int, int] = {}
        self._extents: dict[int, tuple[Extent, ...]] = {}
        self._allocator = ExtentAllocator()
        self._used_bytes = 0
        #: High-water mark of occupancy, for reporting.
        self.peak_used_bytes = 0

    # -- accounting -------------------------------------------------------

    def _page_bytes(self, size_bytes: int) -> int:
        return max(1, math.ceil(size_bytes / self.page_size)) * self.page_size

    @property
    def used_bytes(self) -> int:
        return self._used_bytes

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self._used_bytes

    @property
    def num_resident(self) -> int:
        return len(self._resident)

    def contains(self, tensor_id: int) -> bool:
        return tensor_id in self._resident

    def resident_tensors(self) -> list[int]:
        return list(self._resident)

    def resident_size(self, tensor_id: int) -> int:
        return self._resident.get(tensor_id, 0)

    def can_fit(self, size_bytes: int) -> bool:
        return self._page_bytes(size_bytes) <= self.free_bytes

    # -- extent views -----------------------------------------------------

    def extents_of(self, tensor_id: int) -> tuple[Extent, ...]:
        """The physical page runs backing one resident tensor (empty if absent)."""
        return self._extents.get(tensor_id, ())

    @property
    def num_extents(self) -> int:
        """Total extents across resident tensors (== residents when unfragmented)."""
        return sum(len(extents) for extents in self._extents.values())

    def fragmentation(self) -> float:
        """Fraction of resident tensors split across more than one run."""
        if not self._extents:
            return 0.0
        split = sum(1 for extents in self._extents.values() if len(extents) > 1)
        return split / len(self._extents)

    # -- mutation -----------------------------------------------------------

    def allocate(self, tensor_id: int, size_bytes: int) -> None:
        """Reserve space for a tensor; raises when the pool is full."""
        if tensor_id in self._resident:
            return
        rounded = self._page_bytes(size_bytes)
        if rounded > self.free_bytes:
            raise AllocationError(
                f"pool {self.name!r} cannot fit tensor {tensor_id}: "
                f"need {rounded} bytes, only {self.free_bytes} free"
            )
        self._resident[tensor_id] = rounded
        self._extents[tensor_id] = self._allocator.allocate(rounded // self.page_size)
        self._used_bytes += rounded
        if self._used_bytes > self.peak_used_bytes:
            self.peak_used_bytes = self._used_bytes
        return

    def free(self, tensor_id: int) -> int:
        """Release a tensor's space; returns the bytes freed (0 if absent)."""
        freed = self._resident.pop(tensor_id, 0)
        if freed:
            self._used_bytes -= freed
            self._allocator.free(self._extents.pop(tensor_id))
        return freed

    def clear(self) -> None:
        self._resident.clear()
        self._extents.clear()
        self._allocator = ExtentAllocator()
        self._used_bytes = 0
