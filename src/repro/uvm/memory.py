"""Byte/page accounted memory pools for GPU and host memory."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..config import PAGE_SIZE
from ..errors import AllocationError


@dataclass
class MemoryPool:
    """A capacity-limited memory pool tracking per-tensor residency.

    Allocation is accounted at page granularity (a tensor occupies whole
    pages), which is how the unified memory system manages every tensor.
    """

    name: str
    capacity_bytes: int
    page_size: int = PAGE_SIZE
    _resident: dict[int, int] = field(default_factory=dict)
    #: High-water mark of occupancy, for reporting.
    peak_used_bytes: int = 0

    def __post_init__(self) -> None:
        if self.capacity_bytes < 0:
            raise AllocationError(f"pool {self.name!r} cannot have negative capacity")
        if self.page_size <= 0:
            raise AllocationError("page size must be positive")

    # -- accounting -------------------------------------------------------

    def _page_bytes(self, size_bytes: int) -> int:
        return max(1, math.ceil(size_bytes / self.page_size)) * self.page_size

    @property
    def used_bytes(self) -> int:
        return sum(self._resident.values())

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    @property
    def num_resident(self) -> int:
        return len(self._resident)

    def contains(self, tensor_id: int) -> bool:
        return tensor_id in self._resident

    def resident_tensors(self) -> list[int]:
        return list(self._resident)

    def resident_size(self, tensor_id: int) -> int:
        return self._resident.get(tensor_id, 0)

    def can_fit(self, size_bytes: int) -> bool:
        return self._page_bytes(size_bytes) <= self.free_bytes

    # -- mutation -----------------------------------------------------------

    def allocate(self, tensor_id: int, size_bytes: int) -> None:
        """Reserve space for a tensor; raises when the pool is full."""
        if tensor_id in self._resident:
            return
        rounded = self._page_bytes(size_bytes)
        if rounded > self.free_bytes:
            raise AllocationError(
                f"pool {self.name!r} cannot fit tensor {tensor_id}: "
                f"need {rounded} bytes, only {self.free_bytes} free"
            )
        self._resident[tensor_id] = rounded
        self.peak_used_bytes = max(self.peak_used_bytes, self.used_bytes)

    def free(self, tensor_id: int) -> int:
        """Release a tensor's space; returns the bytes freed (0 if absent)."""
        return self._resident.pop(tensor_id, 0)

    def clear(self) -> None:
        self._resident.clear()
