"""A small set-associative-ish TLB model for the unified address space."""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from ..errors import ConfigurationError


@dataclass
class TLB:
    """LRU TLB over virtual page numbers.

    The executor charges a page-table walk for every miss; hit/miss counters
    feed the address-translation overhead model.
    """

    entries: int = 4096
    _cache: OrderedDict[int, bool] = field(default_factory=OrderedDict)
    hits: int = 0
    misses: int = 0

    def __post_init__(self) -> None:
        if self.entries <= 0:
            raise ConfigurationError("TLB must have a positive number of entries")

    def access(self, virtual_page: int) -> bool:
        """Touch one virtual page; returns True on a hit."""
        if virtual_page in self._cache:
            self._cache.move_to_end(virtual_page)
            self.hits += 1
            return True
        self.misses += 1
        self._cache[virtual_page] = True
        if len(self._cache) > self.entries:
            self._cache.popitem(last=False)
        return False

    def invalidate(self, virtual_page: int) -> None:
        """Shoot down one entry (its page moved to a different memory)."""
        self._cache.pop(virtual_page, None)

    def flush(self) -> None:
        self._cache.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
