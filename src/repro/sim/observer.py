"""Observer hooks for the execution simulator.

Instrumenting a run used to require subclassing a policy and intercepting its
decision hooks; :class:`SimObserver` decouples observation from decision
making. Observers attach to an :class:`~repro.sim.executor.ExecutionSimulator`
(directly, or through ``Scenario.run(observers=...)`` /
:func:`~repro.experiments.harness.run_policy`) and are notified of every
kernel execution and every migration the executor submits::

    class StallLogger(SimObserver):
        def on_kernel_finish(self, kernel, timing, now):
            if timing.stall > 0:
                print(f"kernel {kernel.index} stalled {timing.stall * 1e3:.2f} ms")

    Scenario("bert", scale="ci").run(observers=(StallLogger(),))

Hooks are best-effort notifications: they must not mutate simulator state, and
their return values are ignored.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..graph.kernel import Kernel
    from ..uvm.migration import MigrationRequest
    from .results import KernelTiming


class SimObserver:
    """Base class for simulator instrumentation; every hook is a no-op.

    Subclass and override any subset of the hooks. All times are simulated
    seconds since the start of the iteration.
    """

    def on_kernel_start(self, kernel: "Kernel", start_time: float) -> None:
        """``kernel`` begins executing at ``start_time`` (stalls resolved)."""

    def on_kernel_finish(self, kernel: "Kernel", timing: "KernelTiming", now: float) -> None:
        """``kernel`` finished at ``now``; ``timing`` carries its stall breakdown."""

    def on_migration(self, request: "MigrationRequest", submitted: float, completion: float) -> None:
        """A migration (fault, prefetch or eviction) was submitted.

        ``request`` identifies the tensor, direction and kind; ``submitted``
        is the submission time and ``completion`` the time the transfer will
        finish draining.
        """


class TraceRecorder(SimObserver):
    """Reference observer that records every event as a plain tuple.

    ``events`` holds, in order: ``("kernel_start", index, start_time)``,
    ``("kernel_finish", index, stall, finish_time)`` and
    ``("migration", kind, tensor_id, source, destination, submitted,
    completion)``. Useful in tests and as a template for custom observers.
    """

    def __init__(self) -> None:
        self.events: list[tuple] = []

    def on_kernel_start(self, kernel, start_time):
        self.events.append(("kernel_start", kernel.index, start_time))

    def on_kernel_finish(self, kernel, timing, now):
        self.events.append(("kernel_finish", kernel.index, timing.stall, now))

    def on_migration(self, request, submitted, completion):
        self.events.append(
            (
                "migration",
                request.kind.name.lower(),
                request.tensor_id,
                request.source.name.lower(),
                request.destination.name.lower(),
                submitted,
                completion,
            )
        )

    def count(self, event_kind: str) -> int:
        """Number of recorded events of one kind (``"migration"``, ...)."""
        return sum(1 for event in self.events if event[0] == event_kind)

    def migrations(self, kind: str | None = None) -> list[tuple]:
        """Recorded migration events, optionally filtered by kind name."""
        return [
            event
            for event in self.events
            if event[0] == "migration" and (kind is None or event[1] == kind)
        ]
