"""A minimal discrete-event queue used by the execution simulator."""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from ..errors import SimulationError


@dataclass(order=True)
class Event:
    """One scheduled event: a timestamp plus an arbitrary payload."""

    time: float
    sequence: int
    kind: str = field(compare=False)
    payload: Any = field(compare=False, default=None)


class EventQueue:
    """Priority queue of timestamped events with stable FIFO tie-breaking."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._now = 0.0

    @property
    def now(self) -> float:
        return self._now

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, time: float, kind: str, payload: Any = None) -> Event:
        """Add an event at an absolute timestamp."""
        if time < 0:
            raise SimulationError("cannot schedule an event at negative time")
        event = Event(time=time, sequence=next(self._counter), kind=kind, payload=payload)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event, advancing the clock."""
        if not self._heap:
            raise SimulationError("event queue is empty")
        event = heapq.heappop(self._heap)
        self._now = max(self._now, event.time)
        return event

    def peek_time(self) -> float | None:
        """Timestamp of the next event, or None when empty."""
        return self._heap[0].time if self._heap else None

    def pop_until(self, time: float) -> list[Event]:
        """Pop every event with timestamp <= ``time`` in order."""
        due: list[Event] = []
        while self._heap and self._heap[0].time <= time:
            due.append(self.pop())
        return due

    def drain(self, handler: Callable[[Event], None]) -> None:
        """Pop and handle every remaining event."""
        while self._heap:
            handler(self.pop())
