"""The simulation engine: the event queue and the single simulation entry point.

Every way of running a simulation — ``Scenario.run()``, the sweep runner's
worker processes, the legacy ``run_policy`` harness function and its
deprecated ``repro.run_simulation`` shim — funnels into :func:`simulate`,
which owns the one place an :class:`~repro.sim.executor.ExecutionSimulator`
is constructed. The executor itself replays the kernel trace by draining a
single :class:`EventQueue` of timestamped events (kernel boundaries, transfer
completions), with a :class:`~repro.sim.results.PerfCounters` instrumentation
layer recording what the loop did.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Sequence

from ..errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..config import SystemConfig
    from ..core.vitality import VitalityReport
    from ..graph.training import TrainingGraph
    from .observer import SimObserver
    from .policy import MigrationPolicy
    from .results import SimulationResult

#: A tie-break key for same-timestamp events. Single-session simulations use
#: plain ints (the executor schedules eviction completions with
#: ``priority=tensor_id``); multi-tenant simulations use tuples such as
#: ``(rank, tenant_name, request_index)`` so the drain order depends only on
#: stable identities, never on the order tenants were registered. Within one
#: queue all priorities must be mutually comparable (all ints or all
#: same-shape tuples).
Priority = int | tuple[int | str, ...]


@dataclass(order=True)
class Event:
    """One scheduled event: a timestamp plus an arbitrary payload.

    Events order by ``(time, priority, sequence)``; the priority gives the
    executor deterministic tie-breaks between same-timestamp events (eviction
    completions are scheduled with ``priority=tensor_id``, reproducing the
    historical ``(completion, tensor_id)`` drain order). The ``sequence``
    counter is a last-resort FIFO tie-break only: any event source whose
    scheduling order can vary (e.g. multiple tenants registering arrivals)
    must encode a content-derived :data:`Priority` tuple so same-timestamp
    drains are independent of insertion order.
    """

    time: float
    priority: Priority = 0
    sequence: int = 0
    kind: str = field(compare=False, default="")
    payload: Any = field(compare=False, default=None)


class EventQueue:
    """Priority queue of timestamped events with stable FIFO tie-breaking."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._now = 0.0

    @property
    def now(self) -> float:
        return self._now

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(
        self, time: float, kind: str, payload: Any = None, priority: Priority = 0
    ) -> Event:
        """Add an event at an absolute timestamp."""
        if time < 0:
            raise SimulationError("cannot schedule an event at negative time")
        event = Event(
            time=time, priority=priority, sequence=next(self._counter),
            kind=kind, payload=payload,
        )
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event, advancing the clock."""
        if not self._heap:
            raise SimulationError("event queue is empty")
        event = heapq.heappop(self._heap)
        self._now = max(self._now, event.time)
        return event

    def peek_time(self) -> float | None:
        """Timestamp of the next event, or None when empty."""
        return self._heap[0].time if self._heap else None

    def pop_until(self, time: float) -> list[Event]:
        """Pop every event with timestamp <= ``time`` in order."""
        due: list[Event] = []
        while self._heap and self._heap[0].time <= time:
            due.append(self.pop())
        return due

    def drain(self, handler: Callable[[Event], None]) -> None:
        """Pop and handle every remaining event."""
        while self._heap:
            handler(self.pop())


def simulate(
    graph: "TrainingGraph",
    config: "SystemConfig",
    policy: "MigrationPolicy",
    report: "VitalityReport | None" = None,
    observers: "Sequence[SimObserver]" = (),
) -> "SimulationResult":
    """Run one training iteration under a policy — the single simulation path.

    This is the only place an :class:`~repro.sim.executor.ExecutionSimulator`
    is constructed: the Scenario/Session API, the sweep/queue workers, the
    legacy harness functions and the ``repro.run_simulation`` shim all route
    here, so simulator setup logic cannot drift between entry points.
    """
    from .executor import ExecutionSimulator

    return ExecutionSimulator(graph, config, policy, report, observers=observers).run()
