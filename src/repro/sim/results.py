"""Result records produced by the execution simulator."""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field

import numpy as np

from ..errors import SimulationError
from ..uvm.migration import TrafficCounters


@dataclass(frozen=True)
class KernelTiming:
    """Timing of one kernel in the simulated execution."""

    index: int
    ideal_duration: float
    stall: float
    start_time: float

    @property
    def actual_duration(self) -> float:
        return self.ideal_duration + self.stall

    @property
    def slowdown(self) -> float:
        """Actual over ideal duration (1.0 means no stall)."""
        if self.ideal_duration <= 0:
            return 1.0
        return self.actual_duration / self.ideal_duration

    def to_dict(self) -> dict:
        """All fields as a JSON-safe dictionary."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "KernelTiming":
        """Inverse of :meth:`to_dict`."""
        return cls(
            index=data["index"],
            ideal_duration=data["ideal_duration"],
            stall=data["stall"],
            start_time=data["start_time"],
        )


@dataclass
class PerfCounters:
    """Instrumentation of one simulator run: what the event loop actually did.

    All counters are *deterministic* — two runs of the same cell produce
    identical values, so they serialize into cached payloads without breaking
    bit-for-bit reproducibility. The only exception is :attr:`phase_seconds`
    (host wall-clock time per phase), which is excluded from equality and from
    :meth:`to_dict` precisely because it is machine-dependent; it exists so
    ``repro bench`` and interactive profiling can see where real time went.
    """

    #: Events the simulation loop processed (kernel boundaries + completions).
    events_processed: int = 0
    #: Kernels replayed.
    kernels_executed: int = 0
    #: 4 KB pages moved across the hierarchy by faults/prefetches/evictions.
    pages_moved: int = 0
    #: Leaf PTE updates charged by the unified page table.
    pte_updates: int = 0
    #: Demand page-fault events taken (mirrors ``SimulationResult.fault_events``).
    fault_events: int = 0
    #: Times a kernel had to wait on in-flight evictions for GPU space.
    eviction_stalls: int = 0
    #: Simulated seconds spent waiting on eviction drains for space.
    eviction_stall_seconds: float = 0.0
    #: Host wall-clock seconds per phase ("plan", "execute"); not serialized,
    #: not compared (machine-dependent).
    phase_seconds: dict = field(default_factory=dict, compare=False, repr=False)
    #: Plan-fragment cache outcome of this run's planning phase ("full_hits",
    #: "fragment_hits", "misses" deltas). Not serialized, not compared: the
    #: outcome depends on what this *process* planned before, so identical
    #: cells may legitimately differ across runs — including it in payloads
    #: would break cross-mode bit-identity.
    plan_cache: dict = field(default_factory=dict, compare=False, repr=False)

    def to_dict(self) -> dict:
        """JSON-safe dump of the deterministic counters only."""
        return {
            "events_processed": self.events_processed,
            "kernels_executed": self.kernels_executed,
            "pages_moved": self.pages_moved,
            "pte_updates": self.pte_updates,
            "fault_events": self.fault_events,
            "eviction_stalls": self.eviction_stalls,
            "eviction_stall_seconds": self.eviction_stall_seconds,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PerfCounters":
        """Inverse of :meth:`to_dict`; tolerates payloads from older versions."""
        return cls(
            events_processed=data.get("events_processed", 0),
            kernels_executed=data.get("kernels_executed", 0),
            pages_moved=data.get("pages_moved", 0),
            pte_updates=data.get("pte_updates", 0),
            fault_events=data.get("fault_events", 0),
            eviction_stalls=data.get("eviction_stalls", 0),
            eviction_stall_seconds=data.get("eviction_stall_seconds", 0.0),
        )


@dataclass
class SimulationResult:
    """Everything a policy run produces, consumed by the experiment harness."""

    model_name: str
    batch_size: int
    policy_name: str
    #: Sum of kernel durations: the execution time of the infinite-memory ideal.
    ideal_time: float
    #: Simulated end-to-end execution time of one training iteration.
    execution_time: float
    kernel_timings: list[KernelTiming] = field(default_factory=list)
    traffic: TrafficCounters = field(default_factory=TrafficCounters)
    #: Bytes written to / read from the SSD (subset of ``traffic``).
    ssd_bytes_written: float = 0.0
    ssd_bytes_read: float = 0.0
    ssd_write_amplification: float = 1.0
    #: Number of demand page-fault events taken during execution.
    fault_events: int = 0
    #: Peak bytes resident in GPU / host memory during the run.
    peak_gpu_bytes: int = 0
    peak_host_bytes: int = 0
    #: True when the policy could not execute the workload (e.g. FlashNeuron
    #: with a kernel working set that exceeds GPU memory).
    failed: bool = False
    failure_reason: str = ""
    #: Event-loop instrumentation (deterministic counters + wall-time phases).
    perf: PerfCounters = field(default_factory=PerfCounters)

    def __post_init__(self) -> None:
        if not self.failed and self.execution_time + 1e-12 < self.ideal_time:
            raise SimulationError(
                "execution time cannot beat the infinite-memory ideal "
                f"({self.execution_time} < {self.ideal_time})"
            )

    # -- headline metrics ------------------------------------------------------

    @property
    def normalized_performance(self) -> float:
        """Throughput normalised to the ideal system (Figure 11's y-axis)."""
        if self.failed or self.execution_time <= 0:
            return 0.0
        return self.ideal_time / self.execution_time

    @property
    def slowdown(self) -> float:
        """Execution time over ideal time (>= 1.0)."""
        if self.failed:
            return float("inf")
        return self.execution_time / self.ideal_time

    def throughput(self) -> float:
        """Training throughput in samples per second (Figure 15's y-axis)."""
        if self.failed or self.execution_time <= 0:
            return 0.0
        return self.batch_size / self.execution_time

    @property
    def total_stall_time(self) -> float:
        return sum(t.stall for t in self.kernel_timings)

    @property
    def stall_fraction(self) -> float:
        """Fraction of execution time spent stalled (Figure 12's dark bars)."""
        if self.failed or self.execution_time <= 0:
            return 1.0
        return min(1.0, self.total_stall_time / self.execution_time)

    @property
    def overlap_fraction(self) -> float:
        """Fraction of execution time where compute proceeds (Figure 12's light bars)."""
        return 1.0 - self.stall_fraction

    def kernel_slowdowns(self) -> np.ndarray:
        """Per-kernel slowdown factors (Figure 13's distribution)."""
        return np.asarray([t.slowdown for t in self.kernel_timings], dtype=np.float64)

    def stalled_kernel_fraction(self, threshold: float = 1.01) -> float:
        """Fraction of kernels slowed beyond ``threshold`` x ideal."""
        slowdowns = self.kernel_slowdowns()
        if slowdowns.size == 0:
            return 0.0
        return float((slowdowns > threshold).mean())

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> dict:
        """Stable JSON-safe representation of the complete result.

        Round-trips through :meth:`from_dict` without loss: every stored field
        (including per-kernel timings and traffic counters) is preserved, so
        derived metrics computed on a deserialized result are bit-identical to
        the original. This is the on-disk format of the sweep result cache.
        An infinite execution time (failed runs) is stored as ``None`` so the
        output is strict RFC-8259 JSON rather than the ``Infinity`` literal.
        """
        return {
            "model_name": self.model_name,
            "batch_size": self.batch_size,
            "policy_name": self.policy_name,
            "ideal_time": self.ideal_time,
            "execution_time": self.execution_time if math.isfinite(self.execution_time) else None,
            "kernel_timings": [t.to_dict() for t in self.kernel_timings],
            "traffic": dataclasses.asdict(self.traffic),
            "ssd_bytes_written": self.ssd_bytes_written,
            "ssd_bytes_read": self.ssd_bytes_read,
            "ssd_write_amplification": self.ssd_write_amplification,
            "fault_events": self.fault_events,
            "peak_gpu_bytes": self.peak_gpu_bytes,
            "peak_host_bytes": self.peak_host_bytes,
            "failed": self.failed,
            "failure_reason": self.failure_reason,
            "perf": self.perf.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SimulationResult":
        """Inverse of :meth:`to_dict`."""
        execution_time = data["execution_time"]
        if execution_time is None:  # JSON stores inf as null
            execution_time = float("inf")
        return cls(
            model_name=data["model_name"],
            batch_size=data["batch_size"],
            policy_name=data["policy_name"],
            ideal_time=data["ideal_time"],
            execution_time=execution_time,
            kernel_timings=[KernelTiming.from_dict(t) for t in data["kernel_timings"]],
            traffic=TrafficCounters(**data["traffic"]),
            ssd_bytes_written=data["ssd_bytes_written"],
            ssd_bytes_read=data["ssd_bytes_read"],
            ssd_write_amplification=data["ssd_write_amplification"],
            fault_events=data["fault_events"],
            peak_gpu_bytes=data["peak_gpu_bytes"],
            peak_host_bytes=data["peak_host_bytes"],
            failed=data["failed"],
            failure_reason=data["failure_reason"],
            perf=PerfCounters.from_dict(data.get("perf", {})),
        )

    def summary(self) -> dict[str, float | str | bool]:
        """Compact dictionary used by reports and tests."""
        return {
            "model": self.model_name,
            "batch_size": self.batch_size,
            "policy": self.policy_name,
            "ideal_time_s": self.ideal_time,
            "execution_time_s": self.execution_time,
            "normalized_performance": self.normalized_performance,
            "throughput": self.throughput(),
            "stall_fraction": self.stall_fraction,
            "gpu_ssd_traffic_gb": self.traffic.gpu_ssd_bytes / 1e9,
            "gpu_host_traffic_gb": self.traffic.gpu_host_bytes / 1e9,
            "fault_events": self.fault_events,
            "failed": self.failed,
        }
