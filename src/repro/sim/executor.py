"""The execution simulator: replay one training iteration under a policy.

The replay is a single event loop: transfer completions are events in one
:class:`~repro.sim.engine.EventQueue` (ordered by time, then tensor id, so
same-timestamp drains are deterministic) and kernel boundaries advance the
clock, draining due events before each kernel starts. A
:class:`~repro.sim.results.PerfCounters` layer records what the loop did —
events processed, pages moved, faults, eviction stalls — plus host wall-time
per phase.
"""

from __future__ import annotations

import math
import time as _time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Sequence

from ..config import SystemConfig
from ..core.plan_cache import snapshot_counters as plan_cache_snapshot
from ..core.vitality import TensorVitalityAnalyzer, VitalityReport
from ..errors import SimulationError
from ..graph.training import TrainingGraph
from ..ssd.ssd import SSDDevice
from ..uvm.address_space import UnifiedAddressSpace
from ..uvm.fault import PageFaultModel
from ..uvm.memory import MemoryPool
from ..uvm.migration import MigrationEngine, MigrationKind, MigrationRequest
from ..uvm.page_table import MemoryLocation, UnifiedPageTable
from .engine import EventQueue
from .observer import SimObserver
from .policy import MigrationPolicy, PolicyContext
from .results import KernelTiming, PerfCounters, SimulationResult

#: Effectively unlimited capacity used by the Ideal policy's GPU pool.
_UNLIMITED = 1 << 62


class _WorkloadFailure(Exception):
    """Raised internally when a policy cannot execute the workload at all."""


@dataclass
class _PendingEviction:
    """An eviction whose transfer is still draining; GPU space frees at completion."""

    completion: float
    tensor_id: int
    size_bytes: int


class ExecutionSimulator:
    """Replays a profiled training iteration under a migration policy.

    The simulator owns the memory substrates (GPU/host pools, unified page
    table, SSD, migration engine) and enforces the execution rules: a kernel
    starts only once all of its tensors are resident in GPU memory and its
    outputs have space; every byte moved is timed by the migration engine; any
    waiting shows up as per-kernel stall time in the result.

    ``observers`` (:class:`~repro.sim.observer.SimObserver`) are notified of
    every kernel start/finish and every migration submission, so
    instrumentation no longer requires subclassing a policy.
    """

    def __init__(
        self,
        graph: TrainingGraph,
        config: SystemConfig,
        policy: MigrationPolicy,
        report: VitalityReport | None = None,
        observers: Sequence[SimObserver] = (),
    ):
        if any(k.duration <= 0 for k in graph.kernels):
            raise SimulationError("graph must be profiled before simulation")
        self._graph = graph
        self._config = config
        self._policy = policy
        self._report = report or TensorVitalityAnalyzer(graph).analyze()
        self._observers: list[SimObserver] = list(observers)
        self._perf = PerfCounters()

        gpu_capacity = config.gpu.memory_bytes if policy.enforce_capacity else _UNLIMITED
        self._gpu = MemoryPool("gpu", gpu_capacity, config.uvm.page_size)
        self._host = MemoryPool("host", config.host_memory_bytes, config.uvm.page_size)
        self._page_table = UnifiedPageTable(UnifiedAddressSpace(config.uvm.page_size))
        self._fault_model = PageFaultModel(config.uvm)

        cache_before = plan_cache_snapshot()
        plan_start = _time.perf_counter()
        policy.setup(PolicyContext(config=config, graph=graph, report=self._report))
        self._perf.phase_seconds["plan"] = _time.perf_counter() - plan_start
        self._perf.plan_cache = {
            name: count - cache_before[name]
            for name, count in plan_cache_snapshot().items()
        }
        self._engine = MigrationEngine(
            config,
            ssd=SSDDevice(config.ssd),
            per_request_overhead=policy.per_request_overhead(),
        )

        #: tensor id -> completion time of an in-flight prefetch/fault.
        self._arrival_time: dict[int, float] = {}
        #: tensor id -> pending eviction record (GPU space not yet released).
        self._evicting: dict[int, _PendingEviction] = {}
        #: The single event loop: in-flight eviction completions, ordered by
        #: (time, tensor id) so same-timestamp drains are deterministic.
        self._events = EventQueue()
        #: Planned prefetches that could not start for lack of GPU headroom;
        #: retried at the next kernel boundaries (the migration handler keeps
        #: them queued rather than dropping them).
        self._deferred_prefetches: OrderedDict[int, None] = OrderedDict()
        #: LRU recency: insertion-ordered map, oldest-used tensor first.
        self._last_used: OrderedDict[int, float] = OrderedDict()
        self._fault_events = 0

        self._deaths_by_slot: dict[int, list[int]] = {}
        for usage in self._report.usages.values():
            if not usage.is_global:
                self._deaths_by_slot.setdefault(usage.death_slot, []).append(usage.tensor_id)

        # Batched fault path: the per-tensor fault cost depends only on the
        # tensor size, so one vectorized pass over the graph replaces a scalar
        # fault_batches/fault_overhead call pair per demand fault.
        tensors = list(graph.tensors)
        sizes = [tensor.size_bytes for tensor in tensors]
        fault_batches = self._fault_model.batch_fault_batches(sizes)
        fault_overheads = fault_batches * config.uvm.fault_latency
        self._fault_batches: dict[int, int] = {
            tensor.tensor_id: batches
            for tensor, batches in zip(tensors, fault_batches.tolist())
        }
        self._fault_overheads: dict[int, float] = {
            tensor.tensor_id: overhead
            for tensor, overhead in zip(tensors, fault_overheads.tolist())
        }
        #: GPU placements deferred within one kernel's residency loop and
        #: flushed as a single grouped page-table update (before observers and
        #: lifetime bookkeeping see the kernel boundary).
        self._pending_gpu_places: list[int] = []

    # -- public API ----------------------------------------------------------------

    @property
    def engine(self) -> MigrationEngine:
        return self._engine

    @property
    def page_table(self) -> UnifiedPageTable:
        return self._page_table

    def add_observer(self, observer: SimObserver) -> None:
        """Attach one more observer before (or during) the run."""
        self._observers.append(observer)

    @property
    def perf(self) -> PerfCounters:
        """Live instrumentation counters of this run."""
        return self._perf

    def run(self) -> SimulationResult:
        """Simulate one training iteration and return the result."""
        execute_start = _time.perf_counter()
        try:
            result = self._run()
            self._finalize_perf(execute_start)
            return result
        except _WorkloadFailure as failure:
            # Placements deferred by tensors that *did* fit before the failure
            # must still land, so the PTE accounting matches the sequential
            # reference behaviour.
            self._flush_gpu_places()
            self._finalize_perf(execute_start)
            return SimulationResult(
                model_name=self._graph.name,
                batch_size=self._graph.batch_size,
                policy_name=self._policy.name,
                ideal_time=self._graph.trace().total_compute_time,
                execution_time=float("inf"),
                failed=True,
                failure_reason=str(failure),
                perf=self._perf,
            )

    def _finalize_perf(self, execute_start: float) -> None:
        self._perf.phase_seconds["execute"] = _time.perf_counter() - execute_start
        self._perf.fault_events = self._fault_events
        self._perf.pte_updates = self._page_table.pte_updates

    # -- main loop --------------------------------------------------------------------

    def _run(self) -> SimulationResult:
        self._place_global_tensors()
        timings: list[KernelTiming] = []
        now = 0.0

        for kernel in self._graph.kernels:
            self._drain_evictions(now)

            for tensor_id in list(self._deferred_prefetches):
                if self._issue_prefetch(tensor_id, now):
                    self._deferred_prefetches.pop(tensor_id, None)
            for decision in self._policy.prefetches_for(kernel, now):
                if not self._issue_prefetch(decision.tensor_id, now):
                    self._deferred_prefetches[decision.tensor_id] = None

            protected = set(kernel.tensor_ids)
            ready = now
            for tensor_id in kernel.tensor_ids:
                ready = max(ready, self._ensure_resident(tensor_id, protected, now))
            self._flush_gpu_places()

            for observer in self._observers:
                observer.on_kernel_start(kernel, ready)
            stall = ready - now
            finish = ready + kernel.duration
            timing = KernelTiming(
                index=kernel.index,
                ideal_duration=kernel.duration,
                stall=stall,
                start_time=ready,
            )
            timings.append(timing)
            now = finish
            self._perf.events_processed += 1
            self._perf.kernels_executed += 1
            for observer in self._observers:
                observer.on_kernel_finish(kernel, timing, now)

            for tensor_id in kernel.tensor_ids:
                self._last_used[tensor_id] = now
                self._last_used.move_to_end(tensor_id)
            self._policy.on_kernel_finished(kernel, now)
            self._free_dead_tensors(kernel.index)

            for decision in self._policy.evictions_for(kernel, now):
                self._issue_eviction(decision.tensor_id, decision.destination, now, protected=())

        ssd = self._engine.ssd
        return SimulationResult(
            model_name=self._graph.name,
            batch_size=self._graph.batch_size,
            policy_name=self._policy.name,
            ideal_time=self._graph.trace().total_compute_time,
            execution_time=now,
            kernel_timings=timings,
            perf=self._perf,
            traffic=self._engine.traffic,
            ssd_bytes_written=ssd.statistics.bytes_written,
            ssd_bytes_read=ssd.statistics.bytes_read,
            ssd_write_amplification=ssd.write_amplification,
            fault_events=self._fault_events,
            peak_gpu_bytes=self._gpu.peak_used_bytes,
            peak_host_bytes=self._host.peak_used_bytes,
        )

    # -- setup ------------------------------------------------------------------------

    def _place_global_tensors(self) -> None:
        """Initial residency: weights/optimizer state fill GPU, then host, then SSD."""
        globals_sorted = sorted(
            (t for t in self._graph.tensors if t.is_global),
            key=lambda t: self._report.usages.get(t.tensor_id).birth_slot
            if t.tensor_id in self._report.usages
            else 0,
        )
        for tensor in globals_sorted:
            self._page_table.register(tensor.tensor_id, tensor.size_bytes)
            if self._gpu.can_fit(tensor.size_bytes):
                self._gpu.allocate(tensor.tensor_id, tensor.size_bytes)
                self._page_table.place(tensor.tensor_id, MemoryLocation.GPU)
            elif self._host.can_fit(tensor.size_bytes):
                self._host.allocate(tensor.tensor_id, tensor.size_bytes)
                self._page_table.place(tensor.tensor_id, MemoryLocation.HOST)
            else:
                self._engine.preload_flash(tensor.tensor_id, tensor.size_bytes)
                self._page_table.place(tensor.tensor_id, MemoryLocation.FLASH)

    # -- residency management --------------------------------------------------------------

    def _ensure_resident(self, tensor_id: int, protected: set[int], now: float) -> float:
        """Make one tensor resident in GPU memory; return when it is usable."""
        size = self._graph.tensor(tensor_id).size_bytes

        if self._gpu.contains(tensor_id):
            pending = self._evicting.pop(tensor_id, None)
            if pending is not None:
                # The tensor was being pre-evicted but is needed again; keep it
                # resident (the outbound copy becomes wasted bandwidth). The
                # host copy's capacity must release immediately (it interacts
                # with victim-eviction headroom checks), but the GPU placement
                # joins the kernel's grouped page-table flush.
                self._pending_gpu_places.append(tensor_id)
                self._host.free(tensor_id)
            return max(now, self._arrival_time.get(tensor_id, now))

        if tensor_id not in self._page_table.address_space:
            self._page_table.register(tensor_id, size)

        location = self._page_table.location_of(tensor_id)
        space_ready = self._make_space(size, protected, now)
        self._gpu.allocate(tensor_id, size)

        if location is MemoryLocation.UNMAPPED:
            # Fresh allocation (kernel output or workspace): no data transfer.
            self._pending_gpu_places.append(tensor_id)
            return space_ready

        # Demand fault: the kernel needs data that lives in host or flash
        # memory. Fault costs come from the precomputed per-tensor tables (one
        # vectorized pass at construction); the GPU placement is deferred into
        # the kernel's grouped flush while the remote-copy release stays
        # immediate (host/SSD capacity interleaves with victim evictions).
        request = MigrationRequest(
            tensor_id=tensor_id,
            size_bytes=size,
            source=location,
            destination=MemoryLocation.GPU,
            kind=MigrationKind.FAULT,
        )
        overhead = self._fault_overheads[tensor_id]
        self._fault_events += self._fault_batches[tensor_id]
        completion = self._submit(request, max(now, space_ready) + overhead)
        self._release_remote_copy(tensor_id, location)
        self._pending_gpu_places.append(tensor_id)
        self._arrival_time[tensor_id] = completion
        self._deferred_prefetches.pop(tensor_id, None)
        return completion

    def _flush_gpu_places(self) -> None:
        """Apply the kernel's deferred GPU placements as one grouped update."""
        if self._pending_gpu_places:
            self._page_table.place_batch(self._pending_gpu_places, MemoryLocation.GPU)
            self._pending_gpu_places.clear()

    def _issue_prefetch(self, tensor_id: int, now: float) -> bool:
        """Start fetching a tensor ahead of its use.

        Returns True when the prefetch was issued or is unnecessary, False when
        it must be retried later because the GPU has no headroom yet.
        """
        if self._gpu.contains(tensor_id) or tensor_id in self._arrival_time:
            if self._gpu.contains(tensor_id):
                self._evicting.pop(tensor_id, None)
            return True
        if tensor_id not in self._page_table.address_space:
            return True
        location = self._page_table.location_of(tensor_id)
        if location in (MemoryLocation.UNMAPPED, MemoryLocation.GPU):
            return True
        size = self._graph.tensor(tensor_id).size_bytes
        self._drain_evictions(now)
        if not self._gpu.can_fit(size):
            # No headroom yet: keep the request queued and retry later.
            return False
        self._gpu.allocate(tensor_id, size)
        request = MigrationRequest(
            tensor_id=tensor_id,
            size_bytes=size,
            source=location,
            destination=MemoryLocation.GPU,
            kind=MigrationKind.PREFETCH,
        )
        completion = self._submit(request, now)
        self._release_remote_copy(tensor_id, location)
        self._page_table.place(tensor_id, MemoryLocation.GPU)
        self._arrival_time[tensor_id] = completion
        return True

    def _issue_eviction(
        self,
        tensor_id: int,
        destination: MemoryLocation,
        now: float,
        protected: tuple[int, ...] | set[int],
    ) -> float | None:
        """Start evicting a tensor out of GPU memory; returns its completion time."""
        if (
            not self._gpu.contains(tensor_id)
            or tensor_id in self._evicting
            or tensor_id in protected
        ):
            return None
        size = self._graph.tensor(tensor_id).size_bytes
        if destination is MemoryLocation.HOST and not self._host.can_fit(size):
            destination = MemoryLocation.SSD
        target = (
            MemoryLocation.HOST if destination is MemoryLocation.HOST else MemoryLocation.FLASH
        )
        request = MigrationRequest(
            tensor_id=tensor_id,
            size_bytes=size,
            source=MemoryLocation.GPU,
            destination=target,
            kind=MigrationKind.EVICTION,
        )
        completion = self._submit(request, now)
        if target is MemoryLocation.HOST:
            self._host.allocate(tensor_id, size)
        self._page_table.place(tensor_id, target)
        self._evicting[tensor_id] = _PendingEviction(completion, tensor_id, size)
        self._events.schedule(completion, "eviction-complete", tensor_id, priority=tensor_id)
        self._arrival_time.pop(tensor_id, None)
        return completion

    def _submit(self, request: MigrationRequest, when: float) -> float:
        """Submit a migration to the engine, notifying observers."""
        completion = self._engine.submit(request, when)
        self._perf.pages_moved += max(
            1, math.ceil(request.size_bytes / self._config.uvm.page_size)
        )
        for observer in self._observers:
            observer.on_migration(request, when, completion)
        return completion

    def _release_remote_copy(self, tensor_id: int, location: MemoryLocation) -> None:
        if location is MemoryLocation.HOST:
            self._host.free(tensor_id)
        elif location is MemoryLocation.FLASH:
            self._engine.ssd.discard_object(tensor_id)

    # -- space management ------------------------------------------------------------------

    def _drain_evictions(self, now: float) -> None:
        """Release GPU space for evictions whose transfer has completed."""
        for event in self._events.pop_until(now):
            self._perf.events_processed += 1
            pending = self._evicting.pop(event.payload, None)
            if pending is not None:
                self._gpu.free(event.payload)

    def _make_space(self, size_bytes: int, protected: set[int], now: float) -> float:
        """Ensure ``size_bytes`` can be allocated; returns when the space exists."""
        current = now
        self._drain_evictions(current)
        if self._gpu.can_fit(size_bytes):
            return current

        # First ask the policy for victims to push out, offering the evictable
        # resident tensors in least-recently-used order.
        unavailable = protected | set(self._evicting)
        resident = [
            tid
            for tid in self._gpu.resident_tensors()
            if tid not in unavailable and tid not in self._last_used
        ]
        resident += [
            tid
            for tid in self._last_used
            if self._gpu.contains(tid) and tid not in unavailable
        ]
        needed = size_bytes - self._gpu.free_bytes
        victims = self._policy.select_victims(needed, unavailable, resident, current)
        for decision in victims:
            self._issue_eviction(decision.tensor_id, decision.destination, current, protected)

        # Then wait for enough in-flight evictions to drain.
        while not self._gpu.can_fit(size_bytes):
            if not len(self._events):
                raise _WorkloadFailure(
                    f"policy {self._policy.name!r} cannot free {size_bytes} bytes of GPU "
                    "memory: the kernel working set exceeds usable capacity"
                )
            event = self._events.pop()
            self._perf.events_processed += 1
            current = max(current, event.time)
            pending = self._evicting.pop(event.payload, None)
            if pending is not None:
                self._gpu.free(event.payload)
        if current > now:
            self._perf.eviction_stalls += 1
            self._perf.eviction_stall_seconds += current - now
        return current

    # -- tensor lifetime ------------------------------------------------------------------------

    def _free_dead_tensors(self, slot: int) -> None:
        """Release intermediate tensors after their last use.

        Flash-resident dead tensors are collected and TRIMmed with one grouped
        FTL update; nothing else touches the FTL between the per-tensor frees,
        so the grouped discard observes the same operation order.
        """
        flash_dead: list[int] = []
        for tensor_id in self._deaths_by_slot.pop(slot, ()):
            self._gpu.free(tensor_id)
            self._host.free(tensor_id)
            if tensor_id in self._page_table.address_space:
                if self._page_table.location_of(tensor_id) is MemoryLocation.FLASH:
                    flash_dead.append(tensor_id)
                self._page_table.unmap(tensor_id)
            self._arrival_time.pop(tensor_id, None)
            self._evicting.pop(tensor_id, None)
            self._last_used.pop(tensor_id, None)
        if flash_dead:
            self._engine.ssd.discard_objects(flash_dead)
