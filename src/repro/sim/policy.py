"""Policy interface between the execution simulator and migration strategies."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from ..config import SystemConfig
from ..core.vitality import VitalityReport
from ..graph.kernel import Kernel
from ..graph.training import TrainingGraph
from ..uvm.page_table import MemoryLocation


@dataclass(frozen=True)
class MigrationDecision:
    """One policy decision: move a tensor toward or away from the GPU."""

    tensor_id: int
    #: For evictions: where to stage the tensor. For prefetches: ignored (the
    #: executor fetches from wherever the tensor currently lives).
    destination: MemoryLocation = MemoryLocation.SSD


@dataclass
class PolicyContext:
    """Read-only view of the workload handed to policies at setup time."""

    config: SystemConfig
    graph: TrainingGraph
    report: VitalityReport

    def tensor_size(self, tensor_id: int) -> int:
        return self.graph.tensor(tensor_id).size_bytes


class MigrationPolicy(ABC):
    """Decides which tensors move between GPU, host and SSD, and when.

    The executor drives the policy with three hooks:

    * :meth:`prefetches_for` — tensors to start fetching right before a kernel;
    * :meth:`evictions_for` — tensors to start evicting right after a kernel;
    * :meth:`select_victims` — emergency evictions when an allocation cannot be
      satisfied (the demand-paging path).

    ``per_request_overhead`` models the software cost of initiating one
    explicit migration; G10's extended UVM reduces it to ~2 µs while
    host-managed designs pay a driver round trip.
    """

    #: Human-readable policy name used in result tables.
    name: str = "abstract"
    #: Whether the GPU memory capacity applies (the Ideal policy disables it).
    enforce_capacity: bool = True

    def __init__(self) -> None:
        self._context: PolicyContext | None = None

    # -- lifecycle -------------------------------------------------------------

    def setup(self, context: PolicyContext) -> None:
        """Called once before the simulation starts."""
        self._context = context

    @property
    def context(self) -> PolicyContext:
        if self._context is None:
            raise RuntimeError("policy used before setup()")
        return self._context

    def per_request_overhead(self) -> float:
        """Software overhead charged per explicit migration request."""
        return self.context.config.uvm.software_migration_overhead

    # -- decision hooks -----------------------------------------------------------

    @abstractmethod
    def prefetches_for(self, kernel: Kernel, now: float) -> list[MigrationDecision]:
        """Tensors to start fetching into GPU memory before ``kernel`` runs."""

    @abstractmethod
    def evictions_for(self, kernel: Kernel, now: float) -> list[MigrationDecision]:
        """Tensors to start evicting out of GPU memory after ``kernel`` ran."""

    @abstractmethod
    def select_victims(
        self,
        needed_bytes: int,
        protected: set[int],
        resident: list[int],
        now: float,
    ) -> list[MigrationDecision]:
        """Pick tensors to evict so that ``needed_bytes`` can be allocated.

        ``resident`` lists evictable tensors currently in GPU memory in
        least-recently-used order (oldest first); ``protected`` tensors must
        not be selected (they are needed by the executing kernel or already in
        flight).
        """

    # -- optional notifications -----------------------------------------------------

    def on_kernel_finished(self, kernel: Kernel, now: float) -> None:
        """Called after each kernel completes (for policies that track recency)."""

    def describe(self) -> dict[str, str]:
        """Metadata for result reporting."""
        return {"policy": self.name}
