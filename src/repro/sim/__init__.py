"""Discrete-event execution simulator: kernel replay with memory and I/O timing.

The executor replays one training iteration's kernel trace against the unified
memory system: kernels can only start once their input tensors are resident in
GPU memory and their outputs have space, migrations and demand faults are
timed by the :class:`~repro.uvm.MigrationEngine`, and every stall is accounted
per kernel. Policies (``repro.baselines``) decide which tensors move when.
"""

from .results import KernelTiming, PerfCounters, SimulationResult
from .executor import ExecutionSimulator
from .engine import EventQueue, Event, simulate
from .observer import SimObserver, TraceRecorder
from .tenancy import (
    RequestRecord,
    SharedSystem,
    TenancyOutcome,
    TenantServiceStats,
    TenantTrace,
    simulate_tenancy,
)

__all__ = [
    "KernelTiming",
    "PerfCounters",
    "SimulationResult",
    "ExecutionSimulator",
    "EventQueue",
    "Event",
    "simulate",
    "SimObserver",
    "TraceRecorder",
    "RequestRecord",
    "SharedSystem",
    "TenancyOutcome",
    "TenantServiceStats",
    "TenantTrace",
    "simulate_tenancy",
]
