"""Multi-tenant serving: N request streams time-sharing one GPU + SSD.

This module is the *deterministic core* of the multi-tenant simulation: it
consumes fully materialised :class:`TenantTrace` records (per-request kernel
timelines plus precomputed arrival or think times) and replays them through a
single :class:`~repro.sim.engine.EventQueue`. All randomness lives one layer
up, in :mod:`repro.experiments.tenancy`, where arrival processes are sampled
from seeded generators — this file never touches a clock or an entropy
source, so the linter's DET rules hold for it like for the rest of ``sim/``.

The contention model is deliberately simple and exact:

* **Compute** is serialized at kernel granularity under least-attained-service
  scheduling: at every kernel boundary the ready request whose tenant has
  received the least solo-time service runs next (ties break on arrival time,
  then tenant name, then request index — never on registration order).
* **Memory** is a shared LRU pool of per-request working sets. Admitting a
  request beyond GPU capacity spills least-recently-run requests to the SSD;
  the spill write (amplified by a GC interference factor that grows with
  cumulative spill traffic) stalls the incoming request, and a spilled
  request pays a refill read when it next runs.
* **Latency bookkeeping** is replay-exact: each request carries the cumulative
  kernel-finish offsets of its solo run, and its completion is
  ``base + delay + offset`` where ``delay`` accumulates only queueing and
  contention stalls. With one tenant and one request the delay stays exactly
  ``0.0``, so the request latency equals the solo ``execution_time``
  bit-for-bit — the degenerate-tenancy equivalence the golden suite locks in.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import ConfigurationError, SimulationError
from .engine import EventQueue
from .results import PerfCounters

#: Event kind used for request arrivals on the shared queue.
KIND_ARRIVAL = "request-arrival"

#: Page size used to convert spill traffic into ``PerfCounters.pages_moved``.
_PAGE_BYTES = 4096


@dataclass(frozen=True)
class TenantTrace:
    """One tenant's request stream, fully materialised for deterministic replay.

    ``offsets`` are the cumulative kernel-finish times of a *solo* run of one
    request (``offsets[k] == start_time_k + ideal_duration_k`` from the
    executor's :class:`~repro.sim.results.KernelTiming` records, so
    ``offsets[-1]`` equals the solo ``execution_time`` bit-for-bit). Exactly
    one of ``arrivals`` (open loop: absolute request arrival times) and
    ``think_times`` (closed loop: request ``i`` arrives ``think_times[i]``
    after request ``i-1`` completes) must be non-empty.
    """

    name: str
    offsets: tuple[float, ...]
    footprint_bytes: int
    arrivals: tuple[float, ...] = ()
    think_times: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("tenant name must be non-empty")
        if not self.offsets:
            raise ConfigurationError(f"tenant {self.name!r} has an empty kernel timeline")
        previous = 0.0
        for offset in self.offsets:
            if offset < previous:
                raise ConfigurationError(
                    f"tenant {self.name!r} kernel offsets must be non-decreasing"
                )
            previous = offset
        if self.footprint_bytes < 0:
            raise ConfigurationError(f"tenant {self.name!r} footprint must be >= 0")
        if bool(self.arrivals) == bool(self.think_times):
            raise ConfigurationError(
                f"tenant {self.name!r} must set exactly one of arrivals/think_times"
            )
        previous = 0.0
        for arrival in self.arrivals:
            if arrival < previous:
                raise ConfigurationError(
                    f"tenant {self.name!r} arrivals must be non-negative and sorted"
                )
            previous = arrival
        if any(t < 0 for t in self.think_times):
            raise ConfigurationError(f"tenant {self.name!r} think times must be >= 0")

    @property
    def request_count(self) -> int:
        """Number of requests this tenant issues."""
        return len(self.arrivals) or len(self.think_times)

    @property
    def solo_latency(self) -> float:
        """Uncontended latency of one request (the solo ``execution_time``)."""
        return self.offsets[-1]


@dataclass(frozen=True)
class SharedSystem:
    """The colocated hardware every tenant contends for."""

    gpu_capacity_bytes: int
    spill_write_bandwidth: float
    spill_read_bandwidth: float
    ssd_capacity_bytes: int
    #: Strength of the GC interference term: the effective write amplification
    #: of a spill is ``1 + gc_alpha * min(1, cumulative_spill / ssd_capacity)``.
    gc_alpha: float = 1.0

    def __post_init__(self) -> None:
        if self.gpu_capacity_bytes <= 0:
            raise ConfigurationError("shared GPU capacity must be positive")
        if self.spill_write_bandwidth <= 0 or self.spill_read_bandwidth <= 0:
            raise ConfigurationError("spill bandwidths must be positive")
        if self.ssd_capacity_bytes <= 0:
            raise ConfigurationError("shared SSD capacity must be positive")
        if self.gc_alpha < 0:
            raise ConfigurationError("gc_alpha must be >= 0")


@dataclass(frozen=True)
class RequestRecord:
    """Timing of one served request."""

    tenant: str
    index: int
    arrival: float
    first_start: float
    completion: float
    #: End-to-end latency (``delay + solo latency``; exact, not ``completion -
    #: arrival``, so zero-contention latencies match solo runs bit-for-bit).
    latency: float
    #: Time between arrival and first kernel execution.
    queue_delay: float
    #: Contention-induced memory stall charged to this request.
    stall_seconds: float


@dataclass(frozen=True)
class TenantServiceStats:
    """Per-tenant aggregate of one multi-tenant simulation."""

    name: str
    latencies: tuple[float, ...]
    queue_delays: tuple[float, ...]
    #: Times this tenant's requests stalled waiting on spills/refills.
    eviction_stalls: int
    #: Simulated seconds this tenant spent stalled on the shared memory pool.
    eviction_stall_seconds: float
    #: Extra stall seconds attributable to SSD GC write amplification.
    gc_interference_seconds: float
    #: Times this tenant's resident working sets were spilled by others.
    times_evicted: int
    spill_bytes_written: int
    spill_bytes_read: int


@dataclass(frozen=True)
class TenancyOutcome:
    """Everything :func:`simulate_tenancy` produces."""

    tenants: dict[str, TenantServiceStats]
    records: tuple[RequestRecord, ...]
    makespan: float
    perf: PerfCounters


@dataclass(eq=False)
class _Request:
    """Mutable in-flight state of one request (identity-hashed)."""

    trace: TenantTrace
    index: int
    arrival: float
    #: ``base + delay + offsets[k]`` is the finish time of kernel ``k``;
    #: ``delay`` only ever grows, by queueing waits and memory stalls.
    base: float
    delay: float = 0.0
    next_kernel: int = 0
    first_start: float = -1.0
    stall_seconds: float = 0.0
    evicted: bool = False

    @property
    def tenant(self) -> str:
        return self.trace.name

    @property
    def done(self) -> bool:
        return self.next_kernel >= len(self.trace.offsets)


@dataclass
class _TenantState:
    """Mutable per-tenant accumulators."""

    trace: TenantTrace
    #: Solo-time service received so far (the fair-share currency).
    attained: float = 0.0
    next_request: int = 0
    latencies: dict[int, float] = field(default_factory=dict)
    queue_delays: dict[int, float] = field(default_factory=dict)
    eviction_stalls: int = 0
    eviction_stall_seconds: float = 0.0
    gc_interference_seconds: float = 0.0
    times_evicted: int = 0
    spill_bytes_written: int = 0
    spill_bytes_read: int = 0


class _SharedPool:
    """LRU pool of per-request working sets over the shared GPU memory."""

    def __init__(
        self, system: SharedSystem, perf: PerfCounters, states: dict[str, "_TenantState"]
    ):
        self._system = system
        self._perf = perf
        self._states = states
        #: Insertion-ordered: least-recently-run request first.
        self._resident: dict[_Request, int] = {}
        self._resident_bytes = 0
        self._cumulative_spill = 0.0

    def release(self, request: _Request) -> None:
        size = self._resident.pop(request, None)
        if size is not None:
            self._resident_bytes -= size

    def admit(self, request: _Request, state: _TenantState) -> float:
        """Make ``request``'s working set resident; return the stall charged."""
        if request in self._resident:
            # Still resident: refresh recency, no data moves.
            size = self._resident.pop(request)
            self._resident[request] = size
            return 0.0

        need = min(request.trace.footprint_bytes, self._system.gpu_capacity_bytes)
        spilled = 0
        while self._resident and self._resident_bytes + need > self._system.gpu_capacity_bytes:
            victim, size = next(iter(self._resident.items()))
            del self._resident[victim]
            self._resident_bytes -= size
            victim.evicted = True
            self._states[victim.tenant].times_evicted += 1
            spilled += size
        stall = 0.0
        if spilled:
            utilization = min(1.0, self._cumulative_spill / self._system.ssd_capacity_bytes)
            amplification = 1.0 + self._system.gc_alpha * utilization
            write_time = spilled * amplification / self._system.spill_write_bandwidth
            gc_extra = spilled * (amplification - 1.0) / self._system.spill_write_bandwidth
            self._cumulative_spill += spilled
            state.gc_interference_seconds += gc_extra
            state.spill_bytes_written += spilled
            self._perf.pages_moved += max(1, math.ceil(spilled / _PAGE_BYTES))
            stall += write_time
        if request.evicted:
            # Previously spilled: pay the refill read before running again.
            refill = request.trace.footprint_bytes
            stall += refill / self._system.spill_read_bandwidth
            state.spill_bytes_read += refill
            self._perf.fault_events += 1
            if refill:
                self._perf.pages_moved += max(1, math.ceil(refill / _PAGE_BYTES))
            request.evicted = False
        self._resident[request] = need
        self._resident_bytes += need
        return stall


def simulate_tenancy(
    traces: "tuple[TenantTrace, ...] | list[TenantTrace]",
    system: SharedSystem,
) -> TenancyOutcome:
    """Interleave every tenant's request stream on the shared system.

    The result is a pure function of ``traces`` and ``system``: tenants are
    processed in sorted-name order, every same-timestamp tie breaks on
    content-derived keys, and no clock or entropy source is consulted —
    permuting the order of ``traces`` cannot change a single bit of the
    outcome.
    """
    if not traces:
        raise ConfigurationError("simulate_tenancy needs at least one tenant trace")
    ordered = sorted(traces, key=lambda trace: trace.name)
    names = [trace.name for trace in ordered]
    if len(set(names)) != len(names):
        raise ConfigurationError(f"tenant names must be unique, got {names}")

    perf = PerfCounters()
    events = EventQueue()
    states = {trace.name: _TenantState(trace) for trace in ordered}
    pool = _SharedPool(system, perf, states)
    records: list[RequestRecord] = []
    ready: list[_Request] = []

    def schedule_arrival(trace: TenantTrace, index: int, when: float) -> None:
        request = _Request(trace=trace, index=index, arrival=when, base=when)
        events.schedule(when, KIND_ARRIVAL, request, priority=(trace.name, index))

    for trace in ordered:
        if trace.arrivals:
            for index, when in enumerate(trace.arrivals):
                schedule_arrival(trace, index, when)
        else:
            schedule_arrival(trace, 0, trace.think_times[0])
        states[trace.name].next_request = 1

    now = 0.0
    current: _Request | None = None
    while ready or len(events):
        if not ready:
            event = events.pop()
            perf.events_processed += 1
            now = max(now, event.time)
            ready.append(event.payload)
            continue
        arrived = False
        for event in events.pop_until(now):
            perf.events_processed += 1
            ready.append(event.payload)
            arrived = True

        # Event-driven least-attained-service: re-pick only when the running
        # request completed or a new request became ready. Preemption still
        # lands on kernel boundaries, but between events a request runs
        # contiguously, so memory thrash scales with arrivals, not kernels.
        if current is None or arrived:
            current = min(
                ready,
                key=lambda r: (states[r.tenant].attained, r.arrival, r.tenant, r.index),
            )
        request = current
        state = states[request.tenant]
        stall = pool.admit(request, state)
        if stall > 0:
            request.stall_seconds += stall
            state.eviction_stalls += 1
            state.eviction_stall_seconds += stall
            perf.eviction_stalls += 1
            perf.eviction_stall_seconds += stall
        if request.first_start < 0:
            request.first_start = now + stall

        kernel = request.next_kernel
        previous_offset = request.trace.offsets[kernel - 1] if kernel else 0.0
        request.delay = max(request.delay, now + stall - request.base - previous_offset)
        finish = request.base + request.delay + request.trace.offsets[kernel]
        state.attained += request.trace.offsets[kernel] - previous_offset
        request.next_kernel += 1
        perf.kernels_executed += 1
        now = finish

        if request.done:
            ready.remove(request)
            pool.release(request)
            current = None
            latency = request.delay + request.trace.solo_latency
            state.latencies[request.index] = latency
            state.queue_delays[request.index] = request.first_start - request.arrival
            records.append(
                RequestRecord(
                    tenant=request.tenant,
                    index=request.index,
                    arrival=request.arrival,
                    first_start=request.first_start,
                    completion=finish,
                    latency=latency,
                    queue_delay=request.first_start - request.arrival,
                    stall_seconds=request.stall_seconds,
                )
            )
            trace = request.trace
            if not trace.arrivals and state.next_request < len(trace.think_times):
                index = state.next_request
                state.next_request += 1
                schedule_arrival(trace, index, finish + trace.think_times[index])

    incomplete = [
        state.trace.name
        for state in states.values()
        if len(state.latencies) != state.trace.request_count
    ]
    if incomplete:
        raise SimulationError(f"tenants did not complete all requests: {incomplete}")

    tenants = {
        name: TenantServiceStats(
            name=name,
            latencies=tuple(state.latencies[i] for i in range(state.trace.request_count)),
            queue_delays=tuple(state.queue_delays[i] for i in range(state.trace.request_count)),
            eviction_stalls=state.eviction_stalls,
            eviction_stall_seconds=state.eviction_stall_seconds,
            gc_interference_seconds=state.gc_interference_seconds,
            times_evicted=state.times_evicted,
            spill_bytes_written=state.spill_bytes_written,
            spill_bytes_read=state.spill_bytes_read,
        )
        for name, state in sorted(states.items())
    }
    return TenancyOutcome(tenants=tenants, records=tuple(records), makespan=now, perf=perf)
