"""Flash SSD substrate: geometry, FTL, garbage collection, wear accounting.

The paper integrates an SSDSim-based model of a Samsung Z-NAND drive into its
simulator so that flash-internal activities (garbage collection, chip-level
latencies) are reflected in end-to-end results, and §7.7 estimates the impact
of tensor migration traffic on device lifetime. This package provides the
equivalent substrate: a page-mapped FTL (:class:`FlashTranslationLayer`),
greedy garbage collection, a bandwidth/latency service model
(:class:`SSDDevice`), and endurance accounting (:class:`WearTracker`).
"""

from .flash import FlashGeometry, FlashBlock
from .ftl import FlashTranslationLayer
from .ssd import SSDDevice, SSDStatistics
from .wear import WearTracker, LifetimeEstimate

__all__ = [
    "FlashGeometry",
    "FlashBlock",
    "FlashTranslationLayer",
    "SSDDevice",
    "SSDStatistics",
    "WearTracker",
    "LifetimeEstimate",
]
