"""Page-mapped flash translation layer with greedy garbage collection.

The mapping is page-granular (as in a real page-mapped FTL) but the write
path is *extent-aware*: tensor-sized host writes arrive as contiguous logical
runs, and :meth:`FlashTranslationLayer.write_run` programs each run into the
open block chunk-at-a-time — one garbage-collection check and one block lookup
per chunk instead of per page — while producing exactly the same mapping,
counters and GC schedule as the equivalent sequence of single-page writes.
A per-block reverse index makes GC relocation O(pages in the victim block)
instead of a scan over the whole device mapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SSDError
from .flash import FlashBlock, FlashGeometry


@dataclass
class GCResult:
    """Outcome of one garbage-collection invocation."""

    blocks_erased: int = 0
    pages_relocated: int = 0

    @property
    def ran(self) -> bool:
        return self.blocks_erased > 0

    def merge(self, other: "GCResult") -> None:
        self.blocks_erased += other.blocks_erased
        self.pages_relocated += other.pages_relocated


@dataclass
class FlashTranslationLayer:
    """Maps logical flash pages to physical (block, offset) locations.

    Writes are appended log-style to the currently open block per the greedy
    allocation policy; overwriting a logical page invalidates its previous
    physical location. When the pool of free blocks drops below the GC
    threshold, greedy garbage collection relocates the valid pages of the
    blocks with the fewest valid pages and erases them.
    """

    geometry: FlashGeometry
    gc_threshold_blocks: int = 2
    blocks: list[FlashBlock] = field(default_factory=list)
    _mapping: dict[int, tuple[int, int]] = field(default_factory=dict)
    #: Reverse index: block id -> logical pages currently mapped into it
    #: (GC relocates them in ascending logical order).
    _block_pages: dict[int, dict[int, None]] = field(default_factory=dict)
    _open_block: int | None = None
    _free_blocks: list[int] = field(default_factory=list)
    #: Cumulative counters used by the wear model.
    host_pages_written: int = 0
    gc_pages_written: int = 0
    blocks_erased: int = 0

    def __post_init__(self) -> None:
        if not self.blocks:
            self.blocks = [
                FlashBlock(block_id=i, pages_per_block=self.geometry.pages_per_block)
                for i in range(self.geometry.total_blocks)
            ]
            self._free_blocks = list(range(len(self.blocks)))

    # -- capacity ------------------------------------------------------------

    @property
    def free_block_count(self) -> int:
        return len(self._free_blocks) + (1 if self._open_block is not None else 0)

    @property
    def mapped_pages(self) -> int:
        return len(self._mapping)

    @property
    def write_amplification(self) -> float:
        """Total programmed pages / host-written pages (1.0 means no GC traffic)."""
        if self.host_pages_written == 0:
            return 1.0
        return (self.host_pages_written + self.gc_pages_written) / self.host_pages_written

    def physical_location(self, logical_page: int) -> tuple[int, int]:
        """Current (block, offset) of a logical page."""
        try:
            return self._mapping[logical_page]
        except KeyError as exc:
            raise SSDError(f"logical page {logical_page} is not mapped") from exc

    def is_mapped(self, logical_page: int) -> bool:
        return logical_page in self._mapping

    # -- operations ------------------------------------------------------------

    def write(self, logical_page: int) -> GCResult:
        """Write (or overwrite) one logical page; returns any GC work triggered."""
        gc_result = self._maybe_collect()
        self._invalidate_if_mapped(logical_page)
        block_id = self._writable_block()
        offset = self.blocks[block_id].program()
        self._map(logical_page, block_id, offset)
        self.host_pages_written += 1
        return gc_result

    def write_run(self, start_logical: int, count: int) -> GCResult:
        """Write ``count`` consecutive logical pages starting at ``start_logical``.

        Behaviour-preserving bulk path: the mapping, counters and garbage
        collections are identical to ``count`` sequential :meth:`write` calls,
        but fresh pages are programmed chunk-at-a-time into the open block (GC
        is only re-checked when the block state can actually have changed —
        at chunk boundaries — and overwrites fall back to the per-page path,
        whose invalidation can change GC victim ranking mid-run).
        """
        if count <= 0:
            raise SSDError("write runs must cover at least one page")
        total = GCResult()
        page = start_logical
        end = start_logical + count
        while page < end:
            if page in self._mapping:
                total.merge(self.write(page))
                page += 1
                continue
            total.merge(self._maybe_collect())
            block_id = self._writable_block()
            block = self.blocks[block_id]
            owners = self._block_pages.setdefault(block_id, {})
            chunk_limit = min(end, page + block.free_pages)
            while page < chunk_limit and page not in self._mapping:
                offset = block.program()
                self._mapping[page] = (block_id, offset)
                owners[page] = None
                self.host_pages_written += 1
                page += 1
        return total

    def read(self, logical_page: int) -> tuple[int, int]:
        """Read one logical page, returning its physical location."""
        return self.physical_location(logical_page)

    def trim(self, logical_page: int) -> None:
        """Discard a logical page (the tensor was freed or migrated elsewhere)."""
        self._invalidate_if_mapped(logical_page)
        location = self._mapping.pop(logical_page, None)
        if location is not None:
            self._block_pages.get(location[0], {}).pop(logical_page, None)

    def trim_run(self, start_logical: int, count: int) -> None:
        """Discard a contiguous run of logical pages."""
        for logical in range(start_logical, start_logical + count):
            self.trim(logical)

    # -- internals ---------------------------------------------------------------

    def _map(self, logical_page: int, block_id: int, offset: int) -> None:
        previous = self._mapping.get(logical_page)
        if previous is not None:
            self._block_pages.get(previous[0], {}).pop(logical_page, None)
        self._mapping[logical_page] = (block_id, offset)
        self._block_pages.setdefault(block_id, {})[logical_page] = None

    def _invalidate_if_mapped(self, logical_page: int) -> None:
        location = self._mapping.get(logical_page)
        if location is not None:
            block_id, offset = location
            self.blocks[block_id].invalidate(offset)

    def _writable_block(self) -> int:
        if self._open_block is not None and not self.blocks[self._open_block].is_full:
            return self._open_block
        if not self._free_blocks:
            raise SSDError("flash device is out of space")
        self._open_block = self._free_blocks.pop()
        return self._open_block

    def _maybe_collect(self) -> GCResult:
        result = GCResult()
        while self.free_block_count <= self.gc_threshold_blocks:
            victim = self._pick_victim()
            if victim is None:
                break
            result.pages_relocated += self._collect_block(victim)
            result.blocks_erased += 1
        return result

    def _pick_victim(self) -> int | None:
        """Greedy victim selection: the closed block with the fewest valid pages."""
        candidates = [
            b for b in self.blocks
            if b.is_full and b.block_id != self._open_block
        ]
        if not candidates:
            return None
        victim = min(candidates, key=lambda b: b.valid_pages)
        if victim.valid_pages >= self.geometry.pages_per_block:
            return None
        return victim.block_id

    def _collect_block(self, block_id: int) -> int:
        """Relocate the victim's valid pages and erase it."""
        victim = self.blocks[block_id]
        # Ascending logical order matches the historical full-mapping scan:
        # the device hands out monotonically increasing unit ids, so its
        # mapping's insertion order was ascending too.
        relocations = sorted(self._block_pages.get(block_id, ()))
        relocated = 0
        for logical in relocations:
            _blk, offset = self._mapping[logical]
            if not victim.valid[offset]:
                continue
            victim.invalidate(offset)
            destination = self._writable_block_excluding(block_id)
            new_offset = self.blocks[destination].program()
            self._map(logical, destination, new_offset)
            self.gc_pages_written += 1
            relocated += 1
        victim.erase()
        self.blocks_erased += 1
        self._free_blocks.append(block_id)
        return relocated

    def _writable_block_excluding(self, excluded: int) -> int:
        if (
            self._open_block is not None
            and self._open_block != excluded
            and not self.blocks[self._open_block].is_full
        ):
            return self._open_block
        while self._free_blocks:
            candidate = self._free_blocks.pop()
            if candidate != excluded:
                self._open_block = candidate
                return candidate
        raise SSDError("garbage collection could not find a destination block")
