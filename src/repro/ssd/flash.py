"""Flash geometry: channels, blocks and pages."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import SSDConfig
from ..errors import SSDError


@dataclass(frozen=True)
class FlashGeometry:
    """Physical layout of the simulated flash device."""

    channels: int
    blocks_per_channel: int
    pages_per_block: int
    page_size: int

    def __post_init__(self) -> None:
        if min(self.channels, self.blocks_per_channel, self.pages_per_block, self.page_size) <= 0:
            raise SSDError("flash geometry dimensions must be positive")

    @property
    def total_blocks(self) -> int:
        return self.channels * self.blocks_per_channel

    @property
    def total_pages(self) -> int:
        return self.total_blocks * self.pages_per_block

    @property
    def capacity_bytes(self) -> int:
        return self.total_pages * self.page_size

    @classmethod
    def from_config(cls, config: SSDConfig, max_blocks: int | None = None) -> "FlashGeometry":
        """Derive a geometry matching the configured capacity.

        ``max_blocks`` caps the total block count so unit tests and scaled-down
        simulations do not allocate millions of block records.
        """
        total_pages = max(config.capacity_bytes // config.flash_page_size, config.pages_per_block)
        total_blocks = max(total_pages // config.pages_per_block, config.channels)
        if max_blocks is not None:
            total_blocks = min(total_blocks, max(max_blocks, config.channels))
        blocks_per_channel = max(total_blocks // config.channels, 1)
        return cls(
            channels=config.channels,
            blocks_per_channel=blocks_per_channel,
            pages_per_block=config.pages_per_block,
            page_size=config.flash_page_size,
        )


@dataclass
class FlashBlock:
    """One erase block: a write pointer plus per-page validity."""

    block_id: int
    pages_per_block: int
    write_pointer: int = 0
    valid: list[bool] = field(default_factory=list)
    erase_count: int = 0

    def __post_init__(self) -> None:
        if not self.valid:
            self.valid = [False] * self.pages_per_block

    @property
    def is_full(self) -> bool:
        return self.write_pointer >= self.pages_per_block

    @property
    def valid_pages(self) -> int:
        return sum(self.valid)

    @property
    def free_pages(self) -> int:
        return self.pages_per_block - self.write_pointer

    def program(self) -> int:
        """Program the next page; returns its offset within the block."""
        if self.is_full:
            raise SSDError(f"block {self.block_id} is full")
        offset = self.write_pointer
        self.valid[offset] = True
        self.write_pointer += 1
        return offset

    def invalidate(self, offset: int) -> None:
        """Mark a previously-programmed page as stale."""
        if offset >= self.write_pointer:
            raise SSDError(f"page {offset} of block {self.block_id} was never programmed")
        self.valid[offset] = False

    def erase(self) -> None:
        """Erase the block, clearing validity and advancing the erase counter."""
        self.write_pointer = 0
        self.valid = [False] * self.pages_per_block
        self.erase_count += 1
