"""SSD endurance accounting (§7.7 of the paper)."""

from __future__ import annotations

from dataclasses import dataclass

from ..config import SSDConfig
from ..errors import SSDError


@dataclass(frozen=True)
class LifetimeEstimate:
    """Projected device lifetime under a sustained write workload."""

    #: Average write bandwidth the workload sustains, bytes/s.
    sustained_write_bandwidth: float
    #: Total bytes the device is rated to absorb (DWPD * days * capacity).
    rated_write_bytes: float
    #: Projected lifetime in years under continuous use.
    lifetime_years: float
    #: Write amplification factor included in the projection.
    write_amplification: float

    def meets(self, years: float) -> bool:
        """Whether the projected lifetime reaches ``years``."""
        return self.lifetime_years >= years


@dataclass
class WearTracker:
    """Accumulates write traffic and projects SSD lifetime.

    The paper estimates lifetime as ``DWPD * warranty_days * capacity /
    sustained_write_bandwidth``; the tracker reproduces that calculation from
    the measured migration traffic of a simulation and additionally folds in
    the FTL's write amplification.
    """

    config: SSDConfig
    bytes_written: float = 0.0
    bytes_read: float = 0.0

    def record_write(self, nbytes: float) -> None:
        if nbytes < 0:
            raise SSDError("cannot record a negative write")
        self.bytes_written += nbytes

    def record_read(self, nbytes: float) -> None:
        if nbytes < 0:
            raise SSDError("cannot record a negative read")
        self.bytes_read += nbytes

    @property
    def rated_write_bytes(self) -> float:
        """Total writes the device endurance rating allows."""
        return self.config.endurance_dwpd * self.config.endurance_days * self.config.capacity_bytes

    def lifetime(
        self, elapsed_seconds: float, write_amplification: float = 1.0
    ) -> LifetimeEstimate:
        """Project lifetime assuming the observed traffic repeats continuously.

        Args:
            elapsed_seconds: Simulated wall-clock time that produced the
                recorded traffic (one or more training iterations).
            write_amplification: FTL write amplification to fold in.
        """
        if elapsed_seconds <= 0:
            raise SSDError("elapsed time must be positive")
        if write_amplification < 1.0:
            raise SSDError("write amplification cannot be below 1.0")
        sustained = self.bytes_written * write_amplification / elapsed_seconds
        if sustained == 0:
            lifetime_years = float("inf")
        else:
            lifetime_years = self.rated_write_bytes / sustained / (365.0 * 24 * 3600)
        return LifetimeEstimate(
            sustained_write_bandwidth=sustained,
            rated_write_bytes=self.rated_write_bytes,
            lifetime_years=lifetime_years,
            write_amplification=write_amplification,
        )
