"""SSD device model: FTL + service timing + wear statistics."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..config import SSDConfig
from ..errors import SSDError
from .flash import FlashGeometry
from .ftl import FlashTranslationLayer
from .wear import LifetimeEstimate, WearTracker

#: Upper bound on FTL mapping entries kept by the device model. Tensor-sized
#: transfers are mapped at a coarser granularity when the configured capacity
#: would otherwise require tens of millions of per-page records.
_MAX_MAPPED_UNITS = 1 << 17


@dataclass
class SSDStatistics:
    """Externally visible counters of one simulated SSD."""

    bytes_written: float = 0.0
    bytes_read: float = 0.0
    host_writes: int = 0
    host_reads: int = 0
    gc_invocations: int = 0
    gc_pages_relocated: int = 0
    busy_write_seconds: float = 0.0
    busy_read_seconds: float = 0.0


class SSDDevice:
    """A flash SSD servicing tensor-granularity reads and writes.

    The device keeps a page-mapped FTL (at a coarsened mapping unit so the
    structure stays small even for a 3.2 TB device), charges read/write latency
    and bandwidth per request, runs greedy garbage collection when free blocks
    run low, and feeds a :class:`WearTracker` for the §7.7 lifetime analysis.
    """

    def __init__(self, config: SSDConfig):
        self._config = config
        self._mapping_unit = self._choose_mapping_unit(config)
        geometry_pages = max(config.capacity_bytes // self._mapping_unit, config.pages_per_block)
        blocks = max(int(geometry_pages // config.pages_per_block), config.channels)
        self._geometry = FlashGeometry(
            channels=config.channels,
            blocks_per_channel=max(blocks // config.channels, 1),
            pages_per_block=config.pages_per_block,
            page_size=self._mapping_unit,
        )
        gc_blocks = max(2, int(self._geometry.total_blocks * config.gc_threshold))
        self._ftl = FlashTranslationLayer(self._geometry, gc_threshold_blocks=gc_blocks)
        self._wear = WearTracker(config)
        self._stats = SSDStatistics()
        #: logical unit run assigned to each stored object: tensor id ->
        #: (first_unit, num_units). Objects are written in one contiguous run
        #: (tensor transfers are sequential), so one extent record replaces a
        #: per-unit id list.
        self._objects: dict[int, tuple[int, int]] = {}
        self._next_unit = 0
        #: Units of live objects, maintained incrementally (O(1) stored_bytes).
        self._stored_units = 0

    @staticmethod
    def _choose_mapping_unit(config: SSDConfig) -> int:
        unit = config.flash_page_size
        while config.capacity_bytes // unit > _MAX_MAPPED_UNITS:
            unit *= 2
        return unit

    # -- properties -----------------------------------------------------------

    @property
    def config(self) -> SSDConfig:
        return self._config

    @property
    def geometry(self) -> FlashGeometry:
        return self._geometry

    @property
    def statistics(self) -> SSDStatistics:
        return self._stats

    @property
    def wear(self) -> WearTracker:
        return self._wear

    @property
    def write_amplification(self) -> float:
        return self._ftl.write_amplification

    @property
    def stored_bytes(self) -> int:
        """Bytes of live objects currently resident on flash."""
        return self._stored_units * self._mapping_unit

    def contains(self, object_id: int) -> bool:
        return object_id in self._objects

    # -- service model -----------------------------------------------------------

    def write_object(self, object_id: int, size_bytes: int) -> float:
        """Store (or overwrite) an object; returns the device service time."""
        if size_bytes <= 0:
            raise SSDError("cannot write an empty object")
        if self.stored_bytes + size_bytes > self._config.capacity_bytes:
            raise SSDError("SSD capacity exceeded")
        self._discard_units(object_id)
        first_unit, num_units = self._claim_run(size_bytes)
        result = self._ftl.write_run(first_unit, num_units)
        gc_runs = result.blocks_erased
        gc_pages = result.pages_relocated
        self._objects[object_id] = (first_unit, num_units)
        self._stored_units += num_units

        service = self._transfer_time(size_bytes, write=True)
        service += gc_pages * (self._config.write_latency + self._config.read_latency)
        service += gc_runs * self._config.erase_latency
        self._stats.bytes_written += size_bytes
        self._stats.host_writes += 1
        self._stats.gc_invocations += gc_runs
        self._stats.gc_pages_relocated += gc_pages
        self._stats.busy_write_seconds += service
        self._wear.record_write(size_bytes)
        return service

    def read_object(self, object_id: int, size_bytes: int) -> float:
        """Read an object back; returns the device service time."""
        if object_id not in self._objects:
            raise SSDError(f"object {object_id} is not stored on the SSD")
        service = self._transfer_time(size_bytes, write=False)
        self._stats.bytes_read += size_bytes
        self._stats.host_reads += 1
        self._stats.busy_read_seconds += service
        self._wear.record_read(size_bytes)
        return service

    def preload_object(self, object_id: int, size_bytes: int) -> None:
        """Map an object onto flash without charging service time or wear.

        Intended for initial residency setup (e.g. weights loaded from a
        checkpoint before the simulated iteration starts).
        """
        if size_bytes <= 0:
            raise SSDError("cannot preload an empty object")
        self._discard_units(object_id)
        first_unit, num_units = self._claim_run(size_bytes)
        self._ftl.write_run(first_unit, num_units)
        self._objects[object_id] = (first_unit, num_units)
        self._stored_units += num_units

    def discard_object(self, object_id: int) -> None:
        """TRIM an object (freed tensor or tensor migrated back for good)."""
        self._discard_units(object_id)
        self._objects.pop(object_id, None)

    def discard_objects(self, object_ids: Sequence[int]) -> None:
        """TRIM a batch of objects in the given order.

        One grouped FTL update for a kernel boundary's dead tensors: the trims
        are issued in list order, so the FTL observes the exact operation
        sequence the per-object calls would produce.
        """
        for object_id in object_ids:
            self._discard_units(object_id)
            self._objects.pop(object_id, None)

    def lifetime(self, elapsed_seconds: float) -> LifetimeEstimate:
        """Project device lifetime from the traffic recorded so far (§7.7)."""
        return self._wear.lifetime(elapsed_seconds, self.write_amplification)

    # -- internals ------------------------------------------------------------------

    def _units_for(self, size_bytes: int) -> int:
        return max(1, math.ceil(size_bytes / self._mapping_unit))

    def _claim_run(self, size_bytes: int) -> tuple[int, int]:
        """Assign a fresh contiguous logical-unit run for an object."""
        num_units = self._units_for(size_bytes)
        first_unit = self._next_unit
        self._next_unit += num_units
        return first_unit, num_units

    def _discard_units(self, object_id: int) -> None:
        run = self._objects.get(object_id)
        if run is not None:
            self._ftl.trim_run(run[0], run[1])
            self._stored_units -= run[1]

    def _transfer_time(self, size_bytes: int, write: bool) -> float:
        bandwidth = self._config.write_bandwidth if write else self._config.read_bandwidth
        latency = self._config.write_latency if write else self._config.read_latency
        return latency + size_bytes / bandwidth
