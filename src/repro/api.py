"""The Scenario/Session API: the library's composable entry point.

A :class:`Scenario` is an immutable, fluent description of one experiment —
which model, at which batch size and scale, on which system configuration,
under which migration policy::

    from repro import GB, Scenario

    scenario = (
        Scenario(model="bert")
        .with_batch_size(128)
        .with_gpu_memory(40 * GB)
        .with_profiling_error(0.10)
        .on_policy("g10")
    )
    outcome = scenario.run()
    print(outcome.normalized_performance, outcome.cache_key)

Every ``with_*``/``on_*`` method returns a *new* scenario, so partial
scenarios compose freely::

    base = Scenario("vit", scale="ci")
    results = {name: base.on_policy(name).run() for name in ("base_uvm", "g10")}

A scenario resolves lazily into a :class:`Session` — the executable form that
owns workload construction (memoized per process), system-configuration
resolution and execution — and running a session yields a
:class:`SessionResult`: the raw
:class:`~repro.sim.results.SimulationResult` *plus provenance* (the resolved
configuration fingerprint, the content-hash cache key shared with the sweep
cache, and the registered policy metadata).

Sessions are the unit of dispatch everywhere: the sweep runner's
:func:`~repro.experiments.sweep.execute_cell` executes each grid cell through
a session, so ``Scenario(...).run()`` is bit-identical to the same cell run
through ``SweepRunner``, the CLI, or the legacy
``build_workload``/``run_policy`` free functions (which remain as deprecated
shims). The distributed work queue
(:class:`~repro.experiments.queue.WorkQueue`) inherits the same property: a
queue task is exactly :meth:`Scenario.cell` plus :meth:`Scenario.cache_key`,
and its workers execute through sessions too.

Models and policies resolve through the open registries
(:mod:`repro.registry`); anything registered with ``@register_policy`` /
``@register_model`` is immediately scenario-runnable.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .experiments.tenancy import ArrivalProcess, MultiTenantScenario

from .config import SystemConfig
from .errors import ConfigurationError
from .registry import MODEL_REGISTRY, POLICY_REGISTRY
from .sim import SimulationResult
from .sim.observer import SimObserver
from .sim.policy import MigrationPolicy
from .experiments.harness import (
    Workload,
    build_workload,
    canonicalize_cell_fields,
    default_config,
    run_policy,
    validate_noise,
)
from .experiments.sweep import ConfigPatch, SweepCell, SweepRunner


@dataclass(frozen=True)
class Scenario:
    """An immutable, declarative description of one simulation.

    Construct with keyword tweaks or chain the fluent ``with_*`` methods;
    both are equivalent. ``batch_size=None`` resolves to the model's
    registered Figure 11 default (scaled for CI workloads), and the system
    configuration defaults to the paper's Table 2 at the chosen scale, with
    ``patch`` applying declarative overrides on top.
    """

    model: str
    policy: str = "g10"
    batch_size: int | None = None
    scale: str = "paper"
    profiling_error: float = 0.0
    seed: int = 0
    patch: ConfigPatch = field(default_factory=ConfigPatch)
    #: Replaces the *default* (Table 2) configuration entirely when set;
    #: ``patch`` still applies on top.
    base_config: SystemConfig | None = None

    # -- fluent construction ---------------------------------------------------

    def _replace(self, **changes: Any) -> "Scenario":
        return dataclasses.replace(self, **changes)

    def with_model(self, model: str) -> "Scenario":
        """A copy targeting a different registered model."""
        return self._replace(model=model)

    def on_policy(self, policy: str) -> "Scenario":
        """A copy simulated under a different registered policy."""
        return self._replace(policy=policy)

    #: Alias of :meth:`on_policy` for symmetry with the other setters.
    with_policy = on_policy

    def with_batch_size(self, batch_size: int | None) -> "Scenario":
        """A copy at an explicit batch size (``None`` restores the default)."""
        return self._replace(batch_size=batch_size)

    def at_scale(self, scale: str) -> "Scenario":
        """A copy at ``"paper"`` or ``"ci"`` scale."""
        return self._replace(scale=scale)

    with_scale = at_scale

    def with_profiling_error(self, error: float, seed: int | None = None) -> "Scenario":
        """A copy whose policy plans from noisy kernel durations (§7.6)."""
        return self._replace(
            profiling_error=error, seed=self.seed if seed is None else seed
        )

    def with_seed(self, seed: int) -> "Scenario":
        """A copy with a different profiling-noise seed."""
        return self._replace(seed=seed)

    def with_patch(self, patch: ConfigPatch) -> "Scenario":
        """A copy with a whole replacement :class:`ConfigPatch`."""
        return self._replace(patch=patch)

    def with_config(self, config: SystemConfig) -> "Scenario":
        """A copy whose *base* system configuration is ``config`` (not Table 2).

        The workload is **profiled and simulated** under ``config``. That is
        different from the declarative ``with_gpu_memory``-style overrides,
        which mirror the paper's sensitivity studies (and the legacy
        ``run_policy(..., config=...)`` argument): those profile the workload
        under the scale's default configuration and only *simulate* under the
        patched one. Declarative overrides still apply on top of ``config``.
        Note that scenarios with a custom base configuration cannot be
        expressed as sweep cells (see :meth:`cell`).
        """
        return self._replace(base_config=config)

    def _patched(self, **changes: Any) -> "Scenario":
        return self._replace(patch=dataclasses.replace(self.patch, **changes))

    def with_gpu_memory(self, nbytes: int) -> "Scenario":
        """A copy with a different GPU memory capacity (bytes)."""
        return self._patched(gpu_memory_bytes=int(nbytes))

    def with_host_memory(self, nbytes: int) -> "Scenario":
        """A copy with a different host DRAM capacity (Figures 16/17)."""
        return self._patched(host_memory_bytes=int(nbytes))

    def with_ssd_bandwidth(self, read_bw: float, write_bw: float | None = None) -> "Scenario":
        """A copy with a different SSD bandwidth (Figure 18); write bandwidth
        scales proportionally when omitted."""
        return self._patched(ssd_read_bandwidth=read_bw, ssd_write_bandwidth=write_bw)

    def with_interconnect_bandwidth(self, bandwidth: float) -> "Scenario":
        """A copy with a different PCIe bandwidth."""
        return self._patched(interconnect_bandwidth=bandwidth)

    # -- resolution ------------------------------------------------------------

    def resolved(self) -> "Scenario":
        """Canonical, validated form: normalized names, explicit batch size.

        Raises :class:`~repro.errors.ConfigurationError` (or
        :class:`~repro.errors.ModelError`) for unknown names, scales outside
        ``{"paper", "ci"}``, negative/out-of-range profiling error, or an
        out-of-range seed.
        """
        if self.scale not in ("paper", "ci"):
            raise ConfigurationError(
                f"unknown workload scale {self.scale!r}; expected 'paper' or 'ci'"
            )
        validate_noise(self.profiling_error, self.seed)
        # Scenarios and sweep cells canonicalize through the same rule, so a
        # session always executes exactly what its cache key describes.
        return self._replace(
            **canonicalize_cell_fields(
                self.model, self.policy, self.batch_size,
                self.scale, self.profiling_error, self.seed,
            )
        )

    def session(self) -> "Session":
        """Resolve into an executable :class:`Session`."""
        return Session(self)

    def run(
        self,
        observers: Sequence[SimObserver] = (),
        runner: SweepRunner | None = None,
    ) -> "SessionResult":
        """Shorthand for ``self.session().run(...)``."""
        return self.session().run(observers=observers, runner=runner)

    def cell(self) -> SweepCell:
        """This scenario as a sweep-grid cell (for specs, sharding, caching).

        Scenarios carrying a custom base configuration are not expressible as
        cells — cells derive their configuration from the scale's default plus
        the patch — and raise :class:`~repro.errors.ConfigurationError`.
        """
        if self.base_config is not None:
            raise ConfigurationError(
                "a scenario with a custom base configuration cannot be "
                "expressed as a sweep cell; use declarative with_*() "
                "overrides instead of with_config()"
            )
        resolved = self.resolved()
        return SweepCell(
            model=resolved.model,
            policy=resolved.policy,
            batch_size=resolved.batch_size,
            scale=resolved.scale,
            patch=resolved.patch,
            profiling_error=resolved.profiling_error,
            seed=resolved.seed,
        )

    def cache_key(self) -> str:
        """The sweep-cache content key this scenario's result is stored under.

        Together with :meth:`cell` this is the identity of a distributed
        work-queue task: ``WorkQueue.enqueue([scenario.cell()])`` queues
        exactly the computation whose result lands at this key.
        """
        return self.session().cache_key()

    def describe(self) -> dict[str, Any]:
        """JSON-safe summary of the resolved scenario (no execution)."""
        return self.session().describe()

    def colocated_with(
        self,
        *others: "Scenario",
        name: str = "t0",
        arrivals: "ArrivalProcess | None" = None,
    ) -> "MultiTenantScenario":
        """Compose this scenario with others into a multi-tenant scenario.

        Returns an immutable
        :class:`~repro.experiments.tenancy.MultiTenantScenario` where this
        scenario is tenant ``name`` and each other scenario becomes tenant
        ``t1``, ``t2``, ... — extend further with ``with_tenant(...)`` for
        custom names or per-tenant arrival processes. ``arrivals`` (an
        :class:`~repro.experiments.tenancy.ArrivalProcess`) applies to every
        tenant created here; the default is a single request at time zero.
        """
        from .experiments.tenancy import ArrivalProcess, MultiTenantScenario, Tenant

        process = arrivals if arrivals is not None else ArrivalProcess.trace((0.0,))
        if not isinstance(process, ArrivalProcess):
            raise ConfigurationError("arrivals must be an ArrivalProcess")
        tenants = [Tenant(name=name, scenario=self, arrivals=process)]
        for index, scenario in enumerate(others, start=1):
            if not isinstance(scenario, Scenario):
                raise ConfigurationError(
                    f"colocated_with takes Scenario instances, got {type(scenario).__name__}"
                )
            tenants.append(
                Tenant(name=f"t{index}", scenario=scenario, arrivals=process)
            )
        return MultiTenantScenario(tuple(tenants))


class Session:
    """The executable form of a scenario.

    A session owns workload construction (served from the per-process memo,
    so sessions sharing a workload profile it once), the resolution of the
    simulated system configuration, and execution. Sessions are cheap to
    create; the expensive work happens lazily on first access to
    :attr:`workload` or in :meth:`run`.
    """

    def __init__(self, scenario: Scenario):
        self._scenario = scenario.resolved()
        self._workload: Workload | None = None

    @property
    def scenario(self) -> Scenario:
        """The resolved scenario this session executes."""
        return self._scenario

    @property
    def workload(self) -> Workload:
        """The profiled workload (built and memoized on first access)."""
        if self._workload is None:
            s = self._scenario
            self._workload = build_workload(
                s.model, s.batch_size, s.scale, config=s.base_config
            )
        return self._workload

    def config(self) -> SystemConfig:
        """The exact system configuration the simulation runs under."""
        s = self._scenario
        base = s.base_config or default_config(s.model, s.scale)
        return s.patch.apply(base)

    def config_fingerprint(self) -> str:
        """Content hash of :meth:`config` (provenance / cache-key component)."""
        return self.config().fingerprint()

    def cache_key(self) -> str:
        """The content-hash key this run is cached under by the sweep cache."""
        return self.cell().cache_key()

    def cell(self) -> SweepCell:
        """The sweep cell equivalent of this session (see :meth:`Scenario.cell`)."""
        return self._scenario.cell()

    def policy(self) -> "MigrationPolicy":
        """A fresh instance of the scenario's policy."""
        return POLICY_REGISTRY.create(self._scenario.policy)

    def policy_metadata(self) -> dict[str, Any]:
        """Registry metadata of the scenario's policy."""
        return POLICY_REGISTRY.describe(self._scenario.policy)

    def run(
        self,
        observers: Sequence[SimObserver] = (),
        runner: SweepRunner | None = None,
    ) -> "SessionResult":
        """Execute the session and return its result with provenance.

        Without a ``runner`` the simulation executes in-process (and
        ``observers`` receive kernel/migration events). With a
        :class:`~repro.experiments.sweep.SweepRunner` the run goes through the
        runner's cache and process pool instead — bit-identical results, but
        observers cannot cross the cache/process boundary and are rejected.
        """
        s = self._scenario
        config = self.config()
        cached = False
        if runner is not None:
            if observers:
                raise ConfigurationError(
                    "observers require in-process execution; drop the runner "
                    "or the observers"
                )
            out = runner.run_one(self.cell())
            result = out.result
            cached = out.cached
        else:
            sim_config = config
            if s.base_config is None and s.patch.is_empty():
                sim_config = None  # workload default; identical, skips a rebuild
            result = run_policy(
                self.workload,
                s.policy,
                config=sim_config,
                profiling_error=s.profiling_error,
                seed=s.seed,
                observers=tuple(observers),
            )
        return SessionResult(
            scenario=s,
            result=result,
            config_fingerprint=config.fingerprint(),
            cache_key=None if s.base_config is not None else self.cache_key(),
            policy=self.policy_metadata(),
            cached=cached,
        )

    def describe(self) -> dict[str, Any]:
        """JSON-safe summary: scenario fields, config fingerprint, cache key."""
        s = self._scenario
        return {
            "model": s.model,
            "model_info": MODEL_REGISTRY.describe(s.model),
            "policy": s.policy,
            "policy_info": self.policy_metadata(),
            "batch_size": s.batch_size,
            "scale": s.scale,
            "profiling_error": s.profiling_error,
            "seed": s.seed,
            "patch": s.patch.to_dict(),
            "config_fingerprint": self.config_fingerprint(),
            "cache_key": None if s.base_config is not None else self.cache_key(),
        }


@dataclass(frozen=True)
class SessionResult:
    """A simulation result plus the provenance of how it was produced.

    Attribute access falls through to the wrapped
    :class:`~repro.sim.results.SimulationResult`, so
    ``outcome.normalized_performance`` works directly on a session result.
    """

    #: The resolved scenario that produced this result.
    scenario: Scenario
    #: The raw simulation result (bit-identical to a legacy harness run).
    result: SimulationResult
    #: Content hash of the exact :class:`~repro.config.SystemConfig` simulated.
    config_fingerprint: str
    #: Sweep-cache content key, or ``None`` for custom-base-config scenarios.
    cache_key: str | None
    #: Registered metadata of the policy (name, aliases, display, description).
    policy: Mapping[str, Any]
    #: True when the result was served from a runner's on-disk cache.
    cached: bool = False

    def __getattr__(self, item: str) -> Any:
        # Only called for names not found on SessionResult itself. Guard the
        # delegation target so a partially initialised instance (pickling,
        # copy) raises AttributeError instead of recursing.
        if item.startswith("_") or item == "result":
            raise AttributeError(item)
        return getattr(self.result, item)

    def summary(self) -> dict[str, Any]:
        """The result summary augmented with provenance columns."""
        summary = dict(self.result.summary())
        summary["config_fingerprint"] = self.config_fingerprint[:12]
        if self.cache_key:
            summary["cache_key"] = self.cache_key[:12]
        return summary

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe dump: result payload plus full provenance."""
        return {
            "scenario": self.scenario.cell().to_dict()
            if self.scenario.base_config is None
            else {"model": self.scenario.model, "policy": self.scenario.policy},
            "result": self.result.to_dict(),
            "config_fingerprint": self.config_fingerprint,
            "cache_key": self.cache_key,
            "policy": dict(self.policy),
            "cached": self.cached,
        }
