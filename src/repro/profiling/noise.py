"""Profiling-error injection used by the §7.6 robustness study (Figure 19).

The scheduler plans migrations from *profiled* kernel durations, but the
simulator executes the *true* durations. Injecting multiplicative noise into
the profiled copy reproduces the paper's experiment: G10's eager prefetching
should absorb up to ±20 % timing error with <0.5 % performance loss.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..graph.kernel import Kernel
from ..graph.training import TrainingGraph


def perturb_durations(
    kernels: list[Kernel], error: float, seed: int = 0
) -> list[Kernel]:
    """Return kernels whose durations carry uniform multiplicative noise.

    Args:
        kernels: Profiled kernels.
        error: Maximum relative error, e.g. ``0.2`` for ±20 %.
        seed: RNG seed so experiments are reproducible.
    """
    if error < 0 or error >= 1:
        raise ConfigurationError("profiling error must be in [0, 1)")
    if error == 0:
        return list(kernels)
    rng = np.random.default_rng(seed)
    factors = rng.uniform(1.0 - error, 1.0 + error, size=len(kernels))
    return [k.with_duration(k.duration * float(f)) for k, f in zip(kernels, factors)]


def perturb_trace(graph: TrainingGraph, error: float, seed: int = 0) -> TrainingGraph:
    """Return a training graph whose kernel durations carry profiling noise."""
    return graph.with_kernels(perturb_durations(graph.kernels, error, seed))
