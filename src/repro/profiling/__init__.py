"""Profiling substrate: kernel execution-time estimation and noise injection.

The paper profiles kernels on a real A100 and feeds the measured durations to
the compile-time scheduler. This package replaces the hardware with a roofline
cost model (:class:`KernelCostModel`), a tracer that produces the profiled
kernel trace for a training graph (:func:`profile_training_graph`), and a
noise model used by the §7.6 robustness study (:func:`perturb_durations`).
"""

from .cost_model import KernelCostModel
from .tracer import profile_training_graph, profile_kernels
from .noise import perturb_durations, perturb_trace

__all__ = [
    "KernelCostModel",
    "profile_training_graph",
    "profile_kernels",
    "perturb_durations",
    "perturb_trace",
]
