"""Trace generation: attach profiled durations to a training graph."""

from __future__ import annotations

from ..config import GPUConfig, SystemConfig
from ..graph.kernel import Kernel
from ..graph.training import TrainingGraph
from .cost_model import KernelCostModel


def profile_kernels(kernels: list[Kernel], gpu: GPUConfig) -> list[Kernel]:
    """Profile a bare kernel list with the roofline cost model."""
    return KernelCostModel(gpu).profile(kernels)


def profile_training_graph(
    graph: TrainingGraph, config: SystemConfig | GPUConfig
) -> TrainingGraph:
    """Return a copy of ``graph`` whose kernels carry profiled durations.

    Accepts either a full :class:`~repro.config.SystemConfig` or just the GPU
    section; only the GPU parameters matter for kernel timing.
    """
    gpu = config.gpu if isinstance(config, SystemConfig) else config
    profiled = profile_kernels(graph.kernels, gpu)
    return graph.with_kernels(profiled)
