"""Roofline kernel cost model standing in for A100 kernel profiling."""

from __future__ import annotations

from dataclasses import dataclass

from ..config import GPUConfig
from ..errors import ConfigurationError
from ..graph.kernel import Kernel


@dataclass(frozen=True)
class KernelCostModel:
    """Estimates kernel execution time from FLOPs and DRAM traffic.

    The model is a classic roofline: a kernel takes
    ``max(flops / effective_flops, bytes / memory_bandwidth)`` seconds, plus a
    fixed launch overhead. ``effective_flops`` applies an efficiency factor to
    the GPU's peak because DNN kernels rarely reach peak FP32 throughput.

    The absolute durations do not need to match the authors' A100 traces; the
    scheduler and every experiment only depend on the *ratio* between compute
    time and migration time, which the scaled configurations preserve.
    """

    gpu: GPUConfig

    def __post_init__(self) -> None:
        if self.gpu.peak_flops <= 0:
            raise ConfigurationError("cost model requires a positive peak FLOP rate")

    @property
    def effective_flops(self) -> float:
        """Achievable FLOP/s for generic kernels (see :meth:`compute_time`)."""
        return self.gpu.peak_flops * self.gpu.compute_efficiency

    def compute_time(self, flops: float, compute_class: str = "generic") -> float:
        """Seconds spent in arithmetic for a kernel with the given FLOPs.

        The achieved fraction of peak depends on the kernel class: large GEMMs
        run near peak, FP32 convolutions considerably below it, and grouped
        convolutions lower still (matching eager-mode cuDNN behaviour).
        """
        if flops < 0:
            raise ConfigurationError("flops cannot be negative")
        return flops / (self.gpu.peak_flops * self.gpu.efficiency_for(compute_class))

    def memory_time(self, nbytes: float) -> float:
        """Seconds spent moving ``nbytes`` through GPU DRAM."""
        if nbytes < 0:
            raise ConfigurationError("bytes cannot be negative")
        return nbytes / self.gpu.memory_bandwidth

    def kernel_duration(self, kernel: Kernel) -> float:
        """Roofline duration of one kernel, including launch overhead."""
        return (
            max(
                self.compute_time(kernel.flops, kernel.compute_class),
                self.memory_time(kernel.bytes_accessed),
            )
            + self.gpu.kernel_launch_overhead
        )

    def profile(self, kernels: list[Kernel]) -> list[Kernel]:
        """Return a copy of ``kernels`` with durations filled in."""
        return [k.with_duration(self.kernel_duration(k)) for k in kernels]
