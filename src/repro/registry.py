"""Open, decorator-based registries for policies, models and experiments.

The reproduction used to construct policies and models through closed
module-private dicts; extending the system meant editing repro source. This
module replaces those dicts with three open :class:`Registry` instances —
:data:`POLICY_REGISTRY`, :data:`MODEL_REGISTRY` and :data:`EXPERIMENT_REGISTRY`
— so third-party code plugs in with a decorator::

    from repro import register_policy
    from repro.baselines import BaseUVMPolicy

    @register_policy("my_policy", aliases=("mine",), display="My Policy")
    class MyPolicy(BaseUVMPolicy):
        name = "My Policy"

    # immediately runnable through the Scenario API and the CLI:
    from repro import Scenario
    Scenario("bert", scale="ci").on_policy("my_policy").run()

Every registry supports:

* **decorator and direct registration** — ``@register_policy("name")`` over a
  class, or ``register_policy("name", factory)`` for lambdas/closures;
* **alias tables** — paper-style labels (``"G10+Host"``, ``"Base UVM"``,
  ``"DeepUM+"``) resolve to canonical keys through a per-registry name
  normalizer plus explicit aliases;
* **introspection** — :meth:`Registry.available`, :meth:`Registry.describe`
  and :meth:`Registry.describe_all` back ``repro run --list-policies`` and
  ``--list-models``;
* **hygiene** — duplicate registration raises (pass ``replace=True`` to
  shadow deliberately), unknown names raise with the available alternatives
  and a did-you-mean suggestion, and :meth:`Registry.unregister` keeps tests
  clean.

Built-in entries self-register when their defining module is imported; each
registry lazily imports that module on first use (the *bootstrap*), so
``POLICY_REGISTRY.create("g10")`` works even when ``repro.baselines`` has not
been imported yet.

Out-of-tree plugins can be loaded by name through :func:`load_plugins` or the
``REPRO_PLUGINS`` environment variable (a comma-separated list of importable
modules), which the CLI and the sweep worker processes both honour.
"""

from __future__ import annotations

import difflib
import importlib
import os
import re
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from .errors import ConfigurationError, ModelError, ReproError

_SEPARATORS = re.compile(r"[\s\-+./]+")


def normalize_token(name: str) -> str:
    """Canonicalize a user-facing name: lowercase, separators to ``_``.

    ``"G10+Host"`` → ``"g10_host"``, ``"Base UVM"`` → ``"base_uvm"``,
    ``"DeepUM+"`` → ``"deepum"`` (trailing separators are stripped).
    """
    key = _SEPARATORS.sub("_", str(name).strip().lower())
    key = re.sub(r"_+", "_", key).strip("_")
    return key


def squash_token(name: str) -> str:
    """Canonicalize by *removing* separators: ``"ResNet-152"`` → ``"resnet152"``.

    This is the historical model-name normalization, kept so every spelling
    that used to resolve still does.
    """
    return normalize_token(name).replace("_", "")


@dataclass
class RegistryEntry:
    """One registered object plus its lookup and documentation metadata."""

    name: str
    factory: Callable[..., Any]
    aliases: tuple[str, ...] = ()
    metadata: dict[str, Any] = field(default_factory=dict)

    def describe(self) -> dict[str, Any]:
        """JSON-safe metadata used by ``--list-*`` and :meth:`Registry.describe`."""
        info: dict[str, Any] = {"name": self.name, "aliases": list(self.aliases)}
        info.update(self.metadata)
        return info


class Registry:
    """An ordered, open mapping from canonical names to factories.

    Args:
        kind: Human-readable noun used in error messages ("policy", "model").
        normalize: Name canonicalization applied to every registered name,
            alias and lookup (default :func:`normalize_token`).
        bootstrap: Dotted module path imported lazily before the first
            lookup/listing; importing it must register the built-in entries.
        error_cls: Exception type raised on failed lookups and duplicate
            registrations (must be a :class:`~repro.errors.ReproError`).
    """

    def __init__(
        self,
        kind: str,
        normalize: Callable[[str], str] = normalize_token,
        bootstrap: str | None = None,
        error_cls: type[ReproError] = ConfigurationError,
    ) -> None:
        self.kind = kind
        self._normalize = normalize
        self._bootstrap_module = bootstrap
        self._bootstrapped = bootstrap is None
        self._error_cls = error_cls
        self._entries: dict[str, RegistryEntry] = {}
        self._aliases: dict[str, str] = {}

    # -- registration ---------------------------------------------------------

    def register(
        self,
        name: str,
        obj: Callable[..., Any] | None = None,
        *,
        aliases: tuple[str, ...] | list[str] = (),
        replace: bool = False,
        **metadata: Any,
    ) -> Callable[..., Any]:
        """Register ``obj`` under ``name``; usable as a decorator.

        ``@registry.register("name", aliases=("other",), display="Name")``
        decorates a class or function; ``registry.register("name", factory)``
        registers directly. Returns the registered object (decorator form) so
        the definition is unchanged.
        """

        def _register(target: Callable[..., Any]) -> Callable[..., Any]:
            key = self._normalize(name)
            if not key:
                raise self._error_cls(f"{self.kind} name cannot be empty: {name!r}")
            self._ensure_bootstrapped()
            if not replace and (key in self._entries or key in self._aliases):
                raise self._error_cls(
                    f"{self.kind} {name!r} is already registered"
                    f" (canonical key {key!r}); pass replace=True to shadow it"
                )
            alias_keys = tuple(dict.fromkeys(self._normalize(a) for a in aliases))
            for alias in alias_keys:
                owner = self._aliases.get(alias)
                if not replace and ((alias in self._entries and alias != key) or (owner and owner != key)):
                    raise self._error_cls(
                        f"{self.kind} alias {alias!r} for {name!r} collides with "
                        f"an existing registration"
                    )
            if replace:
                # Shadowing must really shadow: drop an alias binding that
                # would otherwise keep resolving the name to its old owner,
                # and the aliases of any entry being replaced outright. Any
                # alias taken over (the new name itself, or one of its
                # aliases) is also removed from the previous owner's entry so
                # introspection (describe/--list-*) matches what resolves.
                for taken in (key, *alias_keys):
                    owner_key = self._aliases.pop(taken, None)
                    if owner_key is not None and owner_key != key:
                        owner = self._entries.get(owner_key)
                        if owner is not None:
                            owner.aliases = tuple(a for a in owner.aliases if a != taken)
                    if taken != key and taken in self._entries:
                        # A new alias shadows a whole canonical entry: the
                        # entry would resolve to the new registration anyway
                        # (alias lookup wins), so drop it rather than keep an
                        # unreachable row in describe_all()/--list-*.
                        shadowed = self._entries.pop(taken)
                        for alias in shadowed.aliases:
                            if self._aliases.get(alias) == taken:
                                del self._aliases[alias]
                previous = self._entries.get(key)
                if previous is not None:
                    for alias in previous.aliases:
                        if self._aliases.get(alias) == key and alias not in alias_keys:
                            del self._aliases[alias]
            self._entries[key] = RegistryEntry(
                name=key, factory=target, aliases=alias_keys, metadata=dict(metadata)
            )
            for alias in alias_keys:
                if alias != key:
                    self._aliases[alias] = key
            return target

        if obj is None:
            return _register
        return _register(obj)

    def unregister(self, name: str) -> None:
        """Remove one registration and its aliases (no-op for unknown names)."""
        key = self._normalize(name)
        entry = self._entries.pop(key, None)
        if entry is not None:
            for alias in entry.aliases:
                if self._aliases.get(alias) == key:
                    del self._aliases[alias]

    # -- lookup ---------------------------------------------------------------

    def resolve(self, name: str) -> str:
        """Canonical key for any accepted spelling; raises on unknown names."""
        self._ensure_bootstrapped()
        key = self._normalize(name)
        key = self._aliases.get(key, key)
        if key not in self._entries:
            raise self._error_cls(self._unknown_message(name, key))
        return key

    def get(self, name: str) -> Callable[..., Any]:
        """The registered factory for ``name``."""
        return self._entries[self.resolve(name)].factory

    def create(self, name: str, *args: Any, **kwargs: Any) -> Any:
        """Instantiate ``name``'s factory with the given arguments."""
        return self.get(name)(*args, **kwargs)

    def entry(self, name: str) -> RegistryEntry:
        """The full :class:`RegistryEntry` for ``name``."""
        return self._entries[self.resolve(name)]

    def metadata(self, name: str) -> dict[str, Any]:
        """The metadata dict captured at registration time."""
        return self.entry(name).metadata

    def describe(self, name: str) -> dict[str, Any]:
        """Name, aliases and metadata of one entry (JSON-safe)."""
        return self.entry(name).describe()

    def describe_all(self) -> list[dict[str, Any]]:
        """:meth:`describe` for every entry, in registration order."""
        self._ensure_bootstrapped()
        return [entry.describe() for entry in self._entries.values()]

    def available(self) -> list[str]:
        """Canonical names in registration order."""
        self._ensure_bootstrapped()
        return list(self._entries)

    def aliases(self) -> dict[str, str]:
        """Alias → canonical-name table."""
        self._ensure_bootstrapped()
        return dict(self._aliases)

    def __contains__(self, name: str) -> bool:
        try:
            self.resolve(name)
        except ReproError:
            return False
        return True

    def __iter__(self) -> Iterator[RegistryEntry]:
        self._ensure_bootstrapped()
        return iter(list(self._entries.values()))

    def __len__(self) -> int:
        self._ensure_bootstrapped()
        return len(self._entries)

    # -- internals ------------------------------------------------------------

    def _ensure_bootstrapped(self) -> None:
        if not self._bootstrapped:
            # Flip first: the bootstrap module registers entries through this
            # registry, and must not recurse back into the import. Reset on
            # failure so a later call retries instead of reporting a
            # misleading empty registry (Python drops failed modules from
            # sys.modules, so the retry re-executes the import).
            self._bootstrapped = True
            try:
                importlib.import_module(self._bootstrap_module)
            except BaseException:
                self._bootstrapped = False
                raise

    def _unknown_message(self, name: str, key: str) -> str:
        candidates = sorted(set(self._entries) | set(self._aliases))
        message = f"unknown {self.kind} {name!r}; available: {sorted(self._entries)}"
        suggestions = difflib.get_close_matches(key, candidates, n=2, cutoff=0.6)
        if suggestions:
            resolved = sorted({self._aliases.get(s, s) for s in suggestions})
            message += f" (did you mean {' or '.join(repr(s) for s in resolved)}?)"
        return message


#: Migration policies (``repro.baselines`` registers the built-ins).
POLICY_REGISTRY = Registry("policy", bootstrap="repro.baselines")

#: DNN model builders (``repro.models`` registers the Table 1 zoo).
MODEL_REGISTRY = Registry(
    "model", normalize=squash_token, bootstrap="repro.models", error_cls=ModelError
)

#: Figure/table experiments (``repro.experiments.reporting`` registers them).
EXPERIMENT_REGISTRY = Registry("experiment", bootstrap="repro.experiments.reporting")

#: Decorator registering a migration-policy factory (class or zero-arg callable).
register_policy = POLICY_REGISTRY.register

#: Decorator registering a model builder ``(batch_size, **overrides) -> DataflowGraph``.
register_model = MODEL_REGISTRY.register


def register_experiment(
    experiment: Any = None,
    *,
    id: str | None = None,
    title: str | None = None,
    spec: Callable[..., Any] | None = None,
    supports_models: bool = False,
    aliases: tuple[str, ...] | list[str] = (),
    replace: bool = False,
) -> Any:
    """Register an experiment (a renderer plus optional sweep-spec builder).

    Two forms are accepted::

        register_experiment(Experiment("11", "Figure 11", render, spec))

        @register_experiment(id="my_exp", title="My experiment", spec=my_spec)
        def render_my_exp(scale="ci", runner=None): ...

    Registered experiments appear in ``repro figure``/``repro report`` and in
    :data:`repro.experiments.reporting.EXPERIMENTS` alongside the built-ins.
    """
    from .experiments.reporting import Experiment

    def _register(render: Callable[..., Any]) -> Any:
        exp = Experiment(
            id=str(id), title=title or str(id), render=render,
            spec=spec, supports_models=supports_models,
        )
        EXPERIMENT_REGISTRY.register(
            exp.id, lambda exp=exp: exp, aliases=aliases, replace=replace, title=exp.title
        )
        return render

    if experiment is not None:
        if not hasattr(experiment, "id"):
            raise ConfigurationError(
                "register_experiment takes an Experiment instance or keyword "
                f"arguments, got {experiment!r}"
            )
        exp = experiment
        EXPERIMENT_REGISTRY.register(
            exp.id, lambda exp=exp: exp, aliases=aliases, replace=replace, title=exp.title
        )
        return experiment
    if id is None:
        raise ConfigurationError("register_experiment requires an id")
    return _register


_loaded_plugins: set[str] = set()


def load_plugins(modules: str | list[str] | tuple[str, ...] | None = None) -> list[str]:
    """Import plugin modules so their registrations become visible.

    ``modules`` may be a comma-separated string or a sequence of importable
    module paths; ``None`` reads the ``REPRO_PLUGINS`` environment variable.
    Importing a module is what registers its policies/models/experiments.
    Idempotent per module. Returns the list of modules imported by this call.

    Explicitly loaded modules are appended to ``REPRO_PLUGINS`` so that sweep
    worker processes — which call ``load_plugins()`` with no arguments, and
    on spawn-based start methods inherit only the environment — re-import
    them and resolve the same registrations.
    """
    from_env = modules is None
    if from_env:
        modules = os.environ.get("REPRO_PLUGINS", "")
    if isinstance(modules, str):
        modules = [m.strip() for m in modules.split(",") if m.strip()]
    imported: list[str] = []
    for module in modules:
        if module in _loaded_plugins:
            continue
        try:
            importlib.import_module(module)
        except ImportError as exc:
            raise ConfigurationError(f"cannot import plugin module {module!r}: {exc}") from exc
        _loaded_plugins.add(module)
        imported.append(module)
    if imported and not from_env:
        current = [m.strip() for m in os.environ.get("REPRO_PLUGINS", "").split(",") if m.strip()]
        os.environ["REPRO_PLUGINS"] = ",".join(dict.fromkeys(current + imported))
    return imported
