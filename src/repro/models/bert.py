"""BERT-Base builder (Devlin et al., 2018) for sequence classification (CoLA)."""

from __future__ import annotations

from ..graph.dataflow import DataflowGraph
from ..graph.tensor import TensorInfo
from ..registry import register_model
from .builder import ModelBuilder

#: Default architecture parameters for BERT-Base.
BERT_BASE = {
    "num_layers": 12,
    "hidden": 768,
    "heads": 12,
    "intermediate": 3072,
    "vocab_size": 30522,
    "seq_len": 512,
}


def _transformer_encoder_layer(
    builder: ModelBuilder, x: TensorInfo, heads: int, intermediate: int
) -> TensorInfo:
    """Post-norm transformer encoder layer (attention + FFN, two residuals)."""
    attn_out = builder.attention(x, num_heads=heads, prefix="attn")
    attn_out = builder.dropout(attn_out, prefix="attn_dropout")
    x = builder.add(x, attn_out, prefix="attn_residual")
    x = builder.layernorm(x, prefix="attn_ln")

    hidden = x.shape[-1]
    ffn = builder.linear(x, intermediate, prefix="ffn_up")
    ffn = builder.gelu(ffn, prefix="ffn_gelu")
    ffn = builder.linear(ffn, hidden, prefix="ffn_down")
    ffn = builder.dropout(ffn, prefix="ffn_dropout")
    x = builder.add(x, ffn, prefix="ffn_residual")
    return builder.layernorm(x, prefix="ffn_ln")


@register_model(
    "bert",
    aliases=("bertbase",),
    display="BERT",
    source="Hugging Face",
    dataset="CoLA",
    default_batch_size=256,
    ci_overrides={"num_layers": 3},
    ci_capacity_scale=0.25,
)
def build_bert(
    batch_size: int,
    seq_len: int = BERT_BASE["seq_len"],
    num_layers: int = BERT_BASE["num_layers"],
    hidden: int = BERT_BASE["hidden"],
    heads: int = BERT_BASE["heads"],
    intermediate: int = BERT_BASE["intermediate"],
    vocab_size: int = BERT_BASE["vocab_size"],
    num_classes: int = 2,
) -> DataflowGraph:
    """Build the forward graph of BERT-Base sequence classification."""
    builder = ModelBuilder(name=f"BERT-{batch_size}", batch_size=batch_size)
    tokens = builder.input_tokens(seq_len)
    x = builder.embedding(tokens, vocab_size, hidden, prefix="word_embedding")
    x = builder.layernorm(x, prefix="embedding_ln")
    x = builder.dropout(x, prefix="embedding_dropout")

    for _layer in range(num_layers):
        x = _transformer_encoder_layer(builder, x, heads, intermediate)

    pooled = builder.linear(x, hidden, prefix="pooler")
    builder.classifier(pooled, num_classes)
    return builder.build()
