"""Inception-v3 builder (Szegedy et al., CVPR'16) on 299x299 ImageNet inputs."""

from __future__ import annotations

from ..graph.dataflow import DataflowGraph
from ..graph.tensor import TensorInfo
from ..registry import register_model
from .builder import ModelBuilder


def _conv_bn(
    builder: ModelBuilder,
    x: TensorInfo,
    out_channels: int,
    kernel_size: int,
    stride: int = 1,
    padding: int | None = None,
) -> TensorInfo:
    """Convolution + batch norm + ReLU, the basic Inception building block."""
    out = builder.conv2d(x, out_channels, kernel_size, stride=stride, padding=padding)
    out = builder.batchnorm(out)
    return builder.relu(out, inplace=True)


def _inception_a(builder: ModelBuilder, x: TensorInfo, pool_channels: int) -> TensorInfo:
    """InceptionA module: 1x1, 5x5, double-3x3 and pooled branches."""
    branch1 = _conv_bn(builder, x, 64, 1)
    branch2 = _conv_bn(builder, x, 48, 1)
    branch2 = _conv_bn(builder, branch2, 64, 5)
    branch3 = _conv_bn(builder, x, 64, 1)
    branch3 = _conv_bn(builder, branch3, 96, 3)
    branch3 = _conv_bn(builder, branch3, 96, 3)
    branch4 = builder.pool(x, kernel_size=3, stride=1, padding=1, prefix="avgpool")
    branch4 = _conv_bn(builder, branch4, pool_channels, 1)
    return builder.concat([branch1, branch2, branch3, branch4])


def _inception_b(builder: ModelBuilder, x: TensorInfo) -> TensorInfo:
    """InceptionB (grid reduction) module."""
    branch1 = _conv_bn(builder, x, 384, 3, stride=2, padding=0)
    branch2 = _conv_bn(builder, x, 64, 1)
    branch2 = _conv_bn(builder, branch2, 96, 3)
    branch2 = _conv_bn(builder, branch2, 96, 3, stride=2, padding=0)
    branch3 = builder.pool(x, kernel_size=3, stride=2, padding=0, prefix="maxpool")
    return builder.concat([branch1, branch2, branch3])


def _inception_c(builder: ModelBuilder, x: TensorInfo, mid_channels: int) -> TensorInfo:
    """InceptionC module with factorised 7x7 convolutions (modelled as 7-wide convs)."""
    branch1 = _conv_bn(builder, x, 192, 1)
    branch2 = _conv_bn(builder, x, mid_channels, 1)
    branch2 = _conv_bn(builder, branch2, mid_channels, 7)
    branch2 = _conv_bn(builder, branch2, 192, 7)
    branch3 = _conv_bn(builder, x, mid_channels, 1)
    branch3 = _conv_bn(builder, branch3, mid_channels, 7)
    branch3 = _conv_bn(builder, branch3, mid_channels, 7)
    branch3 = _conv_bn(builder, branch3, 192, 7)
    branch4 = builder.pool(x, kernel_size=3, stride=1, padding=1, prefix="avgpool")
    branch4 = _conv_bn(builder, branch4, 192, 1)
    return builder.concat([branch1, branch2, branch3, branch4])


def _inception_d(builder: ModelBuilder, x: TensorInfo) -> TensorInfo:
    """InceptionD (grid reduction) module."""
    branch1 = _conv_bn(builder, x, 192, 1)
    branch1 = _conv_bn(builder, branch1, 320, 3, stride=2, padding=0)
    branch2 = _conv_bn(builder, x, 192, 1)
    branch2 = _conv_bn(builder, branch2, 192, 7)
    branch2 = _conv_bn(builder, branch2, 192, 3, stride=2, padding=0)
    branch3 = builder.pool(x, kernel_size=3, stride=2, padding=0, prefix="maxpool")
    return builder.concat([branch1, branch2, branch3])


def _inception_e(builder: ModelBuilder, x: TensorInfo) -> TensorInfo:
    """InceptionE module with expanded 3x3 branches."""
    branch1 = _conv_bn(builder, x, 320, 1)
    branch2 = _conv_bn(builder, x, 384, 1)
    branch2a = _conv_bn(builder, branch2, 384, 3)
    branch2b = _conv_bn(builder, branch2, 384, 3)
    branch3 = _conv_bn(builder, x, 448, 1)
    branch3 = _conv_bn(builder, branch3, 384, 3)
    branch3a = _conv_bn(builder, branch3, 384, 3)
    branch3b = _conv_bn(builder, branch3, 384, 3)
    branch4 = builder.pool(x, kernel_size=3, stride=1, padding=1, prefix="avgpool")
    branch4 = _conv_bn(builder, branch4, 192, 1)
    return builder.concat([branch1, branch2a, branch2b, branch3a, branch3b, branch4])


@register_model(
    "inceptionv3",
    aliases=("inception",),
    display="Inceptionv3",
    source="PyTorch Examples",
    dataset="ImageNet",
    default_batch_size=1536,
    ci_overrides={"image_size": 171},
    ci_capacity_scale=0.33,
)
def build_inceptionv3(
    batch_size: int,
    image_size: int = 299,
    num_classes: int = 1000,
) -> DataflowGraph:
    """Build the forward graph of Inception-v3 at the given batch size."""
    builder = ModelBuilder(name=f"Inceptionv3-{batch_size}", batch_size=batch_size)
    x = builder.input_image(3, image_size, image_size)

    x = _conv_bn(builder, x, 32, 3, stride=2, padding=0)
    x = _conv_bn(builder, x, 32, 3, padding=0)
    x = _conv_bn(builder, x, 64, 3)
    x = builder.pool(x, kernel_size=3, stride=2, padding=0, prefix="maxpool")
    x = _conv_bn(builder, x, 80, 1)
    x = _conv_bn(builder, x, 192, 3, padding=0)
    x = builder.pool(x, kernel_size=3, stride=2, padding=0, prefix="maxpool")

    x = _inception_a(builder, x, pool_channels=32)
    x = _inception_a(builder, x, pool_channels=64)
    x = _inception_a(builder, x, pool_channels=64)
    x = _inception_b(builder, x)
    x = _inception_c(builder, x, mid_channels=128)
    x = _inception_c(builder, x, mid_channels=160)
    x = _inception_c(builder, x, mid_channels=160)
    x = _inception_c(builder, x, mid_channels=192)
    x = _inception_d(builder, x)
    x = _inception_e(builder, x)
    x = _inception_e(builder, x)

    x = builder.global_pool(x)
    x = builder.dropout(x)
    builder.classifier(x, num_classes)
    return builder.build()
