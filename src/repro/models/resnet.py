"""ResNet-152 builder (He et al., CVPR'16) on 224x224 ImageNet inputs."""

from __future__ import annotations

from ..graph.dataflow import DataflowGraph
from ..graph.tensor import TensorInfo
from ..registry import register_model
from .builder import ModelBuilder

#: Bottleneck block counts per stage for ResNet-152.
RESNET152_STAGES = (3, 8, 36, 3)


def _bottleneck(
    builder: ModelBuilder,
    x: TensorInfo,
    mid_channels: int,
    out_channels: int,
    stride: int,
) -> TensorInfo:
    """Standard ResNet bottleneck: 1x1 -> 3x3 -> 1x1 with a residual connection."""
    identity = x
    out = builder.conv2d(x, mid_channels, kernel_size=1, stride=1, padding=0)
    out = builder.batchnorm(out)
    out = builder.relu(out, inplace=True)
    out = builder.conv2d(out, mid_channels, kernel_size=3, stride=stride, padding=1)
    out = builder.batchnorm(out)
    out = builder.relu(out, inplace=True)
    out = builder.conv2d(out, out_channels, kernel_size=1, stride=1, padding=0)
    out = builder.batchnorm(out)
    if identity.shape != out.shape:
        identity = builder.conv2d(
            identity, out_channels, kernel_size=1, stride=stride, padding=0, prefix="downsample"
        )
        identity = builder.batchnorm(identity)
    out = builder.add(out, identity)
    return builder.relu(out, inplace=True)


@register_model(
    "resnet152",
    aliases=("resnet",),
    display="ResNet152",
    source="PyTorch Examples",
    dataset="ImageNet",
    default_batch_size=1280,
    ci_overrides={"stages": (2, 3, 6, 2)},
    ci_capacity_scale=0.25,
)
def build_resnet152(
    batch_size: int,
    image_size: int = 224,
    num_classes: int = 1000,
    stages: tuple[int, ...] = RESNET152_STAGES,
) -> DataflowGraph:
    """Build the forward graph of ResNet-152 at the given batch size."""
    builder = ModelBuilder(name=f"ResNet152-{batch_size}", batch_size=batch_size)
    x = builder.input_image(3, image_size, image_size)

    x = builder.conv2d(x, 64, kernel_size=7, stride=2, padding=3, prefix="stem_conv")
    x = builder.batchnorm(x)
    x = builder.relu(x, inplace=True)
    x = builder.pool(x, kernel_size=3, stride=2, padding=1, prefix="stem_pool")

    mid = 64
    out_channels = 256
    for stage_index, num_blocks in enumerate(stages):
        for block_index in range(num_blocks):
            stride = 2 if (stage_index > 0 and block_index == 0) else 1
            x = _bottleneck(builder, x, mid, out_channels, stride)
        mid *= 2
        out_channels *= 2

    x = builder.global_pool(x)
    builder.classifier(x, num_classes)
    return builder.build()
