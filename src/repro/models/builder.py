"""High-level layer builder over the raw dataflow graph.

The builder exposes one method per layer type found in the evaluated models
(convolutions, normalisations, activations, pooling, linear layers, attention,
embeddings and elementwise ops). Each method registers the weight tensors,
computes output shapes and forward FLOPs, and appends an operator to the
underlying :class:`~repro.graph.DataflowGraph`.

Shape conventions:

* CNN activations are ``(N, C, H, W)``.
* Transformer activations are ``(N, S, D)`` (batch, sequence, hidden).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ModelError
from ..graph.dataflow import DataflowGraph
from ..graph.operator import OpType
from ..graph.tensor import TensorInfo, TensorKind


@dataclass
class ModelBuilder:
    """Incrementally builds the forward graph of one model."""

    name: str
    batch_size: int

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise ModelError("batch size must be positive")
        self.graph = DataflowGraph(name=self.name, batch_size=self.batch_size)
        self._layer_counter = 0

    # -- internals -------------------------------------------------------

    def _next_name(self, prefix: str) -> str:
        self._layer_counter += 1
        return f"{prefix}_{self._layer_counter}"

    def _activation(self, name: str, shape: tuple[int, ...]) -> TensorInfo:
        return self.graph.add_tensor(name, shape, TensorKind.ACTIVATION)

    def _weight(self, name: str, shape: tuple[int, ...]) -> TensorInfo:
        return self.graph.add_tensor(name, shape, TensorKind.WEIGHT)

    # -- inputs ----------------------------------------------------------

    def input_image(self, channels: int, height: int, width: int, name: str = "input") -> TensorInfo:
        """Register the model input as an image batch ``(N, C, H, W)``."""
        return self.graph.add_tensor(
            name, (self.batch_size, channels, height, width), TensorKind.INPUT
        )

    def input_tokens(self, seq_len: int, name: str = "input_ids") -> TensorInfo:
        """Register the model input as a token-id batch ``(N, S)``."""
        return self.graph.add_tensor(name, (self.batch_size, seq_len), TensorKind.INPUT)

    # -- convolutional layers ----------------------------------------------

    def conv2d(
        self,
        x: TensorInfo,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int | None = None,
        groups: int = 1,
        prefix: str = "conv",
    ) -> TensorInfo:
        """2-D convolution. Returns the output activation."""
        n, c, h, w = x.shape
        if padding is None:
            padding = kernel_size // 2
        out_h = (h + 2 * padding - kernel_size) // stride + 1
        out_w = (w + 2 * padding - kernel_size) // stride + 1
        if out_h <= 0 or out_w <= 0:
            raise ModelError(
                f"conv2d output collapsed to {out_h}x{out_w} for input {x.shape}"
            )
        name = self._next_name(prefix)
        weight = self._weight(
            f"{name}.weight", (out_channels, c // groups, kernel_size, kernel_size)
        )
        out = self._activation(f"{name}.out", (n, out_channels, out_h, out_w))
        flops = 2.0 * n * out_channels * out_h * out_w * (c // groups) * kernel_size * kernel_size
        workspace = int(min(flops / 64.0, 256 * 1024 * 1024))
        self.graph.add_operator(
            name,
            OpType.CONV2D,
            inputs=[x],
            outputs=[out],
            weights=[weight],
            flops=flops,
            workspace_bytes=workspace,
            compute_class="grouped_conv" if groups > 1 else "conv",
        )
        return out

    def batchnorm(self, x: TensorInfo, prefix: str = "bn") -> TensorInfo:
        """Batch normalisation over channels of ``(N, C, H, W)``."""
        n, c, *_rest = x.shape
        name = self._next_name(prefix)
        weight = self._weight(f"{name}.scale_bias", (2, c))
        out = self._activation(f"{name}.out", x.shape)
        flops = 8.0 * x.num_elements
        self.graph.add_operator(
            name, OpType.BATCHNORM, inputs=[x], outputs=[out], weights=[weight], flops=flops
        )
        return out

    def relu(self, x: TensorInfo, prefix: str = "relu", inplace: bool = False) -> TensorInfo:
        """ReLU activation.

        With ``inplace=True`` the activation overwrites its input (as
        torchvision CNNs do), so no new tensor is allocated.
        """
        name = self._next_name(prefix)
        out = x if inplace else self._activation(f"{name}.out", x.shape)
        self.graph.add_operator(
            name, OpType.RELU, inputs=[x], outputs=[out], flops=float(x.num_elements)
        )
        return out

    def sigmoid(self, x: TensorInfo, prefix: str = "sigmoid") -> TensorInfo:
        """Sigmoid activation (used by the SE blocks of SENet)."""
        name = self._next_name(prefix)
        out = self._activation(f"{name}.out", x.shape)
        self.graph.add_operator(
            name, OpType.SIGMOID, inputs=[x], outputs=[out], flops=4.0 * x.num_elements
        )
        return out

    def pool(
        self,
        x: TensorInfo,
        kernel_size: int,
        stride: int | None = None,
        padding: int = 0,
        prefix: str = "pool",
    ) -> TensorInfo:
        """Max/average pooling of an image batch."""
        n, c, h, w = x.shape
        stride = stride or kernel_size
        out_h = (h + 2 * padding - kernel_size) // stride + 1
        out_w = (w + 2 * padding - kernel_size) // stride + 1
        if out_h <= 0 or out_w <= 0:
            raise ModelError(f"pool output collapsed for input {x.shape}")
        name = self._next_name(prefix)
        out = self._activation(f"{name}.out", (n, c, out_h, out_w))
        flops = float(n * c * out_h * out_w * kernel_size * kernel_size)
        self.graph.add_operator(name, OpType.POOL, inputs=[x], outputs=[out], flops=flops)
        return out

    def global_pool(self, x: TensorInfo, prefix: str = "gap") -> TensorInfo:
        """Global average pooling producing ``(N, C)``."""
        n, c, *_rest = x.shape
        name = self._next_name(prefix)
        out = self._activation(f"{name}.out", (n, c))
        self.graph.add_operator(
            name, OpType.GLOBAL_POOL, inputs=[x], outputs=[out], flops=float(x.num_elements)
        )
        return out

    # -- elementwise -------------------------------------------------------

    def add(self, a: TensorInfo, b: TensorInfo, prefix: str = "add") -> TensorInfo:
        """Elementwise residual addition."""
        if a.shape != b.shape:
            raise ModelError(f"add requires matching shapes, got {a.shape} vs {b.shape}")
        name = self._next_name(prefix)
        out = self._activation(f"{name}.out", a.shape)
        self.graph.add_operator(
            name, OpType.ADD, inputs=[a, b], outputs=[out], flops=float(a.num_elements)
        )
        return out

    def mul(self, a: TensorInfo, b: TensorInfo, prefix: str = "mul") -> TensorInfo:
        """Elementwise (broadcast) multiplication, e.g. SE channel re-weighting."""
        name = self._next_name(prefix)
        out = self._activation(f"{name}.out", a.shape)
        self.graph.add_operator(
            name, OpType.MUL, inputs=[a, b], outputs=[out], flops=float(a.num_elements)
        )
        return out

    def concat(self, parts: list[TensorInfo], prefix: str = "concat") -> TensorInfo:
        """Channel-wise concatenation of image batches (Inception modules)."""
        if not parts:
            raise ModelError("concat needs at least one input")
        n, _, h, w = parts[0].shape
        for p in parts:
            if p.shape[0] != n or p.shape[2:] != (h, w):
                raise ModelError("concat inputs must share batch and spatial dims")
        channels = sum(p.shape[1] for p in parts)
        name = self._next_name(prefix)
        out = self._activation(f"{name}.out", (n, channels, h, w))
        self.graph.add_operator(
            name,
            OpType.CONCAT,
            inputs=list(parts),
            outputs=[out],
            flops=float(out.num_elements),
        )
        return out

    def reshape(self, x: TensorInfo, shape: tuple[int, ...], prefix: str = "reshape") -> TensorInfo:
        """Reshape/flatten an activation (zero-FLOP copy kernel)."""
        if math.prod(shape) != x.num_elements:
            raise ModelError(
                f"reshape from {x.shape} to {shape} changes the element count"
            )
        name = self._next_name(prefix)
        out = self._activation(f"{name}.out", shape)
        self.graph.add_operator(
            name, OpType.RESHAPE, inputs=[x], outputs=[out], flops=float(x.num_elements)
        )
        return out

    def dropout(self, x: TensorInfo, prefix: str = "dropout") -> TensorInfo:
        """Dropout (keeps a mask-sized activation alive for backward)."""
        name = self._next_name(prefix)
        out = self._activation(f"{name}.out", x.shape)
        self.graph.add_operator(
            name, OpType.DROPOUT, inputs=[x], outputs=[out], flops=float(x.num_elements)
        )
        return out

    # -- dense / transformer -------------------------------------------------

    def linear(self, x: TensorInfo, out_features: int, prefix: str = "fc") -> TensorInfo:
        """Fully-connected layer over the last dimension."""
        *lead, in_features = x.shape
        name = self._next_name(prefix)
        weight = self._weight(f"{name}.weight", (out_features, in_features))
        out = self._activation(f"{name}.out", (*lead, out_features))
        rows = 1
        for d in lead:
            rows *= d
        flops = 2.0 * rows * in_features * out_features
        self.graph.add_operator(
            name,
            OpType.LINEAR,
            inputs=[x],
            outputs=[out],
            weights=[weight],
            flops=flops,
            workspace_bytes=int(min(flops / 128.0, 128 * 1024 * 1024)),
            compute_class="gemm",
        )
        return out

    def layernorm(self, x: TensorInfo, prefix: str = "ln") -> TensorInfo:
        """Layer normalisation over the hidden dimension."""
        hidden = x.shape[-1]
        name = self._next_name(prefix)
        weight = self._weight(f"{name}.scale_bias", (2, hidden))
        out = self._activation(f"{name}.out", x.shape)
        self.graph.add_operator(
            name,
            OpType.LAYERNORM,
            inputs=[x],
            outputs=[out],
            weights=[weight],
            flops=8.0 * x.num_elements,
        )
        return out

    def gelu(self, x: TensorInfo, prefix: str = "gelu") -> TensorInfo:
        """GELU activation."""
        name = self._next_name(prefix)
        out = self._activation(f"{name}.out", x.shape)
        self.graph.add_operator(
            name, OpType.GELU, inputs=[x], outputs=[out], flops=8.0 * x.num_elements
        )
        return out

    def softmax(self, x: TensorInfo, prefix: str = "softmax") -> TensorInfo:
        """Softmax over the last dimension."""
        name = self._next_name(prefix)
        out = self._activation(f"{name}.out", x.shape)
        self.graph.add_operator(
            name, OpType.SOFTMAX, inputs=[x], outputs=[out], flops=5.0 * x.num_elements
        )
        return out

    def embedding(
        self, tokens: TensorInfo, vocab_size: int, hidden: int, prefix: str = "embedding"
    ) -> TensorInfo:
        """Token embedding lookup producing ``(N, S, D)``."""
        n, s = tokens.shape
        name = self._next_name(prefix)
        table = self._weight(f"{name}.table", (vocab_size, hidden))
        out = self._activation(f"{name}.out", (n, s, hidden))
        self.graph.add_operator(
            name,
            OpType.EMBEDDING,
            inputs=[tokens],
            outputs=[out],
            weights=[table],
            flops=float(out.num_elements),
        )
        return out

    def attention(
        self, x: TensorInfo, num_heads: int, prefix: str = "attn"
    ) -> TensorInfo:
        """Multi-head self-attention block (Q/K/V projections, scores, context, output).

        Emits the same kernel decomposition a framework produces: three input
        projections, the score matmul + softmax, the context matmul, and the
        output projection. The score tensor of shape ``(N, H, S, S)`` is what
        makes transformer memory footprints balloon with batch size.
        """
        n, s, d = x.shape
        if d % num_heads:
            raise ModelError(f"hidden dim {d} not divisible by heads {num_heads}")
        q = self.linear(x, d, prefix=f"{prefix}_q")
        k = self.linear(x, d, prefix=f"{prefix}_k")
        v = self.linear(x, d, prefix=f"{prefix}_v")

        name = self._next_name(f"{prefix}_scores")
        scores = self._activation(f"{name}.out", (n, num_heads, s, s))
        score_flops = 2.0 * n * num_heads * s * s * (d // num_heads)
        self.graph.add_operator(
            name,
            OpType.ATTENTION_SCORE,
            inputs=[q, k],
            outputs=[scores],
            flops=score_flops,
            compute_class="gemm",
        )
        probs = self.softmax(scores, prefix=f"{prefix}_softmax")

        name = self._next_name(f"{prefix}_context")
        context = self._activation(f"{name}.out", (n, s, d))
        context_flops = 2.0 * n * num_heads * s * s * (d // num_heads)
        self.graph.add_operator(
            name,
            OpType.ATTENTION_CONTEXT,
            inputs=[probs, v],
            outputs=[context],
            flops=context_flops,
            compute_class="gemm",
        )
        return self.linear(context, d, prefix=f"{prefix}_out")

    # -- finishing ---------------------------------------------------------

    def classifier(self, x: TensorInfo, num_classes: int) -> TensorInfo:
        """Final linear classifier + softmax head."""
        logits = self.linear(x, num_classes, prefix="classifier")
        return self.softmax(logits, prefix="predictions")

    def build(self) -> DataflowGraph:
        """Validate and return the finished forward graph."""
        self.graph.validate()
        return self.graph
