"""Registry mapping model names to builders (Table 1 of the paper)."""

from __future__ import annotations

from typing import Callable

from ..errors import ModelError
from ..graph.dataflow import DataflowGraph
from .bert import build_bert
from .inception import build_inceptionv3
from .resnet import build_resnet152
from .senet import build_senet154
from .vit import build_vit

#: Builder callables keyed by canonical model name.
_BUILDERS: dict[str, Callable[..., DataflowGraph]] = {
    "bert": build_bert,
    "vit": build_vit,
    "inceptionv3": build_inceptionv3,
    "resnet152": build_resnet152,
    "senet154": build_senet154,
}

#: Human-readable descriptions, mirroring Table 1 (model, source, dataset).
_DESCRIPTIONS: dict[str, dict[str, str]] = {
    "bert": {"display": "BERT", "source": "Hugging Face", "dataset": "CoLA"},
    "vit": {"display": "ViT", "source": "Hugging Face", "dataset": "ImageNet"},
    "inceptionv3": {"display": "Inceptionv3", "source": "PyTorch Examples", "dataset": "ImageNet"},
    "resnet152": {"display": "ResNet152", "source": "PyTorch Examples", "dataset": "ImageNet"},
    "senet154": {"display": "SENet154", "source": "PyTorch Examples", "dataset": "ImageNet"},
}

#: Batch sizes used in the headline evaluation (Figure 11).
FIGURE11_BATCH_SIZES: dict[str, int] = {
    "bert": 256,
    "vit": 1280,
    "inceptionv3": 1536,
    "resnet152": 1280,
    "senet154": 1024,
}


def available_models() -> list[str]:
    """Canonical names of all models in the zoo."""
    return sorted(_BUILDERS)


def normalize_model_name(name: str) -> str:
    """Map user-facing spellings ("ResNet-152", "VIT") to canonical keys."""
    key = name.lower().replace("-", "").replace("_", "").replace(" ", "")
    aliases = {
        "bertbase": "bert",
        "vitbase": "vit",
        "inception": "inceptionv3",
        "resnet": "resnet152",
        "senet": "senet154",
    }
    key = aliases.get(key, key)
    if key not in _BUILDERS:
        raise ModelError(f"unknown model {name!r}; available: {available_models()}")
    return key


def build_model(name: str, batch_size: int, **overrides) -> DataflowGraph:
    """Build a model's forward graph by name.

    Args:
        name: Any recognised spelling of the model name.
        batch_size: Training batch size (first tensor dimension).
        **overrides: Architecture overrides forwarded to the builder (e.g.
            ``num_layers=2`` or ``image_size=64`` for scaled-down CI runs).
    """
    key = normalize_model_name(name)
    return _BUILDERS[key](batch_size, **overrides)


def model_description(name: str) -> dict[str, str]:
    """Table 1 metadata for one model."""
    return dict(_DESCRIPTIONS[normalize_model_name(name)])
