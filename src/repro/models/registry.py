"""Model lookup backed by the open model registry (Table 1 of the paper).

The builder dict this module used to hold is now
:data:`repro.registry.MODEL_REGISTRY`: each built-in builder registers itself
with ``@register_model`` (see ``bert.py`` et al.), carrying its Table 1
metadata, Figure 11 batch size and CI-scale overrides, and third-party models
plug in the same way without touching repro source::

    from repro import register_model

    @register_model("my_net", display="MyNet", default_batch_size=64)
    def build_my_net(batch_size, **overrides): ...

The functions below keep the historical call surface (``build_model``,
``normalize_model_name``, ``available_models``, ``model_description``) on top
of the registry.
"""

from __future__ import annotations

from ..graph.dataflow import DataflowGraph
from ..registry import MODEL_REGISTRY

# Importing the model modules is what registers the built-in zoo.
from . import bert as _bert  # noqa: F401
from . import inception as _inception  # noqa: F401
from . import resnet as _resnet  # noqa: F401
from . import senet as _senet  # noqa: F401
from . import vit as _vit  # noqa: F401


def available_models() -> list[str]:
    """Canonical names of all registered models (sorted)."""
    return sorted(MODEL_REGISTRY.available())


def normalize_model_name(name: str) -> str:
    """Map user-facing spellings ("ResNet-152", "VIT") to canonical keys."""
    return MODEL_REGISTRY.resolve(name)


def build_model(name: str, batch_size: int, **overrides) -> DataflowGraph:
    """Build a model's forward graph by name.

    Args:
        name: Any recognised spelling of the model name.
        batch_size: Training batch size (first tensor dimension).
        **overrides: Architecture overrides forwarded to the builder (e.g.
            ``num_layers=2`` or ``image_size=64`` for scaled-down CI runs).
    """
    return MODEL_REGISTRY.create(name, batch_size, **overrides)


def model_description(name: str) -> dict[str, str]:
    """Table 1 metadata for one model."""
    metadata = MODEL_REGISTRY.metadata(name)
    key = MODEL_REGISTRY.resolve(name)
    return {
        "display": metadata.get("display", key),
        "source": metadata.get("source", "(custom)"),
        "dataset": metadata.get("dataset", "(custom)"),
    }


#: Batch sizes used in the headline evaluation (Figure 11). Snapshot of the
#: built-in zoo's registered defaults; open models registered later are
#: resolved live through :func:`repro.experiments.harness.default_batch_size`.
FIGURE11_BATCH_SIZES: dict[str, int] = {
    name: MODEL_REGISTRY.metadata(name)["default_batch_size"]
    for name in MODEL_REGISTRY.available()
}
