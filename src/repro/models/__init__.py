"""DNN model zoo: builders for the five workloads evaluated in the paper.

The paper evaluates BERT, ViT, Inceptionv3, ResNet152 and SENet154 (Table 1).
Each builder constructs the forward :class:`~repro.graph.DataflowGraph` of the
corresponding architecture at a requested batch size; the training expansion
and the cost model then turn it into the kernel trace the simulator replays.
"""

from .builder import ModelBuilder
from .registry import available_models, build_model, model_description
from .bert import build_bert
from .vit import build_vit
from .resnet import build_resnet152
from .inception import build_inceptionv3
from .senet import build_senet154

__all__ = [
    "ModelBuilder",
    "available_models",
    "build_model",
    "model_description",
    "build_bert",
    "build_vit",
    "build_resnet152",
    "build_inceptionv3",
    "build_senet154",
]
