"""SENet-154 builder (Hu et al., CVPR'18): squeeze-and-excitation residual network."""

from __future__ import annotations

from ..graph.dataflow import DataflowGraph
from ..graph.tensor import TensorInfo
from ..registry import register_model
from .builder import ModelBuilder

#: Block counts per stage for SENet-154.
SENET154_STAGES = (3, 8, 36, 3)

#: Squeeze-and-excitation channel reduction ratio.
SE_REDUCTION = 16


def _se_block(builder: ModelBuilder, x: TensorInfo) -> TensorInfo:
    """Squeeze-and-excitation: global pool -> FC -> ReLU -> FC -> sigmoid -> scale."""
    channels = x.shape[1]
    squeezed = builder.global_pool(x, prefix="se_squeeze")
    reduced = builder.linear(squeezed, max(channels // SE_REDUCTION, 1), prefix="se_fc1")
    reduced = builder.relu(reduced, prefix="se_relu", inplace=True)
    expanded = builder.linear(reduced, channels, prefix="se_fc2")
    gate = builder.sigmoid(expanded, prefix="se_gate")
    return builder.mul(x, gate, prefix="se_scale")


def _se_bottleneck(
    builder: ModelBuilder,
    x: TensorInfo,
    mid_channels: int,
    out_channels: int,
    stride: int,
    groups: int = 64,
) -> TensorInfo:
    """SENet bottleneck: grouped 3x3 convolution plus an SE gate on the residual path."""
    identity = x
    out = builder.conv2d(x, mid_channels, kernel_size=1, stride=1, padding=0)
    out = builder.batchnorm(out)
    out = builder.relu(out, inplace=True)
    out = builder.conv2d(
        out, mid_channels, kernel_size=3, stride=stride, padding=1, groups=groups
    )
    out = builder.batchnorm(out)
    out = builder.relu(out, inplace=True)
    out = builder.conv2d(out, out_channels, kernel_size=1, stride=1, padding=0)
    out = builder.batchnorm(out)
    out = _se_block(builder, out)
    if identity.shape != out.shape:
        identity = builder.conv2d(
            identity, out_channels, kernel_size=1, stride=stride, padding=0, prefix="downsample"
        )
        identity = builder.batchnorm(identity)
    out = builder.add(out, identity)
    return builder.relu(out, inplace=True)


@register_model(
    "senet154",
    aliases=("senet",),
    display="SENet154",
    source="PyTorch Examples",
    dataset="ImageNet",
    default_batch_size=1024,
    ci_overrides={"stages": (2, 3, 6, 2)},
    ci_capacity_scale=0.25,
)
def build_senet154(
    batch_size: int,
    image_size: int = 224,
    num_classes: int = 1000,
    stages: tuple[int, ...] = SENET154_STAGES,
) -> DataflowGraph:
    """Build the forward graph of SENet-154 at the given batch size."""
    builder = ModelBuilder(name=f"SENet154-{batch_size}", batch_size=batch_size)
    x = builder.input_image(3, image_size, image_size)

    # SENet-154 uses a three-convolution stem.
    x = builder.conv2d(x, 64, kernel_size=3, stride=2, padding=1, prefix="stem_conv")
    x = builder.batchnorm(x)
    x = builder.relu(x, inplace=True)
    x = builder.conv2d(x, 64, kernel_size=3, stride=1, padding=1, prefix="stem_conv")
    x = builder.batchnorm(x)
    x = builder.relu(x, inplace=True)
    x = builder.conv2d(x, 128, kernel_size=3, stride=1, padding=1, prefix="stem_conv")
    x = builder.batchnorm(x)
    x = builder.relu(x, inplace=True)
    x = builder.pool(x, kernel_size=3, stride=2, padding=1, prefix="stem_pool")

    mid = 128
    out_channels = 256
    for stage_index, num_blocks in enumerate(stages):
        for block_index in range(num_blocks):
            stride = 2 if (stage_index > 0 and block_index == 0) else 1
            x = _se_bottleneck(builder, x, mid, out_channels, stride)
        mid *= 2
        out_channels *= 2

    x = builder.global_pool(x)
    builder.classifier(x, num_classes)
    return builder.build()
