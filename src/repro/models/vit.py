"""Vision Transformer (ViT-Base/16) builder (Dosovitskiy et al., ICLR'21)."""

from __future__ import annotations

from ..graph.dataflow import DataflowGraph
from .bert import _transformer_encoder_layer
from ..registry import register_model
from .builder import ModelBuilder

#: Default architecture parameters for ViT-Base/16 on 224x224 ImageNet.
VIT_BASE = {
    "num_layers": 12,
    "hidden": 768,
    "heads": 12,
    "intermediate": 3072,
    "image_size": 224,
    "patch_size": 16,
}


@register_model(
    "vit",
    aliases=("vitbase",),
    display="ViT",
    source="Hugging Face",
    dataset="ImageNet",
    default_batch_size=1280,
    ci_overrides={"num_layers": 3},
    ci_capacity_scale=0.25,
)
def build_vit(
    batch_size: int,
    image_size: int = VIT_BASE["image_size"],
    patch_size: int = VIT_BASE["patch_size"],
    num_layers: int = VIT_BASE["num_layers"],
    hidden: int = VIT_BASE["hidden"],
    heads: int = VIT_BASE["heads"],
    intermediate: int = VIT_BASE["intermediate"],
    num_classes: int = 1000,
) -> DataflowGraph:
    """Build the forward graph of ViT-Base/16 image classification."""
    builder = ModelBuilder(name=f"ViT-{batch_size}", batch_size=batch_size)
    image = builder.input_image(3, image_size, image_size)

    # Patch embedding is a strided convolution; the resulting (N, D, H/P, W/P)
    # feature map is flattened to a (N, S, D) token sequence by a projection.
    patches = builder.conv2d(
        image, hidden, kernel_size=patch_size, stride=patch_size, padding=0, prefix="patch_embed"
    )
    num_patches = (image_size // patch_size) ** 2
    tokens = builder.reshape(
        patches, (batch_size, num_patches, hidden), prefix="patch_flatten"
    )
    tokens = builder.linear(tokens, hidden, prefix="patch_proj")

    x = builder.layernorm(tokens, prefix="embedding_ln")
    x = builder.dropout(x, prefix="embedding_dropout")

    for _layer in range(num_layers):
        x = _transformer_encoder_layer(builder, x, heads, intermediate)

    x = builder.layernorm(x, prefix="final_ln")
    pooled = builder.linear(x, hidden, prefix="pooler")
    builder.classifier(pooled, num_classes)
    return builder.build()
