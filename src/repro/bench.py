"""Core-simulator microbenchmark harness — the engine behind ``repro bench``.

The repository's figure-level benchmarks time whole experiments; this module
times the *simulation core* on a fixed set of representative cells (small and
medium CI-scale cells, paper-scale cells, and the paper-scale batch-sweep
headline cell) and records the trajectory in ``BENCH_core.json`` at the repo
root, so every future PR can show what it did to the hot path.

Methodology: the workload (graph expansion + profiling) is built and memoized
*before* timing starts — the benchmark isolates the simulator core (planning +
event-loop replay), which is where the per-cell cost of a sweep lives. Each
cell is warmed once and then timed ``repeats`` times; the minimum is recorded
(the standard way to suppress scheduler noise for CPU-bound loops).

``PRE_REFACTOR_SECONDS`` pins the numbers measured immediately before the
extent-based core refactor (same machine, same methodology), so the recorded
speedups state exactly what that refactor bought.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from .errors import ConfigurationError
from .experiments.harness import build_workload, run_policy

#: Benchmark-format version (bump when the payload layout changes).
BENCH_SCHEMA_VERSION = 1

#: Default artifact path, repo-root relative.
DEFAULT_BENCH_PATH = "BENCH_core.json"

#: Regression gate: a timed cell slower than ``threshold`` x its committed
#: baseline fails ``repro bench --check``.
DEFAULT_REGRESSION_THRESHOLD = 2.0

#: Cells whose baseline is under this noise floor never gate a --check run:
#: millisecond-scale cells are dominated by host jitter (and by machine-speed
#: differences between the baseline recorder and a CI runner), not by
#: simulator work.
MIN_GATED_SECONDS = 0.05


@dataclass(frozen=True)
class BenchCell:
    """One timed simulation: a (model, batch, scale, policy) cell plus a tier."""

    tier: str
    model: str
    batch_size: int | None
    scale: str
    policy: str

    @property
    def name(self) -> str:
        batch = self.batch_size if self.batch_size is not None else "default"
        return f"{self.model}@{batch}/{self.scale}/{self.policy}"


#: Representative cells: small/medium/paper-scale across bert/vit/resnet x
#: policies, plus the paper-scale batch-sweep headline cell (the slowest cell
#: of the Figure 15 grid for a Table-1 model).
CORE_CELLS: tuple[BenchCell, ...] = (
    BenchCell("small", "bert", None, "ci", "g10"),
    BenchCell("small", "vit", None, "ci", "base_uvm"),
    BenchCell("medium", "resnet152", None, "ci", "g10"),
    BenchCell("medium", "bert", None, "paper", "g10"),
    BenchCell("paper", "vit", None, "paper", "g10"),
    BenchCell("paper", "resnet152", None, "paper", "deepum"),
    BenchCell("paper-batch-sweep", "resnet152", 1536, "paper", "g10"),
)

#: The acceptance-criterion cell: the paper-scale batch-sweep simulation.
HEADLINE_CELL = "resnet152@1536/paper/g10"

#: Tiers timed by ``repro bench --quick`` (the CI smoke job).
QUICK_TIERS = ("small", "medium")

#: Wall seconds per cell measured on the pre-refactor core (min of 3, same
#: methodology) immediately before the extent/event-loop refactor landed.
PRE_REFACTOR_SECONDS: dict[str, float] = {
    "bert@default/ci/g10": 0.0248,
    "vit@default/ci/base_uvm": 0.0063,
    "resnet152@default/ci/g10": 0.1053,
    "bert@default/paper/g10": 0.1764,
    "vit@default/paper/g10": 0.2054,
    "resnet152@default/paper/deepum": 0.1444,
    "resnet152@1536/paper/g10": 0.9524,
}


def bench_cells(quick: bool = False) -> tuple[BenchCell, ...]:
    """The cells a run times (``quick`` keeps the CI-smoke tiers only)."""
    if quick:
        return tuple(cell for cell in CORE_CELLS if cell.tier in QUICK_TIERS)
    return CORE_CELLS


def time_cell(cell: BenchCell, repeats: int = 3) -> dict:
    """Time one cell: build (untimed), warm once, report the min of ``repeats``."""
    if repeats < 1:
        raise ConfigurationError(f"repeats must be >= 1, got {repeats}")
    workload = build_workload(cell.model, batch_size=cell.batch_size, scale=cell.scale)
    result = run_policy(workload, cell.policy)  # warm-up, also checked below
    plan_cache = dict(result.perf.plan_cache)
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        result = run_policy(workload, cell.policy)
        samples.append(time.perf_counter() - start)
        for counter, count in result.perf.plan_cache.items():
            plan_cache[counter] = plan_cache.get(counter, 0) + count
    seconds = min(samples)
    record = {
        "tier": cell.tier,
        "model": cell.model,
        "batch_size": workload.batch_size,
        "scale": cell.scale,
        "policy": cell.policy,
        "seconds": seconds,
        "samples": samples,
        "simulated_seconds": result.execution_time,
        "normalized_performance": result.normalized_performance,
        "perf": result.perf.to_dict(),
        "phase_seconds": dict(result.perf.phase_seconds),
        # Warm-up + timed repeats together: the warm-up's planning miss
        # populates the plan-fragment cache, so the timed runs should be hits.
        "plan_cache": plan_cache,
    }
    baseline = PRE_REFACTOR_SECONDS.get(cell.name)
    if baseline is not None:
        record["pre_refactor_seconds"] = baseline
        record["speedup_vs_pre_refactor"] = baseline / seconds if seconds > 0 else None
    return record


def run_bench(
    quick: bool = False,
    repeats: int = 3,
    progress: Callable[[str], None] | None = None,
) -> dict:
    """Time every benchmark cell and assemble the ``BENCH_core.json`` payload."""
    cells: dict[str, dict] = {}
    for cell in bench_cells(quick):
        if progress is not None:
            progress(f"bench {cell.name} [{cell.tier}]")
        cells[cell.name] = time_cell(cell, repeats=repeats)
    payload: dict = {
        "schema": BENCH_SCHEMA_VERSION,
        "repro_version": _version(),
        "quick": quick,
        "repeats": repeats,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cells": cells,
        "pre_refactor_seconds": dict(PRE_REFACTOR_SECONDS),
    }
    headline = cells.get(HEADLINE_CELL)
    if headline is not None:
        payload["headline"] = {
            "cell": HEADLINE_CELL,
            "seconds": headline["seconds"],
            "pre_refactor_seconds": PRE_REFACTOR_SECONDS[HEADLINE_CELL],
            "speedup_vs_pre_refactor": headline.get("speedup_vs_pre_refactor"),
        }
    return payload


def write_bench(payload: dict, path: str | Path = DEFAULT_BENCH_PATH) -> Path:
    """Write a benchmark payload as pretty, stable JSON."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_bench(path: str | Path) -> dict:
    """Read a previously written benchmark payload."""
    with Path(path).open("r", encoding="utf-8") as fh:
        return json.load(fh)


#: Fields every cell record of a loaded payload must carry before the CLI
#: reports it. ``samples``/``phase_seconds`` are the ones truncated payloads
#: most often lose (hand-edited artifacts, payloads from aborted runs).
_REQUIRED_CELL_FIELDS = ("tier", "seconds", "samples", "perf", "phase_seconds")


def validate_payload(payload: dict, source: str | Path) -> dict:
    """Check that a loaded payload has the shape the reporting paths need.

    ``repro bench --from`` re-reads artifacts written by earlier runs (or by
    other machines); a truncated or hand-edited payload used to surface as a
    bare ``KeyError`` deep in the table renderer. This turns the problem into
    a :class:`ConfigurationError` that names the file, the cell and the
    missing field. Returns the payload unchanged on success.
    """
    cells = payload.get("cells")
    if not isinstance(cells, dict):
        raise ConfigurationError(f"bench payload {source} has no 'cells' table")
    for name, record in cells.items():
        if not isinstance(record, dict):
            raise ConfigurationError(
                f"bench payload {source}: cell {name!r} is not a record"
            )
        for field in _REQUIRED_CELL_FIELDS:
            if field not in record:
                raise ConfigurationError(
                    f"bench payload {source}: cell {name!r} lacks {field!r} "
                    "(truncated or pre-phase-recording artifact; re-run "
                    "`repro bench` to regenerate it)"
                )
    return payload


def plan_cache_summary(payload: dict) -> dict[str, int]:
    """Aggregate plan-fragment cache counters across a payload's cells."""
    totals = {"full_hits": 0, "fragment_hits": 0, "misses": 0}
    for record in payload.get("cells", {}).values():
        for counter, count in (record.get("plan_cache") or {}).items():
            totals[counter] = totals.get(counter, 0) + count
    return totals


def check_regressions(
    current: dict,
    baseline: dict,
    threshold: float = DEFAULT_REGRESSION_THRESHOLD,
    min_seconds: float = MIN_GATED_SECONDS,
) -> list[str]:
    """Compare two payloads; returns a message per cell slower than
    ``threshold`` x its baseline.

    Only cells present in both payloads gate, and only when the baseline is
    at least ``min_seconds`` — sub-noise-floor cells carry more host jitter
    than signal and are reported in the table but never fail the check.
    """
    if threshold <= 1.0:
        raise ConfigurationError(f"threshold must be > 1.0, got {threshold}")
    messages = []
    baseline_cells = baseline.get("cells", {})
    for name, record in current.get("cells", {}).items():
        reference = baseline_cells.get(name)
        if reference is None:
            continue
        before, after = reference["seconds"], record["seconds"]
        if before < min_seconds:
            continue
        if before > 0 and after > threshold * before:
            culprit = _phase_culprit(reference, record)
            messages.append(
                f"{name}: {after:.4f}s vs baseline {before:.4f}s "
                f"({after / before:.2f}x > {threshold:.1f}x threshold)" + culprit
            )
    return messages


def _phase_culprit(reference: dict, record: dict) -> str:
    """Name the phase that grew the most between two records of one cell.

    Returns a `` — slowest-growing phase: ...`` suffix so a regression message
    points at planning vs. execution instead of just the total, or an empty
    string when either payload predates per-phase recording.
    """
    before_phases = reference.get("phase_seconds") or {}
    after_phases = record.get("phase_seconds") or {}
    shared = sorted(set(before_phases) & set(after_phases))
    if not shared:
        return ""
    phase = max(shared, key=lambda name: after_phases[name] - before_phases[name])
    return (
        f" — slowest-growing phase: {phase} "
        f"({before_phases[phase]:.4f}s → {after_phases[phase]:.4f}s)"
    )


def profile_rows(payload: dict) -> list[dict]:
    """Per-cell, per-phase breakdown rows for ``repro bench --profile``.

    One row per (cell, phase) from the recorded ``phase_seconds``, with each
    phase's share of the cell's phase total — the table ROADMAP asks for so a
    regression names a phase (planning vs. event-loop execution) rather than
    just a total.
    """
    rows = []
    for name, record in payload.get("cells", {}).items():
        phases = record.get("phase_seconds") or {}
        total = sum(phases.values())
        for phase, seconds in sorted(phases.items()):
            rows.append(
                {
                    "cell": name,
                    "phase": phase,
                    "seconds": seconds,
                    "share": seconds / total if total > 0 else 0.0,
                }
            )
    return rows


def bench_rows(payload: dict) -> list[dict]:
    """Flatten a payload into table rows for the CLI."""
    rows = []
    for name, record in payload.get("cells", {}).items():
        rows.append(
            {
                "cell": name,
                "tier": record["tier"],
                "seconds": record["seconds"],
                "pre_refactor": record.get("pre_refactor_seconds", float("nan")),
                "speedup": record.get("speedup_vs_pre_refactor", float("nan")),
                "pages_moved": record["perf"]["pages_moved"],
                "events": record["perf"]["events_processed"],
            }
        )
    return rows


def _version() -> str:
    from . import __version__

    return __version__
