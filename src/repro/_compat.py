"""Deprecated top-level shims kept for the pre-Scenario function API.

``repro.build_workload``/``repro.run_policy``/``repro.run_policies``/
``repro.make_policy`` predate the :class:`~repro.api.Scenario` API. They keep
working — delegating to the exact same engine code, so results stay
bit-for-bit identical — but emit a :class:`DeprecationWarning` (once per
function per process) pointing at the replacement.

The undeprecated engine functions remain importable from
``repro.experiments.harness`` and ``repro.baselines`` for internal use.
"""

from __future__ import annotations

import functools
import warnings
from typing import Callable

from .baselines import factory as _factory
from .experiments import harness as _harness
from .sim import engine as _sim_engine

_warned: set[str] = set()


def _reset_deprecation_warnings() -> None:
    """Forget which shims already warned (test hook)."""
    _warned.clear()


def _deprecated(instead: str, func: Callable) -> Callable:
    """Wrap ``func`` so its first call emits a DeprecationWarning."""

    @functools.wraps(func)
    def shim(*args, **kwargs):
        if func.__name__ not in _warned:
            _warned.add(func.__name__)
            warnings.warn(
                f"repro.{func.__name__} is deprecated; use {instead} instead",
                DeprecationWarning,
                stacklevel=2,
            )
        return func(*args, **kwargs)

    shim.__doc__ = (
        f"Deprecated alias of ``{func.__module__}.{func.__name__}``; "
        f"use {instead} instead.\n\n{func.__doc__ or ''}"
    )
    return shim


build_workload = _deprecated("Scenario(...).session().workload", _harness.build_workload)
run_policy = _deprecated("Scenario(...).on_policy(...).run()", _harness.run_policy)
run_policies = _deprecated(
    "Scenario(...).on_policy(name).run() per policy", _harness.run_policies
)
make_policy = _deprecated(
    "repro.registry.POLICY_REGISTRY.create(name)", _factory.make_policy
)
run_simulation = _deprecated(
    "Scenario(...).run() or repro.sim.engine.simulate(...)", _sim_engine.simulate
)
