"""Cross-cell memoization of migration-plan fragments.

Batch sweeps (figure grids, tenancy matrices, benchmark repeats) re-plan the
same (graph, planner-config) pair over and over: figure 11 runs G10-FULL and
G10-Host over identical planner inputs (the variants differ only in runtime
per-request overhead), and every sweep cell that shares a model/batch/scale
prefix re-derives the same eviction schedule. This module memoizes the two
plan fragments the planner produces:

* the **eviction-schedule fragment** — the post-``schedule()`` plan plus the
  final pressure curve, keyed on the graph fingerprint and the config fields
  the eviction scheduler actually reads (GPU/host capacity, channel
  bandwidths/latencies, the eviction-policy knobs). Cells that differ only in
  the eager-prefetch flag share this fragment: a hit replays the §4.4
  prefetcher against the memoized pressure curve instead of re-running the
  whole lazy-greedy schedule.
* the **full plan** — additionally keyed on ``eager_prefetch``; a hit skips
  planning entirely.

The cache is value-transparent: a hit returns a plan bit-identical to what a
fresh planning run would produce (the stored curve feeds the prefetcher the
exact float64 values the live scheduler's timeline held), so golden results
never depend on cache state. Plans are defensively copied at the container
level on both store and lookup; the planned eviction/prefetch records are
frozen dataclasses and safe to share.

Keys deliberately omit config fields the planner never reads (SSD capacity,
UVM fault costs, per-request overheads): cells that differ only in runtime
parameters share plans. The graph fingerprint covers everything vitality
analysis and the scheduler consume — kernel order, durations, tensor
footprints, phases, tensor kinds and weight topology — so perturbed
(profiling-noise) graphs get distinct entries.

The cache is process-global (each sweep worker process warms its own) and
LRU-bounded. Hit/miss counters surface through
:class:`~repro.sim.results.PerfCounters` (``plan_cache``), ``SweepRunner``
statistics and ``repro bench --profile``.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, replace

import numpy as np

from ..config import SystemConfig
from ..graph.training import TrainingGraph
from .eviction import EvictionPolicyConfig
from .plan import MigrationPlan

#: Bound on memoized fragments per kind; sweeps iterate grids far wider than
#: deep, so a small window captures the reuse without retaining every cell.
_MAX_ENTRIES = 32


def graph_fingerprint(graph: TrainingGraph) -> str:
    """Content hash of everything planning reads from a training graph.

    Durations are hashed via ``float.hex`` so two graphs collide only when
    they are numerically identical — in which case their plans genuinely are
    interchangeable. Profiling-noise graphs (perturbed durations) therefore
    fingerprint differently from their clean counterparts.
    """
    hasher = hashlib.sha256()
    write = hasher.update
    write(f"{graph.name}|{graph.batch_size}|".encode())
    for kernel in graph.kernels:
        write(
            f"k{kernel.index}|{kernel.phase.value}|{kernel.duration.hex()}|"
            f"{kernel.tensor_ids}|".encode()
        )
    for tensor in graph.tensors:
        write(
            f"t{tensor.tensor_id}|{tensor.size_bytes}|{tensor.kind.value}|".encode()
        )
    write(f"w{tuple(graph.weight_ids)}|g{tuple(sorted(graph.gradient_of.items()))}".encode())
    return hasher.hexdigest()


def planner_config_key(
    config: SystemConfig, policy: EvictionPolicyConfig
) -> tuple[object, ...]:
    """The config fields the eviction scheduler reads, as a hashable key.

    Everything else in :class:`SystemConfig` (SSD capacity, UVM fault costs,
    compute efficiency, ...) only affects runtime execution, so cells that
    differ in those fields share plan fragments.
    """
    return (
        config.gpu.memory_bytes,
        config.host_memory_bytes,
        config.host_bandwidth,
        config.interconnect.bandwidth,
        config.interconnect.latency,
        config.ssd.write_bandwidth,
        config.ssd.read_bandwidth,
        config.ssd.write_latency,
        config.ssd.read_latency,
        policy.allow_ssd,
        policy.allow_host,
        policy.ssd_saturation_threshold,
        policy.ranking,
        policy.max_iterations,
    )


@dataclass
class PlanCacheStats:
    """Counters of planner outcomes since process start (or ``reset``)."""

    full_hits: int = 0
    fragment_hits: int = 0
    misses: int = 0

    @property
    def hits(self) -> int:
        return self.full_hits + self.fragment_hits

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def as_dict(self) -> dict[str, int]:
        return {
            "full_hits": self.full_hits,
            "fragment_hits": self.fragment_hits,
            "misses": self.misses,
        }


def _copy_plan(plan: MigrationPlan) -> MigrationPlan:
    # Container-level defensive copy: MigrationPlan's lists are mutable, but
    # the planned records inside are frozen and safe to share.
    return replace(plan, evictions=list(plan.evictions), prefetches=list(plan.prefetches))


class PlanFragmentCache:
    """LRU cache of plan fragments keyed on (graph, planner-config) content."""

    def __init__(self, max_entries: int = _MAX_ENTRIES):
        self._max_entries = max_entries
        self._full: OrderedDict[tuple, MigrationPlan] = OrderedDict()
        self._schedules: OrderedDict[tuple, tuple[MigrationPlan, np.ndarray]] = OrderedDict()
        self.stats = PlanCacheStats()

    # -- full plans ---------------------------------------------------------

    def lookup_full(self, key: tuple) -> MigrationPlan | None:
        plan = self._full.get(key)
        if plan is None:
            return None
        self._full.move_to_end(key)
        self.stats.full_hits += 1
        return _copy_plan(plan)

    def store_full(self, key: tuple, plan: MigrationPlan) -> None:
        self._full[key] = _copy_plan(plan)
        self._full.move_to_end(key)
        while len(self._full) > self._max_entries:
            self._full.popitem(last=False)

    # -- eviction-schedule fragments ---------------------------------------

    def lookup_schedule(self, key: tuple) -> tuple[MigrationPlan, np.ndarray] | None:
        entry = self._schedules.get(key)
        if entry is None:
            return None
        self._schedules.move_to_end(key)
        self.stats.fragment_hits += 1
        plan, pressure = entry
        return _copy_plan(plan), pressure.copy()

    def store_schedule(self, key: tuple, plan: MigrationPlan, pressure: np.ndarray) -> None:
        self._schedules[key] = (_copy_plan(plan), pressure.copy())
        self._schedules.move_to_end(key)
        while len(self._schedules) > self._max_entries:
            self._schedules.popitem(last=False)

    # -- bookkeeping --------------------------------------------------------

    def record_miss(self) -> None:
        self.stats.misses += 1

    def reset(self) -> None:
        """Drop every entry and zero the counters (tests, fresh sweeps)."""
        self._full.clear()
        self._schedules.clear()
        self.stats = PlanCacheStats()

    def __len__(self) -> int:
        return len(self._full) + len(self._schedules)


_GLOBAL_CACHE = PlanFragmentCache()


def get_plan_cache() -> PlanFragmentCache:
    """The process-global plan-fragment cache."""
    return _GLOBAL_CACHE


def snapshot_counters() -> dict[str, int]:
    """Copy of the global cache's counters (for before/after deltas)."""
    return _GLOBAL_CACHE.stats.as_dict()
