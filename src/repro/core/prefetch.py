"""Smart (eager) tensor prefetching — §4.4 of the paper.

After eviction scheduling, the default policy prefetches each evicted tensor at
its *latest safe* time: just early enough that the transfer completes before
the next use. That plan has no slack — any under-estimate of an inactive
period stalls a kernel. The smart prefetcher walks the evicted periods in
latest-safe-time order and moves each prefetch as early as possible while the
projected memory pressure stays under the GPU capacity, recreating Figure 8.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from .plan import MigrationPlan, PlannedPrefetch
from .pressure import MemoryPressureTimeline


class SmartPrefetcher:
    """Moves planned prefetches earlier than their latest safe slot when possible."""

    def __init__(self, pressure: MemoryPressureTimeline):
        self._pressure = pressure

    def optimize(self, plan: MigrationPlan) -> MigrationPlan:
        """Return a new plan with eagerly rescheduled prefetches.

        The pressure timeline passed at construction is updated in place so a
        later optimization pass (or inspection in tests) sees the final curve.
        """
        num_slots = plan.num_slots or self._pressure.num_slots
        ordered = sorted(plan.prefetches, key=lambda p: p.latest_safe_slot)
        # Keyed on the period *value* (InactivePeriod is a frozen dataclass,
        # unique per (tensor, gap) within a plan) — an id()-keyed memo would
        # tie the lookup to allocator addresses.
        evictions_by_period = {e.period: e for e in plan.evictions}

        optimized: list[PlannedPrefetch] = []
        for prefetch in ordered:
            eviction = evictions_by_period.get(prefetch.period)
            earliest_allowed = 0
            if eviction is not None:
                earliest_allowed = eviction.expected_completion_slot + 1
            new_issue = self._earliest_issue(prefetch, earliest_allowed, num_slots)
            if new_issue < prefetch.issue_slot:
                added = self._added_slots(new_issue, prefetch.issue_slot, num_slots)
                self._pressure.add_bytes(added, prefetch.size_bytes)
                prefetch = replace(prefetch, issue_slot=new_issue)
            optimized.append(prefetch)

        optimized.sort(key=lambda p: (p.issue_slot, p.deadline_slot, p.tensor_id))
        return replace(plan, prefetches=optimized, planned_peak_pressure=self._pressure.peak)

    # -- internals ----------------------------------------------------------

    def _earliest_issue(
        self, prefetch: PlannedPrefetch, earliest_allowed: int, num_slots: int
    ) -> int:
        """Search backwards from the current issue slot for spare GPU capacity.

        Vectorized: the scalar walk stops at the first blocked slot below the
        issue slot, so the answer is one past the *last* blocked slot in the
        window (or the window floor when none is blocked). Pure comparisons —
        no accumulation — so the slot-order rewrite is trivially bit-safe; the
        retained scalar walk lives in
        ``repro.core.reference.scalar_earliest_issue``.
        """
        issue = prefetch.issue_slot
        if issue <= earliest_allowed:
            return issue
        pressure = self._pressure.pressure_view()
        slots = np.arange(earliest_allowed, issue, dtype=np.int64)
        blocked = (
            pressure[slots % num_slots] + prefetch.size_bytes > self._pressure.capacity
        )
        barrier = np.flatnonzero(blocked)
        if barrier.size == 0:
            return earliest_allowed
        return earliest_allowed + int(barrier[-1]) + 1

    @staticmethod
    def _added_slots(new_issue: int, old_issue: int, num_slots: int) -> np.ndarray:
        """Slots that gain residency when a prefetch moves from ``old`` to ``new``."""
        slots = np.arange(new_issue, old_issue, dtype=np.int64)
        return slots % num_slots
