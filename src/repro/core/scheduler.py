"""End-to-end migration planning: vitality analysis -> eviction -> prefetch."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import SystemConfig
from ..graph.training import TrainingGraph
from .eviction import EvictionPolicyConfig, SmartEvictionScheduler
from .plan import MigrationPlan
from .plan_cache import get_plan_cache, graph_fingerprint, planner_config_key
from .prefetch import SmartPrefetcher
from .pressure import MemoryPressureTimeline
from .vitality import TensorVitalityAnalyzer, VitalityReport


@dataclass
class PlanningResult:
    """The migration plan plus the analysis artifacts it was derived from."""

    plan: MigrationPlan
    report: VitalityReport
    #: Peak projected memory pressure before any migration was scheduled.
    baseline_peak_pressure: float
    #: Peak projected memory pressure after eviction + prefetch planning.
    planned_peak_pressure: float


@dataclass
class MigrationPlanner:
    """G10's compile-time planner (§4.2-§4.4) as a single front door.

    Attributes:
        config: System configuration (GPU capacity, bandwidths, host memory).
        policy: Eviction policy knobs; defaults reproduce full G10. Use
            ``EvictionPolicyConfig(allow_host=False)`` for the G10-GDS variant.
        eager_prefetch: Apply the §4.4 smart prefetching pass. Disabling it
            reproduces the "latest safe prefetch only" ablation.
    """

    config: SystemConfig
    policy: EvictionPolicyConfig = field(default_factory=EvictionPolicyConfig)
    eager_prefetch: bool = True

    def plan(self, graph: TrainingGraph) -> PlanningResult:
        """Plan migrations for one profiled training iteration."""
        report = TensorVitalityAnalyzer(graph).analyze()
        return self.plan_from_report(report)

    def plan_from_report(self, report: VitalityReport) -> PlanningResult:
        """Plan migrations when the vitality report is already available.

        Planning is memoized through the process-global
        :mod:`~repro.core.plan_cache`: a full-plan hit skips planning
        entirely, an eviction-schedule-fragment hit replays only the eager
        prefetcher against the memoized pressure curve, and a miss runs the
        whole pipeline and populates both fragments. Hits are bit-identical
        to fresh planning runs, so results never depend on cache state.
        """
        cache = get_plan_cache()
        fingerprint = graph_fingerprint(report.graph)
        config_key = planner_config_key(self.config, self.policy)
        full_key = (fingerprint, config_key, self.eager_prefetch)
        plan = cache.lookup_full(full_key)
        if plan is None:
            schedule_key = (fingerprint, config_key)
            fragment = cache.lookup_schedule(schedule_key)
            if fragment is not None:
                plan, pressure_curve = fragment
                if self.eager_prefetch:
                    timeline = MemoryPressureTimeline(
                        pressure_curve, self.config.gpu.memory_bytes
                    )
                    plan = SmartPrefetcher(timeline).optimize(plan)
            else:
                cache.record_miss()
                scheduler = SmartEvictionScheduler(report, self.config, self.policy)
                plan = scheduler.schedule()
                cache.store_schedule(schedule_key, plan, scheduler.pressure.pressure)
                if self.eager_prefetch:
                    plan = SmartPrefetcher(scheduler.pressure).optimize(plan)
            cache.store_full(full_key, plan)
        return PlanningResult(
            plan=plan,
            report=report,
            baseline_peak_pressure=report.peak_pressure,
            planned_peak_pressure=plan.planned_peak_pressure,
        )
