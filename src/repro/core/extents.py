"""Extent (contiguous page-run) bookkeeping shared by the memory substrates.

Tensor allocations in the unified memory system are contiguous — the address
space hands out one page-aligned virtual range per tensor, whole tensors
migrate together, and the FTL streams tensor-sized writes into consecutive
logical units. The simulation core therefore tracks *extents* (``(start_page,
num_pages)`` runs) instead of one record per page: residency checks,
migrations and eviction accounting are O(extents), and per-page loops only
exist where the model genuinely needs page granularity (fault batching,
PTE-update charging — both computed arithmetically from the run length).

This module provides the two shared pieces:

* :class:`Extent` — an immutable page run with interval algebra;
* :class:`ExtentAllocator` — a first-fit page-run allocator with free-list
  coalescing and an unbounded bump frontier, used by
  :class:`~repro.uvm.memory.MemoryPool` to assign physical page runs.

The allocator never rejects a request (admission control is the caller's
byte-accounting job); when fragmentation leaves no single run large enough it
returns multiple extents, exactly like a real buddy/slab allocator spilling a
large allocation across free runs.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import NamedTuple

from ..errors import AllocationError


class Extent(NamedTuple):
    """A contiguous run of pages: ``[start_page, start_page + num_pages)``.

    A named tuple rather than a dataclass: the memory pools create and destroy
    extents on every tensor allocation, so construction cost matters. Use
    :meth:`checked` where inputs are untrusted; internal call sites construct
    directly from already-validated arithmetic.
    """

    start_page: int
    num_pages: int

    @classmethod
    def checked(cls, start_page: int, num_pages: int) -> "Extent":
        """Validating constructor for untrusted inputs."""
        if start_page < 0:
            raise AllocationError("extents cannot start at a negative page")
        if num_pages <= 0:
            raise AllocationError("extents must span at least one page")
        return cls(start_page, num_pages)

    @property
    def end_page(self) -> int:
        """One past the last page of the run."""
        return self.start_page + self.num_pages

    def contains_page(self, page: int) -> bool:
        return self.start_page <= page < self.end_page

    def overlaps(self, other: "Extent") -> bool:
        return self.start_page < other.end_page and other.start_page < self.end_page

    def adjacent_to(self, other: "Extent") -> bool:
        """True when the two runs touch without overlapping (coalescable)."""
        return self.end_page == other.start_page or other.end_page == self.start_page

    def pages(self) -> range:
        """The page numbers covered by the run (for reference-model tests)."""
        return range(self.start_page, self.end_page)


def coalesce(extents: list[Extent]) -> list[Extent]:
    """Merge touching/overlapping runs into a minimal sorted extent list."""
    if not extents:
        return []
    ordered = sorted(extents)
    merged = [ordered[0]]
    for extent in ordered[1:]:
        last = merged[-1]
        if extent.start_page <= last.end_page:
            end = max(last.end_page, extent.end_page)
            merged[-1] = Extent(last.start_page, end - last.start_page)
        else:
            merged.append(extent)
    return merged


def total_pages(extents: list[Extent]) -> int:
    return sum(extent.num_pages for extent in extents)


class ExtentAllocator:
    """First-fit page-run allocator with free-extent coalescing.

    Freed runs enter a sorted free list and merge with their neighbours;
    allocation prefers the lowest-addressed free run that fits whole, spills
    across multiple free runs when fragmented, and finally bumps an unbounded
    frontier (so an "infinite" pool — the Ideal policy's GPU — never needs a
    materialized free list covering its capacity).
    """

    def __init__(self) -> None:
        #: Sorted, coalesced free runs below the frontier (parallel start-page
        #: list keeps neighbour lookup on int comparisons — the pool churns
        #: extents on every tensor alloc/free).
        self._free: list[Extent] = []
        self._free_starts: list[int] = []
        self._frontier = 0

    @property
    def frontier(self) -> int:
        """First never-allocated page (high-water mark of the run space)."""
        return self._frontier

    @property
    def free_extents(self) -> tuple[Extent, ...]:
        """The coalesced free list below the frontier (sorted by address)."""
        return tuple(self._free)

    @property
    def free_pages_below_frontier(self) -> int:
        return sum(extent.num_pages for extent in self._free)

    def largest_free_run(self) -> int:
        """Pages in the largest reusable run below the frontier."""
        return max((extent.num_pages for extent in self._free), default=0)

    def allocate(self, num_pages: int) -> tuple[Extent, ...]:
        """Assign ``num_pages`` as one or more extents (first-fit, then spill).

        Returns a tuple of disjoint extents in ascending address order whose
        lengths sum to ``num_pages``. A single extent is returned whenever any
        free run (or the frontier) can hold the request whole.
        """
        if num_pages <= 0:
            raise AllocationError("allocations must span at least one page")
        # First fit: the lowest-addressed free run large enough.
        for index, extent in enumerate(self._free):
            if extent.num_pages >= num_pages:
                taken = Extent(extent.start_page, num_pages)
                if extent.num_pages == num_pages:
                    del self._free[index]
                    del self._free_starts[index]
                else:
                    shrunk = Extent(
                        extent.start_page + num_pages, extent.num_pages - num_pages
                    )
                    self._free[index] = shrunk
                    self._free_starts[index] = shrunk.start_page
                return (taken,)
        # Spill: consume free runs low-to-high, then bump the frontier.
        pieces: list[Extent] = []
        remaining = num_pages
        while self._free and remaining > 0:
            extent = self._free[0]
            if extent.num_pages > remaining:
                pieces.append(Extent(extent.start_page, remaining))
                shrunk = Extent(
                    extent.start_page + remaining, extent.num_pages - remaining
                )
                self._free[0] = shrunk
                self._free_starts[0] = shrunk.start_page
                remaining = 0
            else:
                pieces.append(extent)
                del self._free[0]
                del self._free_starts[0]
                remaining -= extent.num_pages
        if remaining > 0:
            pieces.append(Extent(self._frontier, remaining))
            self._frontier += remaining
        return tuple(coalesce(pieces))

    def free(self, extents: tuple[Extent, ...] | list[Extent]) -> None:
        """Return extents to the free list, coalescing with neighbours."""
        for extent in extents:
            self._insert(extent)

    def _insert(self, extent: Extent) -> None:
        if extent.end_page > self._frontier:
            raise AllocationError(
                f"cannot free {extent}: beyond the allocation frontier {self._frontier}"
            )
        index = bisect_left(self._free_starts, extent.start_page)
        before = self._free[index - 1] if index > 0 else None
        after = self._free[index] if index < len(self._free) else None
        if (before and before.end_page > extent.start_page) or (
            after and extent.end_page > after.start_page
        ):
            raise AllocationError(f"double free of pages in {extent}")
        start, end = extent.start_page, extent.end_page
        if before is not None and before.end_page == start:
            start = before.start_page
            del self._free[index - 1]
            del self._free_starts[index - 1]
            index -= 1
        if after is not None and end == after.start_page:
            end = after.end_page
            del self._free[index]
            del self._free_starts[index]
        self._free.insert(index, Extent(start, end - start))
        self._free_starts.insert(index, start)
