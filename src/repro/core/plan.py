"""Migration plan data structures shared by the scheduler and the simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..errors import SchedulingError
from .vitality import InactivePeriod


class MigrationDestination(Enum):
    """Where an evicted tensor is staged."""

    SSD = "ssd"
    HOST = "host"


@dataclass(frozen=True)
class PlannedEviction:
    """One ``g10_pre_evict`` decision.

    The eviction is issued right after kernel ``issue_slot`` finishes (the last
    kernel that used the tensor before this inactive period).
    """

    tensor_id: int
    size_bytes: int
    destination: MigrationDestination
    issue_slot: int
    #: Kernel slot by which the planner expects the transfer to drain.
    expected_completion_slot: int
    period: InactivePeriod

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise SchedulingError("planned eviction must move a positive number of bytes")
        if self.expected_completion_slot < self.issue_slot:
            raise SchedulingError("eviction cannot complete before it is issued")


@dataclass(frozen=True)
class PlannedPrefetch:
    """One ``g10_prefetch`` decision.

    The prefetch is issued at the start of kernel ``issue_slot`` so the tensor
    is resident again before kernel ``deadline_slot`` (the next use) starts.
    ``latest_safe_slot`` records where the default (just-in-time) policy would
    have placed it; the eager prefetcher may move ``issue_slot`` earlier.
    """

    tensor_id: int
    size_bytes: int
    source: MigrationDestination
    issue_slot: int
    latest_safe_slot: int
    deadline_slot: int
    period: InactivePeriod

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise SchedulingError("planned prefetch must move a positive number of bytes")
        if self.issue_slot > self.latest_safe_slot:
            raise SchedulingError("prefetch issued later than its latest safe slot")


@dataclass
class MigrationPlan:
    """The complete compile-time migration plan for one training iteration."""

    gpu_capacity_bytes: float
    #: Number of kernel slots in the iteration the plan was built for.
    num_slots: int = 0
    evictions: list[PlannedEviction] = field(default_factory=list)
    prefetches: list[PlannedPrefetch] = field(default_factory=list)
    #: Peak planned memory pressure after applying the plan (bytes).
    planned_peak_pressure: float = 0.0
    #: True when the planner drove pressure below GPU capacity everywhere.
    fits_in_gpu: bool = False

    def __post_init__(self) -> None:
        if self.gpu_capacity_bytes <= 0:
            raise SchedulingError("plan must reference a positive GPU capacity")

    # -- lookups used by the executor ---------------------------------------

    def evictions_by_slot(self) -> dict[int, list[PlannedEviction]]:
        """Group evictions by the kernel slot after which they are issued."""
        grouped: dict[int, list[PlannedEviction]] = {}
        for eviction in self.evictions:
            grouped.setdefault(eviction.issue_slot, []).append(eviction)
        return grouped

    def prefetches_by_slot(self) -> dict[int, list[PlannedPrefetch]]:
        """Group prefetches by the kernel slot at whose start they are issued.

        Wrap-around prefetches carry slots beyond the iteration length; the
        executor issues them at the equivalent slot of the next iteration, so
        they are folded back onto the per-iteration axis here.
        """
        slots = max(self.num_slots, 1)
        grouped: dict[int, list[PlannedPrefetch]] = {}
        for prefetch in self.prefetches:
            grouped.setdefault(prefetch.issue_slot % slots, []).append(prefetch)
        return grouped

    # -- statistics ----------------------------------------------------------

    @property
    def num_evictions(self) -> int:
        return len(self.evictions)

    @property
    def num_prefetches(self) -> int:
        return len(self.prefetches)

    def bytes_to(self, destination: MigrationDestination) -> int:
        """Total bytes planned to be evicted to one destination."""
        return sum(e.size_bytes for e in self.evictions if e.destination is destination)

    def eviction_for_period(self, period: InactivePeriod) -> PlannedEviction | None:
        """Find the eviction covering a given inactive period, if any."""
        for eviction in self.evictions:
            if eviction.period == period:
                return eviction
        return None

    def summary(self) -> dict[str, float | int | bool]:
        """Compact statistics for reports and tests."""
        return {
            "evictions": self.num_evictions,
            "prefetches": self.num_prefetches,
            "bytes_to_ssd": self.bytes_to(MigrationDestination.SSD),
            "bytes_to_host": self.bytes_to(MigrationDestination.HOST),
            "planned_peak_pressure": self.planned_peak_pressure,
            "fits_in_gpu": self.fits_in_gpu,
        }
