"""Retained scalar reference implementations for hot-path equivalence testing.

The planner's hot paths (:mod:`repro.core.bandwidth`, the saturation window in
:mod:`repro.core.eviction`, the eager-prefetch search in
:mod:`repro.core.prefetch`, the benefit term in :mod:`repro.core.pressure` and
the fault-batch arithmetic in :mod:`repro.uvm.fault`) are vectorized with
numpy. Every vectorization in this codebase carries a *bit-identity contract*:
the optimized code must produce byte-equal results to straightforward scalar
Python, because golden files and the sweep result cache are compared
bit-for-bit.

This module keeps the scalar implementations alive so the contract stays
checkable: the Hypothesis suites in ``tests/test_vectorized_equivalence.py``
drive the production code and these references with identical randomized
inputs and assert exact (``==``, not approximate) agreement. When changing a
vectorized hot path, change the matching reference only if the *semantics*
changed — and then regenerate nothing: goldens must stay byte-identical.

Nothing here is exercised on the production path; the simulator never imports
this module.
"""

from __future__ import annotations

import math

import numpy as np

from ..config import SystemConfig
from ..errors import SchedulingError
from .bandwidth import Direction
from .vitality import InactivePeriod

#: The scalar twin of :data:`repro.core.bandwidth.EXHAUSTED_SLOT`; the skip
#: index compares against it exactly (a fully consumed slot holds IEEE-754
#: zero because ``reserve`` subtracts the precise remaining availability).
EXHAUSTED_SLOT = 0.0  # repro-lint: exact-float


class ScalarChannelSchedule:
    """The pre-vectorization :class:`~repro.core.bandwidth.ChannelSchedule`.

    Plain Python float lists with per-combo path-compressed skip indices over
    exhausted slots — the implementation the numpy version must match bit for
    bit. Kept verbatim (minus docstrings) as the equivalence-test oracle.
    """

    def __init__(self, slot_durations: np.ndarray, config: SystemConfig):
        durations = np.asarray(slot_durations, dtype=np.float64)
        if durations.ndim != 1 or len(durations) == 0:
            raise SchedulingError("slot durations must be a non-empty 1-D array")
        if (durations <= 0).any():
            raise SchedulingError("every kernel slot must have positive duration")
        self._durations = durations
        self._config = config
        self._capacities: dict[str, np.ndarray] = {
            "ssd_write": durations * config.ssd.write_bandwidth,
            "ssd_read": durations * config.ssd.read_bandwidth,
            "pcie_out": durations * config.interconnect.bandwidth,
            "pcie_in": durations * config.interconnect.bandwidth,
        }
        self._available: dict[str, list[float]] = {
            name: capacity.tolist() for name, capacity in self._capacities.items()
        }
        self._combos: dict[tuple[bool, Direction], tuple[list[float], ...]] = {
            (False, Direction.OUT): (self._available["pcie_out"],),
            (True, Direction.OUT): (self._available["pcie_out"], self._available["ssd_write"]),
            (False, Direction.IN): (self._available["pcie_in"],),
            (True, Direction.IN): (self._available["pcie_in"], self._available["ssd_read"]),
        }
        n = len(durations)
        self._skip_fwd = {key: list(range(n)) for key in self._combos}
        self._skip_bwd = {key: list(range(n)) for key in self._combos}
        interconnect = config.interconnect
        self._unloaded: dict[tuple[bool, Direction], tuple[float, float]] = {
            (True, Direction.OUT): (
                config.ssd.write_latency + interconnect.latency,
                min(interconnect.bandwidth, config.ssd.write_bandwidth),
            ),
            (True, Direction.IN): (
                config.ssd.read_latency + interconnect.latency,
                min(interconnect.bandwidth, config.ssd.read_bandwidth),
            ),
            (False, Direction.OUT): (
                interconnect.latency,
                min(interconnect.bandwidth, config.host_bandwidth),
            ),
            (False, Direction.IN): (
                interconnect.latency,
                min(interconnect.bandwidth, config.host_bandwidth),
            ),
        }

    @property
    def num_slots(self) -> int:
        return len(self._durations)

    def slot_duration(self, slot: int) -> float:
        return float(self._durations[slot])

    def utilization(self, channel: str) -> np.ndarray:
        return self._utilization_values(channel, 0, self.num_slots)

    def utilization_window(self, channel: str, start: int, stop: int) -> np.ndarray:
        return self._utilization_values(channel, max(start, 0), min(stop, self.num_slots))

    def _utilization_values(self, channel: str, start: int, stop: int) -> np.ndarray:
        if channel not in self._available:
            raise SchedulingError(f"unknown channel {channel!r}")
        capacity = self._capacities[channel][start:stop]
        available = np.asarray(self._available[channel][start:stop], dtype=np.float64)
        with np.errstate(divide="ignore", invalid="ignore"):
            used = 1.0 - np.where(capacity > 0, available / capacity, 1.0)
        return np.clip(used, 0.0, 1.0)

    def available_bytes(self, to_ssd: bool, direction: Direction, slots: np.ndarray) -> np.ndarray:
        lists = self._combos[(to_ssd, direction)]
        available = np.asarray(lists[0], dtype=np.float64)[slots]
        for other in lists[1:]:
            available = np.minimum(available, np.asarray(other, dtype=np.float64)[slots])
        return available

    def _next_open_fwd(self, key: tuple[bool, Direction], slot: int) -> int:
        skip = self._skip_fwd[key]
        lists = self._combos[key]
        n = len(skip)
        j = slot
        path = []
        while j < n:
            k = skip[j]
            if k != j:
                path.append(j)
                j = k
                continue
            exhausted = False
            for values in lists:
                if values[j] == EXHAUSTED_SLOT:
                    exhausted = True
                    break
            if not exhausted:
                break
            skip[j] = j + 1
            j += 1
        for visited in path:
            skip[visited] = j
        return j

    def _next_open_bwd(self, key: tuple[bool, Direction], slot: int) -> int:
        skip = self._skip_bwd[key]
        lists = self._combos[key]
        j = slot
        path = []
        while j >= 0:
            k = skip[j]
            if k != j:
                path.append(j)
                j = k
                continue
            exhausted = False
            for values in lists:
                if values[j] == EXHAUSTED_SLOT:
                    exhausted = True
                    break
            if not exhausted:
                break
            skip[j] = j - 1
            j -= 1
        for visited in path:
            skip[visited] = j
        return j

    def probe_forward(
        self, size_bytes: float, start_slot: int, end_slot: int, to_ssd: bool,
        direction: Direction = Direction.OUT,
    ) -> int | None:
        remaining = float(size_bytes)
        limit = min(end_slot, self.num_slots)
        if start_slot >= limit:
            return None
        if remaining <= 0:
            return start_slot
        key = (to_ssd, direction)
        lists = self._combos[key]
        slot = start_slot
        while slot < limit:
            slot = self._next_open_fwd(key, slot)
            if slot >= limit:
                return None
            available = lists[0][slot]
            for other in lists[1:]:
                value = other[slot]
                if value < available:
                    available = value
            remaining -= available
            if remaining <= 0:
                return slot
            slot += 1
        return None

    def probe_backward(
        self, size_bytes: float, end_slot: int, start_slot: int, to_ssd: bool,
        direction: Direction = Direction.IN,
    ) -> int | None:
        remaining = float(size_bytes)
        floor = max(start_slot, 0)
        slot = min(end_slot, self.num_slots) - 1
        if slot < floor:
            return None
        if remaining <= 0:
            return slot
        key = (to_ssd, direction)
        lists = self._combos[key]
        while slot >= floor:
            slot = self._next_open_bwd(key, slot)
            if slot < floor:
                return None
            available = lists[0][slot]
            for other in lists[1:]:
                value = other[slot]
                if value < available:
                    available = value
            remaining -= available
            if remaining <= 0:
                return slot
            slot -= 1
        return None

    def reserve(
        self,
        size_bytes: float,
        start_slot: int,
        to_ssd: bool,
        direction: Direction,
        end_slot: int | None = None,
    ) -> int:
        remaining = float(size_bytes)
        limit = self.num_slots if end_slot is None else min(end_slot, self.num_slots)
        key = (to_ssd, direction)
        lists = self._combos[key]
        slot = start_slot
        while slot < limit:
            open_slot = self._next_open_fwd(key, slot)
            if open_slot >= limit:
                break
            slot = open_slot
            available = lists[0][slot]
            for other in lists[1:]:
                value = other[slot]
                if value < available:
                    available = value
            take = available if available < remaining else remaining
            if take > 0:
                for values in lists:
                    values[slot] -= take
                remaining -= take
            if remaining <= 1e-9:
                return slot
            slot += 1
        if end_slot is None and remaining > 1e-9:
            return self.num_slots - 1
        raise SchedulingError(
            "transfer could not be reserved in the requested window; probe first"
        )

    def transfer_time(self, size_bytes: float, to_ssd: bool, direction: Direction) -> float:
        latency, bandwidth = self._unloaded[(to_ssd, direction)]
        return latency + size_bytes / bandwidth


# -- scalar references for the smaller vectorized hot paths ---------------------


def scalar_eviction_benefit(
    pressure: np.ndarray, capacity: float, period: InactivePeriod, num_slots: int
) -> float:
    """The pre-vectorization benefit term of
    :meth:`repro.core.pressure.MemoryPressureTimeline.eviction_benefit`
    (fresh slice + subtract + clamp + clamp + sum on every call)."""
    if period.wraps_around:
        values = np.concatenate(
            [
                pressure[period.start_slot + 1 :],
                pressure[: max(period.end_slot - num_slots, 0)],
            ]
        )
    else:
        values = pressure[period.start_slot + 1 : max(period.end_slot, 0)]
    if values.size == 0:
        return 0.0
    excess = np.maximum(values - capacity, 0.0)
    return float(np.minimum(excess, period.size_bytes).sum())


def scalar_earliest_issue(
    pressure: np.ndarray,
    capacity: float,
    size_bytes: int,
    issue_slot: int,
    earliest_allowed: int,
    num_slots: int,
) -> int:
    """The pre-vectorization backwards per-slot walk of
    :meth:`repro.core.prefetch.SmartPrefetcher._earliest_issue`."""
    candidate = issue_slot
    slot = issue_slot - 1
    while slot >= earliest_allowed:
        folded = slot % num_slots
        if pressure[folded] + size_bytes > capacity:
            break
        candidate = slot
        slot -= 1
    return candidate


def scalar_saturation_end_slot(
    durations: np.ndarray, start_slot: int, ideal_seconds: float, num_slots: int
) -> int:
    """The pre-vectorization per-slot duration walk of
    :meth:`repro.core.eviction.SmartEvictionScheduler._ssd_saturated`."""
    end_slot = start_slot
    elapsed = 0.0
    while end_slot < num_slots - 1 and elapsed < ideal_seconds:
        elapsed += float(durations[end_slot])
        end_slot += 1
    return end_slot


def scalar_fault_costs(sizes: list[int], fault_batch_bytes: int, fault_latency: float):
    """Per-tensor (fault batches, fault overhead) via the scalar arithmetic of
    :class:`repro.uvm.fault.PageFaultModel` — the oracle for the vectorized
    ``batch_fault_*`` methods."""
    batches = []
    overheads = []
    for size in sizes:
        if size <= 0:
            count = 0
        else:
            count = max(1, math.ceil(size / fault_batch_bytes))
        batches.append(count)
        overheads.append(count * fault_latency)
    return batches, overheads
