"""G10's primary contribution: tensor vitality analysis and smart tensor migration.

The pipeline mirrors §4 of the paper:

1. :class:`TensorVitalityAnalyzer` (§4.2) extracts tensor lifetimes and
   inactive periods from a profiled training graph.
2. :class:`SmartEvictionScheduler` (§4.3, Algorithm 1) iteratively selects the
   most beneficial eviction candidates while tracking memory pressure and
   channel bandwidth.
3. :class:`SmartPrefetcher` (§4.4) moves prefetches earlier than their latest
   safe time whenever spare GPU capacity exists.
4. :class:`MigrationPlanner` ties the steps together and emits a
   :class:`MigrationPlan` of ``g10_pre_evict``/``g10_prefetch`` instructions,
   which :mod:`repro.core.instrumentation` can render as an instrumented
   program (Figure 9).
"""

from .extents import Extent, ExtentAllocator, coalesce
from .vitality import InactivePeriod, TensorUsage, TensorVitalityAnalyzer, VitalityReport
from .pressure import MemoryPressureTimeline
from .bandwidth import ChannelSchedule, Direction
from .plan import (
    MigrationDestination,
    MigrationPlan,
    PlannedEviction,
    PlannedPrefetch,
)
from .eviction import EvictionPolicyConfig, SmartEvictionScheduler
from .prefetch import SmartPrefetcher
from .scheduler import MigrationPlanner
from .instrumentation import InstrumentedProgram, instrument_program

__all__ = [
    "Extent",
    "ExtentAllocator",
    "coalesce",
    "InactivePeriod",
    "TensorUsage",
    "TensorVitalityAnalyzer",
    "VitalityReport",
    "MemoryPressureTimeline",
    "ChannelSchedule",
    "Direction",
    "MigrationDestination",
    "MigrationPlan",
    "PlannedEviction",
    "PlannedPrefetch",
    "EvictionPolicyConfig",
    "SmartEvictionScheduler",
    "SmartPrefetcher",
    "MigrationPlanner",
    "InstrumentedProgram",
    "instrument_program",
]
