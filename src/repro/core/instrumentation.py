"""Code instrumentation: render the migration plan as a G10 program (Figure 9).

G10 inserts four instructions into the compiled GPU program:

* ``g10_alloc(ptr, size)``    — asynchronous allocation before first use;
* ``g10_free(ptr)``           — asynchronous free after last use;
* ``g10_pre_evict(vaddr, size, target)`` — planned eviction after a kernel;
* ``g10_prefetch(vaddr, size)``          — planned prefetch before a kernel.

The executor consumes the structured :class:`MigrationPlan` directly; this
module produces the human-readable instrumented listing, which the examples
print and which is handy when debugging a schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..graph.training import TrainingGraph
from .plan import MigrationPlan
from .vitality import VitalityReport


@dataclass
class InstrumentedProgram:
    """The instrumented kernel listing for one training iteration."""

    model_name: str
    lines: list[str] = field(default_factory=list)

    def text(self) -> str:
        """The full program as a single string."""
        return "\n".join(self.lines)

    def __str__(self) -> str:  # pragma: no cover - convenience only
        return self.text()

    @property
    def num_instructions(self) -> int:
        """Number of inserted g10_* instructions (excluding kernel launches)."""
        return sum(1 for line in self.lines if line.lstrip().startswith("g10_"))


def instrument_program(
    graph: TrainingGraph, report: VitalityReport, plan: MigrationPlan
) -> InstrumentedProgram:
    """Interleave kernel launches with g10_* instructions according to the plan."""
    program = InstrumentedProgram(model_name=graph.name)
    lines = program.lines

    prefetches_by_slot = plan.prefetches_by_slot()
    evictions_by_slot = plan.evictions_by_slot()

    births: dict[int, list[int]] = {}
    deaths: dict[int, list[int]] = {}
    for usage in report.usages.values():
        if usage.is_global:
            continue
        births.setdefault(usage.birth_slot, []).append(usage.tensor_id)
        deaths.setdefault(usage.death_slot, []).append(usage.tensor_id)

    for kernel in graph.kernels:
        slot = kernel.index
        for tid in births.get(slot, ()):
            tensor = graph.tensor(tid)
            lines.append(f"g10_alloc(&tensor{tid}, {tensor.size_bytes});")
        for prefetch in prefetches_by_slot.get(slot, ()):
            lines.append(
                f"g10_prefetch(tensor{prefetch.tensor_id}, {prefetch.size_bytes});"
            )
        args = ", ".join(f"tensor{tid}" for tid in kernel.tensor_ids)
        lines.append(f"// Kernel {slot} {kernel.phase.value}")
        lines.append(f"{kernel.name.replace('.', '_')}({args});")
        for eviction in evictions_by_slot.get(slot, ()):
            target = eviction.destination.value.upper()
            lines.append(
                f"g10_pre_evict(tensor{eviction.tensor_id}, {eviction.size_bytes}, {target});"
            )
        for tid in deaths.get(slot, ()):
            lines.append(f"g10_free(tensor{tid});")

    return program
