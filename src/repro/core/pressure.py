"""GPU memory pressure timeline used by the compile-time scheduler (§4.3)."""

from __future__ import annotations

import numpy as np

from ..errors import SchedulingError
from .vitality import InactivePeriod


def period_slot_indices(period: InactivePeriod, num_slots: int) -> np.ndarray:
    """Kernel-slot indices covered by a period's free interval.

    Wrap-around periods cover the tail of this iteration plus the head of the
    next; both map onto the same per-iteration slot axis.
    """
    if not period.wraps_around:
        return np.arange(period.start_slot + 1, period.end_slot, dtype=np.int64)
    tail = np.arange(period.start_slot + 1, num_slots, dtype=np.int64)
    head = np.arange(0, period.end_slot - num_slots, dtype=np.int64)
    return np.concatenate([tail, head])


class MemoryPressureTimeline:
    """Tracks estimated GPU memory pressure per kernel slot.

    The scheduler evaluates eviction candidates against this curve: the
    *benefit* of evicting a tensor during a period is the amount by which the
    over-capacity region shrinks (the shaded area in Figure 7).
    """

    def __init__(self, baseline_pressure: np.ndarray, capacity_bytes: float):
        if capacity_bytes <= 0:
            raise SchedulingError("GPU capacity must be positive")
        self._pressure = np.asarray(baseline_pressure, dtype=np.float64).copy()
        if self._pressure.ndim != 1 or len(self._pressure) == 0:
            raise SchedulingError("baseline pressure must be a non-empty 1-D array")
        self._capacity = float(capacity_bytes)

    # -- views -------------------------------------------------------------

    @property
    def capacity(self) -> float:
        return self._capacity

    @property
    def num_slots(self) -> int:
        return len(self._pressure)

    @property
    def pressure(self) -> np.ndarray:
        """A read-only copy of the current pressure curve."""
        return self._pressure.copy()

    @property
    def peak(self) -> float:
        return float(self._pressure.max())

    @property
    def excess(self) -> np.ndarray:
        """Per-slot bytes above GPU capacity."""
        return np.maximum(self._pressure - self._capacity, 0.0)

    @property
    def total_excess(self) -> float:
        """Integral (over slots) of the over-capacity region."""
        return float(self.excess.sum())

    def fits(self) -> bool:
        """True once the projected pressure never exceeds GPU capacity."""
        return bool(self.peak <= self._capacity)

    def slot_pressure(self, slot: int) -> float:
        return float(self._pressure[slot])

    def headroom(self, slots: np.ndarray) -> np.ndarray:
        """Free bytes below capacity for the given slots (can be negative)."""
        return self._capacity - self._pressure[slots]

    # -- benefit evaluation --------------------------------------------------

    def eviction_benefit(self, period: InactivePeriod) -> float:
        """Critical memory-pressure reduction of evicting a tensor during ``period``.

        Matches the paper's definition: the area of the over-capacity region
        removed if the tensor is absent during its inactive period.
        """
        slots = period_slot_indices(period, self.num_slots)
        if slots.size == 0:
            return 0.0
        excess = np.maximum(self._pressure[slots] - self._capacity, 0.0)
        return float(np.minimum(excess, period.size_bytes).sum())

    # -- mutation --------------------------------------------------------------

    def apply_eviction(self, period: InactivePeriod, absent_slots: np.ndarray) -> None:
        """Reduce pressure for the slots during which the tensor is actually absent."""
        if absent_slots.size == 0:
            return
        self._pressure[absent_slots] -= period.size_bytes
        if (self._pressure[absent_slots] < -1e-6).any():
            raise SchedulingError("pressure became negative; eviction applied twice?")

    def add_bytes(self, slots: np.ndarray, nbytes: float) -> None:
        """Add ``nbytes`` of residency for the given slots (prefetch moved earlier)."""
        if slots.size == 0:
            return
        self._pressure[slots] += nbytes
