"""GPU memory pressure timeline used by the compile-time scheduler (§4.3)."""

from __future__ import annotations

import numpy as np

from ..errors import SchedulingError
from .vitality import InactivePeriod


def period_slot_indices(period: InactivePeriod, num_slots: int) -> np.ndarray:
    """Kernel-slot indices covered by a period's free interval.

    Wrap-around periods cover the tail of this iteration plus the head of the
    next; both map onto the same per-iteration slot axis.
    """
    if not period.wraps_around:
        return np.arange(period.start_slot + 1, period.end_slot, dtype=np.int64)
    tail = np.arange(period.start_slot + 1, num_slots, dtype=np.int64)
    head = np.arange(0, period.end_slot - num_slots, dtype=np.int64)
    return np.concatenate([tail, head])


class MemoryPressureTimeline:
    """Tracks estimated GPU memory pressure per kernel slot.

    The scheduler evaluates eviction candidates against this curve: the
    *benefit* of evicting a tensor during a period is the amount by which the
    over-capacity region shrinks (the shaded area in Figure 7).
    """

    def __init__(self, baseline_pressure: np.ndarray, capacity_bytes: float):
        if capacity_bytes <= 0:
            raise SchedulingError("GPU capacity must be positive")
        self._pressure = np.asarray(baseline_pressure, dtype=np.float64).copy()
        if self._pressure.ndim != 1 or len(self._pressure) == 0:
            raise SchedulingError("baseline pressure must be a non-empty 1-D array")
        self._capacity = float(capacity_bytes)
        # Incrementally maintained over-capacity curve: benefit evaluation is
        # the scheduler's hottest call, and keeping the excess array current
        # (mutations touch few slots) turns each call into one slice + min +
        # sum instead of a full subtract/clamp over the window. The touched
        # slots are recomputed with the exact same elementwise formula, so the
        # values are bit-identical to recomputing from scratch.
        self._excess = np.maximum(self._pressure - self._capacity, 0.0)
        # The scheduler re-evaluates the same periods' benefit thousands of
        # times, but the benefit only changes when the curve does — cache it
        # per mutation epoch (bumped by apply_eviction/add_bytes).
        self._benefit_cache: dict[tuple[int, int, bool, int], tuple[int, float]] = {}
        self._epoch = 0
        self._peak_cache: tuple[int, float] | None = None

    # -- views -------------------------------------------------------------

    @property
    def capacity(self) -> float:
        return self._capacity

    @property
    def num_slots(self) -> int:
        return len(self._pressure)

    @property
    def pressure(self) -> np.ndarray:
        """A read-only copy of the current pressure curve."""
        return self._pressure.copy()

    def pressure_view(self) -> np.ndarray:
        """The live pressure curve *without* a defensive copy.

        For hot read-only loops (the prefetcher probes one slot at a time);
        callers must not mutate the returned array.
        """
        return self._pressure

    @property
    def peak(self) -> float:
        cached = self._peak_cache
        if cached is not None and cached[0] == self._epoch:
            return cached[1]
        peak = float(self._pressure.max())
        self._peak_cache = (self._epoch, peak)
        return peak

    @property
    def excess(self) -> np.ndarray:
        """Per-slot bytes above GPU capacity."""
        return self._excess.copy()

    @property
    def total_excess(self) -> float:
        """Integral (over slots) of the over-capacity region."""
        return float(self._excess.sum())

    def fits(self) -> bool:
        """True once the projected pressure never exceeds GPU capacity."""
        return bool(self.peak <= self._capacity)

    def slot_pressure(self, slot: int) -> float:
        return float(self._pressure[slot])

    def headroom(self, slots: np.ndarray) -> np.ndarray:
        """Free bytes below capacity for the given slots (can be negative)."""
        return self._capacity - self._pressure[slots]

    # -- benefit evaluation --------------------------------------------------

    def eviction_benefit(self, period: InactivePeriod) -> float:
        """Critical memory-pressure reduction of evicting a tensor during ``period``.

        Matches the paper's definition: the area of the over-capacity region
        removed if the tensor is absent during its inactive period.
        """
        key = (period.start_slot, period.end_slot, period.wraps_around, period.size_bytes)
        cached = self._benefit_cache.get(key)
        if cached is not None and cached[0] == self._epoch:
            return cached[1]
        # A period's slots are contiguous (wrap-around ones are two contiguous
        # pieces), so slicing replaces fancy indexing — same values, same
        # summation order, no index array. The pre-clamped excess curve makes
        # each evaluation one slice + min + sum; the scalar reference
        # (``repro.core.reference.scalar_eviction_benefit``) recomputes the
        # clamp per call and the Hypothesis suite pins the two byte-equal.
        if period.wraps_around:
            excess = np.concatenate(
                [
                    self._excess[period.start_slot + 1 :],
                    self._excess[: max(period.end_slot - self.num_slots, 0)],
                ]
            )
        else:
            excess = self._excess[period.start_slot + 1 : max(period.end_slot, 0)]
        if excess.size == 0:
            benefit = 0.0
        else:
            benefit = float(np.minimum(excess, period.size_bytes).sum())
        self._benefit_cache[key] = (self._epoch, benefit)
        return benefit

    # -- mutation --------------------------------------------------------------

    def apply_eviction(self, period: InactivePeriod, absent_slots: np.ndarray) -> None:
        """Reduce pressure for the slots during which the tensor is actually absent."""
        if absent_slots.size == 0:
            return
        self._epoch += 1
        self._pressure[absent_slots] -= period.size_bytes
        if (self._pressure[absent_slots] < -1e-6).any():
            raise SchedulingError("pressure became negative; eviction applied twice?")
        self._excess[absent_slots] = np.maximum(
            self._pressure[absent_slots] - self._capacity, 0.0
        )

    def add_bytes(self, slots: np.ndarray, nbytes: float) -> None:
        """Add ``nbytes`` of residency for the given slots (prefetch moved earlier)."""
        if slots.size == 0:
            return
        self._epoch += 1
        self._pressure[slots] += nbytes
        self._excess[slots] = np.maximum(self._pressure[slots] - self._capacity, 0.0)
