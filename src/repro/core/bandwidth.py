"""Compile-time channel bandwidth bookkeeping for the migration scheduler.

The scheduler plans transfers against a *fluid* model of the I/O channels: each
kernel slot ``k`` offers ``duration(k) * bandwidth`` bytes of capacity per
channel, and planned transfers consume that capacity slot by slot. This is the
compile-time counterpart of the runtime transfer engine in ``repro.sim``.

Channels:

* ``ssd_write`` / ``ssd_read`` — the SSD's internal flash bandwidth;
* ``pcie_out`` / ``pcie_in`` — the GPU's PCIe link (shared by SSD and host
  traffic), one budget per direction.

A GPU->SSD eviction consumes ``ssd_write`` **and** ``pcie_out``; a host-bound
eviction consumes only ``pcie_out``; prefetches mirror this on the read side.

Implementation note — this is the planner's innermost loop (hundreds of
thousands of per-slot probes for a paper-scale cell), so the per-slot state is
kept in plain Python float lists (scalar IEEE-754 arithmetic, bit-identical to
the previous NumPy version) and each (channel-combination, direction) keeps a
path-compressed *skip index* over exhausted slots: capacity only ever
decreases, so a slot whose remaining combined capacity reaches exactly 0.0
stays exhausted forever and later probes jump over whole runs of them in
amortized near-constant time. Skipped slots contribute exactly ``0.0`` bytes,
so probing and reserving remain bit-for-bit identical to the full scan.
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from ..config import SystemConfig
from ..errors import SchedulingError

#: Remaining capacity of a slot whose budget is fully consumed. The skip
#: index relies on this comparison being *exact*: `reserve` subtracts the
#: precise remaining availability, so an exhausted slot holds IEEE-754 zero
#: (not merely a small number), stays exhausted forever, and contributes
#: exactly 0.0 bytes to any probe that skips it.
EXHAUSTED_SLOT = 0.0  # repro-lint: exact-float


class Direction(Enum):
    """Transfer direction relative to the GPU."""

    OUT = "out"  # eviction: GPU -> SSD/host
    IN = "in"  # prefetch: SSD/host -> GPU


class ChannelSchedule:
    """Tracks planned bandwidth consumption across kernel slots."""

    def __init__(self, slot_durations: np.ndarray, config: SystemConfig):
        durations = np.asarray(slot_durations, dtype=np.float64)
        if durations.ndim != 1 or len(durations) == 0:
            raise SchedulingError("slot durations must be a non-empty 1-D array")
        if (durations <= 0).any():
            raise SchedulingError("every kernel slot must have positive duration")
        self._durations = durations
        self._config = config
        self._capacities: dict[str, np.ndarray] = {
            "ssd_write": durations * config.ssd.write_bandwidth,
            "ssd_read": durations * config.ssd.read_bandwidth,
            "pcie_out": durations * config.interconnect.bandwidth,
            "pcie_in": durations * config.interconnect.bandwidth,
        }
        #: Remaining capacity per slot, as plain float lists (hot-path state).
        self._available: dict[str, list[float]] = {
            name: capacity.tolist() for name, capacity in self._capacities.items()
        }
        #: (to_ssd, direction) -> the availability lists a transfer consumes.
        self._combos: dict[tuple[bool, Direction], tuple[list[float], ...]] = {
            (False, Direction.OUT): (self._available["pcie_out"],),
            (True, Direction.OUT): (self._available["pcie_out"], self._available["ssd_write"]),
            (False, Direction.IN): (self._available["pcie_in"],),
            (True, Direction.IN): (self._available["pcie_in"], self._available["ssd_read"]),
        }
        n = len(durations)
        #: Per-combo skip indices over exhausted slots (monotone: capacity
        #: never grows back, so the pointers only ever advance).
        self._skip_fwd = {key: list(range(n)) for key in self._combos}
        self._skip_bwd = {key: list(range(n)) for key in self._combos}
        #: (to_ssd, direction) -> (fixed latency, bandwidth) of one transfer,
        #: precomputed so the scheduler's cost term is two flops per call.
        interconnect = config.interconnect
        self._unloaded: dict[tuple[bool, Direction], tuple[float, float]] = {
            (True, Direction.OUT): (
                config.ssd.write_latency + interconnect.latency,
                min(interconnect.bandwidth, config.ssd.write_bandwidth),
            ),
            (True, Direction.IN): (
                config.ssd.read_latency + interconnect.latency,
                min(interconnect.bandwidth, config.ssd.read_bandwidth),
            ),
            (False, Direction.OUT): (
                interconnect.latency,
                min(interconnect.bandwidth, config.host_bandwidth),
            ),
            (False, Direction.IN): (
                interconnect.latency,
                min(interconnect.bandwidth, config.host_bandwidth),
            ),
        }

    # -- helpers -----------------------------------------------------------

    @property
    def num_slots(self) -> int:
        return len(self._durations)

    def slot_duration(self, slot: int) -> float:
        return float(self._durations[slot])

    def _channel_names(self, to_ssd: bool, direction: Direction) -> list[str]:
        names = ["pcie_out" if direction is Direction.OUT else "pcie_in"]
        if to_ssd:
            names.append("ssd_write" if direction is Direction.OUT else "ssd_read")
        return names

    def utilization(self, channel: str) -> np.ndarray:
        """Per-slot utilization in [0, 1] of one channel."""
        return self._utilization_values(channel, 0, self.num_slots)

    def utilization_window(self, channel: str, start: int, stop: int) -> np.ndarray:
        """Utilization of one channel restricted to slots ``[start, stop)``.

        Identical values to ``utilization(channel)[start:stop]`` without
        materializing the full curve (the saturation test probes thousands of
        small windows per planning run).
        """
        return self._utilization_values(channel, max(start, 0), min(stop, self.num_slots))

    def _utilization_values(self, channel: str, start: int, stop: int) -> np.ndarray:
        if channel not in self._available:
            raise SchedulingError(f"unknown channel {channel!r}")
        capacity = self._capacities[channel][start:stop]
        available = np.asarray(self._available[channel][start:stop], dtype=np.float64)
        with np.errstate(divide="ignore", invalid="ignore"):
            used = 1.0 - np.where(capacity > 0, available / capacity, 1.0)
        return np.clip(used, 0.0, 1.0)

    def available_bytes(self, to_ssd: bool, direction: Direction, slots: np.ndarray) -> np.ndarray:
        """Per-slot bytes still schedulable for a transfer of the given kind."""
        lists = self._combos[(to_ssd, direction)]
        available = np.asarray(lists[0], dtype=np.float64)[slots]
        for other in lists[1:]:
            available = np.minimum(available, np.asarray(other, dtype=np.float64)[slots])
        return available

    # -- exhausted-slot skip index -------------------------------------------

    def _next_open_fwd(self, key: tuple[bool, Direction], slot: int) -> int:
        """First slot >= ``slot`` with combined capacity > 0 (or ``num_slots``)."""
        skip = self._skip_fwd[key]
        lists = self._combos[key]
        n = len(skip)
        j = slot
        path = []
        while j < n:
            k = skip[j]
            if k != j:
                path.append(j)
                j = k
                continue
            exhausted = False
            for values in lists:
                if values[j] == EXHAUSTED_SLOT:
                    exhausted = True
                    break
            if not exhausted:
                break
            skip[j] = j + 1
            j += 1
        for visited in path:
            skip[visited] = j
        return j

    def _next_open_bwd(self, key: tuple[bool, Direction], slot: int) -> int:
        """Last slot <= ``slot`` with combined capacity > 0 (or ``-1``)."""
        skip = self._skip_bwd[key]
        lists = self._combos[key]
        j = slot
        path = []
        while j >= 0:
            k = skip[j]
            if k != j:
                path.append(j)
                j = k
                continue
            exhausted = False
            for values in lists:
                if values[j] == EXHAUSTED_SLOT:
                    exhausted = True
                    break
            if not exhausted:
                break
            skip[j] = j - 1
            j -= 1
        for visited in path:
            skip[visited] = j
        return j

    # -- planning -----------------------------------------------------------

    def probe_forward(
        self, size_bytes: float, start_slot: int, end_slot: int, to_ssd: bool,
        direction: Direction = Direction.OUT,
    ) -> int | None:
        """Earliest slot by which a transfer starting at ``start_slot`` completes.

        Returns the completion slot (inclusive), or ``None`` if the transfer
        cannot finish before ``end_slot`` (exclusive) with the remaining
        channel capacity. Does not reserve anything.
        """
        remaining = float(size_bytes)
        limit = min(end_slot, self.num_slots)
        if start_slot >= limit:
            return None
        if remaining <= 0:
            return start_slot
        key = (to_ssd, direction)
        lists = self._combos[key]
        slot = start_slot
        while slot < limit:
            slot = self._next_open_fwd(key, slot)
            if slot >= limit:
                return None
            available = lists[0][slot]
            for other in lists[1:]:
                value = other[slot]
                if value < available:
                    available = value
            remaining -= available
            if remaining <= 0:
                return slot
            slot += 1
        return None

    def probe_backward(
        self, size_bytes: float, end_slot: int, start_slot: int, to_ssd: bool,
        direction: Direction = Direction.IN,
    ) -> int | None:
        """Latest slot at which a transfer can start and still finish by ``end_slot``.

        Scans backwards from ``end_slot - 1`` down to ``start_slot`` (inclusive)
        consuming remaining capacity; returns the start slot or ``None`` if the
        window is too congested.
        """
        remaining = float(size_bytes)
        floor = max(start_slot, 0)
        slot = min(end_slot, self.num_slots) - 1
        if slot < floor:
            return None
        if remaining <= 0:
            return slot
        key = (to_ssd, direction)
        lists = self._combos[key]
        while slot >= floor:
            slot = self._next_open_bwd(key, slot)
            if slot < floor:
                return None
            available = lists[0][slot]
            for other in lists[1:]:
                value = other[slot]
                if value < available:
                    available = value
            remaining -= available
            if remaining <= 0:
                return slot
            slot -= 1
        return None

    def reserve(
        self,
        size_bytes: float,
        start_slot: int,
        to_ssd: bool,
        direction: Direction,
        end_slot: int | None = None,
    ) -> int:
        """Consume channel capacity for a transfer beginning at ``start_slot``.

        Returns the completion slot. If ``end_slot`` is given and the transfer
        cannot complete before it, a :class:`SchedulingError` is raised (the
        caller should have probed first).
        """
        remaining = float(size_bytes)
        limit = self.num_slots if end_slot is None else min(end_slot, self.num_slots)
        key = (to_ssd, direction)
        lists = self._combos[key]
        slot = start_slot
        while slot < limit:
            open_slot = self._next_open_fwd(key, slot)
            if open_slot >= limit:
                break
            slot = open_slot
            available = lists[0][slot]
            for other in lists[1:]:
                value = other[slot]
                if value < available:
                    available = value
            take = available if available < remaining else remaining
            if take > 0:
                for values in lists:
                    values[slot] -= take
                remaining -= take
            if remaining <= 1e-9:
                return slot
            slot += 1
        if end_slot is None and remaining > 1e-9:
            # Spill into the final slot: the transfer finishes late, after the
            # iteration's last kernel. Record it against the last slot.
            return self.num_slots - 1
        raise SchedulingError(
            "transfer could not be reserved in the requested window; probe first"
        )

    def transfer_time(self, size_bytes: float, to_ssd: bool, direction: Direction) -> float:
        """Unloaded latency of one transfer (used for the cost term of Algorithm 1)."""
        latency, bandwidth = self._unloaded[(to_ssd, direction)]
        return latency + size_bytes / bandwidth
