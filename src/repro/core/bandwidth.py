"""Compile-time channel bandwidth bookkeeping for the migration scheduler.

The scheduler plans transfers against a *fluid* model of the I/O channels: each
kernel slot ``k`` offers ``duration(k) * bandwidth`` bytes of capacity per
channel, and planned transfers consume that capacity slot by slot. This is the
compile-time counterpart of the runtime transfer engine in ``repro.sim``.

Channels:

* ``ssd_write`` / ``ssd_read`` — the SSD's internal flash bandwidth;
* ``pcie_out`` / ``pcie_in`` — the GPU's PCIe link (shared by SSD and host
  traffic), one budget per direction.

A GPU->SSD eviction consumes ``ssd_write`` **and** ``pcie_out``; a host-bound
eviction consumes only ``pcie_out``; prefetches mirror this on the read side.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from ..config import SystemConfig
from ..errors import SchedulingError


class Direction(Enum):
    """Transfer direction relative to the GPU."""

    OUT = "out"  # eviction: GPU -> SSD/host
    IN = "in"  # prefetch: SSD/host -> GPU


@dataclass
class _Channel:
    """Remaining capacity (bytes) per kernel slot for one physical channel."""

    name: str
    available: np.ndarray

    def utilization(self, capacity: np.ndarray) -> np.ndarray:
        with np.errstate(divide="ignore", invalid="ignore"):
            used = 1.0 - np.where(capacity > 0, self.available / capacity, 1.0)
        return np.clip(used, 0.0, 1.0)


class ChannelSchedule:
    """Tracks planned bandwidth consumption across kernel slots."""

    def __init__(self, slot_durations: np.ndarray, config: SystemConfig):
        durations = np.asarray(slot_durations, dtype=np.float64)
        if durations.ndim != 1 or len(durations) == 0:
            raise SchedulingError("slot durations must be a non-empty 1-D array")
        if (durations <= 0).any():
            raise SchedulingError("every kernel slot must have positive duration")
        self._durations = durations
        self._config = config
        self._capacities: dict[str, np.ndarray] = {
            "ssd_write": durations * config.ssd.write_bandwidth,
            "ssd_read": durations * config.ssd.read_bandwidth,
            "pcie_out": durations * config.interconnect.bandwidth,
            "pcie_in": durations * config.interconnect.bandwidth,
        }
        self._channels = {
            name: _Channel(name, capacity.copy()) for name, capacity in self._capacities.items()
        }

    # -- helpers -----------------------------------------------------------

    @property
    def num_slots(self) -> int:
        return len(self._durations)

    def slot_duration(self, slot: int) -> float:
        return float(self._durations[slot])

    def _channels_for(self, to_ssd: bool, direction: Direction) -> list[_Channel]:
        names = ["pcie_out" if direction is Direction.OUT else "pcie_in"]
        if to_ssd:
            names.append("ssd_write" if direction is Direction.OUT else "ssd_read")
        return [self._channels[n] for n in names]

    def utilization(self, channel: str) -> np.ndarray:
        """Per-slot utilization in [0, 1] of one channel."""
        if channel not in self._channels:
            raise SchedulingError(f"unknown channel {channel!r}")
        return self._channels[channel].utilization(self._capacities[channel])

    def available_bytes(self, to_ssd: bool, direction: Direction, slots: np.ndarray) -> np.ndarray:
        """Per-slot bytes still schedulable for a transfer of the given kind."""
        channels = self._channels_for(to_ssd, direction)
        available = channels[0].available[slots].copy()
        for channel in channels[1:]:
            available = np.minimum(available, channel.available[slots])
        return available

    # -- planning -----------------------------------------------------------

    def probe_forward(
        self, size_bytes: float, start_slot: int, end_slot: int, to_ssd: bool,
        direction: Direction = Direction.OUT,
    ) -> int | None:
        """Earliest slot by which a transfer starting at ``start_slot`` completes.

        Returns the completion slot (inclusive), or ``None`` if the transfer
        cannot finish before ``end_slot`` (exclusive) with the remaining
        channel capacity. Does not reserve anything.
        """
        remaining = float(size_bytes)
        for slot in range(start_slot, min(end_slot, self.num_slots)):
            available = self.available_bytes(to_ssd, direction, np.array([slot]))[0]
            remaining -= available
            if remaining <= 0:
                return slot
        return None

    def probe_backward(
        self, size_bytes: float, end_slot: int, start_slot: int, to_ssd: bool,
        direction: Direction = Direction.IN,
    ) -> int | None:
        """Latest slot at which a transfer can start and still finish by ``end_slot``.

        Scans backwards from ``end_slot - 1`` down to ``start_slot`` (inclusive)
        consuming remaining capacity; returns the start slot or ``None`` if the
        window is too congested.
        """
        remaining = float(size_bytes)
        for slot in range(min(end_slot, self.num_slots) - 1, max(start_slot, 0) - 1, -1):
            available = self.available_bytes(to_ssd, direction, np.array([slot]))[0]
            remaining -= available
            if remaining <= 0:
                return slot
        return None

    def reserve(
        self,
        size_bytes: float,
        start_slot: int,
        to_ssd: bool,
        direction: Direction,
        end_slot: int | None = None,
    ) -> int:
        """Consume channel capacity for a transfer beginning at ``start_slot``.

        Returns the completion slot. If ``end_slot`` is given and the transfer
        cannot complete before it, a :class:`SchedulingError` is raised (the
        caller should have probed first).
        """
        remaining = float(size_bytes)
        limit = self.num_slots if end_slot is None else min(end_slot, self.num_slots)
        channels = self._channels_for(to_ssd, direction)
        for slot in range(start_slot, limit):
            available = min(float(c.available[slot]) for c in channels)
            take = min(available, remaining)
            if take > 0:
                for channel in channels:
                    channel.available[slot] -= take
                remaining -= take
            if remaining <= 1e-9:
                return slot
        if end_slot is None and remaining > 1e-9:
            # Spill into the final slot: the transfer finishes late, after the
            # iteration's last kernel. Record it against the last slot.
            return self.num_slots - 1
        raise SchedulingError(
            "transfer could not be reserved in the requested window; probe first"
        )

    def transfer_time(self, size_bytes: float, to_ssd: bool, direction: Direction) -> float:
        """Unloaded latency of one transfer (used for the cost term of Algorithm 1)."""
        pcie_bw = self._config.interconnect.bandwidth
        if to_ssd:
            ssd_bw = (
                self._config.ssd.write_bandwidth
                if direction is Direction.OUT
                else self._config.ssd.read_bandwidth
            )
            ssd_lat = (
                self._config.ssd.write_latency
                if direction is Direction.OUT
                else self._config.ssd.read_latency
            )
            bandwidth = min(pcie_bw, ssd_bw)
            return ssd_lat + self._config.interconnect.latency + size_bytes / bandwidth
        return self._config.interconnect.latency + size_bytes / min(
            pcie_bw, self._config.host_bandwidth
        )
