"""Compile-time channel bandwidth bookkeeping for the migration scheduler.

The scheduler plans transfers against a *fluid* model of the I/O channels: each
kernel slot ``k`` offers ``duration(k) * bandwidth`` bytes of capacity per
channel, and planned transfers consume that capacity slot by slot. This is the
compile-time counterpart of the runtime transfer engine in ``repro.sim``.

Channels:

* ``ssd_write`` / ``ssd_read`` — the SSD's internal flash bandwidth;
* ``pcie_out`` / ``pcie_in`` — the GPU's PCIe link (shared by SSD and host
  traffic), one budget per direction.

A GPU->SSD eviction consumes ``ssd_write`` **and** ``pcie_out``; a host-bound
eviction consumes only ``pcie_out``; prefetches mirror this on the read side.

Implementation note — this is the planner's innermost loop (hundreds of
thousands of per-slot probes for a paper-scale cell), so the per-slot state is
kept in numpy float64 arrays. Each (channel-combination, direction) maintains a
*combined availability* array — the element-wise minimum of its channel
arrays, updated in place on every reservation — so a probe is a chunked walk
over small ``.tolist()`` blocks of that one array (an exhausted slot holds
IEEE-754 zero and contributes exactly ``0.0`` bytes, so the walk needs no
openness filtering to stay bit-identical to the reference's skip-index scan).
The walk itself stays
scalar because the probe semantics subtract availabilities *sequentially*
(``remaining -= available`` in slot order) and IEEE-754 addition does not
reassociate: any cumulative-sum shortcut would round differently. All scalar
arithmetic happens on float64 values, which is bit-identical to the plain
Python floats of the retained scalar reference
(:class:`repro.core.reference.ScalarChannelSchedule`); the Hypothesis
equivalence suite proves the two implementations byte-equal on randomized
schedules.
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from ..config import SystemConfig
from ..errors import SchedulingError

#: Remaining capacity of a slot whose budget is fully consumed. The open-slot
#: scan relies on this being *exact*: `reserve` subtracts the precise
#: remaining availability, so an exhausted slot holds IEEE-754 zero (not
#: merely a small number), stays exhausted forever (capacity only ever
#: decreases), and contributes exactly 0.0 bytes to any probe that skips it.
EXHAUSTED_SLOT = 0.0  # repro-lint: exact-float

#: Block size for the chunked probe/reserve walks. Probes usually terminate
#: within a couple of slots (per-slot channel capacity is large relative to
#: tensor sizes), so small blocks avoid materializing whole windows while
#: still amortizing the numpy->Python boundary crossing.
_SCAN_BLOCK = 32


class Direction(Enum):
    """Transfer direction relative to the GPU."""

    OUT = "out"  # eviction: GPU -> SSD/host
    IN = "in"  # prefetch: SSD/host -> GPU


class ChannelSchedule:
    """Tracks planned bandwidth consumption across kernel slots."""

    def __init__(self, slot_durations: np.ndarray, config: SystemConfig):
        durations = np.asarray(slot_durations, dtype=np.float64)
        if durations.ndim != 1 or len(durations) == 0:
            raise SchedulingError("slot durations must be a non-empty 1-D array")
        if (durations <= 0).any():
            raise SchedulingError("every kernel slot must have positive duration")
        self._durations = durations
        self._config = config
        self._capacities: dict[str, np.ndarray] = {
            "ssd_write": durations * config.ssd.write_bandwidth,
            "ssd_read": durations * config.ssd.read_bandwidth,
            "pcie_out": durations * config.interconnect.bandwidth,
            "pcie_in": durations * config.interconnect.bandwidth,
        }
        #: Remaining capacity per slot, as float64 arrays (hot-path state).
        self._available: dict[str, np.ndarray] = {
            name: capacity.copy() for name, capacity in self._capacities.items()
        }
        #: (to_ssd, direction) -> the availability arrays a transfer consumes.
        self._combo_arrays: dict[tuple[bool, Direction], tuple[np.ndarray, ...]] = {
            (False, Direction.OUT): (self._available["pcie_out"],),
            (True, Direction.OUT): (self._available["pcie_out"], self._available["ssd_write"]),
            (False, Direction.IN): (self._available["pcie_in"],),
            (True, Direction.IN): (self._available["pcie_in"], self._available["ssd_read"]),
        }
        #: (to_ssd, direction) -> element-wise minimum of the combo's arrays,
        #: maintained in place by :meth:`reserve`. ``np.minimum`` picks one of
        #: its operands without rounding, so each entry is the exact scalar
        #: minimum a per-slot walk would compute. The PCIe array is shared by
        #: the to-host and to-SSD combos of a direction, so a reservation
        #: refreshes *both* combined arrays of its direction.
        self._combined: dict[tuple[bool, Direction], np.ndarray] = {
            key: arrays[0].copy() if len(arrays) == 1 else np.minimum(arrays[0], arrays[1])
            for key, arrays in self._combo_arrays.items()
        }
        #: direction -> (pcie array, ssd array, to-host combined, to-ssd
        #: combined): everything a reservation must refresh per touched slot.
        self._direction_state: dict[Direction, tuple[np.ndarray, ...]] = {
            Direction.OUT: (
                self._available["pcie_out"],
                self._available["ssd_write"],
                self._combined[(False, Direction.OUT)],
                self._combined[(True, Direction.OUT)],
            ),
            Direction.IN: (
                self._available["pcie_in"],
                self._available["ssd_read"],
                self._combined[(False, Direction.IN)],
                self._combined[(True, Direction.IN)],
            ),
        }
        #: (to_ssd, direction) -> (fixed latency, bandwidth) of one transfer,
        #: precomputed so the scheduler's cost term is two flops per call.
        interconnect = config.interconnect
        self._unloaded: dict[tuple[bool, Direction], tuple[float, float]] = {
            (True, Direction.OUT): (
                config.ssd.write_latency + interconnect.latency,
                min(interconnect.bandwidth, config.ssd.write_bandwidth),
            ),
            (True, Direction.IN): (
                config.ssd.read_latency + interconnect.latency,
                min(interconnect.bandwidth, config.ssd.read_bandwidth),
            ),
            (False, Direction.OUT): (
                interconnect.latency,
                min(interconnect.bandwidth, config.host_bandwidth),
            ),
            (False, Direction.IN): (
                interconnect.latency,
                min(interconnect.bandwidth, config.host_bandwidth),
            ),
        }

    # -- helpers -----------------------------------------------------------

    @property
    def num_slots(self) -> int:
        return len(self._durations)

    @property
    def durations(self) -> np.ndarray:
        """The per-slot kernel durations the schedule was built from.

        Callers must not mutate the returned array.
        """
        return self._durations

    def slot_duration(self, slot: int) -> float:
        return float(self._durations[slot])

    def _channel_names(self, to_ssd: bool, direction: Direction) -> list[str]:
        names = ["pcie_out" if direction is Direction.OUT else "pcie_in"]
        if to_ssd:
            names.append("ssd_write" if direction is Direction.OUT else "ssd_read")
        return names

    def utilization(self, channel: str) -> np.ndarray:
        """Per-slot utilization in [0, 1] of one channel."""
        return self._utilization_values(channel, 0, self.num_slots)

    def utilization_window(self, channel: str, start: int, stop: int) -> np.ndarray:
        """Utilization of one channel restricted to slots ``[start, stop)``.

        Identical values to ``utilization(channel)[start:stop]`` without
        materializing the full curve (the saturation test probes thousands of
        small windows per planning run).
        """
        return self._utilization_values(channel, max(start, 0), min(stop, self.num_slots))

    def _utilization_values(self, channel: str, start: int, stop: int) -> np.ndarray:
        if channel not in self._available:
            raise SchedulingError(f"unknown channel {channel!r}")
        capacity = self._capacities[channel][start:stop]
        available = self._available[channel][start:stop]
        with np.errstate(divide="ignore", invalid="ignore"):
            used = 1.0 - np.where(capacity > 0, available / capacity, 1.0)
        return np.clip(used, 0.0, 1.0)

    def available_bytes(self, to_ssd: bool, direction: Direction, slots: np.ndarray) -> np.ndarray:
        """Per-slot bytes still schedulable for a transfer of the given kind."""
        return self._combined[(to_ssd, direction)][slots]

    # -- planning -----------------------------------------------------------

    def probe_forward(
        self, size_bytes: float, start_slot: int, end_slot: int, to_ssd: bool,
        direction: Direction = Direction.OUT,
    ) -> int | None:
        """Earliest slot by which a transfer starting at ``start_slot`` completes.

        Returns the completion slot (inclusive), or ``None`` if the transfer
        cannot finish before ``end_slot`` (exclusive) with the remaining
        channel capacity. Does not reserve anything.
        """
        remaining = float(size_bytes)
        limit = min(end_slot, self.num_slots)
        if start_slot >= limit:
            return None
        if remaining <= 0:
            return start_slot
        combined = self._combined[(to_ssd, direction)]
        slot = start_slot
        # Chunked scan: probes usually complete within a couple of slots (slot
        # capacity is large relative to tensor sizes), so materialize small
        # blocks instead of the whole window. An exhausted slot holds exactly
        # 0.0 and `remaining - 0.0 == remaining`, so no openness filtering is
        # needed: the walk is bit-identical to the reference's skip-index walk.
        while slot < limit:
            block_end = min(slot + _SCAN_BLOCK, limit)
            for available in combined[slot:block_end].tolist():
                remaining -= available
                if remaining <= 0:
                    return slot
                slot += 1
        return None

    def probe_backward(
        self, size_bytes: float, end_slot: int, start_slot: int, to_ssd: bool,
        direction: Direction = Direction.IN,
    ) -> int | None:
        """Latest slot at which a transfer can start and still finish by ``end_slot``.

        Scans backwards from ``end_slot - 1`` down to ``start_slot`` (inclusive)
        consuming remaining capacity; returns the start slot or ``None`` if the
        window is too congested.
        """
        remaining = float(size_bytes)
        floor = max(start_slot, 0)
        top = min(end_slot, self.num_slots) - 1
        if top < floor:
            return None
        if remaining <= 0:
            return top
        combined = self._combined[(to_ssd, direction)]
        slot = top
        # Chunked backwards scan; see probe_forward for why exhausted slots
        # need no filtering.
        while slot >= floor:
            block_start = max(slot - _SCAN_BLOCK + 1, floor)
            for available in reversed(combined[block_start : slot + 1].tolist()):
                remaining -= available
                if remaining <= 0:
                    return slot
                slot -= 1
        return None

    def reserve(
        self,
        size_bytes: float,
        start_slot: int,
        to_ssd: bool,
        direction: Direction,
        end_slot: int | None = None,
    ) -> int:
        """Consume channel capacity for a transfer beginning at ``start_slot``.

        Returns the completion slot. If ``end_slot`` is given and the transfer
        cannot complete before it, a :class:`SchedulingError` is raised (the
        caller should have probed first).
        """
        remaining = float(size_bytes)
        limit = self.num_slots if end_slot is None else min(end_slot, self.num_slots)
        combined = self._combined[(to_ssd, direction)]
        if remaining <= 0 and start_slot < limit:
            # Nothing to consume: the reference walks to the first open slot
            # and returns it without reserving. (A tiny *positive* remaining
            # must take the general walk below — the reference does subtract
            # it from the first open slot.)
            open_rel = np.flatnonzero(combined[start_slot:limit])
            if open_rel.size:
                return start_slot + int(open_rel[0])
        elif start_slot < limit:
            pcie, ssd, host_combined, ssd_combined = self._direction_state[direction]
            slot = start_slot
            # Chunked walk over a snapshot block: reservations only mutate the
            # slot being visited and the walk never revisits, so the snapshot
            # stays valid. Exhausted slots contribute a take of exactly 0 and
            # mutate nothing, matching the reference's skip-index semantics.
            while slot < limit:
                block_end = min(slot + _SCAN_BLOCK, limit)
                for available in combined[slot:block_end].tolist():
                    take = available if available < remaining else remaining
                    if take > 0:
                        pcie_left = float(pcie[slot]) - take
                        pcie[slot] = pcie_left
                        if to_ssd:
                            ssd_left = float(ssd[slot]) - take
                            ssd[slot] = ssd_left
                        else:
                            ssd_left = float(ssd[slot])
                        host_combined[slot] = pcie_left
                        ssd_combined[slot] = pcie_left if pcie_left < ssd_left else ssd_left
                        remaining -= take
                        if remaining <= 1e-9:
                            return slot
                    slot += 1
        if end_slot is None and remaining > 1e-9:
            # Spill into the final slot: the transfer finishes late, after the
            # iteration's last kernel. Record it against the last slot.
            return self.num_slots - 1
        raise SchedulingError(
            "transfer could not be reserved in the requested window; probe first"
        )

    def transfer_time(self, size_bytes: float, to_ssd: bool, direction: Direction) -> float:
        """Unloaded latency of one transfer (used for the cost term of Algorithm 1)."""
        latency, bandwidth = self._unloaded[(to_ssd, direction)]
        return latency + size_bytes / bandwidth
