"""Tensor vitality analysis (§4.2 of the paper).

The analyzer walks the profiled training-iteration kernel trace and derives,
for every tensor:

* the kernels that use it (its *active* slots);
* whether it is *global* (weights, optimizer state — alive across iterations)
  or *intermediate* (born at first use, dead after last use);
* its *inactive periods*: maximal intervals between two consecutive uses
  during which the tensor could be migrated out of GPU memory.

Global tensors additionally get a *wrap-around* period covering the gap from
their last use in one iteration to their first use in the next.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import SchedulingError
from ..graph.tensor import TensorInfo
from ..graph.training import TrainingGraph


@dataclass(frozen=True)
class TensorUsage:
    """Lifetime summary of one tensor within a training iteration."""

    tensor_id: int
    size_bytes: int
    is_global: bool
    #: Kernel indices (sorted) at which the tensor is active.
    use_slots: tuple[int, ...]

    @property
    def birth_slot(self) -> int:
        """First kernel that touches the tensor."""
        return self.use_slots[0]

    @property
    def death_slot(self) -> int:
        """Last kernel that touches the tensor."""
        return self.use_slots[-1]

    @property
    def num_uses(self) -> int:
        return len(self.use_slots)


@dataclass(frozen=True)
class InactivePeriod:
    """One inactive period of a tensor.

    The tensor is last used by kernel ``start_slot`` and next used by kernel
    ``end_slot``; it may be absent from GPU memory strictly between the two.
    A *wrap-around* period models a global tensor's gap from its last use in
    this iteration to its first use in the next (``end_slot`` then refers to
    the next iteration's kernel index).
    """

    tensor_id: int
    size_bytes: int
    start_slot: int
    end_slot: int
    wraps_around: bool = False

    def __post_init__(self) -> None:
        if not self.wraps_around and self.end_slot <= self.start_slot:
            raise SchedulingError(
                f"inactive period of tensor {self.tensor_id} must end after it starts"
            )
        if self.size_bytes <= 0:
            raise SchedulingError("inactive period tensor size must be positive")

    @property
    def free_slots(self) -> range:
        """Kernel slots during which the tensor could be absent from GPU memory."""
        if self.wraps_around:
            return range(self.start_slot + 1, self.end_slot)
        return range(self.start_slot + 1, self.end_slot)

    @property
    def num_free_slots(self) -> int:
        return max(0, self.end_slot - self.start_slot - 1)

    def duration(self, slot_end_times: np.ndarray, slot_start_times: np.ndarray) -> float:
        """Wall-clock length of the period given the kernel timeline."""
        n = len(slot_start_times)
        start_time = slot_end_times[min(self.start_slot, n - 1)]
        if self.wraps_around:
            iteration_time = float(slot_end_times[-1])
            end_time = iteration_time + float(slot_start_times[self.end_slot % n])
        else:
            end_time = float(slot_start_times[self.end_slot])
        return max(0.0, end_time - float(start_time))


@dataclass
class VitalityReport:
    """Full output of the vitality analysis for one training iteration."""

    graph: TrainingGraph
    usages: dict[int, TensorUsage]
    periods: list[InactivePeriod]
    #: Ideal start time of each kernel (seconds, no stalls).
    slot_start_times: np.ndarray
    #: Ideal end time of each kernel.
    slot_end_times: np.ndarray
    #: Per-slot resident-byte demand assuming no migrations (all live tensors on GPU).
    baseline_pressure: np.ndarray = field(init=False)
    #: Per-slot bytes of tensors actively used by the executing kernel.
    active_bytes: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        self.baseline_pressure = self._compute_baseline_pressure()
        self.active_bytes = self._compute_active_bytes()

    # -- derived state ----------------------------------------------------

    def _compute_baseline_pressure(self) -> np.ndarray:
        num_slots = self.graph.num_kernels
        pressure = np.zeros(num_slots, dtype=np.float64)
        for usage in self.usages.values():
            if usage.is_global:
                start, end = 0, num_slots - 1
            else:
                start, end = usage.birth_slot, usage.death_slot
            pressure[start : end + 1] += usage.size_bytes
        return pressure

    def _compute_active_bytes(self) -> np.ndarray:
        num_slots = self.graph.num_kernels
        active = np.zeros(num_slots, dtype=np.float64)
        for kernel in self.graph.kernels:
            active[kernel.index] = sum(
                self.graph.tensor(tid).size_bytes for tid in kernel.tensor_ids
            )
        return active

    # -- queries ---------------------------------------------------------

    @property
    def num_slots(self) -> int:
        return self.graph.num_kernels

    @property
    def peak_pressure(self) -> float:
        """Peak resident-byte demand of the un-migrated iteration."""
        return float(self.baseline_pressure.max()) if len(self.baseline_pressure) else 0.0

    @property
    def peak_active_bytes(self) -> float:
        """Largest working set of any single kernel (must always fit in GPU memory)."""
        return float(self.active_bytes.max()) if len(self.active_bytes) else 0.0

    def usage(self, tensor_id: int) -> TensorUsage:
        return self.usages[tensor_id]

    def tensor(self, tensor_id: int) -> TensorInfo:
        return self.graph.tensor(tensor_id)

    def periods_for(self, tensor_id: int) -> list[InactivePeriod]:
        """All inactive periods of one tensor."""
        return [p for p in self.periods if p.tensor_id == tensor_id]

    def period_duration(self, period: InactivePeriod) -> float:
        """Wall-clock length of a period under ideal (no-stall) timing."""
        return period.duration(self.slot_end_times, self.slot_start_times)

    def memory_footprint_ratio(self, gpu_capacity_bytes: int) -> float:
        """Peak memory demand relative to GPU capacity (the paper's ``M`` metric)."""
        if gpu_capacity_bytes <= 0:
            raise SchedulingError("GPU capacity must be positive")
        return self.peak_pressure / gpu_capacity_bytes


class TensorVitalityAnalyzer:
    """Extracts tensor lifetimes and inactive periods from a training graph."""

    def __init__(self, graph: TrainingGraph):
        if graph.num_kernels == 0:
            raise SchedulingError("cannot analyze an empty training graph")
        if any(k.duration <= 0 for k in graph.kernels):
            raise SchedulingError(
                "kernels must carry profiled durations; run profile_training_graph first"
            )
        self._graph = graph

    def analyze(self) -> VitalityReport:
        """Run the analysis and return the full report."""
        graph = self._graph
        use_slots: dict[int, list[int]] = {}
        for kernel in graph.kernels:
            for tid in kernel.tensor_ids:
                use_slots.setdefault(tid, []).append(kernel.index)

        usages: dict[int, TensorUsage] = {}
        for tid, slots in use_slots.items():
            tensor = graph.tensor(tid)
            usages[tid] = TensorUsage(
                tensor_id=tid,
                size_bytes=tensor.size_bytes,
                is_global=tensor.is_global,
                use_slots=tuple(sorted(set(slots))),
            )

        periods = self._extract_periods(usages)
        trace = graph.trace()
        starts = np.asarray(trace.start_times(), dtype=np.float64)
        ends = np.asarray(trace.end_times(), dtype=np.float64)
        return VitalityReport(
            graph=graph,
            usages=usages,
            periods=periods,
            slot_start_times=starts,
            slot_end_times=ends,
        )

    def _extract_periods(self, usages: dict[int, TensorUsage]) -> list[InactivePeriod]:
        periods: list[InactivePeriod] = []
        num_slots = self._graph.num_kernels
        for usage in usages.values():
            slots = usage.use_slots
            for previous, following in zip(slots, slots[1:]):
                if following - previous > 1:
                    periods.append(
                        InactivePeriod(
                            tensor_id=usage.tensor_id,
                            size_bytes=usage.size_bytes,
                            start_slot=previous,
                            end_slot=following,
                        )
                    )
            if usage.is_global:
                # The gap from the last use of this iteration to the first use
                # of the next iteration (e.g. a weight after its backward pass).
                gap = (num_slots - 1 - usage.death_slot) + usage.birth_slot
                if gap > 0:
                    periods.append(
                        InactivePeriod(
                            tensor_id=usage.tensor_id,
                            size_bytes=usage.size_bytes,
                            start_slot=usage.death_slot,
                            end_slot=num_slots + usage.birth_slot,
                            wraps_around=True,
                        )
                    )
        periods.sort(key=lambda p: (p.start_slot, p.end_slot, p.tensor_id))
        return periods


def analyze_vitality(graph: TrainingGraph) -> VitalityReport:
    """Convenience wrapper: build the analyzer and run it."""
    return TensorVitalityAnalyzer(graph).analyze()
