"""Smart tensor eviction scheduling — Algorithm 1 of the paper (§4.3).

The scheduler iteratively selects the inactive period with the highest
benefit/cost ratio, chooses a destination (SSD first, host memory when the SSD
write path is saturated), reserves channel bandwidth for the eviction and the
matching just-in-time prefetch, and updates the projected memory-pressure
curve. It stops once the projected pressure fits in GPU memory or no further
candidate is beneficial.

Because evictions only ever *reduce* the over-capacity region, each candidate's
benefit is monotonically non-increasing as the schedule grows; the scheduler
therefore uses a lazy-greedy priority queue (re-evaluating a candidate only
when it reaches the top of the heap), which keeps the search fast without
changing the result of the paper's iterative argmax.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass

import numpy as np

from ..config import SystemConfig
from ..errors import SchedulingError
from .bandwidth import ChannelSchedule, Direction
from .plan import MigrationDestination, MigrationPlan, PlannedEviction, PlannedPrefetch
from .pressure import MemoryPressureTimeline
from .vitality import InactivePeriod, VitalityReport


@dataclass(frozen=True)
class EvictionPolicyConfig:
    """Knobs that differentiate the G10 variants and the ablations.

    Attributes:
        allow_ssd: Permit SSD as an eviction destination (disabled only in
            ablations; every published variant keeps it on).
        allow_host: Permit host memory as a destination (off for G10-GDS).
        ssd_saturation_threshold: Fraction of the SSD write capacity already
            reserved in the eviction window above which the scheduler prefers
            host memory (the "to_ssd_traffic is full" test of Algorithm 1).
        ranking: Candidate ordering — ``"benefit_cost"`` (the paper),
            ``"largest_tensor"`` or ``"longest_period"`` (ablations).
        max_iterations: Safety bound on scheduling iterations.
    """

    allow_ssd: bool = True
    allow_host: bool = True
    ssd_saturation_threshold: float = 0.90
    ranking: str = "benefit_cost"
    max_iterations: int | None = None

    def __post_init__(self) -> None:
        if not (self.allow_ssd or self.allow_host):
            raise SchedulingError("at least one eviction destination must be allowed")
        if not 0 < self.ssd_saturation_threshold <= 1:
            raise SchedulingError("ssd_saturation_threshold must be in (0, 1]")
        if self.ranking not in ("benefit_cost", "largest_tensor", "longest_period"):
            raise SchedulingError(f"unknown ranking {self.ranking!r}")


@dataclass
class _ScheduledMigration:
    """Internal record of one accepted eviction/prefetch pair."""

    period: InactivePeriod
    destination: MigrationDestination
    eviction_issue: int
    eviction_complete: int
    prefetch_issue: int
    prefetch_deadline: int


def saturation_end_slot(
    durations: np.ndarray, start_slot: int, ideal_seconds: float, num_slots: int
) -> int:
    """Last slot of the window an ideal-bandwidth transfer would occupy.

    Vectorized window sizing for the §4.3 SSD-saturation test: the scalar walk
    accumulates slot durations until they cover the ideal transfer time, which
    is exactly the first cumulative sum ``>= ideal`` (``np.cumsum`` accumulates
    sequentially, so its partial sums are bit-identical to the running scalar
    sum — pinned by the Hypothesis suite against
    :func:`repro.core.reference.scalar_saturation_end_slot`).
    """
    span = num_slots - 1 - start_slot
    if span <= 0 or ideal_seconds <= 0:
        return start_slot
    cumulative = np.cumsum(durations[start_slot : num_slots - 1])
    crossing = int(np.searchsorted(cumulative, ideal_seconds, side="left")) + 1
    return start_slot + min(crossing, span)


class SmartEvictionScheduler:
    """Plans pre-evictions and just-in-time prefetches for one training iteration."""

    def __init__(
        self,
        report: VitalityReport,
        config: SystemConfig,
        policy: EvictionPolicyConfig | None = None,
    ):
        self._report = report
        self._config = config
        self._policy = policy or EvictionPolicyConfig()
        self._num_slots = report.num_slots
        durations = np.asarray([k.duration for k in report.graph.kernels], dtype=np.float64)
        self._pressure = MemoryPressureTimeline(
            report.baseline_pressure, config.gpu.memory_bytes
        )
        self._channels = ChannelSchedule(durations, config)
        self._durations = durations
        self._host_used = np.zeros(self._num_slots, dtype=np.float64)
        self._host_capacity = float(config.host_memory_bytes)
        # The cost term depends only on the tensor size (channel latencies and
        # bandwidths are fixed for a run), and the lazy-greedy heap re-scores
        # candidates constantly — memoize it per size.
        self._cost_cache: dict[int, float] = {}

    # -- public API ----------------------------------------------------------

    @property
    def pressure(self) -> MemoryPressureTimeline:
        return self._pressure

    @property
    def channels(self) -> ChannelSchedule:
        return self._channels

    def schedule(self) -> MigrationPlan:
        """Run Algorithm 1 and return the migration plan."""
        candidates = [p for p in self._report.periods if p.num_free_slots > 0]
        heap: list[tuple[float, int, InactivePeriod]] = []
        counter = itertools.count()
        for period in candidates:
            score = self._score(period)
            heapq.heappush(heap, (-score, next(counter), period))

        accepted: list[_ScheduledMigration] = []
        max_iterations = self._policy.max_iterations or 20 * max(len(candidates), 1)
        iterations = 0

        while heap and not self._pressure.fits() and iterations < max_iterations:
            iterations += 1
            neg_score, _, period = heapq.heappop(heap)
            fresh_score = self._score(period)
            if heap and fresh_score < -heap[0][0] - 1e-12:
                # Stale entry: benefit shrank since it was pushed; re-queue.
                heapq.heappush(heap, (-fresh_score, next(counter), period))
                continue
            if self._benefit(period) <= 0.0:
                # The best remaining candidate no longer reduces any excess.
                break
            migration = self._try_schedule(period)
            if migration is not None:
                accepted.append(migration)

        return self._build_plan(accepted)

    # -- candidate evaluation ---------------------------------------------------

    def _benefit(self, period: InactivePeriod) -> float:
        return self._pressure.eviction_benefit(period)

    def _cost(self, period: InactivePeriod) -> float:
        cost = self._cost_cache.get(period.size_bytes)
        if cost is None:
            evict = self._channels.transfer_time(period.size_bytes, to_ssd=True, direction=Direction.OUT)
            fetch = self._channels.transfer_time(period.size_bytes, to_ssd=True, direction=Direction.IN)
            cost = evict + fetch
            self._cost_cache[period.size_bytes] = cost
        return cost

    def _score(self, period: InactivePeriod) -> float:
        ranking = self._policy.ranking
        if ranking == "largest_tensor":
            return float(period.size_bytes)
        if ranking == "longest_period":
            return float(period.num_free_slots)
        cost = self._cost(period)
        if cost <= 0:
            return float("inf")
        return self._benefit(period) / cost

    # -- scheduling of one candidate ---------------------------------------------

    def _windows(self, period: InactivePeriod) -> tuple[range, range] | None:
        """Eviction and prefetch windows (kernel-slot ranges) for a period."""
        n = self._num_slots
        if period.wraps_around:
            evict_window = range(min(period.start_slot + 1, n - 1), n)
            fetch_window = range(0, max(period.end_slot - n, 0))
        else:
            evict_window = range(period.start_slot + 1, period.end_slot)
            fetch_window = evict_window
        if len(evict_window) == 0 or len(fetch_window) == 0:
            return None
        return evict_window, fetch_window

    def _ssd_saturated(self, start_slot: int, size_bytes: float) -> bool:
        """The paper's "to_ssd_traffic is full during t_r .. t_r + t_s" test."""
        write_bw = self._config.ssd.write_bandwidth
        ideal_seconds = size_bytes / write_bw
        end_slot = saturation_end_slot(
            self._durations, start_slot, ideal_seconds, self._num_slots
        )
        utilization = self._channels.utilization_window("ssd_write", start_slot, end_slot + 1)
        return bool(utilization.mean() >= self._policy.ssd_saturation_threshold)

    def _host_has_room(self, period: InactivePeriod) -> bool:
        # Period slots are contiguous (two contiguous pieces when wrapping),
        # so slices replace the index-array lookup — identical values.
        if period.wraps_around:
            pieces = (
                self._host_used[period.start_slot + 1 :],
                self._host_used[: max(period.end_slot - self._num_slots, 0)],
            )
        else:
            pieces = (self._host_used[period.start_slot + 1 : max(period.end_slot, 0)],)
        if not any(piece.size for piece in pieces):
            return False
        return all(
            bool((piece + period.size_bytes <= self._host_capacity).all())
            for piece in pieces
        )

    def _probe_destination(
        self, period: InactivePeriod, to_ssd: bool
    ) -> tuple[int, int, int] | None:
        """Check feasibility of one destination; return (evict_complete, prefetch_issue, deadline)."""
        windows = self._windows(period)
        if windows is None:
            return None
        evict_window, fetch_window = windows
        evict_start = evict_window.start
        n = self._num_slots
        deadline = period.end_slot if not period.wraps_around else period.end_slot - n

        complete = self._channels.probe_forward(
            period.size_bytes, evict_start, evict_window.stop, to_ssd, Direction.OUT
        )
        if complete is None:
            return None
        fetch_floor = fetch_window.start if period.wraps_around else complete + 1
        prefetch_issue = self._channels.probe_backward(
            period.size_bytes, fetch_window.stop, fetch_floor, to_ssd, Direction.IN
        )
        if prefetch_issue is None:
            return None
        if not period.wraps_around and prefetch_issue <= complete:
            # The tensor would need to start coming back before it finished
            # leaving; the migration would not reduce pressure at all.
            return None
        return complete, prefetch_issue, deadline

    def _try_schedule(self, period: InactivePeriod) -> _ScheduledMigration | None:
        policy = self._policy
        windows = self._windows(period)
        if windows is None:
            return None
        evict_window, fetch_window = windows

        ssd_probe = self._probe_destination(period, to_ssd=True) if policy.allow_ssd else None
        host_probe = self._probe_destination(period, to_ssd=False) if policy.allow_host else None

        destination: MigrationDestination | None = None
        probe: tuple[int, int, int] | None = None
        host_ok = host_probe is not None and self._host_has_room(period)
        if ssd_probe is not None:
            saturated = self._ssd_saturated(evict_window.start, period.size_bytes)
            if saturated and host_ok:
                destination, probe = MigrationDestination.HOST, host_probe
            else:
                destination, probe = MigrationDestination.SSD, ssd_probe
        elif host_ok:
            destination, probe = MigrationDestination.HOST, host_probe

        if destination is None or probe is None:
            return None

        to_ssd = destination is MigrationDestination.SSD
        complete, prefetch_issue, deadline = probe

        # Reserve bandwidth for both legs of the migration.
        self._channels.reserve(
            period.size_bytes, evict_window.start, to_ssd, Direction.OUT, evict_window.stop
        )
        self._channels.reserve(
            period.size_bytes, prefetch_issue, to_ssd, Direction.IN, fetch_window.stop
        )

        # Update projected memory pressure for the slots the tensor is absent.
        absent = self._absent_slots(period, complete, prefetch_issue)
        self._pressure.apply_eviction(period, absent)
        if destination is MigrationDestination.HOST and absent.size:
            self._host_used[absent] += period.size_bytes

        return _ScheduledMigration(
            period=period,
            destination=destination,
            eviction_issue=period.start_slot,
            eviction_complete=complete,
            prefetch_issue=prefetch_issue,
            prefetch_deadline=deadline,
        )

    def _absent_slots(
        self, period: InactivePeriod, eviction_complete: int, prefetch_issue: int
    ) -> np.ndarray:
        n = self._num_slots
        if not period.wraps_around:
            return np.arange(eviction_complete + 1, prefetch_issue, dtype=np.int64)
        tail = np.arange(eviction_complete + 1, n, dtype=np.int64)
        head = np.arange(0, prefetch_issue, dtype=np.int64)
        return np.concatenate([tail, head])

    # -- plan assembly ------------------------------------------------------------

    def _build_plan(self, accepted: list[_ScheduledMigration]) -> MigrationPlan:
        n = self._num_slots
        evictions: list[PlannedEviction] = []
        prefetches: list[PlannedPrefetch] = []
        for migration in accepted:
            period = migration.period
            evictions.append(
                PlannedEviction(
                    tensor_id=period.tensor_id,
                    size_bytes=period.size_bytes,
                    destination=migration.destination,
                    issue_slot=migration.eviction_issue,
                    expected_completion_slot=migration.eviction_complete,
                    period=period,
                )
            )
            deadline = period.end_slot if not period.wraps_around else period.end_slot
            prefetches.append(
                PlannedPrefetch(
                    tensor_id=period.tensor_id,
                    size_bytes=period.size_bytes,
                    source=migration.destination,
                    issue_slot=migration.prefetch_issue
                    if not period.wraps_around
                    else migration.prefetch_issue + n,
                    latest_safe_slot=migration.prefetch_issue
                    if not period.wraps_around
                    else migration.prefetch_issue + n,
                    deadline_slot=deadline,
                    period=period,
                )
            )
        return MigrationPlan(
            gpu_capacity_bytes=float(self._config.gpu.memory_bytes),
            num_slots=n,
            evictions=evictions,
            prefetches=prefetches,
            planned_peak_pressure=self._pressure.peak,
            fits_in_gpu=self._pressure.fits(),
        )
