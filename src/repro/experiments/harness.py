"""Shared machinery for building workloads and running policies.

Workloads come in two scales:

* ``"paper"`` — the full model architectures at the paper's batch sizes,
  against the Table 2 system configuration;
* ``"ci"`` — depth-reduced models whose GPU/host memory capacities are scaled
  by the same factor as the workload footprint, preserving every
  footprint-to-capacity and traffic-to-bandwidth ratio while running in a few
  hundred milliseconds. The benchmark suite uses this scale by default.
"""

from __future__ import annotations

import numbers
from dataclasses import dataclass, field

from ..config import SystemConfig, paper_config
from ..core.vitality import TensorVitalityAnalyzer, VitalityReport
from ..errors import ConfigurationError
from ..graph.training import TrainingGraph, expand_training
from ..models.registry import build_model, normalize_model_name
from ..profiling import perturb_trace, profile_training_graph
from ..registry import MODEL_REGISTRY, POLICY_REGISTRY
from ..baselines import make_policy
from ..sim import SimulationResult
from ..sim.engine import simulate

#: Maximum profiling-noise seed accepted by the harness (stored in cache keys
#: and JSON artifacts as a plain 32-bit value).
MAX_SEED = 2**32 - 1


@dataclass(frozen=True)
class Workload:
    """A profiled training iteration plus the system configuration to run it on."""

    name: str
    batch_size: int
    scale: str
    graph: TrainingGraph = field(compare=False, repr=False)
    report: VitalityReport = field(compare=False, repr=False)
    config: SystemConfig = field(compare=False, repr=False)

    @property
    def memory_footprint_ratio(self) -> float:
        """Peak live footprint relative to GPU capacity (the paper's M metric)."""
        return self.report.memory_footprint_ratio(self.config.gpu.memory_bytes)


_CACHE: dict[tuple, Workload] = {}


def clear_workload_cache() -> None:
    """Drop memoized workloads (tests use this to bound memory)."""
    _CACHE.clear()


def default_batch_size(model: str) -> int:
    """The Figure 11 batch size for a model (its registered default).

    Models registered without a ``default_batch_size`` must be run with an
    explicit batch size.
    """
    key = normalize_model_name(model)
    batch = MODEL_REGISTRY.metadata(key).get("default_batch_size")
    if batch is None:
        raise ConfigurationError(
            f"model {key!r} has no registered default batch size; "
            "pass batch_size explicitly"
        )
    return batch


def scale_batch(batch_size: int, scale: str) -> int:
    """Shrink a paper-scale batch size for CI-scale workloads (/4, floored at 8)."""
    if scale == "ci":
        return max(batch_size // 4, 8)
    return batch_size


def resolve_batch_size(model: str, scale: str = "paper", batch_size: int | None = None) -> int:
    """The batch size a workload will actually train with.

    ``None`` resolves to the Figure 11 default, shrunk by :func:`scale_batch`
    for CI-scale workloads — the same rule :func:`build_workload` applies.
    """
    if batch_size is not None:
        return batch_size
    return scale_batch(default_batch_size(model), scale)


def default_config(model: str, scale: str = "paper") -> SystemConfig:
    """The system configuration a workload defaults to at a given scale.

    Paper scale is Table 2 verbatim; CI scale shrinks GPU/host capacities by
    the model's footprint-scale factor so the memory-pressure regime matches.
    """
    if scale not in ("paper", "ci"):
        raise ConfigurationError(f"unknown workload scale {scale!r}")
    config = paper_config()
    if scale == "ci":
        factor = MODEL_REGISTRY.metadata(model).get("ci_capacity_scale", 1.0)
        config = config.with_gpu_memory(int(config.gpu.memory_bytes * factor))
        config = config.with_host_memory(int(config.host_memory_bytes * factor))
    return config


def build_workload(
    model: str,
    batch_size: int | None = None,
    scale: str = "paper",
    config: SystemConfig | None = None,
) -> Workload:
    """Build, expand and profile one workload (memoized).

    Args:
        model: Any recognised model name.
        batch_size: Training batch size; defaults to the Figure 11 value
            (scaled down by 4x for CI-scale workloads).
        scale: ``"paper"`` or ``"ci"``.
        config: Optional system configuration override. For CI scale the
            default configuration has its GPU/host capacities shrunk to keep
            the paper's memory-pressure regime.
    """
    if scale not in ("paper", "ci"):
        raise ConfigurationError(f"unknown workload scale {scale!r}")
    key = normalize_model_name(model)
    batch_size = resolve_batch_size(key, scale, batch_size)
    if config is None:
        config = default_config(key, scale)

    # Key the memo on the config's *value* hash: keying on id(config) would
    # hand back a stale workload when a GC'd config's id is reused.
    cache_key = (key, batch_size, scale, config.fingerprint())
    cached = _CACHE.get(cache_key)
    if cached is not None:
        return cached

    overrides = MODEL_REGISTRY.metadata(key).get("ci_overrides", {}) if scale == "ci" else {}
    graph = build_model(key, batch_size, **overrides)
    training = profile_training_graph(expand_training(graph), config)
    report = TensorVitalityAnalyzer(training).analyze()
    workload = Workload(
        name=key,
        batch_size=batch_size,
        scale=scale,
        graph=training,
        report=report,
        config=config,
    )
    _CACHE[cache_key] = workload
    return workload


def canonicalize_cell_fields(
    model: str,
    policy: str | None,
    batch_size: int | None,
    scale: str,
    profiling_error: float,
    seed: int,
) -> dict:
    """The single canonicalization rule shared by ``SweepCell.resolved()``
    and ``Scenario.resolved()``.

    Normalizes the model and policy names through the registries, resolves
    the effective batch size, and zeroes the (otherwise unused) seed when no
    profiling noise is applied — one implementation, so sweep cache keys can
    never drift from what a session actually executes.
    """
    model = normalize_model_name(model)
    return {
        "model": model,
        "policy": None if policy is None else POLICY_REGISTRY.resolve(policy),
        "batch_size": resolve_batch_size(model, scale, batch_size),
        # int() keeps numpy seeds (np.int64 from a seed sweep) JSON-safe for
        # cell serialization and the cache key.
        "seed": int(seed) if profiling_error > 0 else 0,
    }


def validate_noise(profiling_error: float, seed: int) -> None:
    """Reject out-of-range profiling-noise parameters.

    Negative errors used to be silently treated as "no noise"; they are now a
    :class:`~repro.errors.ConfigurationError`, as are errors >= 1 (the noise
    model is multiplicative in ``[1 - e, 1 + e]``) and seeds outside the
    32-bit range the cache key serializes.
    """
    if profiling_error < 0:
        raise ConfigurationError(
            f"profiling_error must be >= 0, got {profiling_error}"
        )
    if profiling_error >= 1:
        raise ConfigurationError(
            f"profiling_error must be < 1 (got {profiling_error}): "
            "noise is multiplicative in [1 - e, 1 + e]"
        )
    if (
        isinstance(seed, bool)
        or not isinstance(seed, numbers.Integral)
        or not 0 <= seed <= MAX_SEED
    ):
        raise ConfigurationError(
            f"seed must be an integer in [0, {MAX_SEED}], got {seed!r}"
        )


def run_policy(
    workload: Workload,
    policy_name: str,
    config: SystemConfig | None = None,
    profiling_error: float = 0.0,
    seed: int = 0,
    observers: tuple = (),
) -> SimulationResult:
    """Simulate one policy on one workload.

    ``profiling_error`` perturbs the kernel durations the *policy* plans with,
    while the simulator executes the unperturbed trace — exactly the §7.6
    robustness experiment. ``observers`` are
    :class:`~repro.sim.observer.SimObserver` instances notified of kernel and
    migration events during the run.
    """
    validate_noise(profiling_error, seed)
    config = config or workload.config
    policy = make_policy(policy_name)
    if profiling_error > 0:
        planning_graph = perturb_trace(workload.graph, profiling_error, seed)
        planning_report = TensorVitalityAnalyzer(planning_graph).analyze()
        policy = _PrePlanned(policy, planning_report)
    # The single simulation code path: every entry point funnels through
    # repro.sim.engine.simulate, so simulator setup cannot drift.
    return simulate(
        workload.graph, config, policy, workload.report, observers=observers
    )


def run_policies(
    workload: Workload,
    policy_names: list[str] | tuple[str, ...],
    config: SystemConfig | None = None,
) -> dict[str, SimulationResult]:
    """Simulate several policies on one workload."""
    return {name: run_policy(workload, name, config) for name in policy_names}


class _PrePlanned:
    """Wrap a policy so its compile-time planning sees noisy kernel durations."""

    def __init__(self, inner, planning_report: VitalityReport):
        self._inner = inner
        self._planning_report = planning_report
        self.name = inner.name
        self.enforce_capacity = inner.enforce_capacity

    def setup(self, context):
        from ..sim.policy import PolicyContext

        noisy_context = PolicyContext(
            config=context.config,
            graph=self._planning_report.graph,
            report=self._planning_report,
        )
        self._inner.setup(noisy_context)

    def __getattr__(self, item):
        return getattr(self._inner, item)
